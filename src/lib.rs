//! # push-pull — direction-optimized graph traversal in GraphBLAS form
//!
//! A from-scratch Rust reproduction of *"Implementing Push-Pull Efficiently
//! in GraphBLAS"* (Yang, Buluç, Owens; ICPP 2018): a linear-algebra graph
//! framework in which breadth-first search is the one-line recurrence
//! `f' = Aᵀf .∗ ¬v`, and the backend decides per iteration whether to
//! evaluate it with a column-based (push) or row-based masked (pull)
//! matrix-vector product.
//!
//! ## Quickstart
//!
//! ```
//! use push_pull::prelude::*;
//!
//! // A scale-free graph (the paper's `kron` stand-in, scaled down).
//! let g = push_pull::gen::rmat::rmat(12, 16, Default::default(), 42);
//!
//! // Direction-optimized BFS with all five paper optimizations enabled.
//! let result = bfs(&g, 0);
//! println!("reached {} vertices in {} levels", result.reached(), result.levels);
//!
//! // The same traversal, one optimization at a time (Table 2's ladder):
//! for (name, opts) in BfsOpts::ladder() {
//!     let r = bfs_with_opts(&g, 0, &opts, None);
//!     assert_eq!(r.reached(), result.reached(), "{name} changed the answer");
//! }
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`primitives`] | scan, radix sort, gather, segmented reduce, SPA, bit vectors, access counters |
//! | [`matrix`] | COO/CSR storage, the dual-orientation [`matrix::Graph`], Matrix Market I/O, stats |
//! | [`core`] | semirings, vectors + §6.3 convert heuristic, masks, descriptors, the four matvec kernels, `mxv`/`vxm`/`mxm`, batched `mxv_batch` over `MultiVector` frontiers, fused `FusedMxv` pipelines |
//! | [`algo`] | BFS (Algorithm 1 + Table 2 ladder), SSSP, PageRank (+adaptive), CC, MIS, triangle counting, multi-source BFS, batched BC |
//! | [`gen`] | R-MAT/Kronecker, Chung-Lu power-law, RGG, road meshes, the Table 3 dataset suite |
//! | [`baselines`] | reimplemented comparators: SuiteSparse-like, CuSha-like, Ligra-like, Gunrock-like, push baseline, serial oracle |
//! | [`service`] | concurrent query service: windowed admission, same-kind coalescing into batched traversals, per-request limits/counters, seeded load generator |

pub use graphblas_algo as algo;
pub use graphblas_baselines as baselines;
pub use graphblas_core as core;
pub use graphblas_gen as gen;
pub use graphblas_matrix as matrix;
pub use graphblas_primitives as primitives;
pub use graphblas_service as service;

/// The names most programs need.
pub mod prelude {
    pub use graphblas_algo::bc::betweenness;
    pub use graphblas_algo::bfs::{bfs, bfs_with_opts, BfsOpts, BfsResult};
    pub use graphblas_algo::bfs_parents::{bfs_parents, bfs_parents_with_opts, ParentBfsOpts};
    pub use graphblas_algo::msbfs::{multi_source_bfs, MsBfsOpts, MsBfsResult};
    pub use graphblas_algo::pagerank::{adaptive_pagerank, pagerank, PageRankOpts};
    pub use graphblas_algo::sssp::{sssp, SsspOpts};
    pub use graphblas_core::{
        mxv, mxv_batch, resolve_direction, BoolOrAnd, Descriptor, Direction, DirectionPolicy,
        FusedMxv, FusedOutput, Mask, MinPlus, MultiVector, PlusTimes, Vector,
    };
    pub use graphblas_matrix::{Coo, Csr, Graph, GraphStats, VertexId};
}
