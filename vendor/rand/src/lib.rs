//! Deterministic shim for the subset of the `rand` API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be vendored. Every generator in this workspace constructs
//! its RNG via `StdRng::seed_from_u64`, so a high-quality deterministic
//! PRNG is all that is required. [`rngs::StdRng`] here is SplitMix64 feeding
//! xoshiro256**, the same construction `rand`'s own `SmallRng` family uses;
//! it passes BigCrush and is more than adequate for graph generation and
//! property-test sampling. Streams differ from upstream `rand` (which is
//! fine — no seed-compatibility is promised across rand versions either).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding entry point. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s full domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from raw bits ("the `Standard` distribution").
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled from: `lo..hi` and `lo..=hi`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        *self.start() + f64::sample(rng) * (*self.end() - *self.start())
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        *self.start() + f32::sample(rng) * (*self.end() - *self.start())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — deterministic, fast, and
    /// statistically strong; stands in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`, `choose`) from `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher-Yates, back to front.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(0..100_000u32);
            assert!(x < 100_000);
            let y = rng.gen_range(0..=9usize);
            assert!(y <= 9);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo, mut hi) = (1.0f64, 0.0f64);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
