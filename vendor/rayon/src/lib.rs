//! Sequential shim for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rayon` cannot be vendored. This crate keeps every `par_iter` /
//! `into_par_iter` call site compiling unchanged and executes them
//! sequentially. `ParIter` wraps a plain [`Iterator`] and re-exposes the
//! rayon-specific adaptors (`with_min_len`, `flat_map_iter`) as no-ops or
//! sequential equivalents; because it also implements [`Iterator`], all the
//! std adaptors (`map`, `zip`, `filter`, `sum`, `collect`, ...) keep
//! working. Swapping in the real rayon later is a one-line Cargo change —
//! no call sites need to move.

/// Number of worker threads. A sequential executor honestly has one lane,
/// but callers use this to pick *chunk counts* for deterministic seeding, so
/// report the machine's parallelism the way real rayon would.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sequential stand-in for a rayon parallel iterator.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Grain-size hint; meaningless sequentially.
    #[must_use]
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Grain-size hint; meaningless sequentially.
    #[must_use]
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// rayon's `flat_map_iter`: flat-map with a serial inner iterator.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        ParIter(self.0.flat_map(f))
    }

    /// Keep the `ParIter` wrapper across `map` so rayon-only adaptors can
    /// still be chained afterwards.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep the `ParIter` wrapper across `zip`.
    pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::Iter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    /// Keep the `ParIter` wrapper across `enumerate`.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Keep the `ParIter` wrapper across `filter`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// rayon's `map_init`: per-worker scratch state. One lane here, so the
    /// init value is created once and threaded through every call.
    pub fn map_init<INIT, S, F, U>(self, init: INIT, f: F) -> ParIter<MapInit<I, S, F>>
    where
        INIT: FnOnce() -> S,
        F: FnMut(&mut S, I::Item) -> U,
    {
        ParIter(MapInit {
            inner: self.0,
            state: init(),
            f,
        })
    }
}

/// Iterator produced by [`ParIter::map_init`].
pub struct MapInit<I, S, F> {
    inner: I,
    state: S,
    f: F,
}

impl<I: Iterator, S, F, U> Iterator for MapInit<I, S, F>
where
    F: FnMut(&mut S, I::Item) -> U,
{
    type Item = U;

    fn next(&mut self) -> Option<U> {
        let x = self.inner.next()?;
        Some((self.f)(&mut self.state, x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// `IntoParallelIterator` — anything that can be iterated can be "parallel"
/// iterated here.
pub trait IntoParallelIterator {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `&collection -> par_iter()`, mirroring rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    type Iter: Iterator<Item = Self::Item>;
    type Item: 'a;
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
{
    type Iter = <&'a T as IntoIterator>::IntoIter;
    type Item = <&'a T as IntoIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `&mut collection -> par_iter_mut()`, mirroring rayon's
/// `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    type Iter: Iterator<Item = Self::Item>;
    type Item: 'a;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
where
    &'a mut T: IntoIterator,
{
    type Iter = <&'a mut T as IntoIterator>::IntoIter;
    type Item = <&'a mut T as IntoIterator>::Item;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_par_iter_sums() {
        let v = vec![1u64, 2, 3, 4];
        let s: u64 = v.par_iter().with_min_len(2).map(|&x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn range_into_par_iter_collects() {
        let out: Vec<usize> = (0..5).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let out: Vec<u32> = vec![1u32, 2]
            .into_par_iter()
            .flat_map_iter(|x| 0..x)
            .collect();
        assert_eq!(out, vec![0, 0, 1]);
    }

    #[test]
    fn zip_and_enumerate_chain() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = a
            .par_iter()
            .zip(b.par_iter())
            .enumerate()
            .map(|(i, (x, y))| (i, x + y))
            .collect();
        assert_eq!(out, vec![(0, 11), (1, 22), (2, 33)]);
    }
}
