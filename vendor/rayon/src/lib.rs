//! Multi-threaded shim for the subset of the `rayon` API this workspace
//! uses — a real executor, not a sequential stand-in.
//!
//! The build environment has no network access to crates.io, so the real
//! `rayon` cannot be vendored. This crate keeps every `par_iter` /
//! `into_par_iter` call site compiling unchanged and executes them on a
//! persistent `std::thread` worker pool: each terminal operation pre-splits
//! its source into an ordered chunk list and the calling thread plus the
//! pool workers claim chunks through one atomic index (see [`mod@iter`] and
//! the pool module). Panics inside chunks propagate to the caller; nested
//! parallel regions run inline.
//!
//! Two properties the workspace leans on:
//!
//! * **Lane-count-independent results.** Chunk boundaries derive from the
//!   problem size and the `with_min_len` grain only — never from the
//!   thread count — so every reduction groups its operands identically at
//!   1, 2, or 64 threads, and `collect` preserves sequential order. The
//!   determinism suite asserts bit-identical algorithm output across
//!   thread counts.
//! * **Configurable lanes.** `PUSH_PULL_THREADS` (then
//!   `RAYON_NUM_THREADS`) overrides the machine parallelism;
//!   [`with_num_threads`] scopes an override to the current thread, which
//!   is how the scaling bench and the test suite sweep thread counts
//!   inside one process. [`current_num_threads`] reports the resolved
//!   value, exactly as the pool will use it.
//!
//! Swapping in the real rayon later is a one-line Cargo change; no call
//! sites need to move (`with_num_threads` callers would move to rayon's
//! `ThreadPoolBuilder` scopes).

mod iter;
mod pool;

pub use iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, Splittable,
};
#[cfg(feature = "fault-injection")]
pub use pool::set_chunk_fault_countdown;
pub use pool::{take_last_panic_chunk, with_num_threads};

/// Number of lanes parallel regions started by this thread will use:
/// the [`with_num_threads`] override if inside one, else
/// `PUSH_PULL_THREADS` / `RAYON_NUM_THREADS`, else the machine's
/// available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    pool::effective_lanes()
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::with_num_threads;

    #[test]
    fn slice_par_iter_sums() {
        let v = vec![1u64, 2, 3, 4];
        let s: u64 = v.par_iter().with_min_len(2).map(|&x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn range_into_par_iter_collects() {
        let out: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let out: Vec<u32> = vec![1u32, 2]
            .into_par_iter()
            .flat_map_iter(|x| 0..x)
            .collect();
        assert_eq!(out, vec![0, 0, 1]);
    }

    #[test]
    fn zip_and_enumerate_chain() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = a
            .par_iter()
            .zip(b.par_iter())
            .enumerate()
            .map(|(i, (x, y))| (i, x + y))
            .collect();
        assert_eq!(out, vec![(0, 11), (1, 22), (2, 33)]);
    }

    #[test]
    fn collect_order_is_sequential_at_every_thread_count() {
        let expect: Vec<usize> = (0..100_000).map(|i| i * 3).collect();
        for lanes in [1, 2, 4, 8] {
            let got: Vec<usize> = with_num_threads(lanes, || {
                (0..100_000usize).into_par_iter().map(|i| i * 3).collect()
            });
            assert_eq!(got, expect, "lanes = {lanes}");
        }
    }

    #[test]
    fn filter_preserves_order_and_content() {
        let got: Vec<u32> = with_num_threads(4, || {
            (0..50_000u32)
                .into_par_iter()
                .filter(|x| x % 7 == 0)
                .collect()
        });
        let expect: Vec<u32> = (0..50_000).filter(|x| x % 7 == 0).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v: Vec<u64> = (0..10_000).collect();
        with_num_threads(4, || {
            v.par_iter_mut().with_min_len(64).for_each(|x| *x *= 2);
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn map_init_state_is_per_chunk_scratch() {
        // Scratch contents must never leak into results: a buffer reused
        // across elements gives the same answer as a fresh computation.
        let got: Vec<usize> = with_num_threads(4, || {
            (0..10_000usize)
                .into_par_iter()
                .with_min_len(128)
                .map_init(Vec::new, |buf: &mut Vec<usize>, i| {
                    buf.clear();
                    buf.extend(0..i % 5);
                    i + buf.len()
                })
                .collect()
        });
        let expect: Vec<usize> = (0..10_000).map(|i| i + i % 5).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn current_num_threads_reports_override() {
        with_num_threads(5, || assert_eq!(super::current_num_threads(), 5));
        with_num_threads(1, || assert_eq!(super::current_num_threads(), 1));
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn reduce_combines_in_chunk_order() {
        let s = with_num_threads(4, || {
            (0..1_000u64)
                .into_par_iter()
                .map(|x| x * 2)
                .reduce(|| 0, |a, b| a + b)
        });
        assert_eq!(s, 999 * 1000);
    }
}
