//! The parallel-iterator layer: splittable sources, lazy adaptors, and
//! chunked terminal operations.
//!
//! Real rayon drives a `Producer`/`Consumer` plumbing; this shim keeps the
//! same *call-site* surface with a much smaller core. A [`Splittable`] is a
//! source that can be cut at an index into two independent halves; the
//! adaptors (`map`, `filter`, `zip`, `enumerate`, `flat_map_iter`,
//! `map_init`) wrap a splittable and stay splittable. A terminal operation
//! splits the pipeline into an ordered chunk list — sized from the data
//! (`min_len` grain, capped at [`MAX_CHUNKS`]) and **never** from the
//! thread count, so chunk boundaries (and with them any reduction
//! grouping) are identical at every lane count — and the pool drains the
//! chunks by atomic index stealing. Per-chunk results are reassembled in
//! chunk order, so `collect` preserves the sequential order exactly.
//!
//! Non-length-preserving adaptors (`filter`, `flat_map_iter`) split over
//! the *underlying* domain; `zip` and `enumerate` therefore require their
//! inputs to be length-exact (ranges, slices, vectors, and `map`s
//! thereof), which mirrors rayon's `IndexedParallelIterator` constraint.

use crate::pool;

/// Upper bound on chunks per region. High enough that the largest lane
/// count the shim will realistically see (dozens) still steals productively,
/// low enough that per-chunk bookkeeping stays negligible.
const MAX_CHUNKS: usize = 128;

/// A source that can be cut at an index into two independent halves.
pub trait Splittable: Sized + Send {
    /// Element type produced by the sequential side.
    type Item: Send;
    /// Sequential iterator over one chunk.
    type Seq: Iterator<Item = Self::Item>;
    /// Size of the *split domain* (item count for exact sources; the
    /// underlying domain for `filter`/`flat_map_iter` pipelines).
    fn split_len(&self) -> usize;
    /// Cut into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Convert one chunk into a sequential iterator.
    fn into_seq(self) -> Self::Seq;
}

/// Recursively halve `src` into exactly `k` ordered, near-equal chunks.
fn split_into<S: Splittable>(src: S, k: usize, out: &mut Vec<S>) {
    let len = src.split_len();
    if k <= 1 || len <= 1 {
        out.push(src);
        return;
    }
    let left_k = k.div_ceil(2);
    let cut = ((len * left_k) / k).clamp(1, len - 1);
    let (left, right) = src.split_at(cut);
    split_into(left, left_k, out);
    split_into(right, k - left_k, out);
}

// ---------------------------------------------------------------------------
// ParIter and its terminal operations
// ---------------------------------------------------------------------------

/// A parallel iterator: a splittable pipeline plus grain-size hints.
pub struct ParIter<S> {
    source: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Splittable> ParIter<S> {
    pub(crate) fn new(source: S) -> Self {
        ParIter {
            source,
            min_len: 1,
            max_len: usize::MAX,
        }
    }

    /// Minimum elements per chunk (rayon's grain-size hint). Honored
    /// exactly: with `n` elements at most `n / min_len` chunks are cut.
    #[must_use]
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Maximum elements per chunk; raises the chunk count when it would
    /// otherwise leave chunks larger than `max`.
    #[must_use]
    pub fn with_max_len(mut self, max: usize) -> Self {
        self.max_len = max.max(1);
        self
    }

    /// Split the pipeline into the ordered chunk list a terminal op runs.
    /// The count depends only on the data and the grain hints — never on
    /// the lane count — so results are lane-count-independent.
    fn chunks(self) -> Vec<S> {
        let len = self.source.split_len();
        let by_min = len.div_ceil(self.min_len).max(1);
        let mut k = by_min.min(MAX_CHUNKS);
        if self.max_len != usize::MAX {
            k = k.max(len.div_ceil(self.max_len)).min(len.max(1));
        }
        let mut out = Vec::with_capacity(k);
        split_into(self.source, k, &mut out);
        out
    }

    /// Run `per_chunk` over every chunk on the pool; results in chunk order.
    fn drive<R, G>(self, per_chunk: G) -> Vec<R>
    where
        R: Send,
        G: Fn(S) -> R + Sync,
    {
        pool::run_chunks(self.chunks(), per_chunk)
    }

    // -- adaptors ----------------------------------------------------------

    /// Map every element through `f`.
    pub fn map<U, F>(self, f: F) -> ParIter<Map<S, F>>
    where
        U: Send,
        F: Fn(S::Item) -> U + Clone + Send,
    {
        ParIter {
            source: Map {
                base: self.source,
                f,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Keep elements satisfying `pred`. Splits over the underlying domain.
    pub fn filter<P>(self, pred: P) -> ParIter<Filter<S, P>>
    where
        P: Fn(&S::Item) -> bool + Clone + Send,
    {
        ParIter {
            source: Filter {
                base: self.source,
                pred,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Pair elements with another length-exact parallel iterator.
    pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<Zip<S, J::Source>> {
        ParIter {
            source: Zip {
                a: self.source,
                b: other.into_par_iter().source,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Attach positions, preserving the sequential numbering.
    pub fn enumerate(self) -> ParIter<Enumerate<S>> {
        ParIter {
            source: Enumerate {
                base: self.source,
                offset: 0,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// rayon's `flat_map_iter`: flat-map with a serial inner iterator.
    /// Splits over the outer domain.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<FlatMapIter<S, F>>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(S::Item) -> U + Clone + Send,
    {
        ParIter {
            source: FlatMapIter {
                base: self.source,
                f,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// rayon's `map_init`: `init` builds one scratch state per chunk and
    /// `f` maps each element with mutable access to it.
    pub fn map_init<INIT, T, F, U>(self, init: INIT, f: F) -> ParIter<MapInit<S, INIT, F>>
    where
        INIT: Fn() -> T + Clone + Send,
        F: Fn(&mut T, S::Item) -> U + Clone + Send,
        U: Send,
    {
        ParIter {
            source: MapInit {
                base: self.source,
                init,
                f,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    // -- terminals ---------------------------------------------------------

    /// Consume every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync + Send,
    {
        self.drive(|chunk| chunk.into_seq().for_each(&f));
    }

    /// Collect into `C`, preserving the sequential element order.
    pub fn collect<C: FromIterator<S::Item>>(self) -> C {
        let parts: Vec<Vec<S::Item>> = self.drive(|chunk| chunk.into_seq().collect());
        parts.into_iter().flatten().collect()
    }

    /// Sum all elements (per-chunk partial sums, combined in chunk order).
    pub fn sum<T>(self) -> T
    where
        T: Send + std::iter::Sum<S::Item> + std::iter::Sum<T>,
    {
        self.drive(|chunk| chunk.into_seq().sum::<T>())
            .into_iter()
            .sum()
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.drive(|chunk| chunk.into_seq().count())
            .into_iter()
            .sum()
    }

    /// Fold each chunk from `identity`, then combine the per-chunk results
    /// with `op` in chunk order (rayon's `reduce` with an identity).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item + Sync + Send,
        OP: Fn(S::Item, S::Item) -> S::Item + Sync + Send,
    {
        self.drive(|chunk| chunk.into_seq().fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

macro_rules! range_splittable {
    ($($t:ty),*) => {$(
        impl Splittable for std::ops::Range<$t> {
            type Item = $t;
            type Seq = std::ops::Range<$t>;
            fn split_len(&self) -> usize {
                // Reversed ranges are empty (std semantics); the guard also
                // keeps signed instantiations from casting a negative
                // difference into a huge usize.
                if self.end <= self.start {
                    0
                } else {
                    (self.end - self.start) as usize
                }
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + index as $t;
                (self.start..mid, mid..self.end)
            }
            fn into_seq(self) -> Self::Seq {
                self
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Source = std::ops::Range<$t>;
            fn into_par_iter(self) -> ParIter<Self::Source> {
                ParIter::new(self)
            }
        }
    )*};
}
range_splittable!(u32, u64, usize, i32, i64);

/// Shared-slice source (`par_iter`).
pub struct SliceSplit<'a, T>(&'a [T]);

impl<'a, T: Sync> Splittable for SliceSplit<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;
    fn split_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (SliceSplit(l), SliceSplit(r))
    }
    fn into_seq(self) -> Self::Seq {
        self.0.iter()
    }
}

/// Mutable-slice source (`par_iter_mut`).
pub struct SliceMutSplit<'a, T>(&'a mut [T]);

impl<'a, T: Send> Splittable for SliceMutSplit<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;
    fn split_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (SliceMutSplit(l), SliceMutSplit(r))
    }
    fn into_seq(self) -> Self::Seq {
        let slice: &'a mut [T] = self.0;
        slice.iter_mut()
    }
}

/// Owning vector source (`Vec::into_par_iter`).
pub struct VecSplit<T>(Vec<T>);

impl<T: Send> Splittable for VecSplit<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;
    fn split_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let right = self.0.split_off(index);
        (self, VecSplit(right))
    }
    fn into_seq(self) -> Self::Seq {
        self.0.into_iter()
    }
}

// ---------------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------------

/// Splittable produced by [`ParIter::map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Splittable for Map<S, F>
where
    S: Splittable,
    U: Send,
    F: Fn(S::Item) -> U + Clone + Send,
{
    type Item = U;
    type Seq = std::iter::Map<S::Seq, F>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.f)
    }
}

/// Splittable produced by [`ParIter::filter`].
pub struct Filter<S, P> {
    base: S,
    pred: P,
}

impl<S, P> Splittable for Filter<S, P>
where
    S: Splittable,
    P: Fn(&S::Item) -> bool + Clone + Send,
{
    type Item = S::Item;
    type Seq = std::iter::Filter<S::Seq, P>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Filter {
                base: l,
                pred: self.pred.clone(),
            },
            Filter {
                base: r,
                pred: self.pred,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().filter(self.pred)
    }
}

/// Splittable produced by [`ParIter::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Splittable, B: Splittable> Splittable for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;
    fn split_len(&self) -> usize {
        self.a.split_len().min(self.b.split_len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Splittable produced by [`ParIter::enumerate`].
pub struct Enumerate<S> {
    base: S,
    offset: usize,
}

impl<S: Splittable> Splittable for Enumerate<S> {
    type Item = (usize, S::Item);
    type Seq = std::iter::Zip<std::ops::Range<usize>, S::Seq>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        let n = self.base.split_len();
        (self.offset..self.offset + n).zip(self.base.into_seq())
    }
}

/// Splittable produced by [`ParIter::flat_map_iter`].
pub struct FlatMapIter<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Splittable for FlatMapIter<S, F>
where
    S: Splittable,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(S::Item) -> U + Clone + Send,
{
    type Item = U::Item;
    type Seq = std::iter::FlatMap<S::Seq, U, F>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FlatMapIter {
                base: l,
                f: self.f.clone(),
            },
            FlatMapIter { base: r, f: self.f },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().flat_map(self.f)
    }
}

/// Splittable produced by [`ParIter::map_init`]; `init` runs once per
/// chunk (rayon runs it once per split, same contract: per-worker scratch).
pub struct MapInit<S, INIT, F> {
    base: S,
    init: INIT,
    f: F,
}

impl<S, INIT, T, F, U> Splittable for MapInit<S, INIT, F>
where
    S: Splittable,
    INIT: Fn() -> T + Clone + Send,
    F: Fn(&mut T, S::Item) -> U + Clone + Send,
    U: Send,
{
    type Item = U;
    type Seq = MapInitSeq<S::Seq, T, F>;
    fn split_len(&self) -> usize {
        self.base.split_len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapInit {
                base: l,
                init: self.init.clone(),
                f: self.f.clone(),
            },
            MapInit {
                base: r,
                init: self.init,
                f: self.f,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        MapInitSeq {
            inner: self.base.into_seq(),
            state: (self.init)(),
            f: self.f,
        }
    }
}

/// Sequential side of [`MapInit`]: the chunk's scratch state threaded
/// through every element.
pub struct MapInitSeq<I, T, F> {
    inner: I,
    state: T,
    f: F,
}

impl<I: Iterator, T, F, U> Iterator for MapInitSeq<I, T, F>
where
    F: FnMut(&mut T, I::Item) -> U,
{
    type Item = U;

    fn next(&mut self) -> Option<U> {
        let x = self.inner.next()?;
        Some((self.f)(&mut self.state, x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// By-value conversion into a parallel iterator (ranges, vectors, and
/// parallel iterators themselves, mirroring rayon).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Splittable backing the iterator.
    type Source: Splittable<Item = Self::Item>;
    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Source = VecSplit<T>;
    fn into_par_iter(self) -> ParIter<Self::Source> {
        ParIter::new(VecSplit(self))
    }
}

impl<S: Splittable> IntoParallelIterator for ParIter<S> {
    type Item = S::Item;
    type Source = S;
    fn into_par_iter(self) -> ParIter<S> {
        self
    }
}

/// `&collection -> par_iter()`, mirroring rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a shared reference).
    type Item: Send + 'a;
    /// Splittable backing the iterator.
    type Source: Splittable<Item = Self::Item>;
    /// Parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Source>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Source = SliceSplit<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Source> {
        ParIter::new(SliceSplit(self))
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Source = SliceSplit<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Source> {
        ParIter::new(SliceSplit(self))
    }
}

/// `&mut collection -> par_iter_mut()`, mirroring rayon's
/// `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type (a mutable reference).
    type Item: Send + 'a;
    /// Splittable backing the iterator.
    type Source: Splittable<Item = Self::Item>;
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Source>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Source = SliceMutSplit<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Source> {
        ParIter::new(SliceMutSplit(self))
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Source = SliceMutSplit<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Source> {
        ParIter::new(SliceMutSplit(self))
    }
}
