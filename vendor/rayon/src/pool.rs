//! The execution core: a persistent `std::thread` worker pool draining
//! chunked parallel regions by atomic chunk-index stealing.
//!
//! A *region* is one terminal parallel operation (`for_each`, `collect`,
//! `sum`, ...). The iterator layer splits the source into an ordered list
//! of chunks — always derived from the *problem size*, never the thread
//! count, so results (including floating-point reduction groupings) are
//! identical at every lane count — and hands them to [`run_chunks`]. The
//! calling thread and every pool worker then race on a single atomic
//! index: `fetch_add(1)` claims the next unprocessed chunk, which is how
//! stealing works here (no per-worker deques are needed when chunks are
//! pre-split and sized for cache residency, see `MAX_CHUNKS` in the
//! iterator layer).
//!
//! * Workers are spawned lazily, live for the process, and serve every
//!   region from every thread (concurrent callers enqueue concurrent
//!   regions; each caller participates in its own region and blocks on a
//!   per-region condvar until completion).
//! * A panic inside a chunk is caught, the remaining chunks still run
//!   (claims are never abandoned), and the first payload is re-thrown on
//!   the calling thread once the region completes — matching rayon's
//!   panic-propagation contract closely enough for `should_panic` tests.
//! * Nested parallel regions (a chunk body that itself calls `par_iter`)
//!   execute inline on the current thread: the outer region already owns
//!   all lanes, and flattening nested parallelism is deadlock-free by
//!   construction.
//!
//! Lane count resolution order: [`with_num_threads`] thread-local
//! override → `PUSH_PULL_THREADS` → `RAYON_NUM_THREADS` →
//! `std::thread::available_parallelism()`.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Lane-count override installed by [`with_num_threads`].
    static LANE_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True while this thread is executing a chunk body; nested regions
    /// started under it run inline.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
    /// Chunk index of the panic most recently re-thrown to this thread.
    /// A side channel, not a wrapper: the original payload is preserved
    /// (so `should_panic(expected = ...)` tests keep matching) while a
    /// guard that catches the unwind can still learn which chunk died.
    static LAST_PANIC_CHUNK: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Take (and clear) the chunk index of the panic most recently re-thrown
/// to the current thread by a parallel region. Meaningful only immediately
/// after catching an unwind that crossed [`run_chunks`].
#[must_use]
pub fn take_last_panic_chunk() -> Option<usize> {
    LAST_PANIC_CHUNK.with(Cell::take)
}

/// Deterministic chunk-fault countdown (fault-injection builds only):
/// panics inside the Kth chunk body executed after arming, inside the
/// pool's per-chunk catch, so the workspace's chaos suite can prove panic
/// isolation without hand-writing a panicking kernel.
#[cfg(feature = "fault-injection")]
mod chunk_fault {
    use std::sync::atomic::{AtomicI64, Ordering};

    /// Remaining chunk executions until the armed panic; negative = off.
    static COUNTDOWN: AtomicI64 = AtomicI64::new(-1);

    pub(super) fn set(nth: Option<u64>) {
        COUNTDOWN.store(nth.map_or(-1, |n| n.max(1) as i64 - 1), Ordering::SeqCst);
    }

    #[inline]
    pub(super) fn tick() {
        if COUNTDOWN.load(Ordering::Relaxed) < 0 {
            return;
        }
        if COUNTDOWN.fetch_sub(1, Ordering::SeqCst) == 0 {
            panic!("injected fault: worker chunk panic");
        }
    }
}

/// Arm (or with `None` disarm) the injected panic in the Kth chunk body
/// executed from now on, counted across all regions and threads.
#[cfg(feature = "fault-injection")]
pub fn set_chunk_fault_countdown(nth: Option<u64>) {
    chunk_fault::set(nth);
}

#[inline]
fn chunk_fault_tick() {
    #[cfg(feature = "fault-injection")]
    chunk_fault::tick();
}

/// Lane count from the environment (cached: the variables are read once
/// per process; tests use [`with_num_threads`] instead of mutating the
/// environment, which would race across test threads).
fn env_lanes() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        for var in ["PUSH_PULL_THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(s) = std::env::var(var) {
                if let Ok(n) = s.trim().parse::<usize>() {
                    return n.max(1);
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Number of lanes parallel regions started by this thread will use.
pub(crate) fn effective_lanes() -> usize {
    LANE_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(env_lanes)
        .max(1)
}

/// Run `f` with parallel regions on this thread using exactly `n` lanes
/// (`n = 1` forces sequential execution). The override is thread-local
/// and restored on exit, including on panic — this is how the test suite
/// and the scaling bench compare thread counts inside one process.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LANE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(LANE_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// True while the current thread is inside a chunk body (used by the
/// iterator layer to flatten nested parallelism).
pub(crate) fn in_region() -> bool {
    IN_REGION.with(Cell::get)
}

/// One enqueued parallel region, type-erased for the worker loop.
trait Task: Send + Sync {
    /// Reserve a worker-participation slot. `false` when the region's lane
    /// budget is already met or no chunks remain to claim — the caller
    /// must then leave the region alone (and must not call [`Task::leave`]).
    fn try_join(&self) -> bool;
    /// Release a slot taken by a successful [`Task::try_join`].
    fn leave(&self);
    /// Claim and execute one chunk; `false` when every chunk is claimed.
    fn run_one(&self) -> bool;
}

/// The concrete region: pre-split chunks, a slot per output, the shared
/// chunk closure, and completion plumbing.
struct Region<S, R, F> {
    /// Chunk `i` is taken exactly once by whichever thread claims `i`.
    chunks: Vec<UnsafeCell<Option<S>>>,
    /// Output slot `i`, owned by the calling thread's stack.
    outs: *mut Option<R>,
    /// The per-chunk closure, owned by the calling thread's stack.
    f: *const F,
    /// Next chunk index to claim — the work-stealing cursor.
    next: AtomicUsize,
    /// Chunks finished (claimed *and* executed).
    completed: AtomicUsize,
    /// Pool workers the region may use *beyond the caller* (lanes − 1).
    /// The pool is process-global and only ever grows, so a region started
    /// under a small `with_num_threads` override must itself turn surplus
    /// workers away or it would silently run at full machine width.
    worker_budget: usize,
    /// Workers currently holding a participation slot.
    joined: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic from any chunk: the chunk's index plus the original
    /// payload (re-thrown unwrapped; the index travels through
    /// [`take_last_panic_chunk`]).
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

// SAFETY: chunk slots are claimed at most once via `next.fetch_add`, so no
// two threads access the same `UnsafeCell` concurrently. `outs` and `f`
// point into the calling thread's stack frame, which outlives the region:
// the caller blocks on `done_cv` until `completed == chunks.len()`, and
// neither pointer is dereferenced after a failed claim.
unsafe impl<S: Send, R: Send, F: Sync> Send for Region<S, R, F> {}
unsafe impl<S: Send, R: Send, F: Sync> Sync for Region<S, R, F> {}

impl<S, R, F> Task for Region<S, R, F>
where
    S: Send,
    R: Send,
    F: Fn(S) -> R + Sync,
{
    fn try_join(&self) -> bool {
        // Budget slots only free at exhaustion (a participant's chunk loop
        // ends only when every chunk is claimed), so a full region stays
        // full — waiting workers need no wake-up for it.
        if self.next.load(Ordering::Relaxed) >= self.chunks.len() {
            return false;
        }
        let mut joined = self.joined.load(Ordering::Relaxed);
        loop {
            if joined >= self.worker_budget {
                return false;
            }
            match self.joined.compare_exchange_weak(
                joined,
                joined + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => joined = seen,
            }
        }
    }

    fn leave(&self) {
        self.joined.fetch_sub(1, Ordering::Relaxed);
    }

    fn run_one(&self) -> bool {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i >= self.chunks.len() {
            return false;
        }
        // SAFETY: index `i` was claimed exactly once (see Send/Sync note).
        let chunk = unsafe { (*self.chunks[i].get()).take() }.expect("chunk claimed once");
        let outer = IN_REGION.with(|c| c.replace(true));
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            chunk_fault_tick();
            // SAFETY: `f` outlives the region (caller blocks on done_cv).
            unsafe { (*self.f)(chunk) }
        }));
        IN_REGION.with(|c| c.set(outer));
        match result {
            // SAFETY: slot `i` is written only by the claimant of chunk `i`
            // and read by the caller only after completion.
            Ok(r) => unsafe { *self.outs.add(i) = Some(r) },
            Err(payload) => {
                let mut slot = self
                    .panic
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                slot.get_or_insert((i, payload));
            }
        }
        if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.chunks.len() {
            *self.done.lock().expect("done flag") = true;
            self.done_cv.notify_all();
        }
        true
    }
}

struct PoolState {
    queue: VecDeque<Arc<dyn Task>>,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            spawned: 0,
        }),
        work_cv: Condvar::new(),
    })
}

/// Grow the pool to at least `target` persistent workers.
fn ensure_workers(target: usize) {
    let p = pool();
    let mut state = p.state.lock().expect("pool state");
    while state.spawned < target {
        let id = state.spawned;
        std::thread::Builder::new()
            .name(format!("push-pull-worker-{id}"))
            .spawn(worker_loop)
            .expect("spawn pool worker");
        state.spawned += 1;
    }
}

fn worker_loop() {
    let p = pool();
    loop {
        // Join the first region that both has unclaimed chunks and lane
        // budget left; a budget-full region at the queue front must not
        // starve regions behind it.
        let job: Arc<dyn Task> = {
            let mut state = p.state.lock().expect("pool state");
            'wait: loop {
                for job in &state.queue {
                    if job.try_join() {
                        break 'wait job.clone();
                    }
                }
                state = p.work_cv.wait(state).expect("pool state");
            }
        };
        while job.run_one() {}
        job.leave();
        // Every chunk of this region is claimed; retire it from the queue
        // so later workers move on to the next region.
        let mut state = p.state.lock().expect("pool state");
        state.queue.retain(|t| !Arc::ptr_eq(t, &job));
    }
}

/// Execute `f` over `chunks`, in parallel when the current lane count
/// allows, returning the per-chunk results in chunk order.
///
/// The sequential path (one lane, one chunk, or a nested region) applies
/// `f` to the same chunk list in the same order, so reduction groupings —
/// and therefore results — are identical at every lane count.
pub(crate) fn run_chunks<'env, S, R, F>(chunks: Vec<S>, f: F) -> Vec<R>
where
    S: Send + 'env,
    R: Send + 'env,
    F: Fn(S) -> R + Sync + 'env,
{
    let lanes = effective_lanes();
    if chunks.len() <= 1 || lanes <= 1 || in_region() {
        // Same per-chunk catch as the parallel path so a panicking chunk
        // reports its index identically at every lane count; the original
        // payload is re-thrown untouched.
        return chunks
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    chunk_fault_tick();
                    f(c)
                }));
                result.unwrap_or_else(|payload| {
                    LAST_PANIC_CHUNK.with(|slot| slot.set(Some(i)));
                    panic::resume_unwind(payload)
                })
            })
            .collect();
    }

    let n = chunks.len();
    let mut outs: Vec<Option<R>> = Vec::with_capacity(n);
    outs.resize_with(n, || None);
    let region = Arc::new(Region {
        chunks: chunks
            .into_iter()
            .map(|c| UnsafeCell::new(Some(c)))
            .collect(),
        outs: outs.as_mut_ptr(),
        f: &f,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        worker_budget: lanes - 1,
        joined: AtomicUsize::new(0),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    });

    ensure_workers(lanes - 1);
    let task: Arc<dyn Task + 'env> = region.clone();
    // SAFETY: lifetime erasure only; the region's borrowed pointers are
    // dereferenced exclusively while chunks remain claimable, and this
    // function does not return until every chunk has completed. A worker
    // may hold the Arc past that point, but then only touches owned
    // fields (atomics, emptied chunk slots).
    let task: Arc<dyn Task> =
        unsafe { std::mem::transmute::<Arc<dyn Task + 'env>, Arc<dyn Task + 'static>>(task) };
    let p = pool();
    {
        let mut state = p.state.lock().expect("pool state");
        state.queue.push_back(task.clone());
    }
    p.work_cv.notify_all();

    // Participate: the caller is a lane too.
    while region.run_one() {}

    // Wait for chunks claimed by workers to finish.
    {
        let mut done = region.done.lock().expect("done flag");
        while !*done {
            done = region.done_cv.wait(done).expect("done flag");
        }
    }
    // Retire the region if no worker already did.
    {
        let mut state = p.state.lock().expect("pool state");
        state.queue.retain(|t| !Arc::ptr_eq(t, &task));
    }
    let pending_panic = region
        .panic
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    if let Some((chunk_index, payload)) = pending_panic {
        LAST_PANIC_CHUNK.with(|slot| slot.set(Some(chunk_index)));
        panic::resume_unwind(payload);
    }
    outs.into_iter()
        .map(|o| o.expect("completed chunk wrote its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_chunks_preserves_order() {
        let chunks: Vec<usize> = (0..64).collect();
        let out = with_num_threads(4, || run_chunks(chunks, |c| c * 2));
        assert_eq!(out, (0..64).map(|c| c * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let chunks: Vec<u64> = (0..40).collect();
        let seq = with_num_threads(1, || run_chunks(chunks.clone(), |c| c * c));
        let par = with_num_threads(8, || run_chunks(chunks, |c| c * c));
        assert_eq!(seq, par);
    }

    #[test]
    fn threads_actually_execute_concurrently() {
        // With 4 lanes, chunks run on more than one thread id.
        let chunks: Vec<usize> = (0..256).collect();
        let ids = with_num_threads(4, || {
            run_chunks(chunks, |_| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                std::thread::current().id()
            })
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(
            distinct.len() > 1,
            "expected multiple worker threads, saw {}",
            distinct.len()
        );
    }

    #[test]
    fn panic_propagates_to_caller() {
        let result = panic::catch_unwind(|| {
            with_num_threads(4, || {
                run_chunks((0..32).collect::<Vec<usize>>(), |c| {
                    assert!(c != 17, "boom at chunk 17");
                    c
                })
            })
        });
        assert!(result.is_err(), "panic must cross the region boundary");
        assert_eq!(
            take_last_panic_chunk(),
            Some(17),
            "the side channel names the chunk that died"
        );
        assert_eq!(take_last_panic_chunk(), None, "the channel clears on read");
        // The pool must remain usable after a panicked region.
        let ok = with_num_threads(4, || run_chunks(vec![1usize, 2, 3], |c| c + 1));
        assert_eq!(ok, vec![2, 3, 4]);
    }

    #[test]
    fn sequential_panic_reports_chunk_index_too() {
        let result = panic::catch_unwind(|| {
            with_num_threads(1, || {
                run_chunks((0..8).collect::<Vec<usize>>(), |c| {
                    assert!(c != 5, "boom at chunk 5");
                    c
                })
            })
        });
        assert!(result.is_err());
        assert_eq!(take_last_panic_chunk(), Some(5));
    }

    #[test]
    fn nested_regions_run_inline() {
        let out = with_num_threads(4, || {
            run_chunks((0..8).collect::<Vec<usize>>(), |outer| {
                // Nested region: must not deadlock, must stay correct.
                let inner: Vec<usize> = run_chunks((0..4).collect::<Vec<usize>>(), |i| i * 10);
                outer + inner.iter().sum::<usize>()
            })
        });
        assert_eq!(out, (0..8).map(|o| o + 60).collect::<Vec<_>>());
    }

    #[test]
    fn lane_budget_bounds_participation() {
        // Grow the pool well past two workers first: a later 2-lane region
        // must still execute on at most 2 distinct threads (caller + one
        // worker), not on every worker the process ever spawned.
        with_num_threads(8, || {
            let _ = run_chunks((0..64).collect::<Vec<usize>>(), |c| c);
        });
        let ids = with_num_threads(2, || {
            run_chunks((0..128).collect::<Vec<usize>>(), |_| {
                std::thread::sleep(std::time::Duration::from_micros(100));
                std::thread::current().id()
            })
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(
            distinct.len() <= 2,
            "2-lane region ran on {} threads",
            distinct.len()
        );
    }

    #[test]
    fn override_nests_and_restores() {
        with_num_threads(3, || {
            assert_eq!(effective_lanes(), 3);
            with_num_threads(1, || assert_eq!(effective_lanes(), 1));
            assert_eq!(effective_lanes(), 3);
        });
    }
}
