//! Minimal property-testing shim exposing the subset of the `proptest` API
//! this workspace uses: the [`proptest!`] macro with `proptest_config`,
//! [`strategy::Strategy`] + `prop_map`, range and tuple strategies,
//! `prop::collection::{vec, btree_map}`, `prop::sample::select`,
//! `any::<bool>()`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be vendored. This shim samples deterministically (the
//! RNG is seeded from the test function's name) and does **not** shrink
//! failing inputs — a failure reports the raw counterexample case number.
//! Swap the real proptest back in by changing one line of `Cargo.toml`.

pub mod strategy {
    use rand::prelude::*;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values (no shrinking, so this is just `map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::prelude::*;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::prelude::*;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// `BTreeMap` with keys/values from the given strategies; up to `size`
    /// entries (key collisions shrink the map, as in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { keys, values, size }
    }

    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len)
                .map(|_| (self.keys.sample_value(rng), self.values.sample_value(rng)))
                .collect()
        }
    }

    /// `BTreeSet` analogue, for completeness.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use rand::prelude::*;

    /// Uniformly pick one of the provided values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-test RNG: FNV-1a over the test's name.
    pub fn rng_for(test_name: &str) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        rand::rngs::StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of real proptest's `prelude::prop` module tree.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert inside a property body. No shrinking: failure panics immediately
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// The `proptest!` block: optional `#![proptest_config(..)]`, then test
/// functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            (<$crate::prelude::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prelude::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0u32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0usize..10, 0usize..10), 0..20),
            m in prop::collection::btree_map(0u32..8, 1i64..50, 0..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(m.len() < 10);
            for (&k, &val) in &m {
                prop_assert!(k < 8);
                prop_assert!((1..50).contains(&val));
            }
            let _ = flag;
        }

        #[test]
        fn prop_map_and_select(
            n in (1usize..6).prop_map(|x| x * 2),
            pick in prop::sample::select(vec![0.0f64, 0.5, 2.0]),
        ) {
            prop_assert!(n % 2 == 0 && (2..=10).contains(&n));
            prop_assert!(pick == 0.0 || pick == 0.5 || pick == 2.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..6);
        let mut r1 = crate::test_runner::rng_for("fixed");
        let mut r2 = crate::test_runner::rng_for("fixed");
        assert_eq!(strat.sample_value(&mut r1), strat.sample_value(&mut r2));
    }
}
