//! Minimal bench harness exposing the subset of the `criterion` API this
//! workspace uses (`Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! `Throughput`, `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be vendored. This shim actually measures: each
//! benchmark is warmed up, then timed over enough iterations to fill the
//! configured measurement window, and the median per-iteration time is
//! printed. No statistics beyond that — it exists so `cargo bench` compiles
//! and produces usable numbers offline; swap the real criterion back in by
//! changing one line of `crates/bench/Cargo.toml`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_id.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation; recorded to compute elements/sec in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handle passed to the closure of `bench_function`.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f` repeatedly: warm-up phase, then timed samples until the
    /// measurement window is spent.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
        }
        // At least one sample even if the warm-up already blew the budget.
        let measure_start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
            if measure_start.elapsed() >= self.measure || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn median_secs(&self) -> f64 {
        let mut v = self.samples.clone();
        v.sort_by(f64::total_cmp);
        if v.is_empty() {
            return f64::NAN;
        }
        let mid = v.len() / 2;
        if v.len() % 2 == 1 {
            v[mid]
        } else {
            (v[mid - 1] + v[mid]) / 2.0
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measure = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.parent.warm_up = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.parent.run_one(&full, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.parent
            .run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness handle.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
    /// Smoke mode: run every benchmark body once, no timed sampling. Like
    /// real criterion, this is the default unless cargo bench's `--bench`
    /// flag is present, so `cargo test --benches` stays fast.
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            measure: Duration::from_millis(800),
            smoke: false,
        }
    }
}

impl Criterion {
    /// Mirror real criterion's mode detection: `cargo bench` passes
    /// `--bench` to `harness = false` targets, `cargo test --benches`
    /// does not — without it, each benchmark body runs exactly once as a
    /// smoke test instead of being measured.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.smoke = !std::env::args().any(|a| a == "--bench");
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().id;
        self.run_one(&name, None, &mut f);
        self
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let (warm_up, measure) = if self.smoke {
            (Duration::ZERO, Duration::ZERO)
        } else {
            (self.warm_up, self.measure)
        };
        let mut b = Bencher {
            warm_up,
            measure,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.smoke {
            println!("bench: {name:<60} smoke-tested (1 iteration)");
            return;
        }
        let med = b.median_secs();
        let extra = match throughput {
            Some(Throughput::Elements(n)) if med > 0.0 => {
                format!("  ({:.2} Melem/s)", n as f64 / med / 1e6)
            }
            Some(Throughput::Bytes(n)) if med > 0.0 => {
                format!("  ({:.2} MiB/s)", n as f64 / med / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "bench: {name:<60} median {:>12}  ({} samples){extra}",
            fmt_time(med),
            b.samples.len()
        );
    }

    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions. Only the simple
/// `criterion_group!(name, target, ...)` form is supported (the only form
/// this workspace uses).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs bench binaries with `--test`;
            // don't burn minutes measuring in that mode.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("kron").id, "kron");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            smoke: false,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
