//! Cross-crate integration tests: the full pipeline from generator (or
//! Matrix Market text) through the GraphBLAS core to algorithms and
//! comparator engines, on each dataset class of Table 3.

use push_pull::algo::bfs::{bfs, bfs_with_opts, BfsOpts};
use push_pull::algo::pagerank::{pagerank, PageRankOpts};
use push_pull::algo::sssp::{dijkstra_oracle, sssp, SsspOpts};
use push_pull::baselines::textbook::bfs_serial;
use push_pull::core::Direction;
use push_pull::gen::suite::{dataset, DATASET_NAMES};
use push_pull::gen::with_uniform_weights;
use push_pull::matrix::mmio;
use push_pull::matrix::{Csr, Graph, GraphStats};

/// Small but structurally faithful suite: shrink 9 keeps every dataset at
/// a few thousand vertices.
const TEST_SHRINK: u32 = 9;

#[test]
fn dobfs_matches_oracle_on_every_dataset_class() {
    for name in DATASET_NAMES {
        let d = dataset(name, TEST_SHRINK, 7).expect("known dataset");
        let sources = [0u32, (d.graph.n_vertices() / 2) as u32];
        for &s in &sources {
            let got = bfs(&d.graph, s);
            let expect = bfs_serial(&d.graph, s);
            assert_eq!(got.depths, expect, "dataset {name}, source {s}");
        }
    }
}

#[test]
fn forced_directions_agree_on_every_dataset_class() {
    for name in ["kron", "rgg", "roadnet", "soc-lj"] {
        let d = dataset(name, TEST_SHRINK, 11).expect("known dataset");
        let auto = bfs(&d.graph, 1).depths;
        for dir in [Direction::Push, Direction::Pull] {
            let forced = bfs_with_opts(&d.graph, 1, &BfsOpts::default().forced(dir), None);
            assert_eq!(forced.depths, auto, "dataset {name}, {dir:?}");
        }
    }
}

#[test]
fn matrix_market_roundtrip_feeds_the_full_stack() {
    // Write a kron stand-in out as Matrix Market, read it back, and check
    // BFS + stats agree with the original — the drop-in-real-datasets path.
    let d = dataset("kron", 10, 3).expect("known dataset");
    let a = d.graph.csr();
    let mut coo = push_pull::matrix::Coo::new(a.n_rows(), a.n_cols());
    for i in 0..a.n_rows() {
        for &j in a.row(i) {
            coo.push(i as u32, j, 1.0f64);
        }
    }
    let mut text = Vec::new();
    mmio::write_coo(&mut text, &coo).expect("writes");

    let back = mmio::read_coo(std::io::Cursor::new(text)).expect("reads");
    let mut bool_coo = push_pull::matrix::Coo::new(back.n_rows(), back.n_cols());
    for &(r, c, _) in back.entries() {
        bool_coo.push(r, c, true);
    }
    let g2 = Graph::from_coo(&bool_coo);

    assert_eq!(g2.n_edges(), d.graph.n_edges());
    assert_eq!(bfs(&g2, 0).depths, bfs_serial(&d.graph, 0));
    let s1 = GraphStats::compute(d.graph.csr());
    let s2 = GraphStats::compute(g2.csr());
    assert_eq!(s1.max_degree, s2.max_degree);
}

#[test]
fn weighted_pipeline_generator_to_sssp() {
    let d = dataset("soc-lj", TEST_SHRINK, 5).expect("known dataset");
    let w = with_uniform_weights(&d.graph, 77);
    let r = sssp(&w, 0, &SsspOpts::default());
    let expect = dijkstra_oracle(&w, 0);
    for (i, (&a, &b)) in r.dist.iter().zip(expect.iter()).enumerate() {
        if b.is_infinite() {
            assert!(a.is_infinite(), "vertex {i}");
        } else {
            assert!((a - b).abs() < 1e-3, "vertex {i}: {a} vs {b}");
        }
    }
}

#[test]
fn pagerank_mass_conserved_on_scale_free_and_mesh() {
    for name in ["kron", "roadnet"] {
        let d = dataset(name, TEST_SHRINK, 13).expect("known dataset");
        let r = pagerank(&d.graph, &PageRankOpts::default());
        let total: f64 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "dataset {name}: mass {total}");
    }
}

#[test]
fn stats_reflect_dataset_classes() {
    let kron = dataset("kron", TEST_SHRINK, 3).unwrap();
    let road = dataset("road_usa", TEST_SHRINK, 3).unwrap();
    let ks = GraphStats::compute(kron.graph.csr());
    let rs = GraphStats::compute(road.graph.csr());
    assert!(ks.max_degree > 50, "kron must have hubs");
    assert!(rs.max_degree <= 12, "roads must not");
    assert!(rs.pseudo_diameter > ks.pseudo_diameter * 5);
}

#[test]
fn smallworld_beta_sweep_keeps_bfs_correct_and_moves_the_crossover() {
    // Watts-Strogatz dials between the paper's mesh and random regimes;
    // the direction heuristic must stay correct across the whole dial and
    // pull usage must not decrease as shortcuts shrink the diameter.
    use push_pull::core::Direction;
    use push_pull::gen::smallworld::watts_strogatz;
    let mut pull_levels_at = Vec::new();
    for &beta in &[0.0, 0.05, 0.5] {
        let g = watts_strogatz(20_000, 4, beta, 11);
        let r = bfs_with_opts(&g, 0, &BfsOpts::default().traced(), None);
        assert_eq!(r.depths, bfs_serial(&g, 0), "beta {beta}");
        let pulls = r
            .trace
            .iter()
            .filter(|t| t.direction == Direction::Pull)
            .count();
        pull_levels_at.push((beta, pulls, r.levels));
    }
    let (_, pulls_lattice, levels_lattice) = pull_levels_at[0];
    let (_, pulls_random, levels_random) = pull_levels_at[2];
    assert_eq!(pulls_lattice, 0, "pure lattice stays push-only");
    assert!(
        pulls_random > 0,
        "heavily rewired graph goes wide enough to pull"
    );
    assert!(
        levels_random * 10 < levels_lattice,
        "shortcuts collapse the level count: {levels_random} vs {levels_lattice}"
    );
}

#[test]
fn csr_from_mtx_pattern_text() {
    // End-to-end: parse a literal .mtx snippet and traverse it.
    let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                5 5 4\n\
                2 1\n\
                3 2\n\
                4 3\n\
                5 4\n";
    let coo = mmio::read_coo(std::io::Cursor::new(text)).expect("parses");
    let mut bool_coo = push_pull::matrix::Coo::new(5, 5);
    for &(r, c, _) in coo.entries() {
        bool_coo.push(r, c, true);
    }
    let g = Graph::from_csr(Csr::from_coo(&bool_coo));
    let r = bfs(&g, 0);
    assert_eq!(r.depths, vec![0, 1, 2, 3, 4]);
}
