//! The fused-pipeline equivalence contract: every algorithm rewritten on
//! `FusedMxv` must produce **bit-identical results and access counters**
//! (modulo `fused_saved_writes`, which only the fused run records) against
//! its unfused separate-operation composition — on arbitrary graphs, under
//! every direction regime, and at 1, 2, and 8 worker lanes.

use proptest::prelude::*;
use push_pull::algo::bfs::{bfs_with_opts, BfsOpts};
use push_pull::algo::bfs_parents::{bfs_parents_with_opts, ParentBfsOpts};
use push_pull::algo::cc::{connected_components_with_opts, CcOpts};
use push_pull::algo::pagerank::{pagerank_with_counters, PageRankOpts};
use push_pull::algo::sssp::{sssp_with_counters, SsspOpts};
use push_pull::core::Direction;
use push_pull::gen::rmat::{rmat, RmatParams};
use push_pull::gen::suite::dataset;
use push_pull::gen::with_uniform_weights;
use push_pull::matrix::{Coo, Graph};
use push_pull::primitives::counters::{AccessCounters, CounterSnapshot};

const LANES: [usize; 3] = [1, 2, 8];

fn arb_undirected(n: usize, max_edges: usize) -> impl Strategy<Value = Graph<bool>> {
    (
        2..n,
        prop::collection::vec((0usize..n, 0usize..n), 0..max_edges),
    )
        .prop_map(move |(dim, edges)| {
            let mut coo = Coo::new(dim, dim);
            for (u, v) in edges {
                if u < dim && v < dim {
                    coo.push(u as u32, v as u32, true);
                }
            }
            coo.clean_undirected();
            Graph::from_coo(&coo)
        })
}

fn arb_directed(n: usize, max_edges: usize) -> impl Strategy<Value = Graph<bool>> {
    (
        2..n,
        prop::collection::vec((0usize..n, 0usize..n), 0..max_edges),
    )
        .prop_map(move |(dim, edges)| {
            let mut coo = Coo::new(dim, dim);
            for (u, v) in edges {
                if u < dim && v < dim && u != v {
                    coo.push(u as u32, v as u32, true);
                }
            }
            coo.dedup(|a, _| a);
            Graph::from_coo(&coo)
        })
}

/// Snapshot projection fused and unfused runs must agree on.
fn accesses(c: &AccessCounters) -> CounterSnapshot {
    c.snapshot().accesses_only()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bfs_fused_equals_unfused(
        g in arb_directed(60, 400),
        source_raw in 0usize..60,
        bits in 0u32..32,
        forced in prop::sample::select(vec![None, Some(Direction::Push), Some(Direction::Pull)]),
    ) {
        let source = (source_raw % g.n_vertices()) as u32;
        let base = BfsOpts {
            change_of_direction: bits & 1 != 0,
            masking: bits & 2 != 0,
            early_exit: bits & 4 != 0,
            operand_reuse: bits & 8 != 0,
            structure_only: bits & 16 != 0,
            force: forced,
            ..BfsOpts::default()
        };
        let cu = AccessCounters::new();
        let unfused = bfs_with_opts(&g, source, &base.fused(false), Some(&cu));
        let cf = AccessCounters::new();
        let fused = bfs_with_opts(&g, source, &base.fused(true), Some(&cf));
        prop_assert_eq!(&fused.depths, &unfused.depths, "depths, bits {:05b}", bits);
        prop_assert_eq!(fused.levels, unfused.levels);
        prop_assert_eq!(accesses(&cf), accesses(&cu), "counters, bits {:05b}", bits);
        prop_assert_eq!(cu.snapshot().fused_saved_writes, 0);
        // An isolated source's single empty push level legitimately saves
        // nothing; any actual discovery must save intermediate writes.
        if fused.reached() > 1 {
            prop_assert!(cf.snapshot().fused_saved_writes > 0);
        }
    }

    #[test]
    fn parent_bfs_fused_equals_unfused(
        g in arb_undirected(60, 300),
        source_raw in 0usize..60,
        threshold in prop::sample::select(vec![0.0, 0.01, 0.2, 2.0]),
    ) {
        let source = (source_raw % g.n_vertices()) as u32;
        let cu = AccessCounters::new();
        let unfused_opts = ParentBfsOpts { switch_threshold: threshold, fused: false, first_hit_exit: false, ..ParentBfsOpts::default() };
        let unfused = bfs_parents_with_opts(&g, source, &unfused_opts, Some(&cu));
        // Semantics-preserving fusion: identical counters.
        let cf = AccessCounters::new();
        let fused_opts = ParentBfsOpts { fused: true, first_hit_exit: false, ..unfused_opts };
        let fused = bfs_parents_with_opts(&g, source, &fused_opts, Some(&cf));
        prop_assert_eq!(&fused.parent, &unfused.parent);
        prop_assert_eq!(fused.levels, unfused.levels);
        prop_assert_eq!(accesses(&cf), accesses(&cu));
        // First-hit early exit: identical tree, never more matrix traffic.
        let ch = AccessCounters::new();
        let hit_opts = ParentBfsOpts { first_hit_exit: true, ..fused_opts };
        let hit = bfs_parents_with_opts(&g, source, &hit_opts, Some(&ch));
        prop_assert_eq!(&hit.parent, &unfused.parent, "first-hit changed the tree");
        prop_assert!(ch.snapshot().matrix <= cf.snapshot().matrix);
    }

    #[test]
    fn cc_fused_equals_unfused(
        g in arb_undirected(80, 300),
        threshold in prop::sample::select(vec![0.0, 0.01, 0.5]),
    ) {
        let cu = AccessCounters::new();
        let unfused = connected_components_with_opts(
            &g, &CcOpts { switch_threshold: threshold, fused: false, ..CcOpts::default() }, Some(&cu));
        let cf = AccessCounters::new();
        let fused = connected_components_with_opts(
            &g, &CcOpts { switch_threshold: threshold, fused: true, ..CcOpts::default() }, Some(&cf));
        prop_assert_eq!(&fused.labels, &unfused.labels);
        prop_assert_eq!(fused.rounds, unfused.rounds);
        prop_assert_eq!(accesses(&cf), accesses(&cu));
    }

    #[test]
    fn sssp_fused_equals_unfused(
        g in arb_undirected(60, 300),
        source_raw in 0usize..60,
        seed in 0u64..32,
    ) {
        let gw = with_uniform_weights(&g, seed);
        let source = (source_raw % gw.n_vertices()) as u32;
        let cu = AccessCounters::new();
        let unfused = sssp_with_counters(
            &gw, source, &SsspOpts { fused: false, ..SsspOpts::default() }, Some(&cu));
        let cf = AccessCounters::new();
        let fused = sssp_with_counters(&gw, source, &SsspOpts::default(), Some(&cf));
        // f32 distances must match bit-for-bit, not approximately.
        prop_assert_eq!(
            unfused.dist.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            fused.dist.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(fused.rounds, unfused.rounds);
        prop_assert_eq!(fused.pull_rounds, unfused.pull_rounds);
        prop_assert_eq!(accesses(&cf), accesses(&cu));
    }

    #[test]
    fn pagerank_fused_equals_unfused(
        g in arb_directed(60, 400),
        adaptive in prop::sample::select(vec![false, true]),
    ) {
        let cu = AccessCounters::new();
        let unfused = pagerank_with_counters(
            &g, &PageRankOpts { fused: false, ..PageRankOpts::default() }, adaptive, Some(&cu));
        let cf = AccessCounters::new();
        let fused = pagerank_with_counters(&g, &PageRankOpts::default(), adaptive, Some(&cf));
        // f64 ranks must match bit-for-bit: same reduction order, same
        // apply arithmetic, same L1 accumulation grouping.
        prop_assert_eq!(
            unfused.ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            fused.ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(fused.iters, unfused.iters);
        prop_assert_eq!(fused.row_updates, unfused.row_updates);
        prop_assert_eq!(accesses(&cf), accesses(&cu));
    }
}

/// The acceptance pin: fused BFS and parent BFS against their unfused
/// compositions at 1, 2, and 8 lanes — values and counters — on a
/// scale-free graph large enough to cross the push→pull switch.
#[test]
fn bfs_and_parents_fused_identical_at_1_2_8_lanes() {
    let g = rmat(12, 16, RmatParams::default(), 11);
    let unfused_bfs = rayon::with_num_threads(1, || {
        let c = AccessCounters::new();
        let r = bfs_with_opts(&g, 0, &BfsOpts::default().fused(false), Some(&c));
        (r.depths, accesses(&c))
    });
    let unfused_parents = rayon::with_num_threads(1, || {
        let c = AccessCounters::new();
        let opts = ParentBfsOpts {
            fused: false,
            first_hit_exit: false,
            ..ParentBfsOpts::default()
        };
        let r = bfs_parents_with_opts(&g, 0, &opts, Some(&c));
        (r.parent, accesses(&c))
    });
    for lanes in LANES {
        let fused_bfs = rayon::with_num_threads(lanes, || {
            let c = AccessCounters::new();
            let r = bfs_with_opts(&g, 0, &BfsOpts::default(), Some(&c));
            (r.depths, accesses(&c), c.snapshot().fused_saved_writes)
        });
        assert_eq!(fused_bfs.0, unfused_bfs.0, "BFS depths at {lanes} lanes");
        assert_eq!(fused_bfs.1, unfused_bfs.1, "BFS counters at {lanes} lanes");
        assert!(fused_bfs.2 > 0, "BFS saved writes at {lanes} lanes");

        let fused_parents = rayon::with_num_threads(lanes, || {
            let c = AccessCounters::new();
            let opts = ParentBfsOpts {
                first_hit_exit: false,
                ..ParentBfsOpts::default()
            };
            let r = bfs_parents_with_opts(&g, 0, &opts, Some(&c));
            (r.parent, accesses(&c), c.snapshot().fused_saved_writes)
        });
        assert_eq!(
            fused_parents.0, unfused_parents.0,
            "parents at {lanes} lanes"
        );
        assert_eq!(
            fused_parents.1, unfused_parents.1,
            "parent counters at {lanes} lanes"
        );
        assert!(fused_parents.2 > 0, "parent saved writes at {lanes} lanes");

        // The production configuration (first-hit exit on) still yields
        // the identical tree at every lane count, with no more traffic.
        let hit = rayon::with_num_threads(lanes, || {
            let c = AccessCounters::new();
            let r = bfs_parents_with_opts(&g, 0, &ParentBfsOpts::default(), Some(&c));
            (r.parent, c.snapshot().matrix)
        });
        assert_eq!(hit.0, unfused_parents.0, "first-hit tree at {lanes} lanes");
        assert!(hit.1 <= unfused_parents.1.matrix);
    }
}

/// Fused runs on the paper's Table 1 experiment graphs (generated Table 3
/// stand-ins) must actually save intermediate writes.
#[test]
fn fused_saves_writes_on_table1_graphs() {
    for name in ["kron", "roadnet"] {
        let d = dataset(name, 10, 7).expect("known dataset");
        let c = AccessCounters::new();
        let r = bfs_with_opts(&d.graph, 0, &BfsOpts::default(), Some(&c));
        assert!(r.reached() > 1, "{name}: traversal must reach something");
        let saved = c.snapshot().fused_saved_writes;
        assert!(saved > 0, "{name}: fused_saved_writes = {saved}");
    }
}

/// Fused and unfused runs agree on the sssp/cc/pagerank trio at every lane
/// count too (single spot-graph; the proptests cover shape diversity).
#[test]
fn relaxation_algorithms_fused_identical_at_1_2_8_lanes() {
    let g = rmat(10, 16, RmatParams::default(), 3);
    let gw = with_uniform_weights(&g, 5);
    let reference = rayon::with_num_threads(1, || {
        let cc = connected_components_with_opts(
            &g,
            &CcOpts {
                fused: false,
                ..CcOpts::default()
            },
            None,
        );
        let ss = sssp_with_counters(
            &gw,
            0,
            &SsspOpts {
                fused: false,
                ..SsspOpts::default()
            },
            None,
        );
        let pr = pagerank_with_counters(
            &g,
            &PageRankOpts {
                fused: false,
                ..PageRankOpts::default()
            },
            true,
            None,
        );
        (
            cc.labels,
            ss.dist.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            pr.ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
        )
    });
    for lanes in LANES {
        let got = rayon::with_num_threads(lanes, || {
            let cc = connected_components_with_opts(&g, &CcOpts::default(), None);
            let ss = sssp_with_counters(&gw, 0, &SsspOpts::default(), None);
            let pr = pagerank_with_counters(&g, &PageRankOpts::default(), true, None);
            (
                cc.labels,
                ss.dist.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                pr.ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            )
        });
        assert_eq!(got, reference, "diverged at {lanes} lanes");
    }
}
