//! Smoke test for the `push_pull` facade: the names promised by the README
//! and the crate docs must be reachable through `push_pull::prelude::*`
//! and do something sensible end-to-end.

use push_pull::gen::with_uniform_weights;
use push_pull::prelude::*;

/// Every name the prelude promises, exercised in one small end-to-end run.
#[test]
fn prelude_exposes_the_advertised_surface() {
    // A small scale-free graph through the `gen` re-export.
    let g: Graph<bool> = push_pull::gen::rmat::rmat(8, 8, Default::default(), 7);
    let n = g.n_vertices();
    assert!(n > 0);

    // bfs / BfsOpts / BfsResult.
    let r: BfsResult = bfs(&g, 0);
    assert!(r.reached() >= 1);
    let r2 = bfs_with_opts(&g, 0, &BfsOpts::default(), None);
    assert_eq!(r.reached(), r2.reached());

    // pagerank (+ adaptive variant).
    let pr = pagerank(&g, &PageRankOpts::default());
    assert_eq!(pr.ranks.len(), n);
    let total: f64 = pr.ranks.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "ranks sum to 1, got {total}");
    let apr = adaptive_pagerank(&g, &PageRankOpts::default());
    assert_eq!(apr.ranks.len(), n);

    // sssp over uniform weights.
    let gw = with_uniform_weights(&g, 23);
    let sp = sssp(&gw, 0, &SsspOpts::default());
    assert_eq!(sp.dist.len(), n);
    assert_eq!(sp.dist[0], 0.0);

    // mxv + Descriptor + Direction + Mask + Vector: one BFS step by hand.
    let f: Vector<bool> = Vector::singleton(n, false, 0, true);
    let desc = Descriptor::new().transpose(true);
    let next: Vector<bool> = mxv(None, BoolOrAnd, &g, &f, &desc, None).expect("dims fit");
    assert_eq!(next.dim(), n);

    // The dispatcher agrees with the storage rule it documents.
    assert_eq!(resolve_direction(&f, &desc), Direction::Push);

    // The switching policy is reachable from the prelude too.
    let mut policy = DirectionPolicy::hysteresis(0.01);
    assert_eq!(policy.update(1, n), Direction::Push);
}

/// Coo/Csr/GraphStats/VertexId round-trip through the prelude.
#[test]
fn prelude_matrix_types_compose() {
    let mut coo = Coo::new(4, 4);
    let edges: [(VertexId, VertexId); 3] = [(0, 1), (1, 2), (2, 3)];
    for (u, v) in edges {
        coo.push(u, v, true);
    }
    coo.clean_undirected();
    let g = Graph::from_coo(&coo);
    let csr: &Csr<bool> = g.csr();
    assert_eq!(csr.n_rows(), 4);

    let stats = GraphStats::compute(g.csr());
    assert_eq!(stats.vertices, 4);
    assert_eq!(stats.pseudo_diameter, 3, "path graph end-to-end distance");

    let r = bfs(&g, 0);
    assert_eq!(r.depths, vec![0, 1, 2, 3]);
}

/// The quickstart from the crate-level docs, as a real test (the doctest
/// also runs it; this keeps it covered even under `--tests`-only CI).
#[test]
fn quickstart_from_lib_docs() {
    let g = push_pull::gen::rmat::rmat(10, 8, Default::default(), 42);
    let result = bfs(&g, 0);
    for (name, opts) in BfsOpts::ladder() {
        let r = bfs_with_opts(&g, 0, &opts, None);
        assert_eq!(r.reached(), result.reached(), "{name} changed the answer");
    }
}
