//! Property-based tests for the parallel-primitives substrate: every
//! primitive is checked against its obvious sequential specification on
//! arbitrary inputs.

use proptest::prelude::*;
use push_pull::primitives::{gather, merge, scan, segreduce, sort, BitVec, Spa};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exclusive_scan_matches_spec(data in prop::collection::vec(0usize..1000, 0..500)) {
        let mut got = data.clone();
        let total = scan::exclusive_scan_in_place(&mut got);
        let mut acc = 0usize;
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn scan_offsets_are_csr_shaped(lengths in prop::collection::vec(0usize..50, 0..200)) {
        let offsets = scan::exclusive_scan_offsets(&lengths);
        prop_assert_eq!(offsets.len(), lengths.len() + 1);
        prop_assert_eq!(offsets[0], 0);
        for (i, &l) in lengths.iter().enumerate() {
            prop_assert_eq!(offsets[i + 1] - offsets[i], l);
        }
    }

    #[test]
    fn radix_sort_keys_matches_std(mut keys in prop::collection::vec(0u32..1_000_000, 0..3000)) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        sort::sort_keys(&mut keys, 1_000_000);
        prop_assert_eq!(keys, expect);
    }

    #[test]
    fn radix_sort_pairs_is_stable(pairs in prop::collection::vec((0u32..64, 0u64..1000), 0..2000)) {
        let (mut keys, mut vals): (Vec<u32>, Vec<u64>) = pairs.iter().copied().unzip();
        let mut expect: Vec<(u32, u64)> = pairs.clone();
        expect.sort_by_key(|&(k, _)| k); // std stable sort
        sort::sort_pairs(&mut keys, &mut vals, 64);
        let got: Vec<(u32, u64)> = keys.into_iter().zip(vals).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn segreduce_sums_equal_total(mut pairs in prop::collection::vec((0u32..100, 1u64..50), 0..1000)) {
        pairs.sort_by_key(|&(k, _)| k);
        let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        let vals: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
        let (rk, rv) = segreduce::segmented_reduce_by_key(&keys, &vals, |a, b| a + b);
        // Keys unique and sorted, totals preserved.
        prop_assert!(rk.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(rv.iter().sum::<u64>(), vals.iter().sum::<u64>());
        prop_assert_eq!(rk.len(), {
            let mut uniq = keys.clone();
            uniq.dedup();
            uniq.len()
        });
    }

    #[test]
    fn multiway_merge_equals_concat_sort_reduce(
        lists in prop::collection::vec(
            prop::collection::btree_map(0u32..200, 1u64..10, 0..40),
            0..8,
        )
    ) {
        let materialized: Vec<Vec<(u32, u64)>> = lists
            .iter()
            .map(|m| m.iter().map(|(&k, &v)| (k, v)).collect())
            .collect();
        let refs: Vec<&[(u32, u64)]> = materialized.iter().map(Vec::as_slice).collect();
        let got = merge::multiway_merge_reduce(&refs, |a, b| a + b);

        let mut flat: Vec<(u32, u64)> = materialized.iter().flatten().copied().collect();
        flat.sort_by_key(|&(k, _)| k);
        let mut expect: Vec<(u32, u64)> = Vec::new();
        for (k, v) in flat {
            match expect.last_mut() {
                Some(last) if last.0 == k => last.1 += v,
                _ => expect.push((k, v)),
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn gather_segments_reassembles(segments in prop::collection::vec(prop::collection::vec(0u32..1000, 0..30), 0..40)) {
        // Lay segments out in a shuffled flat buffer, then gather back.
        let lengths: Vec<usize> = segments.iter().map(Vec::len).collect();
        let offsets = scan::exclusive_scan_offsets(&lengths);
        let mut src = Vec::new();
        let mut starts = Vec::new();
        for seg in &segments {
            starts.push(src.len());
            src.extend_from_slice(seg);
        }
        let out = gather::gather_segments(&src, &starts, &offsets, 8);
        let expect: Vec<u32> = segments.into_iter().flatten().collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn bitvec_set_matches_btreeset(ops in prop::collection::vec(0usize..500, 0..300)) {
        let mut bv = BitVec::new(500);
        let mut reference = std::collections::BTreeSet::new();
        for &i in &ops {
            let newly = bv.set(i);
            prop_assert_eq!(newly, reference.insert(i));
        }
        prop_assert_eq!(bv.count_ones(), reference.len());
        let ones: Vec<usize> = bv.iter_ones().collect();
        let expect: Vec<usize> = reference.into_iter().collect();
        prop_assert_eq!(ones, expect);
    }

    #[test]
    fn spa_accumulate_matches_btreemap(ops in prop::collection::vec((0u32..200, 1i64..100), 0..400)) {
        let mut spa = Spa::new(200, 0i64);
        let mut reference: std::collections::BTreeMap<u32, i64> = Default::default();
        for &(i, v) in &ops {
            spa.accumulate(i, v, |a, b| a + b);
            *reference.entry(i).or_insert(0) += v;
        }
        let (ids, vals) = spa.drain_sorted();
        let got: Vec<(u32, i64)> = ids.into_iter().zip(vals).collect();
        let expect: Vec<(u32, i64)> = reference.into_iter().collect();
        prop_assert_eq!(got, expect);
    }
}
