//! Service coalescing contract: a request that executed inside a
//! coalesced batch must be indistinguishable from the same request
//! dispatched alone — identical values AND identical per-request counter
//! snapshot — for arbitrary query mixes over random graphs, at 1, 2, and
//! 8 lanes. The batch is an execution detail, never an observable.

use proptest::prelude::*;
use push_pull::core::descriptor::ShardPolicy;
use push_pull::core::ShardGrid;
use push_pull::gen::erdos::erdos_renyi;
use push_pull::gen::powerlaw::{chung_lu, PowerLawParams};
use push_pull::gen::with_uniform_weights;
use push_pull::service::{execute_batch, ExecOpts, Query, Request, ServiceGraphs};

const LANES: [usize; 3] = [1, 2, 8];
const N: usize = 512;

fn service_graphs(family: u8, seed: u64) -> ServiceGraphs {
    let g = match family {
        0 => erdos_renyi(N, N * 4, seed),
        _ => chung_lu(N, 6, PowerLawParams::default(), seed),
    };
    let w = with_uniform_weights(&g, seed ^ 0x77);
    ServiceGraphs::new(g, w)
}

fn query_strategy() -> impl Strategy<Value = Query> {
    // Weighted kind roll (BFS-heavy like the load generator's default
    // mix), folded into one tuple strategy — the vendored proptest shim
    // has no `prop_oneof`.
    let nv = N as u32;
    (0u32..12, 0..nv, 0..nv).prop_map(|(roll, a, b)| match roll {
        0..=3 => Query::Bfs { source: a },
        4..=6 => Query::Parents { source: a },
        7..=9 => Query::Sssp { source: a },
        10 => Query::PageRank,
        _ => Query::Bc {
            sources: vec![a, b],
        },
    })
}

/// Coalesced batch vs per-request solo dispatch on the same graphs:
/// values and counter snapshots must agree request by request.
fn assert_batch_matches_solo(gs: &ServiceGraphs, opts: &ExecOpts, batch: &[Request]) {
    let coalesced = execute_batch(gs, opts, batch, None);
    for (i, req) in batch.iter().enumerate() {
        let solo = execute_batch(gs, opts, &[Request::new(req.id, req.query.clone())], None)
            .pop()
            .expect("one request, one response");
        assert_eq!(
            coalesced[i].result,
            solo.result,
            "request {i} ({:?}) diverged in a group of {}",
            req.query.kind(),
            coalesced[i].group_size
        );
        assert_eq!(
            coalesced[i].counters,
            solo.counters,
            "request {i} ({:?}) counter attribution diverged in a group of {}",
            req.query.kind(),
            coalesced[i].group_size
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary mixes, arbitrary graph families, every lane count: the
    /// coalesced response is bit-identical to the solo response.
    #[test]
    fn coalesced_requests_are_bit_identical_to_solo_runs(
        family in 0u8..2,
        seed in 0u64..1_000,
        queries in proptest::collection::vec(query_strategy(), 2..9),
        lane_idx in 0usize..3,
    ) {
        let gs = service_graphs(family, seed);
        let opts = ExecOpts::default();
        let batch: Vec<Request> = queries
            .into_iter()
            .enumerate()
            .map(|(i, q)| Request::new(i as u64, q))
            .collect();
        rayon::with_num_threads(LANES[lane_idx], || {
            assert_batch_matches_solo(&gs, &opts, &batch);
        });
    }
}

/// A fixed heavily-coalescing batch (three of each coalescible kind plus
/// both solo kinds), swept across all lane counts in one test: solo
/// equivalence holds at each lane, and the whole response set — values,
/// counters, scheduling metadata — is identical across lanes.
#[test]
fn fixed_mixed_batch_equivalent_and_lane_invariant() {
    let gs = service_graphs(1, 42);
    let opts = ExecOpts::default();
    let queries = vec![
        Query::Bfs { source: 0 },
        Query::Bfs { source: 101 },
        Query::Bfs { source: 333 },
        Query::Parents { source: 7 },
        Query::Parents { source: 200 },
        Query::Parents { source: 451 },
        Query::Sssp { source: 3 },
        Query::Sssp { source: 77 },
        Query::Sssp { source: 509 },
        Query::PageRank,
        Query::Bc {
            sources: vec![5, 80],
        },
    ];
    let batch: Vec<Request> = queries
        .into_iter()
        .enumerate()
        .map(|(i, q)| Request::new(i as u64, q))
        .collect();

    let mut per_lane = Vec::new();
    for lanes in LANES {
        let responses = rayon::with_num_threads(lanes, || {
            assert_batch_matches_solo(&gs, &opts, &batch);
            execute_batch(&gs, &opts, &batch, None)
        });
        for r in &responses {
            let expect = match batch[r.id as usize].query.kind() {
                k if k.coalescible() => 3,
                _ => 1,
            };
            assert_eq!(r.group_size, expect, "request {} group size", r.id);
            assert_eq!(r.batch_size, batch.len());
            assert!(!r.retried_solo);
        }
        per_lane.push(
            responses
                .into_iter()
                .map(|r| (r.id, r.result, r.counters, r.group_size))
                .collect::<Vec<_>>(),
        );
    }
    for (lanes, got) in LANES.iter().zip(&per_lane) {
        assert_eq!(got, &per_lane[0], "diverged at {lanes} lanes");
    }
}

/// Sharded execution is an execution detail the service never leaks: a
/// coalesced batch running under a shard policy must return values and
/// per-request bills bit-identical to solo *unsharded* dispatch. `Auto`
/// is the production knob (it engages only above the working-set budget);
/// the `Fixed` grid forces stripes on regardless of size, so the contract
/// is exercised with sharding genuinely live.
#[test]
fn sharded_coalesced_batch_matches_unsharded_solo() {
    let gs = service_graphs(0, 7);
    let plain = ExecOpts::default();
    let queries = vec![
        Query::Bfs { source: 1 },
        Query::Bfs { source: 250 },
        Query::Parents { source: 9 },
        Query::Parents { source: 400 },
        Query::Sssp { source: 12 },
        Query::Sssp { source: 300 },
    ];
    let batch: Vec<Request> = queries
        .into_iter()
        .enumerate()
        .map(|(i, q)| Request::new(i as u64, q))
        .collect();

    for policy in [ShardPolicy::Auto, ShardPolicy::Fixed(ShardGrid::new(2, 4))] {
        let mut sharded = ExecOpts::default();
        sharded.bfs.shards = policy;
        sharded.parents.shards = policy;
        sharded.sssp.shards = policy;
        for lanes in LANES {
            rayon::with_num_threads(lanes, || {
                let coalesced = execute_batch(&gs, &sharded, &batch, None);
                for (i, req) in batch.iter().enumerate() {
                    let solo = execute_batch(
                        &gs,
                        &plain,
                        &[Request::new(req.id, req.query.clone())],
                        None,
                    )
                    .pop()
                    .expect("one request, one response");
                    assert_eq!(
                        coalesced[i].result, solo.result,
                        "sharded batch ({policy:?}, {lanes} lanes) diverged on request {i}"
                    );
                    // Shard telemetry (merge topology) is the one thing
                    // sharding is allowed to change; every billed access
                    // must match the unsharded bill exactly.
                    let mut got = coalesced[i].counters;
                    got.shard_merges = 0;
                    got.cross_shard_writes = 0;
                    let mut want = solo.counters;
                    want.shard_merges = 0;
                    want.cross_shard_writes = 0;
                    assert_eq!(
                        got, want,
                        "sharded batch ({policy:?}, {lanes} lanes) billed request {i} differently"
                    );
                }
            });
        }
    }
}
