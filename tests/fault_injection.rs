//! Hardened-execution contract, injected-fault half (compiled only with
//! the `fault-injection` cargo feature): for **every** deterministic
//! injected fault — Nth-allocation failure, Kth-chunk worker panic,
//! cost-model inflation — the guarded entry points must surface a typed
//! [`GrbError`] (never a process abort), roll shared counters back to
//! their entry snapshot, and leave the pool, the format cache, and the
//! counters so unpoisoned that an immediate retry is **bit-identical** —
//! values and counter snapshot — to an uninterrupted clean run, at 1, 2,
//! and 8 lanes.
//!
//! Fault triggers are process-global atomics, so every test serializes on
//! [`FAULT_LOCK`]; panic-hook silencing for the injected chunk panics
//! lives inside the same critical section.

#![cfg(feature = "fault-injection")]

use proptest::prelude::*;
use push_pull::algo::bfs::{try_bfs_with_opts, BfsOpts};
use push_pull::core::descriptor::Direction;
use push_pull::core::{BudgetResource, FormatPolicy, GrbError, StorageFormat};
use push_pull::gen::rmat::{rmat, RmatParams};
use push_pull::matrix::Graph;
use push_pull::primitives::counters::{AccessCounters, CounterSnapshot};
use push_pull::primitives::fault::{self, FaultPlan};
use std::sync::{Mutex, PoisonError};

const LANES: [usize; 3] = [1, 2, 8];

/// Serializes every test in this binary: the fault triggers are
/// process-global, so two concurrently running tests would steal each
/// other's armed faults.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn test_graph() -> Graph<bool> {
    rmat(10, 16, RmatParams::default(), 23)
}

/// Clean reference run: depths plus counter snapshot.
fn clean_run(g: &Graph<bool>, opts: &BfsOpts) -> (Vec<i32>, CounterSnapshot) {
    fault::clear();
    let c = AccessCounters::new();
    let r = try_bfs_with_opts(g, 0, opts, Some(&c)).expect("clean run cannot abort");
    (r.depths, c.snapshot())
}

/// Faulted run under an armed `plan`, then a disarmed retry. Asserts the
/// three contract clauses and returns the faulted outcome for the
/// caller's fault-specific expectation.
fn faulted_then_retry(
    g: &Graph<bool>,
    opts: &BfsOpts,
    plan: &FaultPlan,
    silence_panics: bool,
) -> Result<Vec<i32>, GrbError> {
    let (clean_depths, clean_snap) = clean_run(g, opts);

    let c = AccessCounters::new();
    c.add_matrix(77); // pre-existing tallies must survive a rollback
    let baseline = c.snapshot();
    fault::install(plan);
    let prev_hook = silence_panics.then(std::panic::take_hook);
    if silence_panics {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let faulted = try_bfs_with_opts(g, 0, opts, Some(&c));
    if let Some(hook) = prev_hook {
        std::panic::set_hook(hook);
    }
    fault::clear();

    match &faulted {
        // Clause 1+2: a surfaced fault is typed (the signature already
        // guarantees that) and rolled the counters back.
        Err(_) => assert_eq!(c.snapshot(), baseline, "aborted run left residue"),
        // A fault that never fired (plan point beyond the run) must be
        // fully transparent.
        Ok(r) => {
            assert_eq!(r.depths, clean_depths, "unfired fault changed values");
        }
    }

    // Clause 3: the disarmed retry is bit-identical to the clean run.
    let retry_c = AccessCounters::new();
    let retry = try_bfs_with_opts(g, 0, opts, Some(&retry_c)).expect("retry cannot abort");
    assert_eq!(retry.depths, clean_depths, "retry values diverged");
    assert_eq!(retry_c.snapshot(), clean_snap, "retry counters diverged");

    faulted.map(|r| r.depths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Failing the Nth charged allocation either surfaces as the typed
    /// bytes-budget error (with rollback) or — when the run charges fewer
    /// than N allocations — never fires; the retry is bit-identical
    /// either way, at every lane count.
    #[test]
    fn nth_allocation_failure_is_typed_and_recoverable(
        nth in 1u64..48,
        lane_idx in 0usize..3,
    ) {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let g = test_graph();
        // Unfused: the separate-operation kernels charge their output
        // buffers, giving the countdown real allocation sites to hit.
        let opts = BfsOpts { fused: false, ..BfsOpts::default() };
        let plan = FaultPlan { fail_alloc_nth: Some(nth), ..FaultPlan::default() };
        rayon::with_num_threads(LANES[lane_idx], || {
            match faulted_then_retry(&g, &opts, &plan, false) {
                Err(GrbError::BudgetExceeded { resource: BudgetResource::Bytes }) | Ok(_) => {}
                Err(other) => panic!("wrong error type: {other}"),
            }
        });
    }

    /// A worker chunk that panics mid-pool is caught at the chunk
    /// boundary and surfaced as `WorkerPanicked` with its chunk index;
    /// the pool and counters stay usable and the retry is bit-identical.
    #[test]
    fn kth_chunk_panic_is_isolated_and_recoverable(
        kth in 1u64..6,
        lane_idx in 0usize..3,
    ) {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        // Scale 12 ⇒ every pull level chunks ≥ 8 rows-grain chunks, so any
        // armed K below 6 is guaranteed to land inside the first level.
        let g = rmat(12, 16, RmatParams::default(), 23);
        // Force pull over the CSR row kernel, which always chunks through
        // the pool (a thin push frontier can stay under the column
        // kernel's grain, and the small graph's feasible bitmap store
        // would route levels into the bit-parallel kernels instead).
        let opts = BfsOpts {
            force: Some(Direction::Pull),
            format: FormatPolicy::fixed(StorageFormat::Csr),
            ..BfsOpts::default()
        };
        let plan = FaultPlan { panic_chunk_nth: Some(kth), ..FaultPlan::default() };
        rayon::with_num_threads(LANES[lane_idx], || {
            match faulted_then_retry(&g, &opts, &plan, true) {
                Err(GrbError::WorkerPanicked { message, .. }) => {
                    assert!(
                        message.contains("injected fault"),
                        "panic payload preserved: {message}"
                    );
                }
                Ok(_) => panic!("armed chunk panic never fired"),
                Err(other) => panic!("wrong error type: {other}"),
            }
        });
    }

    /// Inflating the measured cost model must never change results: the
    /// planner may pick worse directions, but the run completes with
    /// values identical to the clean run at every lane count.
    #[test]
    fn cost_model_inflation_is_value_neutral(
        factor in 2.0f64..256.0,
        lane_idx in 0usize..3,
    ) {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let g = test_graph();
        let opts = BfsOpts { cost_model: true, ..BfsOpts::default() };
        let plan = FaultPlan { cost_inflation: Some(factor), ..FaultPlan::default() };
        rayon::with_num_threads(LANES[lane_idx], || {
            match faulted_then_retry(&g, &opts, &plan, false) {
                Ok(_) => {} // value equality asserted inside the helper
                Err(e) => panic!("skewed planner must still complete: {e}"),
            }
        });
    }
}

/// An armed allocation fault inside a coalesced service batch fells
/// exactly one request with the typed bytes error; every sibling's
/// values and per-request counters are bit-identical to a disarmed solo
/// run, and the disarmed re-dispatch of the full batch is clean.
#[test]
fn alloc_fault_in_coalesced_batch_fells_exactly_one_request() {
    use push_pull::core::ExecLimits;
    use push_pull::service::{execute_batch, ExecOpts, Query, Request, ServiceGraphs};
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let g = test_graph();
    let gs = ServiceGraphs::new(g.clone(), push_pull::gen::with_uniform_weights(&g, 7));
    // Unfused parent BFS charges its per-level output buffers, giving the
    // allocation countdown real sites inside the coalesced traversal.
    let opts = ExecOpts {
        parents: push_pull::algo::bfs_parents::ParentBfsOpts {
            fused: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let sources = [0u32, 17, 513];
    let batch: Vec<Request> = sources
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            // Real (roomy) budgets on every request: the fault must
            // surface through the limits machinery, not around it.
            Request::new(i as u64, Query::Parents { source: s })
                .with_limits(ExecLimits::none().with_bytes_budget(u64::MAX / 2))
        })
        .collect();
    for lanes in LANES {
        rayon::with_num_threads(lanes, || {
            fault::clear();
            let plan = FaultPlan {
                fail_alloc_nth: Some(2),
                ..FaultPlan::default()
            };
            fault::install(&plan);
            let rs = execute_batch(&gs, &opts, &batch, None);
            fault::clear();

            let felled: Vec<usize> = (0..rs.len()).filter(|&i| rs[i].result.is_err()).collect();
            assert_eq!(felled.len(), 1, "exactly one victim at {lanes} lanes");
            let v = felled[0];
            assert_eq!(
                rs[v].result,
                Err(GrbError::BudgetExceeded {
                    resource: BudgetResource::Bytes
                }),
                "typed bytes abort at {lanes} lanes"
            );
            assert_eq!(
                rs[v].counters,
                CounterSnapshot::default(),
                "victim's counters restored at {lanes} lanes"
            );

            let solo_disarmed = |s: u32| {
                execute_batch(
                    &gs,
                    &opts,
                    &[Request::new(9, Query::Parents { source: s })],
                    None,
                )
                .pop()
                .expect("one request, one response")
            };
            for (i, &s) in sources.iter().enumerate() {
                if i == v {
                    continue;
                }
                let alone = solo_disarmed(s);
                assert_eq!(rs[i].result, alone.result, "sibling {i} at {lanes} lanes");
                assert_eq!(
                    rs[i].counters, alone.counters,
                    "sibling {i} counters at {lanes} lanes"
                );
            }

            // Disarmed re-dispatch of the identical batch: all clean.
            let retry = execute_batch(&gs, &opts, &batch, None);
            for (i, r) in retry.iter().enumerate() {
                assert!(r.result.is_ok(), "retry request {i} at {lanes} lanes");
            }
        });
    }
}

/// An injected worker-chunk panic inside a coalesced group triggers the
/// executor's de-coalescing path: every passenger is re-run solo (the
/// one-shot fault is spent), flagged `retried_solo`, and returns values
/// identical to a disarmed solo dispatch.
#[test]
fn chunk_panic_decoalesces_group_and_solo_retries_succeed() {
    use push_pull::algo::msbfs::MsBfsOpts;
    use push_pull::service::{execute_batch, ExecOpts, Query, Request, ServiceGraphs};
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    // Scale 12 with forced pull over CSR: every level chunks through the
    // pool, so a low armed K lands inside the coalesced traversal.
    let g = rmat(12, 16, RmatParams::default(), 23);
    let gs = ServiceGraphs::new(g.clone(), push_pull::gen::with_uniform_weights(&g, 7));
    let opts = ExecOpts {
        bfs: MsBfsOpts {
            force: Some(Direction::Pull),
            format: FormatPolicy::fixed(StorageFormat::Csr),
            ..Default::default()
        },
        ..Default::default()
    };
    let sources = [0u32, 17, 1234];
    let batch: Vec<Request> = sources
        .iter()
        .enumerate()
        .map(|(i, &s)| Request::new(i as u64, Query::Bfs { source: s }))
        .collect();
    for lanes in LANES {
        rayon::with_num_threads(lanes, || {
            fault::clear();
            let disarmed: Vec<_> = execute_batch(&gs, &opts, &batch, None)
                .into_iter()
                .map(|r| (r.result, r.counters))
                .collect();

            let plan = FaultPlan {
                panic_chunk_nth: Some(2),
                ..FaultPlan::default()
            };
            fault::install(&plan);
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let rs = execute_batch(&gs, &opts, &batch, None);
            std::panic::set_hook(prev);
            fault::clear();

            assert!(
                rs.iter().any(|r| r.retried_solo),
                "the group must have de-coalesced at {lanes} lanes"
            );
            for (i, r) in rs.iter().enumerate() {
                assert_eq!(
                    r.result, disarmed[i].0,
                    "request {i} values after retry at {lanes} lanes"
                );
                assert_eq!(
                    r.counters, disarmed[i].1,
                    "request {i} counters after retry at {lanes} lanes"
                );
            }
        });
    }
}

/// Arming the same plan twice injects the same fault at the same logical
/// point: at one lane the surfaced chunk index is identical run-to-run,
/// which is what makes a failing chaos scenario replayable.
#[test]
fn identical_plans_inject_identically_at_one_lane() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let g = test_graph();
    let opts = BfsOpts {
        force: Some(Direction::Pull),
        format: FormatPolicy::fixed(StorageFormat::Csr),
        ..BfsOpts::default()
    };
    let plan = FaultPlan {
        panic_chunk_nth: Some(2),
        ..FaultPlan::default()
    };
    let run = || {
        rayon::with_num_threads(1, || {
            fault::install(&plan);
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let out = try_bfs_with_opts(&g, 0, &opts, None);
            std::panic::set_hook(prev);
            fault::clear();
            out.map(|r| r.depths)
        })
    };
    let (first, second) = (run(), run());
    assert!(
        matches!(first, Err(GrbError::WorkerPanicked { .. })),
        "got {first:?}"
    );
    assert_eq!(first, second, "same plan, same injection point");
}
