//! Determinism guarantees: results must not depend on thread scheduling or
//! repeat runs. Level-synchronous BFS depths, min-label CC, min-parent
//! trees, and semiring matvec outputs are all scheduling-independent by
//! construction; these tests pin that property against regressions (e.g.
//! someone "optimizing" a kernel with a racy first-writer-wins update).

use push_pull::algo::bfs::{bfs_with_opts, BfsOpts};
use push_pull::algo::bfs_parents::bfs_parents;
use push_pull::algo::cc::connected_components;
use push_pull::algo::msbfs::multi_source_bfs;
use push_pull::algo::sssp::{sssp, SsspOpts};
use push_pull::core::descriptor::{Descriptor, Direction};
use push_pull::core::ops::BoolOrAnd;
use push_pull::core::{mxv, Mask, Vector};
use push_pull::gen::powerlaw::{chung_lu, PowerLawParams};
use push_pull::gen::rmat::{rmat, RmatParams};
use push_pull::gen::with_uniform_weights;
use push_pull::primitives::BitVec;

const REPEATS: usize = 5;

#[test]
fn bfs_depths_identical_across_runs() {
    let g = rmat(12, 16, RmatParams::default(), 11);
    for (name, opts) in BfsOpts::ladder() {
        let first = bfs_with_opts(&g, 3, &opts, None).depths;
        for _ in 1..REPEATS {
            assert_eq!(
                bfs_with_opts(&g, 3, &opts, None).depths,
                first,
                "ladder rung {name}"
            );
        }
    }
}

#[test]
fn mxv_outputs_identical_across_runs() {
    let g = chung_lu(8192, 12, PowerLawParams::default(), 5);
    let n = g.n_vertices();
    let ids: Vec<u32> = (0..n as u32).step_by(7).collect();
    let f = Vector::from_sparse(n, false, ids.clone(), vec![true; ids.len()]);
    let mut bits = BitVec::new(n);
    for i in (0..n).step_by(3) {
        bits.set(i);
    }
    let mask = Mask::complement(&bits);
    for dir in [Direction::Push, Direction::Pull] {
        let desc = Descriptor::new().transpose(true).force(dir);
        let first: Vec<(u32, bool)> = {
            let w: Vector<bool> = mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap();
            w.iter_explicit().collect()
        };
        for _ in 1..REPEATS {
            let w: Vector<bool> = mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap();
            let got: Vec<(u32, bool)> = w.iter_explicit().collect();
            assert_eq!(got, first, "{dir:?}");
        }
    }
}

#[test]
fn parent_trees_identical_across_runs() {
    let g = rmat(11, 16, RmatParams::default(), 9);
    let first = bfs_parents(&g, 0, 0.01).parent;
    for _ in 1..REPEATS {
        assert_eq!(bfs_parents(&g, 0, 0.01).parent, first);
    }
}

#[test]
fn cc_labels_identical_across_runs() {
    let g = chung_lu(4096, 6, PowerLawParams::default(), 13);
    let first = connected_components(&g, 0.01).labels;
    for _ in 1..REPEATS {
        assert_eq!(connected_components(&g, 0.01).labels, first);
    }
}

#[test]
fn sssp_distances_identical_across_runs() {
    // min-plus over f32: floating-point min is order-independent, so even
    // the parallel reductions must agree bit-for-bit.
    let gb = rmat(10, 8, RmatParams::default(), 17);
    let g = with_uniform_weights(&gb, 23);
    let first = sssp(&g, 0, &SsspOpts::default()).dist;
    for _ in 1..REPEATS {
        let again = sssp(&g, 0, &SsspOpts::default()).dist;
        assert_eq!(
            again.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            first.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn batched_bfs_identical_across_runs() {
    let g = rmat(10, 12, RmatParams::default(), 29);
    let sources = [0u32, 5, 600];
    let first = multi_source_bfs(&g, &sources).depths;
    for _ in 1..REPEATS {
        assert_eq!(multi_source_bfs(&g, &sources).depths, first);
    }
}

#[test]
fn generators_are_scheduling_independent() {
    // Generators draw per-chunk RNG streams from a fixed chunk layout
    // (`graphblas_gen::RNG_CHUNKS`), independent of the thread count — two
    // runs must agree exactly whatever the pool is doing.
    let a = rmat(11, 16, RmatParams::default(), 7);
    let b = rmat(11, 16, RmatParams::default(), 7);
    assert_eq!(a.csr().row_ptr(), b.csr().row_ptr());
    assert_eq!(a.csr().col_ind(), b.csr().col_ind());
}
