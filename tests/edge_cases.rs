//! Edge-case and failure-injection tests: degenerate graphs, pathological
//! shapes (stars, supervertices, disconnected dust), boundary masks, and
//! the error paths of the public API.

use push_pull::algo::bfs::{bfs, bfs_with_opts, BfsOpts, UNREACHED as UNREACHED_BFS};
use push_pull::algo::cc::{
    cc_oracle, connected_components, connected_components_with_opts, CcOpts,
};
use push_pull::algo::msbfs::{multi_source_bfs, multi_source_bfs_with_opts, MsBfsOpts, UNREACHED};
use push_pull::algo::pagerank::{pagerank, PageRankOpts};
use push_pull::algo::sssp::{sssp, SsspOpts};
use push_pull::algo::tricount::triangle_count;
use push_pull::baselines::textbook::bfs_serial;
use push_pull::core::descriptor::{Descriptor, Direction};
use push_pull::core::error::GrbError;
use push_pull::core::ops::{BoolOrAnd, MinSecond};
use push_pull::core::{mxv, FusedMxv, Mask, Vector};
use push_pull::matrix::{Coo, Csr, Graph};
use push_pull::primitives::counters::AccessCounters;
use push_pull::primitives::BitVec;

fn edgeless(n: usize) -> Graph<bool> {
    Graph::from_coo(&Coo::<bool>::new(n, n))
}

fn star(n: usize) -> Graph<bool> {
    let mut coo = Coo::new(n, n);
    for leaf in 1..n as u32 {
        coo.push(0, leaf, true);
    }
    coo.clean_undirected();
    Graph::from_coo(&coo)
}

#[test]
fn bfs_on_edgeless_graph_touches_only_source() {
    let g = edgeless(100);
    for (_, opts) in BfsOpts::ladder() {
        let r = bfs_with_opts(&g, 42, &opts, None);
        assert_eq!(r.reached(), 1);
        assert_eq!(r.depths[42], 0);
    }
}

#[test]
fn single_vertex_graph_works_everywhere() {
    let g = edgeless(1);
    assert_eq!(bfs(&g, 0).depths, vec![0]);
    let labels = connected_components(&g, 0.01).labels;
    assert_eq!(labels, vec![0]);
    assert_eq!(triangle_count(&g), 0);
    let pr = pagerank(&g, &PageRankOpts::default());
    assert!((pr.ranks[0] - 1.0).abs() < 1e-9);
}

#[test]
fn star_graph_pull_handles_supervertex_row() {
    // The center's pull row has n−1 parents; every optimization combo must
    // survive the extreme-degree row.
    let g = star(5000);
    let expect = bfs_serial(&g, 1); // a leaf: depth 0, center 1, others 2
    for dir in [Direction::Push, Direction::Pull] {
        let r = bfs_with_opts(&g, 1, &BfsOpts::default().forced(dir), None);
        assert_eq!(r.depths, expect, "{dir:?}");
    }
    assert_eq!(expect[0], 1);
    assert_eq!(expect[4999], 2);
}

#[test]
fn all_engines_survive_isolated_source() {
    let mut coo = Coo::new(10, 10);
    coo.push(1, 2, true);
    coo.clean_undirected();
    let g = Graph::from_coo(&coo);
    for engine in push_pull::baselines::all_engines() {
        let d = engine.bfs(&g, 0);
        assert_eq!(d[0], 0, "{}", engine.name());
        assert_eq!(
            d.iter().filter(|&&x| x >= 0).count(),
            1,
            "{}",
            engine.name()
        );
    }
}

#[test]
fn mxv_rejects_dimension_mismatches() {
    let g = star(8);
    let wrong = Vector::<bool>::new_sparse(5, false);
    let r: Result<Vector<bool>, _> = mxv(None, BoolOrAnd, &g, &wrong, &Descriptor::new(), None);
    assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));

    let ok_vec = Vector::<bool>::new_sparse(8, false);
    let wrong_bits = BitVec::new(3);
    let wrong_mask = Mask::new(&wrong_bits);
    let r: Result<Vector<bool>, _> = mxv(
        Some(&wrong_mask),
        BoolOrAnd,
        &g,
        &ok_vec,
        &Descriptor::new(),
        None,
    );
    assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));
}

#[test]
fn all_ones_mask_equals_no_mask() {
    let g = star(50);
    let f = Vector::from_sparse(50, false, vec![0], vec![true]);
    let mut bits = BitVec::new(50);
    for i in 0..50 {
        bits.set(i);
    }
    let mask = Mask::new(&bits);
    let desc = Descriptor::new().transpose(true).force(Direction::Push);
    let masked: Vector<bool> = mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap();
    let unmasked: Vector<bool> = mxv(None, BoolOrAnd, &g, &f, &desc, None).unwrap();
    let a: Vec<_> = masked.iter_explicit().collect();
    let b: Vec<_> = unmasked.iter_explicit().collect();
    assert_eq!(a, b);
}

#[test]
fn all_zeros_mask_blocks_everything() {
    let g = star(50);
    let f = Vector::from_sparse(50, false, vec![0], vec![true]);
    let bits = BitVec::new(50); // nothing set
    let mask = Mask::new(&bits);
    for dir in [Direction::Push, Direction::Pull] {
        let desc = Descriptor::new().transpose(true).force(dir);
        let out: Vector<bool> = mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap();
        assert_eq!(out.nnz(), 0, "{dir:?}");
    }
}

#[test]
fn directed_asymmetry_respected_in_both_directions() {
    // Edge 0→1 only. Frontier {1} must discover nothing through Aᵀ's
    // columns; frontier {0} discovers 1.
    let mut coo = Coo::new(3, 3);
    coo.push(0, 1, true);
    let g = Graph::from_coo(&coo);
    for dir in [Direction::Push, Direction::Pull] {
        let desc = Descriptor::new().transpose(true).force(dir);
        let from1: Vector<bool> = mxv(
            None,
            BoolOrAnd,
            &g,
            &Vector::singleton(3, false, 1, true),
            &desc,
            None,
        )
        .unwrap();
        assert_eq!(from1.nnz(), 0, "{dir:?}: 1 has no out-edges");
        let from0: Vector<bool> = mxv(
            None,
            BoolOrAnd,
            &g,
            &Vector::singleton(3, false, 0, true),
            &desc,
            None,
        )
        .unwrap();
        let hits: Vec<u32> = from0.iter_explicit().map(|(i, _)| i).collect();
        assert_eq!(hits, vec![1], "{dir:?}");
    }
}

#[test]
fn sssp_zero_round_cap_returns_initial_state() {
    let mut coo = Coo::new(3, 3);
    coo.push(0, 1, 1.0f32);
    let g = Graph::from_coo(&coo);
    let r = sssp(
        &g,
        0,
        &SsspOpts {
            max_rounds: Some(0),
            ..SsspOpts::default()
        },
    );
    assert_eq!(r.dist[0], 0.0);
    assert_eq!(r.dist[1], f32::INFINITY, "no rounds ⇒ no relaxations");
}

#[test]
fn cc_on_dust_is_identity_labeling() {
    let g = edgeless(64);
    let r = connected_components(&g, 0.01);
    let expect: Vec<u32> = (0..64).collect();
    assert_eq!(r.labels, expect);
    assert_eq!(r.labels, cc_oracle(&g));
}

#[test]
fn convert_is_stable_on_empty_and_full_vectors() {
    use push_pull::core::ConvertState;
    let mut empty = Vector::<bool>::new_sparse(100, false);
    let mut state = ConvertState::new();
    assert!(!empty.convert(&mut state, 0.01), "empty stays sparse");
    assert!(empty.is_sparse());

    let mut full = Vector::from_sparse(100, false, (0..100).collect(), vec![true; 100]);
    let mut state = ConvertState::new();
    assert!(full.convert(&mut state, 0.01), "full vector densifies");
    assert!(!full.is_sparse());
    // Calling again with unchanged nnz must not flap back.
    assert!(!full.convert(&mut state, 0.01));
    assert!(!full.is_sparse());
}

#[test]
fn csr_rejects_malformed_parts() {
    let bad = std::panic::catch_unwind(|| {
        // row_ptr length must be n_rows + 1.
        Csr::from_parts(2, 2, vec![0, 1], vec![0], vec![true])
    });
    assert!(bad.is_err());
    let bad = std::panic::catch_unwind(|| {
        // col_ind length must equal the trailing row_ptr total.
        Csr::from_parts(1, 2, vec![0, 2], vec![0], vec![true])
    });
    assert!(bad.is_err());
}

#[test]
fn msbfs_duplicate_sources_get_identical_rows() {
    let g = star(64);
    let sources = [3u32, 3, 3, 0];
    let r = multi_source_bfs(&g, &sources);
    assert_eq!(r.depths[0], r.depths[1]);
    assert_eq!(r.depths[1], r.depths[2]);
    assert_eq!(r.depths[0], bfs_serial(&g, 3));
    assert_eq!(r.depths[3], bfs_serial(&g, 0));
}

#[test]
fn msbfs_k1_degenerates_to_single_source_bfs() {
    let g = star(200);
    for src in [0u32, 1, 199] {
        let batch = multi_source_bfs(&g, &[src]);
        let single = bfs(&g, src);
        assert_eq!(batch.depths[0], single.depths, "source {src}");
        assert_eq!(batch.levels, single.levels, "source {src}");
    }
}

#[test]
fn msbfs_isolated_and_out_of_component_vertices() {
    // Two components {1,2} and {4,5,6}; 0 and 3 isolated. Sources across
    // all three situations in one batch.
    let mut coo = Coo::new(8, 8);
    for &(u, v) in &[(1u32, 2u32), (4, 5), (5, 6)] {
        coo.push(u, v, true);
    }
    coo.clean_undirected();
    let g = Graph::from_coo(&coo);
    let sources = [0u32, 1, 4];
    let r = multi_source_bfs(&g, &sources);
    // Isolated source: only itself, depth 0, nothing else reached.
    assert_eq!(r.depths[0][0], 0);
    assert_eq!(r.depths[0].iter().filter(|&&d| d >= 0).count(), 1);
    // Component sources: the other component and the isolates stay
    // UNREACHED in that source's row.
    assert_eq!(&r.depths[1][1..3], &[0, 1]);
    for v in [0usize, 3, 4, 5, 6, 7] {
        assert_eq!(r.depths[1][v], UNREACHED, "vertex {v} outside component");
    }
    assert_eq!(r.depths[2][4], 0);
    assert_eq!(r.depths[2][5], 1);
    assert_eq!(r.depths[2][6], 2);
    assert_eq!(r.depths[2][1], UNREACHED);
}

#[test]
fn msbfs_empty_frontier_round_terminates_batch() {
    // Directed chain 0→1→2 plus a sink source: the sink's frontier
    // empties in round one while the chain keeps going; the batch must
    // retire the dead source and still finish the live one, under every
    // forced direction.
    let mut coo = Coo::new(4, 4);
    coo.push(0, 1, true);
    coo.push(1, 2, true);
    let g = Graph::from_coo(&coo);
    for force in [None, Some(Direction::Push), Some(Direction::Pull)] {
        let opts = MsBfsOpts {
            force,
            ..MsBfsOpts::default()
        };
        let r = multi_source_bfs_with_opts(&g, &[2, 0], &opts, None);
        assert_eq!(
            r.depths[0],
            vec![UNREACHED, UNREACHED, 0, UNREACHED],
            "{force:?}"
        );
        assert_eq!(r.depths[1], vec![0, 1, 2, UNREACHED], "{force:?}");
        assert_eq!(r.levels, 3, "{force:?}: two live rounds + the empty one");
    }
}

#[test]
fn self_loops_removed_before_traversal_cannot_resurface() {
    let mut coo = Coo::new(4, 4);
    coo.push(0, 0, true);
    coo.push(0, 1, true);
    coo.push(1, 1, true);
    coo.clean_undirected();
    let g = Graph::from_coo(&coo);
    assert_eq!(g.n_edges(), 2);
    let r = bfs(&g, 0);
    assert_eq!(r.depths, vec![0, 1, -1, -1]);
}

// ---------------------------------------------------------------------------
// Fused-pipeline edge cases
// ---------------------------------------------------------------------------

#[test]
fn fused_empty_frontier_assigns_nothing() {
    // A fused chain over an empty frontier must touch no state, charge no
    // matrix traffic, and save no writes on the push face.
    let g = star(16);
    let f = Vector::<bool>::new_sparse(16, false);
    let c = AccessCounters::new();
    let mut state = vec![-1i32; 16];
    let out = FusedMxv::new(BoolOrAnd, &g, &f)
        .descriptor(Descriptor::new().transpose(true).force(Direction::Push))
        .counters(Some(&c))
        .apply(|_: bool| 7i32)
        .assign_into(&mut state, |_, z| Some(z))
        .expect("dims fine");
    assert!(out.touched.is_empty());
    assert!(state.iter().all(|&x| x == -1));
    assert_eq!(c.snapshot().matrix, 0);
    assert_eq!(c.snapshot().fused_saved_writes, 0);
}

#[test]
fn fused_full_mask_blocks_every_assignment() {
    // A mask allowing nothing: the pull face still charges its mask scan,
    // but no state slot may change and touched stays empty.
    let g = star(32);
    let mut f = Vector::from_sparse(32, false, vec![0], vec![true]);
    f.make_dense();
    let all = {
        let mut b = BitVec::new(32);
        for i in 0..32 {
            b.set(i);
        }
        b
    };
    let mask = Mask::complement(&all); // complement of everything = nothing
    let c = AccessCounters::new();
    let mut state = vec![-1i32; 32];
    let out = FusedMxv::new(BoolOrAnd, &g, &f)
        .mask(&mask)
        .descriptor(Descriptor::new().transpose(true).force(Direction::Pull))
        .counters(Some(&c))
        .apply(|_: bool| 1i32)
        .assign_into(&mut state, |_, z| Some(z))
        .expect("dims fine");
    assert!(out.touched.is_empty());
    assert!(state.iter().all(|&x| x == -1));
    assert_eq!(c.snapshot().mask, 32, "full-row mask scan still charged");
    assert_eq!(c.snapshot().matrix, 0, "no allowed row touches the matrix");
}

#[test]
fn fused_first_hit_exit_on_star_graph_stops_at_one_parent() {
    // Star center pulled while every leaf is in the frontier: the full
    // reduction scans all n−1 parents, first-hit stops at leaf 1 — and
    // both give the identical min parent.
    let n = 4096;
    let g = star(n);
    let ids: Vec<u32> = (1..n as u32).collect();
    let mut f = Vector::from_sparse(n, u32::MAX, ids.clone(), ids);
    f.make_dense();
    let visited = {
        let mut b = BitVec::new(n);
        for i in 1..n {
            b.set(i);
        }
        b
    };
    let mask = Mask::complement(&visited);
    let run = |first_hit: bool| {
        let c = AccessCounters::new();
        let mut parent = vec![u32::MAX; n];
        let out = FusedMxv::new(MinSecond, &g, &f)
            .mask(&mask)
            .descriptor(Descriptor::new().transpose(true).force(Direction::Pull))
            .counters(Some(&c))
            .first_hit_exit(first_hit)
            .apply(|p: u32| p)
            .assign_into(&mut parent, |_, p| Some(p))
            .expect("dims fine");
        (out.touched, parent[0], c.snapshot().matrix)
    };
    let (t_full, p_full, m_full) = run(false);
    let (t_hit, p_hit, m_hit) = run(true);
    assert_eq!(t_full, vec![0]);
    assert_eq!(t_hit, t_full);
    assert_eq!(p_hit, p_full);
    assert_eq!(p_hit, 1, "minimum-id parent of the center");
    assert_eq!(m_full, (n - 1) as u64, "full reduction scans every parent");
    assert_eq!(m_hit, 1, "first-hit stops immediately");
}

#[test]
fn fused_algorithms_survive_self_loops() {
    // Self-loops kept in a *directed* graph (clean_undirected would drop
    // them): a fused traversal must not rediscover a vertex through its
    // own loop, and fused ≡ unfused throughout.
    let mut coo = Coo::new(5, 5);
    for &(u, v) in &[(0u32, 0u32), (0, 1), (1, 1), (1, 2), (3, 3)] {
        coo.push(u, v, true);
    }
    let g = Graph::from_coo(&coo);
    for dir in [None, Some(Direction::Push), Some(Direction::Pull)] {
        let base = BfsOpts {
            force: dir,
            ..BfsOpts::default()
        };
        let fused = bfs_with_opts(&g, 0, &base.fused(true), None);
        let unfused = bfs_with_opts(&g, 0, &base.fused(false), None);
        assert_eq!(fused.depths, unfused.depths, "{dir:?}");
        assert_eq!(fused.depths, vec![0, 1, 2, UNREACHED_BFS, UNREACHED_BFS]);
    }
    let fused_cc = connected_components_with_opts(&g, &CcOpts::default(), None);
    let unfused_cc = connected_components_with_opts(
        &g,
        &CcOpts {
            fused: false,
            ..CcOpts::default()
        },
        None,
    );
    assert_eq!(fused_cc.labels, unfused_cc.labels);
}

// ---------------------------------------------------------------------------
// Bit-kernel boundary cases
// ---------------------------------------------------------------------------

#[test]
fn bit_kernels_match_scalar_at_word_boundaries() {
    // n straddling the u64 word boundary: 63 (one partial word), 64 (exactly
    // one), 65 (a full word plus one bit), 128 (exactly two). A ring with
    // chords gives every row a few neighbours so both faces do real work.
    use push_pull::core::ops::BoolStructure;
    use push_pull::core::StorageFormat;
    for n in [63usize, 64, 65, 128] {
        let mut coo = Coo::new(n, n);
        for u in 0..n as u32 {
            coo.push(u, (u + 1) % n as u32, true);
            coo.push(u, (u + 7) % n as u32, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let f = Vector::from_sparse(n, false, vec![0, (n - 1) as u32], vec![true; 2]);
        for dir in [Direction::Push, Direction::Pull] {
            for masked in [false, true] {
                let bits = {
                    let mut b = BitVec::new(n);
                    for i in (0..n).step_by(3) {
                        b.set(i);
                    }
                    b
                };
                let mask = Mask::complement(&bits);
                let run = |bit: bool| {
                    let c = AccessCounters::new();
                    let desc = Descriptor::new()
                        .transpose(true)
                        .structure_only(true)
                        .early_exit(true)
                        .force(dir)
                        .force_format(StorageFormat::Bitmap)
                        .bit_kernels(bit);
                    let m = masked.then_some(&mask);
                    let out: Vector<bool> = mxv(m, BoolStructure, &g, &f, &desc, Some(&c)).unwrap();
                    (
                        out.iter_explicit().collect::<Vec<_>>(),
                        c.snapshot().accesses_only(),
                    )
                };
                assert_eq!(run(true), run(false), "n={n} {dir:?} masked={masked}");
            }
        }
    }
}

#[test]
fn bit_kernels_empty_and_full_frontier_match_scalar() {
    // The two frontier extremes: an empty frontier must produce nothing and
    // charge nothing on either path; a full frontier saturates every word of
    // the bit context. Both must be value- and counter-identical to scalar.
    use push_pull::core::ops::BoolStructure;
    use push_pull::core::StorageFormat;
    let n = 128;
    let g = star(n);
    let empty = Vector::<bool>::new_sparse(n, false);
    let full = Vector::from_sparse(n, false, (0..n as u32).collect(), vec![true; n]);
    for (name, f) in [("empty", &empty), ("full", &full)] {
        for dir in [Direction::Push, Direction::Pull] {
            let run = |bit: bool| {
                let c = AccessCounters::new();
                let desc = Descriptor::new()
                    .transpose(true)
                    .structure_only(true)
                    .force(dir)
                    .force_format(StorageFormat::Bitmap)
                    .bit_kernels(bit);
                let out: Vector<bool> = mxv(None, BoolStructure, &g, f, &desc, Some(&c)).unwrap();
                (
                    out.iter_explicit().collect::<Vec<_>>(),
                    c.snapshot().accesses_only(),
                )
            };
            let (vals, counts) = run(true);
            assert_eq!((vals.clone(), counts), run(false), "{name} {dir:?}");
            if name == "empty" {
                assert!(vals.is_empty(), "{dir:?}: empty frontier reaches nothing");
            }
        }
    }
}

#[test]
fn bit_bfs_matches_scalar_at_word_boundaries() {
    // Whole-algorithm pin at the same boundary sizes: BFS under a forced
    // Bitmap format with bit kernels on/off must agree on depths and on the
    // projected counter snapshot, and both must match the serial oracle.
    use push_pull::core::{FormatPolicy, StorageFormat};
    for n in [63usize, 64, 65, 128] {
        let g = star(n);
        let run = |bit: bool| {
            let c = AccessCounters::new();
            let opts = BfsOpts::default()
                .format(FormatPolicy::fixed(StorageFormat::Bitmap))
                .bit_kernels(bit);
            let r = bfs_with_opts(&g, 1, &opts, Some(&c));
            (r.depths, c.snapshot().accesses_only())
        };
        let (depths, counts) = run(true);
        assert_eq!((depths.clone(), counts), run(false), "n={n}");
        assert_eq!(depths, bfs_serial(&g, 1), "n={n}");
    }
}

#[test]
fn bit_kernels_match_scalar_across_tile_boundaries() {
    // The tiled bitmap's seams: n one short of a tile, one over, and a
    // 3-tile graph whose middle tile is empty (its rows have no word
    // surface) with a single edge landing in the last tile. Bit and
    // scalar arms must agree on values and projected charges everywhere.
    use push_pull::core::ops::BoolStructure;
    use push_pull::core::StorageFormat;
    use push_pull::matrix::TILE_ROWS;
    let sizes = [TILE_ROWS - 1, TILE_ROWS + 1, 3 * TILE_ROWS];
    for n in sizes {
        let mut coo = Coo::new(n, n);
        // A short path in the first tile…
        coo.push(0, 1, true);
        coo.push(1, 2, true);
        // …and one edge from the first tile into the last row (for the
        // 3-tile size this leaves the middle tile completely empty).
        coo.push(2, (n - 1) as u32, true);
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let f = Vector::from_sparse(n, false, vec![1, (n - 1) as u32], vec![true; 2]);
        for dir in [Direction::Push, Direction::Pull] {
            for masked in [false, true] {
                let bits = {
                    let mut b = BitVec::new(n);
                    b.set(0);
                    b.set(n - 1);
                    b
                };
                let mask = Mask::complement(&bits);
                let run = |bit: bool| {
                    let c = AccessCounters::new();
                    let desc = Descriptor::new()
                        .transpose(true)
                        .structure_only(true)
                        .early_exit(true)
                        .force(dir)
                        .force_format(StorageFormat::Bitmap)
                        .bit_kernels(bit);
                    let m = masked.then_some(&mask);
                    let out: Vector<bool> = mxv(m, BoolStructure, &g, &f, &desc, Some(&c)).unwrap();
                    (
                        out.iter_explicit().collect::<Vec<_>>(),
                        c.snapshot().accesses_only(),
                    )
                };
                assert_eq!(run(true), run(false), "n={n} {dir:?} masked={masked}");
            }
        }
        // Whole-algorithm pin from a source whose frontier crosses every
        // seam, against the serial oracle.
        use push_pull::core::FormatPolicy;
        let run = |bit: bool| {
            let c = AccessCounters::new();
            let opts = BfsOpts::default()
                .format(FormatPolicy::fixed(StorageFormat::Bitmap))
                .bit_kernels(bit);
            let r = bfs_with_opts(&g, 0, &opts, Some(&c));
            (r.depths, c.snapshot().accesses_only())
        };
        let (depths, counts) = run(true);
        assert_eq!((depths.clone(), counts), run(false), "n={n}");
        assert_eq!(depths, bfs_serial(&g, 0), "n={n}");
    }
}

#[test]
fn compressed_frontier_matches_dense_scalar_oracle() {
    // n = 512 (8 frontier words): a single-vertex frontier occupies one
    // nonzero word, so the bit kernels pick the compressed sparse word
    // list internally; a half-full frontier stays dense. Both shapes must
    // be value- and charge-identical to the scalar oracle.
    use push_pull::core::ops::BoolStructure;
    use push_pull::core::StorageFormat;
    let n = 512usize;
    let mut coo = Coo::new(n, n);
    for u in 0..n as u32 {
        coo.push(u, (u + 1) % n as u32, true);
        coo.push(u, (u + 63) % n as u32, true);
        coo.push(u, (u + 200) % n as u32, true);
    }
    coo.clean_undirected();
    let g = Graph::from_coo(&coo);
    let sparse_f = Vector::from_sparse(n, false, vec![7], vec![true]);
    let dense_f = Vector::from_sparse(
        n,
        false,
        (0..n as u32).step_by(2).collect(),
        vec![true; n / 2],
    );
    for (name, f) in [("compressed", &sparse_f), ("dense", &dense_f)] {
        for dir in [Direction::Push, Direction::Pull] {
            let run = |bit: bool| {
                let c = AccessCounters::new();
                let desc = Descriptor::new()
                    .transpose(true)
                    .structure_only(true)
                    .early_exit(true)
                    .force(dir)
                    .force_format(StorageFormat::Bitmap)
                    .bit_kernels(bit);
                let out: Vector<bool> = mxv(None, BoolStructure, &g, f, &desc, Some(&c)).unwrap();
                (
                    out.iter_explicit().collect::<Vec<_>>(),
                    c.snapshot().accesses_only(),
                )
            };
            assert_eq!(run(true), run(false), "{name} {dir:?}");
        }
    }
    // End-to-end: BFS frontiers start compressed (one word) and densify;
    // depths and projected charges must still match the scalar arm.
    use push_pull::core::FormatPolicy;
    let run = |bit: bool| {
        let c = AccessCounters::new();
        let opts = BfsOpts::default()
            .format(FormatPolicy::fixed(StorageFormat::Bitmap))
            .bit_kernels(bit);
        let r = bfs_with_opts(&g, 7, &opts, Some(&c));
        (r.depths, c.snapshot().accesses_only())
    };
    let (depths, counts) = run(true);
    assert_eq!((depths.clone(), counts), run(false));
    assert_eq!(depths, bfs_serial(&g, 7));
}

#[test]
fn fused_state_slice_dimension_mismatch_is_an_error() {
    let g = star(8);
    let f = Vector::from_sparse(8, false, vec![0], vec![true]);
    let mut short = vec![0i32; 4];
    let r = FusedMxv::new(BoolOrAnd, &g, &f)
        .descriptor(Descriptor::new().transpose(true))
        .apply(|_: bool| 1i32)
        .assign_into(&mut short, |_, z| Some(z));
    assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));
}
