//! Thread-count determinism: the worker pool distributes a chunk list
//! whose boundaries derive from the problem size only, so every kernel and
//! every algorithm must produce **bit-identical** output at 1, 2, and 8
//! threads. These tests sweep lane counts in-process through
//! `rayon::with_num_threads` (the same override `PUSH_PULL_THREADS` sets
//! process-wide) and pin that property.

use push_pull::algo::bc::betweenness;
use push_pull::algo::bfs::{bfs_with_opts, BfsOpts};
use push_pull::algo::bfs_parents::bfs_parents;
use push_pull::algo::cc::connected_components;
use push_pull::algo::msbfs::multi_source_bfs;
use push_pull::algo::pagerank::{pagerank, PageRankOpts};
use push_pull::algo::sssp::{sssp, SsspOpts};
use push_pull::core::descriptor::{Descriptor, Direction, MergeStrategy};
use push_pull::core::ops::{BoolOrAnd, MinPlus, PlusTimes};
use push_pull::core::{mxv, mxv_batch, DirectionPolicy, FusedMxv, Mask, MultiVector, Vector};
use push_pull::gen::powerlaw::{chung_lu, PowerLawParams};
use push_pull::gen::rmat::{rmat, RmatParams};
use push_pull::gen::with_uniform_weights;
use push_pull::primitives::counters::AccessCounters;
use push_pull::primitives::BitVec;

const LANES: [usize; 3] = [1, 2, 8];

/// Run `f` at every lane count and assert all results equal the 1-lane one.
fn identical_across_lanes<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let reference = rayon::with_num_threads(1, &f);
    for lanes in LANES {
        let got = rayon::with_num_threads(lanes, &f);
        assert_eq!(got, reference, "diverged at {lanes} threads");
    }
}

fn test_graph() -> push_pull::matrix::Graph<bool> {
    rmat(12, 16, RmatParams::default(), 11)
}

/// A mid-traversal frontier and visited set on the test graph.
fn frontier_and_visited(n: usize) -> (Vector<bool>, BitVec) {
    let ids: Vec<u32> = (0..n as u32).step_by(5).collect();
    let k = ids.len();
    let f = Vector::from_sparse(n, false, ids, vec![true; k]);
    let mut bits = BitVec::new(n);
    for i in (0..n).step_by(3) {
        bits.set(i);
    }
    (f, bits)
}

#[test]
fn pull_mxv_identical_across_thread_counts() {
    let g = test_graph();
    let n = g.n_vertices();
    let (mut f, bits) = frontier_and_visited(n);
    f.make_dense();
    for transpose in [false, true] {
        for masked in [false, true] {
            for early_exit in [false, true] {
                let desc = Descriptor::new()
                    .transpose(transpose)
                    .force(Direction::Pull)
                    .early_exit(early_exit);
                identical_across_lanes(|| {
                    let mask = Mask::complement(&bits);
                    let w: Vector<bool> =
                        mxv(masked.then_some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap();
                    w.iter_explicit().collect::<Vec<_>>()
                });
            }
        }
    }
}

#[test]
fn push_mxv_identical_across_thread_counts() {
    let g = test_graph();
    let n = g.n_vertices();
    let (f, bits) = frontier_and_visited(n);
    for transpose in [false, true] {
        for masked in [false, true] {
            for strategy in [
                MergeStrategy::SortBased,
                MergeStrategy::HeapMerge,
                MergeStrategy::BitmaskCull,
                MergeStrategy::SpaMerge,
            ] {
                let desc = Descriptor::new()
                    .transpose(transpose)
                    .force(Direction::Push)
                    .merge_strategy(strategy);
                identical_across_lanes(|| {
                    let mask = Mask::complement(&bits);
                    let w: Vector<bool> =
                        mxv(masked.then_some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap();
                    w.iter_explicit().collect::<Vec<_>>()
                });
            }
        }
    }
}

#[test]
fn weighted_mxv_bitwise_identical_across_thread_counts() {
    // Floating-point reductions are the sharp edge: chunk boundaries fix
    // the grouping, so even f32 min-plus and f64 plus-times must agree
    // bit-for-bit at every lane count.
    let gb = rmat(11, 8, RmatParams::default(), 17);
    let g = with_uniform_weights(&gb, 23);
    let n = g.n_vertices();
    let ids: Vec<u32> = (0..n as u32).step_by(4).collect();
    let vals: Vec<f32> = ids.iter().map(|&i| (i % 17) as f32).collect();
    let d = Vector::from_sparse(n, f32::INFINITY, ids, vals);
    for dir in [Direction::Push, Direction::Pull] {
        let desc = Descriptor::new().transpose(true).force(dir);
        identical_across_lanes(|| {
            let w: Vector<f32> = mxv(None, MinPlus, &g, &d, &desc, None).unwrap();
            w.iter_explicit()
                .map(|(i, x)| (i, x.to_bits()))
                .collect::<Vec<_>>()
        });
    }
}

#[test]
fn bfs_ladder_identical_across_thread_counts() {
    let g = test_graph();
    for (name, opts) in BfsOpts::ladder() {
        identical_across_lanes(|| bfs_with_opts(&g, 3, &opts, None).depths);
        let _ = name;
    }
}

#[test]
fn algorithms_identical_across_thread_counts() {
    let g = chung_lu(4096, 8, PowerLawParams::default(), 13);
    identical_across_lanes(|| bfs_parents(&g, 0, 0.01).parent);
    identical_across_lanes(|| connected_components(&g, 0.01).labels);

    let gw = with_uniform_weights(&rmat(10, 8, RmatParams::default(), 17), 23);
    identical_across_lanes(|| {
        sssp(&gw, 0, &SsspOpts::default())
            .dist
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>()
    });

    identical_across_lanes(|| {
        pagerank(&g, &PageRankOpts::default())
            .ranks
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>()
    });
}

#[test]
fn batched_kernels_identical_across_thread_counts() {
    // The batched (source, chunk) grids — pull row chunks and push SPA
    // chunks — are size-derived, so a whole batch (values and counters,
    // including per-row direction decisions) is bit-identical at every
    // lane count, forced and policy-driven alike.
    let g = test_graph();
    let n = g.n_vertices();
    let rows: Vec<Vector<bool>> = (0..4)
        .map(|r| {
            let ids: Vec<u32> = (r as u32..n as u32).step_by(3 + r).collect();
            let k = ids.len();
            Vector::from_sparse(n, false, ids, vec![true; k])
        })
        .collect();
    let bits: Vec<BitVec> = (0..4)
        .map(|r| {
            let mut b = BitVec::new(n);
            for i in (r..n).step_by(2 + r) {
                b.set(i);
            }
            b
        })
        .collect();
    for masked in [false, true] {
        for forced in [None, Some(Direction::Push), Some(Direction::Pull)] {
            let desc = match forced {
                Some(d) => Descriptor::new().transpose(true).force(d),
                None => Descriptor::new().transpose(true),
            };
            identical_across_lanes(|| {
                let batch = MultiVector::from_rows(rows.clone());
                let masks: Vec<Mask<'_>> = bits.iter().map(Mask::complement).collect();
                let mut policies = vec![DirectionPolicy::hysteresis(0.01); 4];
                let c = AccessCounters::new();
                let out: MultiVector<bool> = mxv_batch(
                    masked.then_some(masks.as_slice()),
                    BoolOrAnd,
                    &g,
                    &batch,
                    &desc,
                    Some(&mut policies),
                    Some(&c),
                )
                .unwrap();
                let sets: Vec<Vec<(u32, bool)>> = out
                    .rows()
                    .iter()
                    .map(|r| r.iter_explicit().collect())
                    .collect();
                (sets, c.snapshot())
            });
        }
    }
}

#[test]
fn multi_source_bfs_identical_across_thread_counts() {
    let g = test_graph();
    let sources = [0u32, 7, 7, 1234];
    identical_across_lanes(|| multi_source_bfs(&g, &sources).depths);
}

#[test]
fn betweenness_identical_across_thread_counts() {
    // The f64 σ/δ accumulations go through the batched kernels whose
    // reduction grouping is ascending-neighbor order regardless of chunk
    // assignment — bit-for-bit at every lane count.
    let g = chung_lu(1024, 8, PowerLawParams::default(), 21);
    let sources = [0u32, 5, 99];
    identical_across_lanes(|| {
        betweenness(&g, &sources)
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>()
    });
}

#[test]
fn generated_graphs_identical_across_thread_counts() {
    // RNG chunk streams are laid out by a fixed constant, so the sampled
    // graph cannot depend on the lane count.
    identical_across_lanes(|| {
        let g = rmat(11, 16, RmatParams::default(), 7);
        (g.csr().row_ptr().to_vec(), g.csr().col_ind().to_vec())
    });
}

#[test]
fn access_counters_identical_across_thread_counts() {
    // The cost model feeding DirectionPolicy counts bulk accesses per
    // row/segment; concurrency must not change the totals.
    let g = test_graph();
    let n = g.n_vertices();
    let (f, bits) = frontier_and_visited(n);
    for dir in [Direction::Push, Direction::Pull] {
        let desc = Descriptor::new().transpose(true).force(dir);
        identical_across_lanes(|| {
            let mask = Mask::complement(&bits);
            let c = AccessCounters::new();
            let input = match dir {
                Direction::Push => f.clone(),
                Direction::Pull => {
                    let mut d = f.clone();
                    d.make_dense();
                    d
                }
            };
            let _: Vector<bool> = mxv(Some(&mask), BoolOrAnd, &g, &input, &desc, Some(&c)).unwrap();
            c.snapshot()
        });
    }
}

#[test]
fn pagerank_uses_plus_times_and_stays_deterministic() {
    // Guard against a future "optimization" racing the f64 ⊕ = + reduce:
    // dense pull PageRank exercises PlusTimes through the row kernel.
    let g = test_graph();
    let t = push_pull::algo::pagerank::transition_matrix(&g);
    let n = g.n_vertices();
    let x = Vector::Dense(push_pull::core::DenseVector::from_values(
        vec![1.0 / n as f64; n],
        0.0,
    ));
    let desc = Descriptor::new().transpose(true).force(Direction::Pull);
    identical_across_lanes(|| {
        let w: Vector<f64> = mxv(None, PlusTimes, &t, &x, &desc, None).unwrap();
        w.iter_explicit()
            .map(|(i, v)| (i, v.to_bits()))
            .collect::<Vec<_>>()
    });
}

#[test]
fn current_num_threads_tracks_override() {
    for lanes in LANES {
        rayon::with_num_threads(lanes, || {
            assert_eq!(rayon::current_num_threads(), lanes);
        });
    }
}

#[test]
fn fused_pipeline_identical_across_thread_counts() {
    // The fused mxv·apply·assign kernel must write identical state and
    // return the identical touched list at every lane count, on both
    // faces, masked and unmasked, with and without the first-hit exit.
    let g = test_graph();
    let n = g.n_vertices();
    let (f, bits) = frontier_and_visited(n);
    let mut dense_f = f.clone();
    dense_f.make_dense();
    for (input, dir) in [(&f, Direction::Push), (&dense_f, Direction::Pull)] {
        for masked in [false, true] {
            for first_hit in [false, true] {
                if first_hit && dir == Direction::Push {
                    continue; // push ignores the flag
                }
                let desc = Descriptor::new().transpose(true).force(dir);
                identical_across_lanes(|| {
                    let mask = Mask::complement(&bits);
                    let c = AccessCounters::new();
                    let mut state = vec![-1i32; n];
                    let mut pipe = FusedMxv::new(BoolOrAnd, &g, input)
                        .descriptor(desc)
                        .counters(Some(&c))
                        .first_hit_exit(first_hit);
                    if masked {
                        pipe = pipe.mask(&mask);
                    }
                    let out = pipe
                        .apply(|_: bool| 1i32)
                        .assign_into(&mut state, |old, z| (old == -1).then_some(z))
                        .unwrap();
                    (out.touched, state, c.snapshot())
                });
            }
        }
    }
}

#[test]
fn fused_algorithms_with_counters_identical_across_thread_counts() {
    // Fused parent BFS (production config: first-hit on) and fused
    // adaptive PageRank, state + counters, at 1/2/8 lanes.
    let g = test_graph();
    identical_across_lanes(|| {
        let c = AccessCounters::new();
        let r = push_pull::algo::bfs_parents::bfs_parents_with_opts(
            &g,
            3,
            &push_pull::algo::bfs_parents::ParentBfsOpts::default(),
            Some(&c),
        );
        (r.parent, r.levels, c.snapshot())
    });
    identical_across_lanes(|| {
        let c = AccessCounters::new();
        let r = push_pull::algo::pagerank::pagerank_with_counters(
            &g,
            &PageRankOpts::default(),
            true,
            Some(&c),
        );
        (
            r.ranks.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            r.iters,
            c.snapshot(),
        )
    });
}

#[test]
fn mxv_formats_identical_across_thread_counts() {
    // Every storage format (and the Auto plan) must produce the identical
    // explicit set and counter snapshot at 1/2/8 lanes, both faces — the
    // format axis composes with the lane-count axis.
    use push_pull::core::StorageFormat;
    let g = test_graph();
    let n = g.n_vertices();
    let (f, bits) = frontier_and_visited(n);
    let mut dense_f = f.clone();
    dense_f.make_dense();
    for format in StorageFormat::all() {
        for (input, dir) in [(&f, Direction::Push), (&dense_f, Direction::Pull)] {
            for masked in [false, true] {
                let desc = Descriptor::new()
                    .transpose(true)
                    .force(dir)
                    .force_format(format);
                identical_across_lanes(|| {
                    let mask = Mask::complement(&bits);
                    let c = AccessCounters::new();
                    let w: Vector<bool> = mxv(
                        masked.then_some(&mask),
                        BoolOrAnd,
                        &g,
                        input,
                        &desc,
                        Some(&c),
                    )
                    .unwrap();
                    (w.iter_explicit().collect::<Vec<_>>(), c.snapshot())
                });
            }
        }
    }
}

#[test]
fn algorithms_under_fixed_formats_identical_across_thread_counts() {
    // BFS and msbfs under Fixed(Bitmap) / Fixed(Dcsr) / Auto: results and
    // counters (including the format_switches tally, which is
    // lane-independent) pinned at 1/2/8 lanes.
    use push_pull::algo::msbfs::{multi_source_bfs_with_opts, MsBfsOpts};
    use push_pull::core::{FormatPolicy, StorageFormat};
    let g = test_graph();
    for policy in [
        FormatPolicy::fixed(StorageFormat::Bitmap),
        FormatPolicy::fixed(StorageFormat::Dcsr),
        FormatPolicy::auto(),
    ] {
        identical_across_lanes(|| {
            let c = AccessCounters::new();
            let opts = BfsOpts::default().format(policy);
            let r = bfs_with_opts(&g, 3, &opts, Some(&c));
            (r.depths, c.snapshot())
        });
        identical_across_lanes(|| {
            let c = AccessCounters::new();
            let opts = MsBfsOpts {
                format: policy,
                ..MsBfsOpts::default()
            };
            let r = multi_source_bfs_with_opts(&g, &[0, 7, 1234], &opts, Some(&c));
            (r.depths, c.snapshot())
        });
    }
}

#[test]
fn bit_kernels_identical_across_thread_counts() {
    // The bit-parallel boolean kernels: explicit sets and the FULL counter
    // snapshot (including the bit_word_ops telemetry — word scans are
    // size-derived, never lane-derived) pinned at 1/2/8 lanes, both faces,
    // masked and unmasked, and the whole bit BFS on top.
    use push_pull::algo::bfs::bfs;
    use push_pull::core::ops::BoolStructure;
    use push_pull::core::{FormatPolicy, StorageFormat};
    let g = test_graph();
    let n = g.n_vertices();
    let (f, bits) = frontier_and_visited(n);
    let mut dense_f = f.clone();
    dense_f.make_dense();
    for (input, dir) in [(&f, Direction::Push), (&dense_f, Direction::Pull)] {
        for masked in [false, true] {
            for early_exit in [false, true] {
                let desc = Descriptor::new()
                    .transpose(true)
                    .structure_only(true)
                    .early_exit(early_exit)
                    .force(dir)
                    .force_format(StorageFormat::Bitmap)
                    .bit_kernels(true);
                identical_across_lanes(|| {
                    let mask = Mask::complement(&bits);
                    let c = AccessCounters::new();
                    let w: Vector<bool> = mxv(
                        masked.then_some(&mask),
                        BoolStructure,
                        &g,
                        input,
                        &desc,
                        Some(&c),
                    )
                    .unwrap();
                    (w.iter_explicit().collect::<Vec<_>>(), c.snapshot())
                });
            }
        }
    }
    // Whole-algorithm: bit BFS (fixed bitmap) and the cost-model rule.
    identical_across_lanes(|| {
        let c = AccessCounters::new();
        let opts = BfsOpts::default()
            .format(FormatPolicy::fixed(StorageFormat::Bitmap))
            .bit_kernels(true);
        let r = bfs_with_opts(&g, 3, &opts, Some(&c));
        (r.depths, c.snapshot())
    });
    identical_across_lanes(|| {
        let c = AccessCounters::new();
        let r = bfs_with_opts(&g, 3, &BfsOpts::default().cost_model(true), Some(&c));
        (r.depths, c.snapshot())
    });
    identical_across_lanes(|| bfs(&g, 3).depths);
}

#[test]
fn bit_kernels_at_tile_boundaries_identical_across_thread_counts() {
    // Tiled-bitmap seams under the pool: n one short of / one past a tile,
    // and a 3-tile graph with an empty middle tile, plus a single-word
    // frontier that the kernels compress internally. FULL snapshots
    // (including bit_word_ops) pinned at 1/2/8 lanes.
    use push_pull::core::ops::BoolStructure;
    use push_pull::core::StorageFormat;
    use push_pull::matrix::{Coo, Graph, TILE_ROWS};
    for n in [TILE_ROWS - 1, TILE_ROWS + 1, 3 * TILE_ROWS, 512] {
        let mut coo = Coo::new(n, n);
        coo.push(0, 1, true);
        coo.push(1, 2, true);
        coo.push(2, (n - 1) as u32, true);
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        // Single explicit vertex → one nonzero frontier word; at n = 512
        // (8 words) the bit context takes the compressed word-list shape.
        let f = Vector::from_sparse(n, false, vec![2], vec![true]);
        for dir in [Direction::Push, Direction::Pull] {
            let desc = Descriptor::new()
                .transpose(true)
                .structure_only(true)
                .early_exit(true)
                .force(dir)
                .force_format(StorageFormat::Bitmap)
                .bit_kernels(true);
            identical_across_lanes(|| {
                let c = AccessCounters::new();
                let w: Vector<bool> = mxv(None, BoolStructure, &g, &f, &desc, Some(&c)).unwrap();
                (w.iter_explicit().collect::<Vec<_>>(), c.snapshot())
            });
        }
    }
}

#[test]
fn service_trace_identical_across_thread_counts() {
    // The query service replaying a fixed seeded arrival trace: the
    // admission plan is a pure function of arrival ticks, so the batch
    // composition, every response's values, and every request's FULL
    // per-request counter snapshot are bit-identical at 1/2/8 lanes.
    use push_pull::service::{
        generate_trace, run_trace, AdmissionConfig, ExecOpts, LoadGenConfig, ServiceGraphs,
    };
    let g = test_graph();
    let gs = ServiceGraphs::new(g.clone(), with_uniform_weights(&g, 23));
    let opts = ExecOpts::default();
    let trace = generate_trace(
        &LoadGenConfig {
            n_requests: 12,
            ..LoadGenConfig::default()
        },
        gs.n_vertices(),
    );
    let adm = AdmissionConfig {
        window_ticks: 16,
        max_batch: 4,
    };
    identical_across_lanes(|| {
        let out = run_trace(&gs, &opts, &trace, &adm, 1_000, None);
        let per_request: Vec<_> = out
            .responses
            .iter()
            .map(|r| {
                (
                    r.id,
                    r.result.clone(),
                    r.counters,
                    r.batch_size,
                    r.group_size,
                    r.retried_solo,
                )
            })
            .collect();
        (out.batches, per_request)
    });
}

#[test]
fn hypersparse_pull_skip_matches_csr_across_thread_counts() {
    // The DCSR unmasked-pull fast path (non-empty-row scan with bulk
    // counter charges) against the CSR full scan: same values, same
    // counters, at every lane count.
    use push_pull::core::StorageFormat;
    let g = {
        // Hypersparse operand: a few edges in a large vertex space.
        let mut coo = push_pull::matrix::Coo::new(5000, 5000);
        for i in 0..40u32 {
            coo.push(i * 100, ((i + 1) % 40) * 100, true);
        }
        coo.clean_undirected();
        push_pull::matrix::Graph::from_coo(&coo)
    };
    let n = g.n_vertices();
    let dense = Vector::Dense(push_pull::core::DenseVector::from_values(
        vec![true; n],
        false,
    ));
    let run_format = |format: StorageFormat| {
        identical_across_lanes(|| {
            let desc = Descriptor::new()
                .transpose(true)
                .force(Direction::Pull)
                .force_format(format);
            let c = AccessCounters::new();
            let w: Vector<bool> = mxv(None, BoolOrAnd, &g, &dense, &desc, Some(&c)).unwrap();
            (w.iter_explicit().collect::<Vec<_>>(), c.snapshot())
        });
        let desc = Descriptor::new()
            .transpose(true)
            .force(Direction::Pull)
            .force_format(format);
        let c = AccessCounters::new();
        let w: Vector<bool> = mxv(None, BoolOrAnd, &g, &dense, &desc, Some(&c)).unwrap();
        (w.iter_explicit().collect::<Vec<_>>(), c.snapshot())
    };
    let csr = run_format(StorageFormat::Csr);
    let dcsr = run_format(StorageFormat::Dcsr);
    assert_eq!(
        csr, dcsr,
        "skip path must be invisible in values and counters"
    );
}
