//! Property-based tests at the algorithm layer: on arbitrary graphs, every
//! optimization configuration of the GraphBLAS BFS, every comparator
//! engine, and each §5.6 algorithm must agree with its serial oracle.

use proptest::prelude::*;
use push_pull::algo::bfs::{bfs_with_opts, BfsOpts};
use push_pull::algo::cc::{cc_oracle, connected_components};
use push_pull::algo::mis::{maximal_independent_set, verify_mis};
use push_pull::algo::sssp::{dijkstra_oracle, sssp, SsspOpts};
use push_pull::algo::tricount::{triangle_count, triangle_oracle};
use push_pull::baselines::textbook::bfs_serial;
use push_pull::core::Direction;
use push_pull::matrix::{Coo, Graph};

fn arb_directed(n: usize, max_edges: usize) -> impl Strategy<Value = Graph<bool>> {
    (
        2..n,
        prop::collection::vec((0usize..n, 0usize..n), 0..max_edges),
    )
        .prop_map(move |(dim, edges)| {
            let mut coo = Coo::new(dim, dim);
            for (u, v) in edges {
                if u < dim && v < dim && u != v {
                    coo.push(u as u32, v as u32, true);
                }
            }
            coo.dedup(|a, _| a);
            Graph::from_coo(&coo)
        })
}

fn arb_undirected(n: usize, max_edges: usize) -> impl Strategy<Value = Graph<bool>> {
    (
        2..n,
        prop::collection::vec((0usize..n, 0usize..n), 0..max_edges),
    )
        .prop_map(move |(dim, edges)| {
            let mut coo = Coo::new(dim, dim);
            for (u, v) in edges {
                if u < dim && v < dim {
                    coo.push(u as u32, v as u32, true);
                }
            }
            coo.clean_undirected();
            Graph::from_coo(&coo)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bfs_matches_oracle_on_arbitrary_directed_graphs(
        g in arb_directed(60, 400),
        source_raw in 0usize..60,
        bits in 0u32..32,
        forced in prop::sample::select(vec![None, Some(Direction::Push), Some(Direction::Pull)]),
    ) {
        let source = (source_raw % g.n_vertices()) as u32;
        let opts = BfsOpts {
            change_of_direction: bits & 1 != 0,
            masking: bits & 2 != 0,
            early_exit: bits & 4 != 0,
            operand_reuse: bits & 8 != 0,
            structure_only: bits & 16 != 0,
            force: forced,
            ..BfsOpts::baseline()
        };
        let got = bfs_with_opts(&g, source, &opts, None);
        prop_assert_eq!(got.depths, bfs_serial(&g, source));
    }

    #[test]
    fn every_engine_matches_oracle(
        g in arb_undirected(50, 300),
        source_raw in 0usize..50,
    ) {
        let source = (source_raw % g.n_vertices()) as u32;
        let oracle = bfs_serial(&g, source);
        for engine in push_pull::baselines::all_engines() {
            let got = engine.bfs(&g, source);
            prop_assert_eq!(&got, &oracle, "engine {}", engine.name());
        }
    }

    #[test]
    fn sssp_matches_dijkstra(
        edges in prop::collection::vec((0usize..40, 0usize..40, 1u32..20), 0..250),
        source_raw in 0usize..40,
    ) {
        let dim = 40;
        let mut coo = Coo::new(dim, dim);
        for &(u, v, w) in &edges {
            if u != v {
                coo.push(u as u32, v as u32, w as f32);
            }
        }
        coo.dedup(|a, _| a);
        let g = Graph::from_coo(&coo);
        let source = (source_raw % dim) as u32;
        let got = sssp(&g, source, &SsspOpts::default());
        let expect = dijkstra_oracle(&g, source);
        for (i, (&got_d, &exp_d)) in got.dist.iter().zip(expect.iter()).enumerate() {
            if exp_d.is_infinite() {
                prop_assert!(got_d.is_infinite(), "vertex {}", i);
            } else {
                prop_assert!((got_d - exp_d).abs() < 1e-3, "vertex {}: {} vs {}", i, got_d, exp_d);
            }
        }
    }

    #[test]
    fn cc_matches_union_find(g in arb_undirected(80, 200)) {
        let r = connected_components(&g, 0.01);
        prop_assert_eq!(r.labels, cc_oracle(&g));
    }

    #[test]
    fn mis_always_valid(g in arb_undirected(60, 300), seed in 0u64..1000) {
        let r = maximal_independent_set(&g, seed);
        prop_assert!(verify_mis(&g, &r.in_set));
    }

    #[test]
    fn tricount_matches_bruteforce(g in arb_undirected(40, 250)) {
        prop_assert_eq!(triangle_count(&g), triangle_oracle(&g));
    }

    #[test]
    fn parent_bfs_always_yields_valid_tree(
        g in arb_undirected(50, 300),
        source_raw in 0usize..50,
        threshold in prop::sample::select(vec![0.0, 0.01, 2.0]),
    ) {
        use push_pull::algo::bfs_parents::{bfs_parents, verify_parents};
        let source = (source_raw % g.n_vertices()) as u32;
        let r = bfs_parents(&g, source, threshold);
        prop_assert!(verify_parents(&g, source, &r.parent));
    }

    #[test]
    fn ktruss_is_nested_and_valid(g in arb_undirected(30, 200)) {
        use push_pull::algo::ktruss::{ktruss, verify_ktruss};
        let t3 = ktruss(&g, 3);
        let t4 = ktruss(&g, 4);
        prop_assert!(verify_ktruss(&t3.truss, 3));
        prop_assert!(verify_ktruss(&t4.truss, 4));
        prop_assert!(t4.truss.nnz() <= t3.truss.nnz());
    }

    #[test]
    fn betweenness_matches_brandes(
        g in arb_undirected(30, 150),
        source_raw in 0usize..30,
    ) {
        use push_pull::algo::bc::{betweenness, brandes_oracle};
        let s = (source_raw % g.n_vertices()) as u32;
        let got = betweenness(&g, &[s]);
        let expect = brandes_oracle(&g, &[s]);
        for (i, (&a, &b)) in got.iter().zip(expect.iter()).enumerate() {
            prop_assert!((a - b).abs() < 1e-6, "vertex {}: {} vs {}", i, a, b);
        }
    }
}
