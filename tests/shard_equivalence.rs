//! Sharded-execution contract: running any kernel over a 2D shard grid is
//! an execution detail — values AND full counter snapshots (telemetry
//! aside) must be bit-identical to the unsharded oracle, for arbitrary
//! graphs and frontiers, every grid shape, and every lane count. f64
//! semirings make the check strict: floating-point ⊕ is order-sensitive,
//! so matching bits prove the stripe decomposition preserves the oracle's
//! per-destination accumulation order, not merely the output set.

use proptest::prelude::*;
use push_pull::core::descriptor::{Descriptor, Direction, MergeStrategy, ShardPolicy};
use push_pull::core::ops::{BoolOrAnd, PlusTimes};
use push_pull::core::{mxv, mxv_batch, FusedMxv, Mask, MultiVector, ShardGrid, Vector};
use push_pull::matrix::{Coo, Graph};
use push_pull::primitives::counters::{AccessCounters, CounterSnapshot};
use push_pull::primitives::BitVec;

const LANES: [usize; 3] = [1, 2, 8];
const GRIDS: [(u32, u32); 3] = [(1, 1), (2, 4), (4, 4)];

/// Shard telemetry describes the merge topology, which sharding
/// deliberately changes; everything else in the snapshot must match the
/// oracle bit for bit.
fn scrub(mut s: CounterSnapshot) -> CounterSnapshot {
    s.shard_merges = 0;
    s.cross_shard_writes = 0;
    s
}

/// Arbitrary weighted digraph (duplicates summed) on up to `n` vertices.
fn arb_graph(n: usize, max_edges: usize) -> impl Strategy<Value = Graph<f64>> {
    (
        2..n,
        prop::collection::vec((0usize..n, 0usize..n, 1u8..8), 1..max_edges),
    )
        .prop_map(move |(dim, edges)| {
            let mut coo = Coo::new(dim, dim);
            for (u, v, w) in edges {
                if u < dim && v < dim {
                    coo.push(u as u32, v as u32, f64::from(w) * 0.5);
                }
            }
            coo.dedup(|a, b| a + b);
            Graph::from_coo(&coo)
        })
}

fn sparse_frontier(dim: usize, ids: &[usize]) -> Vector<f64> {
    let mut sorted: Vec<u32> = ids
        .iter()
        .filter(|&&i| i < dim)
        .map(|&i| i as u32)
        .collect();
    sorted.sort_unstable();
    sorted.dedup();
    let vals = sorted.iter().map(|&i| f64::from(i % 5) + 1.0).collect();
    Vector::from_sparse(dim, 0.0, sorted, vals)
}

fn explicit(v: &Vector<f64>) -> Vec<(u32, f64)> {
    v.iter_explicit().collect()
}

/// Run one `mxv` and return (explicit output, scrubbed snapshot).
fn run_mxv(
    g: &Graph<f64>,
    f: &Vector<f64>,
    desc: &Descriptor,
) -> (Vec<(u32, f64)>, CounterSnapshot) {
    let c = AccessCounters::new();
    let out: Vector<f64> = mxv(None, PlusTimes, g, f, desc, Some(&c)).expect("mxv");
    (explicit(&out), scrub(c.snapshot()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded `mxv` ≡ unsharded `mxv`, push and pull, every grid, every
    /// lane count — and the sharded runs are lane-invariant themselves.
    #[test]
    fn sharded_mxv_is_bit_identical_to_unsharded(
        g in arb_graph(65, 400),
        frontier in prop::collection::vec(0usize..65, 1..30),
        dir_roll in 0u8..2,
    ) {
        let dir = if dir_roll == 0 { Direction::Push } else { Direction::Pull };
        let mut f = sparse_frontier(g.n_vertices(), &frontier);
        if dir == Direction::Pull {
            f.make_dense();
        }
        let base = Descriptor::new()
            .force(dir)
            .merge_strategy(MergeStrategy::SpaMerge);
        let oracle = run_mxv(&g, &f, &base);
        for (rs, cs) in GRIDS {
            let desc = base.shard_grid(ShardGrid::new(rs, cs));
            let mut per_lane = Vec::new();
            for lanes in LANES {
                let got = rayon::with_num_threads(lanes, || run_mxv(&g, &f, &desc));
                prop_assert_eq!(
                    &got, &oracle,
                    "{:?} grid {}x{} at {} lanes diverged from the oracle",
                    dir, rs, cs, lanes
                );
                per_lane.push(got);
            }
            for got in &per_lane {
                prop_assert_eq!(got, &per_lane[0]);
            }
        }
    }

    /// Sharded batched push ≡ unsharded batched push, values and shared
    /// counters, with the same per-source outputs either way.
    #[test]
    fn sharded_batch_matches_unsharded_batch(
        g in arb_graph(65, 300),
        rows in prop::collection::vec(prop::collection::vec(0usize..65, 1..12), 2..5),
        lane_idx in 0usize..3,
    ) {
        let n = g.n_vertices();
        let input = MultiVector::from_rows(
            rows.iter().map(|ids| sparse_frontier(n, ids)).collect(),
        );
        let base = Descriptor::new().force(Direction::Push);
        let run = |desc: &Descriptor| {
            let c = AccessCounters::new();
            let out: MultiVector<f64> =
                mxv_batch(None, PlusTimes, &g, &input, desc, None, Some(&c)).expect("batch");
            let rows: Vec<Vec<(u32, f64)>> =
                (0..out.k()).map(|r| explicit(out.row(r))).collect();
            (rows, scrub(c.snapshot()))
        };
        let oracle = run(&base);
        for (rs, cs) in GRIDS {
            let desc = base.shard_grid(ShardGrid::new(rs, cs));
            let got = rayon::with_num_threads(LANES[lane_idx], || run(&desc));
            prop_assert_eq!(&got, &oracle, "grid {}x{} diverged", rs, cs);
        }
    }
}

/// Fused push (mxv·apply·assign in one pass) under a shard grid: state
/// writes, touched sets, and counters match the unsharded fused run.
#[test]
fn sharded_fused_push_matches_unsharded() {
    let mut coo = Coo::new(65, 65);
    let mut state = 0x5EEDu64;
    for u in 0..65u32 {
        for _ in 0..4 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            coo.push(u, ((state >> 33) % 65) as u32, true);
        }
    }
    coo.dedup(|a, _| a);
    let g = Graph::from_coo(&coo);
    let f: Vector<bool> = Vector::from_sparse(65, false, vec![3, 17, 40, 64], vec![true; 4]);
    let visited = {
        let mut b = BitVec::new(65);
        for i in [3usize, 17, 40, 64] {
            b.set(i);
        }
        b
    };

    let run = |shards: ShardPolicy, lanes: usize| {
        rayon::with_num_threads(lanes, || {
            let mask = Mask::complement(&visited);
            let desc = Descriptor::new()
                .transpose(true)
                .force(Direction::Push)
                .merge_strategy(MergeStrategy::SpaMerge)
                .shard_policy(shards);
            let c = AccessCounters::new();
            let mut depth = vec![-1i32; 65];
            let out = FusedMxv::new(BoolOrAnd, &g, &f)
                .mask(&mask)
                .descriptor(desc)
                .counters(Some(&c))
                .apply(|_: bool| 1i32)
                .assign_into(&mut depth, |_, z| Some(z))
                .expect("fused");
            (out.touched, depth, scrub(c.snapshot()))
        })
    };

    let oracle = run(ShardPolicy::Off, 1);
    for (rs, cs) in GRIDS {
        for lanes in LANES {
            let got = run(ShardPolicy::Fixed(ShardGrid::new(rs, cs)), lanes);
            assert_eq!(
                got, oracle,
                "fused push grid {rs}x{cs} at {lanes} lanes diverged"
            );
        }
    }
}

/// Tile-boundary edge cases the proptest sweep may not pin down exactly:
/// a 65-vertex graph (no grid divides it evenly), a grid wider than the
/// populated column range (empty stripes), and a single-column grid.
#[test]
fn tile_boundary_edge_cases() {
    // All push destinations below 8 of a 65-wide output.
    let mut coo = Coo::new(65, 65);
    for u in 0..65u32 {
        coo.push(u % 8, u, f64::from(u % 3) + 1.0);
    }
    coo.dedup(|a, b| a + b);
    let g = Graph::from_coo(&coo);
    let f = sparse_frontier(65, &[0, 9, 31, 32, 33, 63, 64]);
    let base = Descriptor::new()
        .force(Direction::Push)
        .merge_strategy(MergeStrategy::SpaMerge);
    let oracle = run_mxv(&g, &f, &base);
    // 1×16: stripes past the populated range stay empty; 16×1: single
    // column stripe (the degenerate "no column blocking" shape); 4×4 on
    // n = 65: every stripe boundary is non-divisible.
    for (rs, cs) in [(1u32, 16u32), (16, 1), (4, 4)] {
        let desc = base.shard_grid(ShardGrid::new(rs, cs));
        for lanes in LANES {
            let got = rayon::with_num_threads(lanes, || run_mxv(&g, &f, &desc));
            assert_eq!(got, oracle, "grid {rs}x{cs} at {lanes} lanes");
        }
        // Telemetry: only populated stripes merge.
        let c = AccessCounters::new();
        let _: Vector<f64> = mxv(None, PlusTimes, &g, &f, &desc, Some(&c)).expect("mxv");
        let s = c.snapshot();
        assert!(s.shard_merges >= 1, "grid {rs}x{cs} recorded no merges");
        if cs == 16 {
            assert_eq!(
                s.shard_merges, 2,
                "destinations < 8 populate exactly the first two 65/16-wide stripes"
            );
        }
    }
}
