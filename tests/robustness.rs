//! Hardened-execution contract, always-on half: every guarded `try_*`
//! entry point must (1) surface tripped limits as **typed** errors, never
//! process aborts; (2) roll counters back so an aborted run leaves no
//! trace; and (3) make an immediate retry **bit-identical** — values and
//! counter snapshot — to an uninterrupted clean run, at 1, 2, and 8 lanes.
//! The injected-fault half (allocation failures, chunk panics, cost-model
//! skew) lives in `tests/fault_injection.rs` behind the `fault-injection`
//! feature.

use proptest::prelude::*;
use push_pull::algo::bc::try_betweenness_with_opts;
use push_pull::algo::bfs::{try_bfs_with_opts, BfsOpts};
use push_pull::algo::bfs_parents::{try_bfs_parents_with_opts, ParentBfsOpts};
use push_pull::algo::cc::{try_connected_components_with_opts, CcOpts};
use push_pull::algo::msbfs::{try_multi_source_bfs_with_opts, MsBfsOpts};
use push_pull::algo::pagerank::{try_pagerank_with_counters, PageRankOpts};
use push_pull::algo::sssp::{try_sssp_with_counters, SsspOpts};
use push_pull::core::descriptor::Direction;
use push_pull::core::{
    run_guarded, BudgetResource, ExecLimits, FormatPolicy, GrbError, GrbResult, StorageFormat,
};
use push_pull::gen::rmat::{rmat, RmatParams};
use push_pull::gen::with_uniform_weights;
use push_pull::matrix::{Dcsr, Graph};
use push_pull::primitives::counters::AccessCounters;
use std::time::Duration;

const LANES: [usize; 3] = [1, 2, 8];

fn test_graph() -> Graph<bool> {
    rmat(11, 16, RmatParams::default(), 11)
}

/// A deadline that already expired trips at the first checkpoint of every
/// guarded algorithm entry point and surfaces as `GrbError::Cancelled`.
#[test]
fn zero_deadline_cancels_every_algorithm() {
    let g = test_graph();
    let dead = ExecLimits::none().with_deadline(Duration::ZERO);
    let cancelled = Err(GrbError::Cancelled);

    let bfs_opts = BfsOpts {
        limits: dead,
        ..BfsOpts::default()
    };
    assert_eq!(
        try_bfs_with_opts(&g, 0, &bfs_opts, None).map(|r| r.levels),
        cancelled
    );

    let parent_opts = ParentBfsOpts {
        limits: dead,
        ..ParentBfsOpts::default()
    };
    assert_eq!(
        try_bfs_parents_with_opts(&g, 0, &parent_opts, None).map(|r| r.levels),
        cancelled
    );

    let cc_opts = CcOpts {
        limits: dead,
        ..CcOpts::default()
    };
    assert_eq!(
        try_connected_components_with_opts(&g, &cc_opts, None).map(|r| r.rounds),
        cancelled
    );

    let pr_opts = PageRankOpts {
        limits: dead,
        ..PageRankOpts::default()
    };
    assert_eq!(
        try_pagerank_with_counters(&g, &pr_opts, false, None).map(|r| r.iters),
        cancelled
    );

    let ms_opts = MsBfsOpts {
        limits: dead,
        ..MsBfsOpts::default()
    };
    assert_eq!(
        try_multi_source_bfs_with_opts(&g, &[0, 1, 2], &ms_opts, None).map(|r| r.levels),
        cancelled
    );

    let bc_opts = push_pull::algo::bc::BcOpts {
        limits: dead,
        ..Default::default()
    };
    assert_eq!(
        try_betweenness_with_opts(&g, &[0, 1], &bc_opts, None).map(|b| b.len()),
        cancelled
    );

    let gw = with_uniform_weights(&g, 7);
    let sssp_opts = SsspOpts {
        limits: dead,
        ..SsspOpts::default()
    };
    assert_eq!(
        try_sssp_with_counters(&gw, 0, &sssp_opts, None).map(|r| r.rounds),
        cancelled
    );
}

/// A generous (never-tripping) limit set must be completely transparent:
/// results and counter tallies identical to the unlimited run.
#[test]
fn untripped_limits_are_transparent() {
    let g = test_graph();
    let clean_c = AccessCounters::new();
    let clean = try_bfs_with_opts(&g, 0, &BfsOpts::default(), Some(&clean_c))
        .expect("unlimited run cannot abort");

    let roomy = BfsOpts {
        limits: ExecLimits::none()
            .with_deadline(Duration::from_secs(3600))
            .with_work_budget(u64::MAX)
            .with_bytes_budget(u64::MAX),
        ..BfsOpts::default()
    };
    let limited_c = AccessCounters::new();
    let limited =
        try_bfs_with_opts(&g, 0, &roomy, Some(&limited_c)).expect("roomy limits cannot trip");
    assert_eq!(limited.depths, clean.depths);
    assert_eq!(limited_c.snapshot(), clean_c.snapshot());
}

/// A tiny work budget aborts mid-traversal with a typed error, rolls the
/// shared counters back to their entry snapshot, and an immediate retry is
/// bit-identical to a clean run — values and counter snapshot — at every
/// lane count.
#[test]
fn work_budget_abort_then_retry_is_bit_identical() {
    let g = test_graph();
    for lanes in LANES {
        rayon::with_num_threads(lanes, || {
            let clean_c = AccessCounters::new();
            let clean = try_bfs_with_opts(&g, 0, &BfsOpts::default(), Some(&clean_c))
                .expect("clean run cannot abort");
            let clean_snap = clean_c.snapshot();

            // Shared counters carry pre-existing tallies that must survive
            // the rollback untouched.
            let c = AccessCounters::new();
            c.add_matrix(123);
            let baseline = c.snapshot();
            let starved = BfsOpts {
                limits: ExecLimits::none().with_work_budget(512),
                ..BfsOpts::default()
            };
            let aborted = try_bfs_with_opts(&g, 0, &starved, Some(&c));
            assert_eq!(
                aborted.map(|r| r.levels),
                Err(GrbError::BudgetExceeded {
                    resource: BudgetResource::Work
                }),
                "at {lanes} lanes"
            );
            assert_eq!(c.snapshot(), baseline, "abort rolled back at {lanes} lanes");

            let retry_c = AccessCounters::new();
            let retry = try_bfs_with_opts(&g, 0, &BfsOpts::default(), Some(&retry_c))
                .expect("retry cannot abort");
            assert_eq!(retry.depths, clean.depths, "retry values at {lanes} lanes");
            assert_eq!(
                retry_c.snapshot(),
                clean_snap,
                "retry counters at {lanes} lanes"
            );
        });
    }
}

/// A bytes budget too small for the hypersparse conversion denies the
/// format change instead of aborting: the run completes on the cached CSR
/// with identical values and records the denial in `limit_degrades`.
#[test]
fn bytes_budget_degrades_format_instead_of_aborting() {
    let g = test_graph();
    let base = BfsOpts {
        format: FormatPolicy::fixed(StorageFormat::Dcsr),
        force: Some(Direction::Pull),
        ..BfsOpts::default()
    };
    let clean_c = AccessCounters::new();
    let clean =
        try_bfs_with_opts(&g, 0, &base, Some(&clean_c)).expect("unlimited run cannot abort");

    // One byte short of the DCSR conversion estimate: the charge is denied
    // and nothing else in the pull-only fused pipeline consumes bytes.
    let conv = Dcsr::<bool>::estimate_bytes(g.nonempty_rows(true));
    let pinched = BfsOpts {
        limits: ExecLimits::none().with_bytes_budget(conv - 1),
        ..base
    };
    let degraded_c = AccessCounters::new();
    let degraded = try_bfs_with_opts(&g, 0, &pinched, Some(&degraded_c))
        .expect("denied conversion must degrade, not abort");
    assert_eq!(degraded.depths, clean.depths, "degrade is value-neutral");
    let snap = degraded_c.snapshot();
    assert!(
        snap.limit_degrades > 0,
        "the denial must be visible in telemetry"
    );
    assert_eq!(
        clean_c.snapshot().limit_degrades,
        0,
        "unlimited runs never degrade"
    );
}

/// A panicking worker chunk is caught at the chunk boundary, surfaces as
/// `WorkerPanicked` with the payload preserved, and leaves the pool and
/// the shared counters immediately usable.
#[test]
fn pool_panic_is_isolated_and_pool_stays_usable() {
    use rayon::prelude::*;
    let c = AccessCounters::new();
    c.add_matrix(9);
    let before = c.snapshot();
    let out: GrbResult<Vec<u64>> = rayon::with_num_threads(8, || {
        run_guarded(Some(&c), &ExecLimits::none(), |_| {
            Ok((0..256u64)
                .into_par_iter()
                .with_min_len(4)
                .map(|i| {
                    assert!(i != 130, "injected worker bug");
                    i
                })
                .collect())
        })
    });
    match out {
        Err(GrbError::WorkerPanicked { message, .. }) => {
            assert!(
                message.contains("injected worker bug"),
                "payload: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert_eq!(c.snapshot(), before, "panicked run rolled back");

    // The pool is unpoisoned: the same computation without the bug runs
    // clean right away, on the same counters.
    let ok: GrbResult<u64> = rayon::with_num_threads(8, || {
        run_guarded(Some(&c), &ExecLimits::none(), |_| {
            Ok((0..256u64).into_par_iter().with_min_len(4).sum())
        })
    });
    assert_eq!(ok, Ok(255 * 256 / 2));
}

/// Guarded aborts compose across algorithms: CC under a tiny budget
/// aborts typed and its retry matches the clean labels and counters.
#[test]
fn cc_abort_then_retry_matches_clean_run() {
    let g = test_graph();
    let clean_c = AccessCounters::new();
    let clean = try_connected_components_with_opts(&g, &CcOpts::default(), Some(&clean_c))
        .expect("clean run cannot abort");

    let starved = CcOpts {
        limits: ExecLimits::none().with_work_budget(256),
        ..CcOpts::default()
    };
    let c = AccessCounters::new();
    let baseline = c.snapshot();
    let aborted = try_connected_components_with_opts(&g, &starved, Some(&c));
    assert_eq!(
        aborted.map(|r| r.rounds),
        Err(GrbError::BudgetExceeded {
            resource: BudgetResource::Work
        })
    );
    assert_eq!(c.snapshot(), baseline);

    let retry_c = AccessCounters::new();
    let retry = try_connected_components_with_opts(&g, &CcOpts::default(), Some(&retry_c))
        .expect("retry cannot abort");
    assert_eq!(retry.labels, clean.labels);
    assert_eq!(retry_c.snapshot(), clean_c.snapshot());
}

/// Service-layer isolation: one request with an expired deadline inside
/// a coalesced batch aborts with its typed error while every sibling's
/// values and per-request counters are bit-identical to its solo run —
/// and the victim's immediate unlimited retry is bit-identical to a
/// fresh dispatch. At every lane count.
#[test]
fn coalesced_batch_isolates_tripped_request_and_retry_is_fresh() {
    use push_pull::service::{execute_batch, ExecOpts, Query, Request, ServiceGraphs};
    let g = test_graph();
    let gs = ServiceGraphs::new(g.clone(), with_uniform_weights(&g, 7));
    let opts = ExecOpts::default();
    let sources = [0u32, 17, 1234];
    for lanes in LANES {
        rayon::with_num_threads(lanes, || {
            let batch: Vec<Request> = sources
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let r = Request::new(i as u64, Query::Bfs { source: s });
                    if i == 1 {
                        r.with_limits(ExecLimits::none().with_deadline(Duration::ZERO))
                    } else {
                        r
                    }
                })
                .collect();
            let rs = execute_batch(&gs, &opts, &batch, None);
            assert_eq!(
                rs[1].result,
                Err(GrbError::Cancelled),
                "victim aborts typed at {lanes} lanes"
            );
            assert_eq!(
                rs[1].counters,
                push_pull::primitives::counters::CounterSnapshot::default(),
                "victim's counters restored at {lanes} lanes"
            );

            let solo = |id: u64, s: u32| {
                execute_batch(
                    &gs,
                    &opts,
                    &[Request::new(id, Query::Bfs { source: s })],
                    None,
                )
                .pop()
                .expect("one request, one response")
            };
            for i in [0usize, 2] {
                let alone = solo(9, sources[i]);
                assert_eq!(rs[i].result, alone.result, "sibling {i} at {lanes} lanes");
                assert_eq!(
                    rs[i].counters, alone.counters,
                    "sibling {i} counters at {lanes} lanes"
                );
            }

            // The victim's immediate unlimited retry carries no residue.
            let retry = solo(10, sources[1]);
            let fresh = solo(11, sources[1]);
            assert!(retry.result.is_ok(), "retry completes at {lanes} lanes");
            assert_eq!(retry.result, fresh.result, "retry values at {lanes} lanes");
            assert_eq!(
                retry.counters, fresh.counters,
                "retry counters at {lanes} lanes"
            );
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For an arbitrary work budget, the guarded BFS either completes
    /// bit-identically to the unlimited run or aborts with the typed
    /// budget error and a full counter rollback — and in both cases the
    /// follow-up unlimited retry is bit-identical to the clean run. Swept
    /// at 1/2/8 lanes so the abort point interacts with real chunking.
    #[test]
    fn any_work_budget_aborts_clean_or_completes_identically(
        budget in 1u64..2_000_000,
        lane_idx in 0usize..3,
    ) {
        let g = test_graph();
        let lanes = LANES[lane_idx];
        rayon::with_num_threads(lanes, || {
            let clean_c = AccessCounters::new();
            let clean = try_bfs_with_opts(&g, 0, &BfsOpts::default(), Some(&clean_c))
                .expect("clean run cannot abort");
            let clean_snap = clean_c.snapshot();

            let limited = BfsOpts {
                limits: ExecLimits::none().with_work_budget(budget),
                ..BfsOpts::default()
            };
            let c = AccessCounters::new();
            let baseline = c.snapshot();
            match try_bfs_with_opts(&g, 0, &limited, Some(&c)) {
                Ok(r) => {
                    assert_eq!(r.depths, clean.depths, "completed run diverged");
                    assert_eq!(c.snapshot(), clean_snap, "completed counters diverged");
                }
                Err(GrbError::BudgetExceeded { resource: BudgetResource::Work }) => {
                    assert_eq!(c.snapshot(), baseline, "abort left residue");
                }
                Err(other) => panic!("untyped outcome: {other}"),
            }

            let retry_c = AccessCounters::new();
            let retry = try_bfs_with_opts(&g, 0, &BfsOpts::default(), Some(&retry_c))
                .expect("retry cannot abort");
            assert_eq!(retry.depths, clean.depths);
            assert_eq!(retry_c.snapshot(), clean_snap);
        });
    }
}
