//! Property-based tests for the GraphBLAS core: the central invariant is
//! the paper's §4 isomorphism — push (column kernel) and pull (row kernel)
//! compute the same masked matvec on arbitrary graphs, vectors, and masks,
//! under every optimization configuration.

use proptest::prelude::*;
use push_pull::core::descriptor::{Descriptor, Direction, MergeStrategy};
use push_pull::core::ops::{BoolOrAnd, MinPlus};
use push_pull::core::vector_ops::{ewise_add, ewise_mult, filter_by_mask};
use push_pull::core::{mxv, Mask, Vector};
use push_pull::matrix::{Coo, Graph};
use push_pull::primitives::BitVec;

/// Arbitrary directed Boolean graph with up to `n` vertices.
fn arb_graph(n: usize, max_edges: usize) -> impl Strategy<Value = Graph<bool>> {
    (
        2..n,
        prop::collection::vec((0usize..n, 0usize..n), 0..max_edges),
    )
        .prop_map(move |(dim, edges)| {
            let mut coo = Coo::new(dim, dim);
            for (u, v) in edges {
                if u < dim && v < dim && u != v {
                    coo.push(u as u32, v as u32, true);
                }
            }
            coo.dedup(|a, _| a);
            Graph::from_coo(&coo)
        })
}

fn sparse_bool_vector(dim: usize, ids: &[usize]) -> Vector<bool> {
    let mut sorted: Vec<u32> = ids
        .iter()
        .filter(|&&i| i < dim)
        .map(|&i| i as u32)
        .collect();
    sorted.sort_unstable();
    sorted.dedup();
    let k = sorted.len();
    Vector::from_sparse(dim, false, sorted, vec![true; k])
}

fn explicit_set(v: &Vector<bool>) -> Vec<u32> {
    v.iter_explicit().map(|(i, _)| i).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Push ≡ pull, masked and unmasked, with and without every
    /// column-kernel option — the paper's central claim.
    #[test]
    fn push_equals_pull_everywhere(
        g in arb_graph(40, 300),
        f_ids in prop::collection::vec(0usize..40, 0..20),
        m_ids in prop::collection::vec(0usize..40, 0..20),
        complement in any::<bool>(),
        transpose in any::<bool>(),
        structure_only in any::<bool>(),
        strategy in prop::sample::select(vec![
            MergeStrategy::SortBased,
            MergeStrategy::HeapMerge,
            MergeStrategy::BitmaskCull,
            MergeStrategy::SpaMerge,
        ]),
        early_exit in any::<bool>(),
    ) {
        let n = g.n_vertices();
        let f = sparse_bool_vector(n, &f_ids);
        let mut bits = BitVec::new(n);
        for &i in &m_ids {
            if i < n {
                bits.set(i);
            }
        }
        let mask = if complement { Mask::complement(&bits) } else { Mask::new(&bits) };
        let base = Descriptor::new()
            .transpose(transpose)
            .structure_only(structure_only)
            .early_exit(early_exit)
            .merge_strategy(strategy);

        let push: Vector<bool> =
            mxv(Some(&mask), BoolOrAnd, &g, &f, &base.force(Direction::Push), None).unwrap();
        let pull: Vector<bool> =
            mxv(Some(&mask), BoolOrAnd, &g, &f, &base.force(Direction::Pull), None).unwrap();
        prop_assert_eq!(explicit_set(&push), explicit_set(&pull));

        // Unmasked too.
        let push_u: Vector<bool> =
            mxv(None, BoolOrAnd, &g, &f, &base.force(Direction::Push), None).unwrap();
        let pull_u: Vector<bool> =
            mxv(None, BoolOrAnd, &g, &f, &base.force(Direction::Pull), None).unwrap();
        prop_assert_eq!(explicit_set(&push_u), explicit_set(&pull_u));

        // Masked result = unmasked result filtered by the mask.
        let filtered = filter_by_mask(&push_u, &mask);
        prop_assert_eq!(explicit_set(&push), explicit_set(&filtered));
    }

    /// Parallel kernels ≡ sequential kernels on arbitrary graphs: the same
    /// mxv run at 1 and at 4 lanes must agree entry-for-entry, masked and
    /// unmasked, push and pull, under every merge strategy.
    #[test]
    fn parallel_equals_sequential_kernels(
        g in arb_graph(60, 500),
        f_ids in prop::collection::vec(0usize..60, 0..30),
        m_ids in prop::collection::vec(0usize..60, 0..30),
        transpose in any::<bool>(),
        strategy in prop::sample::select(vec![
            MergeStrategy::SortBased,
            MergeStrategy::HeapMerge,
            MergeStrategy::BitmaskCull,
            MergeStrategy::SpaMerge,
        ]),
    ) {
        let n = g.n_vertices();
        let f = sparse_bool_vector(n, &f_ids);
        let mut bits = BitVec::new(n);
        for &i in &m_ids {
            if i < n {
                bits.set(i);
            }
        }
        let mask = Mask::complement(&bits);
        for dir in [Direction::Push, Direction::Pull] {
            let desc = Descriptor::new()
                .transpose(transpose)
                .force(dir)
                .merge_strategy(strategy);
            let seq: Vector<bool> = rayon::with_num_threads(1, || {
                mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap()
            });
            let par: Vector<bool> = rayon::with_num_threads(4, || {
                mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap()
            });
            prop_assert_eq!(
                explicit_set(&seq),
                explicit_set(&par),
                "dir {:?} strategy {:?}",
                dir,
                strategy
            );
        }
    }

    /// Boolean mxv against a brute-force dense reference.
    #[test]
    fn bool_mxv_matches_dense_reference(
        g in arb_graph(30, 200),
        f_ids in prop::collection::vec(0usize..30, 0..15),
    ) {
        let n = g.n_vertices();
        let f = sparse_bool_vector(n, &f_ids);
        let desc = Descriptor::new().transpose(true).force(Direction::Push);
        let got: Vector<bool> = mxv(None, BoolOrAnd, &g, &f, &desc, None).unwrap();
        // Reference: child j is reachable iff some explicit f(i) has edge i→j.
        let mut expect: Vec<u32> = Vec::new();
        for j in 0..n as u32 {
            let hit = f.iter_explicit().any(|(i, _)| g.children(i).contains(&j));
            if hit {
                expect.push(j);
            }
        }
        prop_assert_eq!(explicit_set(&got), expect);
    }

    /// Min-plus push ≡ min-plus pull on arbitrary weighted graphs.
    #[test]
    fn min_plus_push_equals_pull(
        edges in prop::collection::vec((0usize..25, 0usize..25, 1u32..100), 0..150),
        seeds in prop::collection::vec((0usize..25, 0u32..50), 1..8),
    ) {
        let dim = 25;
        let mut coo = Coo::new(dim, dim);
        for &(u, v, w) in &edges {
            if u != v {
                coo.push(u as u32, v as u32, w as f32);
            }
        }
        coo.dedup(|a, _| a);
        let g = Graph::from_coo(&coo);
        let mut ids: Vec<u32> = seeds.iter().map(|&(i, _)| i as u32).collect();
        ids.sort_unstable();
        ids.dedup();
        let vals: Vec<f32> = ids.iter().map(|&i| {
            seeds.iter().find(|&&(j, _)| j as u32 == i).map(|&(_, d)| d as f32).unwrap_or(0.0)
        }).collect();
        let d = Vector::from_sparse(dim, f32::INFINITY, ids, vals);
        let base = Descriptor::new().transpose(true);
        let push: Vector<f32> = mxv(None, MinPlus, &g, &d, &base.force(Direction::Push), None).unwrap();
        let pull: Vector<f32> = mxv(None, MinPlus, &g, &d, &base.force(Direction::Pull), None).unwrap();
        for i in 0..dim as u32 {
            prop_assert_eq!(push.get(i), pull.get(i), "vertex {}", i);
        }
    }

    /// Sparse↔dense conversion is lossless and convert() preserves content.
    #[test]
    fn storage_conversion_roundtrip(
        dim in 1usize..200,
        ids in prop::collection::vec(0usize..200, 0..50),
    ) {
        let v = sparse_bool_vector(dim, &ids);
        let before = explicit_set(&v);
        let mut w = v.clone();
        w.make_dense();
        prop_assert_eq!(&explicit_set(&w), &before);
        prop_assert_eq!(w.nnz(), before.len());
        w.make_sparse();
        prop_assert_eq!(&explicit_set(&w), &before);
        let mut state = push_pull::core::ConvertState::new();
        let mut c = v.clone();
        let _ = c.convert(&mut state, 0.01);
        prop_assert_eq!(&explicit_set(&c), &before);
    }

    /// Matrix eWise ops against per-cell dense references.
    #[test]
    fn matrix_ewise_matches_dense_reference(
        a_cells in prop::collection::btree_map((0u32..12, 0u32..12), 1i64..50, 0..40),
        b_cells in prop::collection::btree_map((0u32..12, 0u32..12), 1i64..50, 0..40),
    ) {
        use push_pull::core::matrix_ops::{matrix_ewise_add, matrix_ewise_mult};
        use push_pull::matrix::Csr;
        let build = |cells: &std::collections::BTreeMap<(u32, u32), i64>| {
            let mut coo = Coo::new(12, 12);
            for (&(r, c), &v) in cells {
                coo.push(r, c, v);
            }
            Csr::from_coo(&coo)
        };
        let (a, b) = (build(&a_cells), build(&b_cells));
        let mult = matrix_ewise_mult(&a, &b, |x, y| x * y);
        let add = matrix_ewise_add(&a, &b, |x, y| x + y);
        for r in 0..12u32 {
            for c in 0..12u32 {
                let xa = a_cells.get(&(r, c)).copied();
                let xb = b_cells.get(&(r, c)).copied();
                let got_mult = mult
                    .row(r as usize)
                    .binary_search(&c)
                    .ok()
                    .map(|p| mult.row_values(r as usize)[p]);
                let got_add = add
                    .row(r as usize)
                    .binary_search(&c)
                    .ok()
                    .map(|p| add.row_values(r as usize)[p]);
                let want_mult = match (xa, xb) {
                    (Some(x), Some(y)) => Some(x * y),
                    _ => None,
                };
                let want_add = match (xa, xb) {
                    (Some(x), Some(y)) => Some(x + y),
                    (Some(x), None) | (None, Some(x)) => Some(x),
                    (None, None) => None,
                };
                prop_assert_eq!(got_mult, want_mult, "mult at ({}, {})", r, c);
                prop_assert_eq!(got_add, want_add, "add at ({}, {})", r, c);
            }
        }
    }

    /// reduce_rows under + equals per-row sums; extract of everything is
    /// the identity.
    #[test]
    fn matrix_reduce_and_extract_invariants(
        cells in prop::collection::btree_map((0u32..15, 0u32..15), 1i64..100, 0..60),
    ) {
        use push_pull::core::matrix_ops::{extract, reduce_rows};
        use push_pull::core::ops::PlusMonoid;
        use push_pull::matrix::Csr;
        let mut coo = Coo::new(15, 15);
        for (&(r, c), &v) in &cells {
            coo.push(r, c, v);
        }
        let a = Csr::from_coo(&coo);
        let sums = reduce_rows(&a, PlusMonoid);
        for r in 0..15u32 {
            let want: i64 = cells
                .iter()
                .filter(|(&(rr, _), _)| rr == r)
                .map(|(_, &v)| v)
                .sum();
            prop_assert_eq!(sums.get(r), want, "row {}", r);
        }
        let all: Vec<u32> = (0..15).collect();
        prop_assert_eq!(extract(&a, &all, &all), a);
    }

    /// eWiseAdd/eWiseMult against BTreeMap references.
    #[test]
    fn ewise_ops_match_reference(
        a in prop::collection::btree_map(0u32..100, 1i64..50, 0..40),
        b in prop::collection::btree_map(0u32..100, 1i64..50, 0..40),
    ) {
        let dim = 100;
        let mk = |m: &std::collections::BTreeMap<u32, i64>| {
            Vector::from_sparse(
                dim,
                0i64,
                m.keys().copied().collect(),
                m.values().copied().collect(),
            )
        };
        let (u, v) = (mk(&a), mk(&b));
        let mult = ewise_mult(&u, &v, |x, y| x * y);
        let add = ewise_add(&u, &v, |x, y| x + y);
        for i in 0..dim as u32 {
            let (x, y) = (a.get(&i).copied(), b.get(&i).copied());
            let expect_mult = match (x, y) {
                (Some(x), Some(y)) => x * y,
                _ => 0,
            };
            let expect_add = x.unwrap_or(0) + y.unwrap_or(0);
            prop_assert_eq!(mult.get(i), expect_mult);
            prop_assert_eq!(add.get(i), expect_add);
        }
    }
}
