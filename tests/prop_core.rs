//! Property-based tests for the GraphBLAS core: the central invariant is
//! the paper's §4 isomorphism — push (column kernel) and pull (row kernel)
//! compute the same masked matvec on arbitrary graphs, vectors, and masks,
//! under every optimization configuration.

use proptest::prelude::*;
use push_pull::algo::msbfs::multi_source_bfs_with_opts;
use push_pull::algo::msbfs::MsBfsOpts;
use push_pull::core::descriptor::{Descriptor, Direction, MergeStrategy};
use push_pull::core::ops::{BoolOrAnd, MinPlus};
use push_pull::core::vector_ops::{ewise_add, ewise_mult, filter_by_mask};
use push_pull::core::{mxv, mxv_batch, DirectionPolicy, Mask, MultiVector, Vector};
use push_pull::gen::erdos::erdos_renyi;
use push_pull::gen::powerlaw::{chung_lu, PowerLawParams};
use push_pull::matrix::{Coo, Graph};
use push_pull::primitives::counters::AccessCounters;
use push_pull::primitives::BitVec;

/// Arbitrary directed Boolean graph with up to `n` vertices.
fn arb_graph(n: usize, max_edges: usize) -> impl Strategy<Value = Graph<bool>> {
    (
        2..n,
        prop::collection::vec((0usize..n, 0usize..n), 0..max_edges),
    )
        .prop_map(move |(dim, edges)| {
            let mut coo = Coo::new(dim, dim);
            for (u, v) in edges {
                if u < dim && v < dim && u != v {
                    coo.push(u as u32, v as u32, true);
                }
            }
            coo.dedup(|a, _| a);
            Graph::from_coo(&coo)
        })
}

fn sparse_bool_vector(dim: usize, ids: &[usize]) -> Vector<bool> {
    let mut sorted: Vec<u32> = ids
        .iter()
        .filter(|&&i| i < dim)
        .map(|&i| i as u32)
        .collect();
    sorted.sort_unstable();
    sorted.dedup();
    let k = sorted.len();
    Vector::from_sparse(dim, false, sorted, vec![true; k])
}

fn explicit_set(v: &Vector<bool>) -> Vec<u32> {
    v.iter_explicit().map(|(i, _)| i).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Push ≡ pull, masked and unmasked, with and without every
    /// column-kernel option — the paper's central claim.
    #[test]
    fn push_equals_pull_everywhere(
        g in arb_graph(40, 300),
        f_ids in prop::collection::vec(0usize..40, 0..20),
        m_ids in prop::collection::vec(0usize..40, 0..20),
        complement in any::<bool>(),
        transpose in any::<bool>(),
        structure_only in any::<bool>(),
        strategy in prop::sample::select(vec![
            MergeStrategy::SortBased,
            MergeStrategy::HeapMerge,
            MergeStrategy::BitmaskCull,
            MergeStrategy::SpaMerge,
        ]),
        early_exit in any::<bool>(),
    ) {
        let n = g.n_vertices();
        let f = sparse_bool_vector(n, &f_ids);
        let mut bits = BitVec::new(n);
        for &i in &m_ids {
            if i < n {
                bits.set(i);
            }
        }
        let mask = if complement { Mask::complement(&bits) } else { Mask::new(&bits) };
        let base = Descriptor::new()
            .transpose(transpose)
            .structure_only(structure_only)
            .early_exit(early_exit)
            .merge_strategy(strategy);

        let push: Vector<bool> =
            mxv(Some(&mask), BoolOrAnd, &g, &f, &base.force(Direction::Push), None).unwrap();
        let pull: Vector<bool> =
            mxv(Some(&mask), BoolOrAnd, &g, &f, &base.force(Direction::Pull), None).unwrap();
        prop_assert_eq!(explicit_set(&push), explicit_set(&pull));

        // Unmasked too.
        let push_u: Vector<bool> =
            mxv(None, BoolOrAnd, &g, &f, &base.force(Direction::Push), None).unwrap();
        let pull_u: Vector<bool> =
            mxv(None, BoolOrAnd, &g, &f, &base.force(Direction::Pull), None).unwrap();
        prop_assert_eq!(explicit_set(&push_u), explicit_set(&pull_u));

        // Masked result = unmasked result filtered by the mask.
        let filtered = filter_by_mask(&push_u, &mask);
        prop_assert_eq!(explicit_set(&push), explicit_set(&filtered));
    }

    /// Parallel kernels ≡ sequential kernels on arbitrary graphs: the same
    /// mxv run at 1 and at 4 lanes must agree entry-for-entry, masked and
    /// unmasked, push and pull, under every merge strategy.
    #[test]
    fn parallel_equals_sequential_kernels(
        g in arb_graph(60, 500),
        f_ids in prop::collection::vec(0usize..60, 0..30),
        m_ids in prop::collection::vec(0usize..60, 0..30),
        transpose in any::<bool>(),
        strategy in prop::sample::select(vec![
            MergeStrategy::SortBased,
            MergeStrategy::HeapMerge,
            MergeStrategy::BitmaskCull,
            MergeStrategy::SpaMerge,
        ]),
    ) {
        let n = g.n_vertices();
        let f = sparse_bool_vector(n, &f_ids);
        let mut bits = BitVec::new(n);
        for &i in &m_ids {
            if i < n {
                bits.set(i);
            }
        }
        let mask = Mask::complement(&bits);
        for dir in [Direction::Push, Direction::Pull] {
            let desc = Descriptor::new()
                .transpose(transpose)
                .force(dir)
                .merge_strategy(strategy);
            let seq: Vector<bool> = rayon::with_num_threads(1, || {
                mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap()
            });
            let par: Vector<bool> = rayon::with_num_threads(4, || {
                mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).unwrap()
            });
            prop_assert_eq!(
                explicit_set(&seq),
                explicit_set(&par),
                "dir {:?} strategy {:?}",
                dir,
                strategy
            );
        }
    }

    /// The batched-kernel equivalence contract on random Erdős–Rényi and
    /// power-law graphs: one `mxv_batch` call is bit-identical — explicit
    /// sets *and* access counters (including the per-row push/pull step
    /// decisions) — to `k` independent single-source `mxv` runs, each
    /// forced to the direction the batch resolved for that row (push rows
    /// take the SpaMerge column kernel, the batch's merge arm).
    #[test]
    fn batched_kernel_equals_k_single_source_runs(
        seed in 0u64..2000,
        power_law in any::<bool>(),
        n_raw in 30usize..120,
        rows_ids in prop::collection::vec(prop::collection::vec(0usize..120, 0..25), 1..6),
        m_ids in prop::collection::vec(prop::collection::vec(0usize..120, 0..40), 1..6),
        complement in any::<bool>(),
        masked in any::<bool>(),
        dir_bits in 0u32..64,
    ) {
        let g = if power_law {
            chung_lu(n_raw, 6, PowerLawParams::default(), seed)
        } else {
            erdos_renyi(n_raw, n_raw * 4, seed)
        };
        let n = g.n_vertices();
        let k = rows_ids.len();
        let rows: Vec<Vector<bool>> =
            rows_ids.iter().map(|ids| sparse_bool_vector(n, ids)).collect();
        let batch = MultiVector::from_rows(rows.clone());
        // Per-row directions from the proptest bits, realized as fixed
        // per-row policies under an Auto descriptor.
        let dirs: Vec<Direction> = (0..k)
            .map(|r| if dir_bits >> r & 1 == 1 { Direction::Pull } else { Direction::Push })
            .collect();
        let mut policies: Vec<DirectionPolicy> =
            dirs.iter().map(|&d| DirectionPolicy::fixed(d)).collect();
        let bits: Vec<BitVec> = (0..k)
            .map(|r| {
                let mut b = BitVec::new(n);
                for &i in &m_ids[r % m_ids.len()] {
                    if i < n {
                        b.set(i);
                    }
                }
                b
            })
            .collect();
        let masks: Vec<Mask<'_>> = bits
            .iter()
            .map(|b| if complement { Mask::complement(b) } else { Mask::new(b) })
            .collect();
        let desc = Descriptor::new().transpose(true);

        let batch_counters = AccessCounters::new();
        let out: MultiVector<bool> = mxv_batch(
            masked.then_some(masks.as_slice()),
            BoolOrAnd,
            &g,
            &batch,
            &desc,
            Some(&mut policies),
            Some(&batch_counters),
        )
        .unwrap();

        let single_counters = AccessCounters::new();
        for r in 0..k {
            let single_desc = desc
                .force(dirs[r])
                .merge_strategy(MergeStrategy::SpaMerge);
            let single: Vector<bool> = mxv(
                masked.then_some(&masks[r]),
                BoolOrAnd,
                &g,
                &rows[r],
                &single_desc,
                Some(&single_counters),
            )
            .unwrap();
            prop_assert_eq!(
                explicit_set(out.row(r)),
                explicit_set(&single),
                "row {} dir {:?}",
                r,
                dirs[r]
            );
        }
        prop_assert_eq!(batch_counters.snapshot(), single_counters.snapshot());
    }

    /// The algorithm-level equivalence contract on random graphs: a
    /// k-source batched BFS produces the same depths and the same access
    /// counters as k single-source runs of the same machinery.
    #[test]
    fn batched_bfs_equals_k_single_source_runs(
        seed in 0u64..2000,
        power_law in any::<bool>(),
        n_raw in 30usize..120,
        source_picks in prop::collection::vec(0usize..120, 1..5),
    ) {
        let g = if power_law {
            chung_lu(n_raw, 6, PowerLawParams::default(), seed)
        } else {
            erdos_renyi(n_raw, n_raw * 3, seed)
        };
        let n = g.n_vertices();
        let sources: Vec<u32> = source_picks.iter().map(|&s| (s % n) as u32).collect();
        let opts = MsBfsOpts::default();
        let batch_counters = AccessCounters::new();
        let batch = multi_source_bfs_with_opts(&g, &sources, &opts, Some(&batch_counters));
        let single_counters = AccessCounters::new();
        for (r, &s) in sources.iter().enumerate() {
            let single = multi_source_bfs_with_opts(&g, &[s], &opts, Some(&single_counters));
            prop_assert_eq!(&batch.depths[r], &single.depths[0], "source {}", s);
            // Serial oracle agreement per source.
            prop_assert_eq!(
                &single.depths[0],
                &push_pull::baselines::textbook::bfs_serial(&g, s)
            );
        }
        prop_assert_eq!(batch_counters.snapshot(), single_counters.snapshot());
    }

    /// Boolean mxv against a brute-force dense reference.
    #[test]
    fn bool_mxv_matches_dense_reference(
        g in arb_graph(30, 200),
        f_ids in prop::collection::vec(0usize..30, 0..15),
    ) {
        let n = g.n_vertices();
        let f = sparse_bool_vector(n, &f_ids);
        let desc = Descriptor::new().transpose(true).force(Direction::Push);
        let got: Vector<bool> = mxv(None, BoolOrAnd, &g, &f, &desc, None).unwrap();
        // Reference: child j is reachable iff some explicit f(i) has edge i→j.
        let mut expect: Vec<u32> = Vec::new();
        for j in 0..n as u32 {
            let hit = f.iter_explicit().any(|(i, _)| g.children(i).contains(&j));
            if hit {
                expect.push(j);
            }
        }
        prop_assert_eq!(explicit_set(&got), expect);
    }

    /// Min-plus push ≡ min-plus pull on arbitrary weighted graphs.
    #[test]
    fn min_plus_push_equals_pull(
        edges in prop::collection::vec((0usize..25, 0usize..25, 1u32..100), 0..150),
        seeds in prop::collection::vec((0usize..25, 0u32..50), 1..8),
    ) {
        let dim = 25;
        let mut coo = Coo::new(dim, dim);
        for &(u, v, w) in &edges {
            if u != v {
                coo.push(u as u32, v as u32, w as f32);
            }
        }
        coo.dedup(|a, _| a);
        let g = Graph::from_coo(&coo);
        let mut ids: Vec<u32> = seeds.iter().map(|&(i, _)| i as u32).collect();
        ids.sort_unstable();
        ids.dedup();
        let vals: Vec<f32> = ids.iter().map(|&i| {
            seeds.iter().find(|&&(j, _)| j as u32 == i).map(|&(_, d)| d as f32).unwrap_or(0.0)
        }).collect();
        let d = Vector::from_sparse(dim, f32::INFINITY, ids, vals);
        let base = Descriptor::new().transpose(true);
        let push: Vector<f32> = mxv(None, MinPlus, &g, &d, &base.force(Direction::Push), None).unwrap();
        let pull: Vector<f32> = mxv(None, MinPlus, &g, &d, &base.force(Direction::Pull), None).unwrap();
        for i in 0..dim as u32 {
            prop_assert_eq!(push.get(i), pull.get(i), "vertex {}", i);
        }
    }

    /// Sparse↔dense conversion is lossless and convert() preserves content.
    #[test]
    fn storage_conversion_roundtrip(
        dim in 1usize..200,
        ids in prop::collection::vec(0usize..200, 0..50),
    ) {
        let v = sparse_bool_vector(dim, &ids);
        let before = explicit_set(&v);
        let mut w = v.clone();
        w.make_dense();
        prop_assert_eq!(&explicit_set(&w), &before);
        prop_assert_eq!(w.nnz(), before.len());
        w.make_sparse();
        prop_assert_eq!(&explicit_set(&w), &before);
        let mut state = push_pull::core::ConvertState::new();
        let mut c = v.clone();
        let _ = c.convert(&mut state, 0.01);
        prop_assert_eq!(&explicit_set(&c), &before);
    }

    /// Matrix eWise ops against per-cell dense references.
    #[test]
    fn matrix_ewise_matches_dense_reference(
        a_cells in prop::collection::btree_map((0u32..12, 0u32..12), 1i64..50, 0..40),
        b_cells in prop::collection::btree_map((0u32..12, 0u32..12), 1i64..50, 0..40),
    ) {
        use push_pull::core::matrix_ops::{matrix_ewise_add, matrix_ewise_mult};
        use push_pull::matrix::Csr;
        let build = |cells: &std::collections::BTreeMap<(u32, u32), i64>| {
            let mut coo = Coo::new(12, 12);
            for (&(r, c), &v) in cells {
                coo.push(r, c, v);
            }
            Csr::from_coo(&coo)
        };
        let (a, b) = (build(&a_cells), build(&b_cells));
        let mult = matrix_ewise_mult(&a, &b, |x, y| x * y);
        let add = matrix_ewise_add(&a, &b, |x, y| x + y);
        for r in 0..12u32 {
            for c in 0..12u32 {
                let xa = a_cells.get(&(r, c)).copied();
                let xb = b_cells.get(&(r, c)).copied();
                let got_mult = mult
                    .row(r as usize)
                    .binary_search(&c)
                    .ok()
                    .map(|p| mult.row_values(r as usize)[p]);
                let got_add = add
                    .row(r as usize)
                    .binary_search(&c)
                    .ok()
                    .map(|p| add.row_values(r as usize)[p]);
                let want_mult = match (xa, xb) {
                    (Some(x), Some(y)) => Some(x * y),
                    _ => None,
                };
                let want_add = match (xa, xb) {
                    (Some(x), Some(y)) => Some(x + y),
                    (Some(x), None) | (None, Some(x)) => Some(x),
                    (None, None) => None,
                };
                prop_assert_eq!(got_mult, want_mult, "mult at ({}, {})", r, c);
                prop_assert_eq!(got_add, want_add, "add at ({}, {})", r, c);
            }
        }
    }

    /// reduce_rows under + equals per-row sums; extract of everything is
    /// the identity.
    #[test]
    fn matrix_reduce_and_extract_invariants(
        cells in prop::collection::btree_map((0u32..15, 0u32..15), 1i64..100, 0..60),
    ) {
        use push_pull::core::matrix_ops::{extract, reduce_rows};
        use push_pull::core::ops::PlusMonoid;
        use push_pull::matrix::Csr;
        let mut coo = Coo::new(15, 15);
        for (&(r, c), &v) in &cells {
            coo.push(r, c, v);
        }
        let a = Csr::from_coo(&coo);
        let sums = reduce_rows(&a, PlusMonoid);
        for r in 0..15u32 {
            let want: i64 = cells
                .iter()
                .filter(|(&(rr, _), _)| rr == r)
                .map(|(_, &v)| v)
                .sum();
            prop_assert_eq!(sums.get(r), want, "row {}", r);
        }
        let all: Vec<u32> = (0..15).collect();
        prop_assert_eq!(extract(&a, &all, &all), a);
    }

    /// eWiseAdd/eWiseMult against BTreeMap references.
    #[test]
    fn ewise_ops_match_reference(
        a in prop::collection::btree_map(0u32..100, 1i64..50, 0..40),
        b in prop::collection::btree_map(0u32..100, 1i64..50, 0..40),
    ) {
        let dim = 100;
        let mk = |m: &std::collections::BTreeMap<u32, i64>| {
            Vector::from_sparse(
                dim,
                0i64,
                m.keys().copied().collect(),
                m.values().copied().collect(),
            )
        };
        let (u, v) = (mk(&a), mk(&b));
        let mult = ewise_mult(&u, &v, |x, y| x * y);
        let add = ewise_add(&u, &v, |x, y| x + y);
        for i in 0..dim as u32 {
            let (x, y) = (a.get(&i).copied(), b.get(&i).copied());
            let expect_mult = match (x, y) {
                (Some(x), Some(y)) => x * y,
                _ => 0,
            };
            let expect_add = x.unwrap_or(0) + y.unwrap_or(0);
            prop_assert_eq!(mult.get(i), expect_mult);
            prop_assert_eq!(add.get(i), expect_add);
        }
    }
}

// ---------------------------------------------------------------------------
// Storage-format equivalence: the Fixed(Bitmap) / Fixed(Dcsr) / Auto plans
// against the Fixed(Csr) oracle — values AND access counters bit-identical
// (the format_switches tally is projected out: an Auto policy converts,
// the oracle never does). Kernel-level and whole-algorithm.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `mxv` under every forced format and the Auto plan produces the CSR
    /// oracle's explicit set and counter snapshot, both faces, masked and
    /// unmasked.
    #[test]
    fn mxv_formats_match_csr_oracle(
        g in arb_graph(50, 400),
        f_ids in prop::collection::vec(0usize..50, 0..25),
        m_ids in prop::collection::vec(0usize..50, 0..25),
        transpose in any::<bool>(),
        masked in any::<bool>(),
    ) {
        use push_pull::core::StorageFormat;
        let n = g.n_vertices();
        let f = sparse_bool_vector(n, &f_ids);
        let mut bits = BitVec::new(n);
        for &i in &m_ids {
            if i < n {
                bits.set(i);
            }
        }
        for dir in [Direction::Push, Direction::Pull] {
            let run = |fmt: Option<StorageFormat>| {
                let desc = Descriptor::new().transpose(transpose).force(dir);
                let desc = match fmt {
                    Some(fmt) => desc.force_format(fmt),
                    None => desc, // the planner's Auto rule
                };
                let mask = Mask::complement(&bits);
                let c = AccessCounters::new();
                let w: Vector<bool> =
                    mxv(masked.then_some(&mask), BoolOrAnd, &g, &f, &desc, Some(&c)).unwrap();
                (explicit_set(&w), c.snapshot())
            };
            let oracle = run(Some(StorageFormat::Csr));
            for arm in [
                Some(StorageFormat::Bitmap),
                Some(StorageFormat::Dcsr),
                None,
            ] {
                let got = run(arm);
                prop_assert_eq!(&got.0, &oracle.0, "values: {:?} {:?}", dir, arm);
                prop_assert_eq!(got.1, oracle.1, "counters: {:?} {:?}", dir, arm);
            }
        }
    }

    /// Whole-algorithm format equivalence on random power-law/Erdős
    /// graphs: BFS, parent BFS, CC, SSSP, PageRank, msbfs, and batched BC
    /// under `Fixed(Bitmap)`, `Fixed(Dcsr)`, and `Auto` are bit-identical
    /// in results and in every counter except `format_switches` to the
    /// `Fixed(Csr)` oracle.
    #[test]
    fn algorithms_formats_match_csr_oracle(
        seed in 0u64..500,
        power_law in any::<bool>(),
        n_raw in 24usize..96,
        source_bits in 0usize..24,
    ) {
        use push_pull::algo::bc::{betweenness_with_opts, BcOpts};
        use push_pull::algo::bfs::{bfs_with_opts, BfsOpts};
        use push_pull::algo::bfs_parents::{bfs_parents_with_opts, ParentBfsOpts};
        use push_pull::algo::cc::{connected_components_with_opts, CcOpts};
        use push_pull::algo::pagerank::{pagerank_with_counters, PageRankOpts};
        use push_pull::algo::sssp::{sssp_with_counters, SsspOpts};
        use push_pull::core::{FormatPolicy, StorageFormat};
        use push_pull::gen::with_uniform_weights;

        let g = if power_law {
            chung_lu(n_raw, 5, PowerLawParams::default(), seed)
        } else {
            erdos_renyi(n_raw, n_raw * 3, seed)
        };
        let gw = with_uniform_weights(&g, seed ^ 0x5eed);
        let n = g.n_vertices();
        let source = (source_bits % n) as u32;
        let sources = [source, ((source_bits * 7 + 1) % n) as u32];

        let policies = [
            FormatPolicy::fixed(StorageFormat::Csr),
            FormatPolicy::fixed(StorageFormat::Bitmap),
            FormatPolicy::fixed(StorageFormat::Dcsr),
            FormatPolicy::auto(),
        ];

        // Each closure returns (comparable result bits, counter snapshot
        // with format_switches projected out).
        type Arm<'a> =
            Box<dyn Fn(FormatPolicy) -> (Vec<u64>, push_pull::primitives::counters::CounterSnapshot) + 'a>;
        let arms: Vec<Arm<'_>> = vec![
            Box::new(|p| {
                let c = AccessCounters::new();
                let r = bfs_with_opts(&g, source, &BfsOpts { format: p, ..BfsOpts::default() }, Some(&c));
                (r.depths.iter().map(|&d| d as u64).collect(), c.snapshot().without_format_switches())
            }),
            Box::new(|p| {
                let c = AccessCounters::new();
                let r = bfs_parents_with_opts(
                    &g, source, &ParentBfsOpts { format: p, ..ParentBfsOpts::default() }, Some(&c));
                (r.parent.iter().map(|&x| u64::from(x)).collect(), c.snapshot().without_format_switches())
            }),
            Box::new(|p| {
                let c = AccessCounters::new();
                let r = connected_components_with_opts(
                    &g, &CcOpts { format: p, ..CcOpts::default() }, Some(&c));
                (r.labels.iter().map(|&x| u64::from(x)).collect(), c.snapshot().without_format_switches())
            }),
            Box::new(|p| {
                let c = AccessCounters::new();
                let r = sssp_with_counters(
                    &gw, source, &SsspOpts { format: p, ..SsspOpts::default() }, Some(&c));
                (r.dist.iter().map(|x| u64::from(x.to_bits())).collect(), c.snapshot().without_format_switches())
            }),
            Box::new(|p| {
                let c = AccessCounters::new();
                let r = pagerank_with_counters(
                    &g, &PageRankOpts { format: p, ..PageRankOpts::default() }, true, Some(&c));
                (r.ranks.iter().map(|x| x.to_bits()).collect(), c.snapshot().without_format_switches())
            }),
            Box::new(|p| {
                let c = AccessCounters::new();
                let r = multi_source_bfs_with_opts(
                    &g, &sources, &MsBfsOpts { format: p, ..MsBfsOpts::default() }, Some(&c));
                (
                    r.depths.iter().flatten().map(|&d| d as u64).collect(),
                    c.snapshot().without_format_switches(),
                )
            }),
            Box::new(|p| {
                let c = AccessCounters::new();
                let opts = BcOpts { format: p, ..BcOpts::default() };
                let bc = betweenness_with_opts(&g, &sources, &opts, Some(&c));
                (bc.iter().map(|x| x.to_bits()).collect(), c.snapshot().without_format_switches())
            }),
        ];

        for (idx, arm) in arms.iter().enumerate() {
            let oracle = arm(policies[0]);
            for &p in &policies[1..] {
                let got = arm(p);
                prop_assert_eq!(&got.0, &oracle.0, "algorithm {} values under {:?}", idx, p);
                prop_assert_eq!(got.1, oracle.1, "algorithm {} counters under {:?}", idx, p);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-parallel kernel equivalence: the u64-word boolean kernels against the
// scalar oracle — identical values AND identical projected access charges on
// arbitrary Erdős/power-law graphs (`bit_word_ops` is telemetry that the
// `accesses_only` projection zeroes, so the comparison is exact).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `mxv` over the bitmap store with the bit kernels on vs off: same
    /// explicit set, same projected counters — both faces, masked and
    /// unmasked, with and without the early exit.
    #[test]
    fn bit_mxv_matches_scalar_oracle(
        seed in 0u64..2000,
        power_law in any::<bool>(),
        n_raw in 24usize..100,
        f_ids in prop::collection::vec(0usize..100, 0..30),
        m_ids in prop::collection::vec(0usize..100, 0..40),
        masked in any::<bool>(),
        complement in any::<bool>(),
        early_exit in any::<bool>(),
        dir_pull in any::<bool>(),
    ) {
        use push_pull::core::ops::BoolStructure;
        use push_pull::core::StorageFormat;
        let g = if power_law {
            chung_lu(n_raw, 6, PowerLawParams::default(), seed)
        } else {
            erdos_renyi(n_raw, n_raw * 4, seed)
        };
        let n = g.n_vertices();
        let f = sparse_bool_vector(n, &f_ids);
        let dir = if dir_pull { Direction::Pull } else { Direction::Push };
        let mut bits = BitVec::new(n);
        for &i in &m_ids {
            if i < n {
                bits.set(i);
            }
        }
        let mask = if complement { Mask::complement(&bits) } else { Mask::new(&bits) };
        let run = |bit: bool| {
            let desc = Descriptor::new()
                .transpose(true)
                .structure_only(true)
                .early_exit(early_exit)
                .force(dir)
                .force_format(StorageFormat::Bitmap)
                .bit_kernels(bit);
            let c = AccessCounters::new();
            let w: Vector<bool> =
                mxv(masked.then_some(&mask), BoolStructure, &g, &f, &desc, Some(&c)).unwrap();
            (explicit_set(&w), c.snapshot())
        };
        let (bit_set, bit_snap) = run(true);
        let (scalar_set, scalar_snap) = run(false);
        prop_assert_eq!(bit_set, scalar_set, "values under {:?}", dir);
        prop_assert_eq!(
            bit_snap.accesses_only(),
            scalar_snap.accesses_only(),
            "projected charges under {:?}",
            dir
        );
    }

    /// Tile-boundary shapes: n sampled one short of / exactly at / one past
    /// a multiple of `TILE_ROWS`, with few enough edges that whole tiles go
    /// empty (their rows have no word surface and fall back to the scalar
    /// probe) and single-word frontiers compress. The bit path must stay
    /// value- and charge-identical to the scalar oracle through all of it.
    #[test]
    fn bit_tiled_store_matches_scalar_on_boundary_shapes(
        tiles in 1usize..5,
        off in 0i32..3,
        edges in prop::collection::vec((0usize..320, 0usize..320), 1..40),
        f_ids in prop::collection::vec(0usize..320, 1..20),
        dir_pull in any::<bool>(),
        early_exit in any::<bool>(),
    ) {
        use push_pull::core::ops::BoolStructure;
        use push_pull::core::StorageFormat;
        use push_pull::matrix::TILE_ROWS;
        let n = ((tiles * TILE_ROWS) as i32 + off - 1).max(2) as usize;
        let mut coo = Coo::new(n, n);
        for (u, v) in edges {
            let (u, v) = (u % n, v % n);
            if u != v {
                coo.push(u as u32, v as u32, true);
            }
        }
        coo.dedup(|a, _| a);
        let g = Graph::from_coo(&coo);
        let f = sparse_bool_vector(n, &f_ids.iter().map(|&i| i % n).collect::<Vec<_>>());
        let dir = if dir_pull { Direction::Pull } else { Direction::Push };
        let run = |bit: bool| {
            let desc = Descriptor::new()
                .transpose(true)
                .structure_only(true)
                .early_exit(early_exit)
                .force(dir)
                .force_format(StorageFormat::Bitmap)
                .bit_kernels(bit);
            let c = AccessCounters::new();
            let w: Vector<bool> =
                mxv(None, BoolStructure, &g, &f, &desc, Some(&c)).unwrap();
            (explicit_set(&w), c.snapshot())
        };
        let (bit_set, bit_snap) = run(true);
        let (scalar_set, scalar_snap) = run(false);
        prop_assert_eq!(bit_set, scalar_set, "values under {:?}", dir);
        prop_assert_eq!(
            bit_snap.accesses_only(),
            scalar_snap.accesses_only(),
            "projected charges under {:?}",
            dir
        );
    }

    /// Whole-algorithm bit equivalence: BFS depths and min-parent trees
    /// under `Fixed(Bitmap)` with the bit kernels on vs off are identical
    /// in values and projected charges, fused and unfused; the measured
    /// cost-model direction rule reaches the same depths.
    #[test]
    fn bit_algorithms_match_scalar_oracle(
        seed in 0u64..1000,
        power_law in any::<bool>(),
        n_raw in 24usize..96,
        source_bits in 0usize..24,
        fused in any::<bool>(),
    ) {
        use push_pull::algo::bfs::{bfs_with_opts, BfsOpts};
        use push_pull::algo::bfs_parents::{bfs_parents_with_opts, ParentBfsOpts};
        use push_pull::core::{FormatPolicy, StorageFormat};

        let g = if power_law {
            chung_lu(n_raw, 5, PowerLawParams::default(), seed)
        } else {
            erdos_renyi(n_raw, n_raw * 3, seed)
        };
        let n = g.n_vertices();
        let source = (source_bits % n) as u32;
        let fmt = FormatPolicy::fixed(StorageFormat::Bitmap);

        let bfs_run = |bit: bool| {
            let c = AccessCounters::new();
            let opts = BfsOpts { fused, ..BfsOpts::default() }
                .format(fmt)
                .bit_kernels(bit);
            let r = bfs_with_opts(&g, source, &opts, Some(&c));
            (r.depths, c.snapshot().accesses_only())
        };
        let (d_bit, a_bit) = bfs_run(true);
        let (d_scalar, a_scalar) = bfs_run(false);
        prop_assert_eq!(&d_bit, &d_scalar, "bit BFS depths");
        prop_assert_eq!(a_bit, a_scalar, "bit BFS projected charges");
        prop_assert_eq!(
            &d_bit,
            &push_pull::baselines::textbook::bfs_serial(&g, source)
        );

        let parents_run = |bit: bool| {
            let c = AccessCounters::new();
            let opts = ParentBfsOpts {
                fused,
                format: fmt,
                bit_kernels: bit,
                ..ParentBfsOpts::default()
            };
            let r = bfs_parents_with_opts(&g, source, &opts, Some(&c));
            (r.parent, c.snapshot().accesses_only())
        };
        let (p_bit, pa_bit) = parents_run(true);
        let (p_scalar, pa_scalar) = parents_run(false);
        prop_assert_eq!(p_bit, p_scalar, "bit parent tree");
        prop_assert_eq!(pa_bit, pa_scalar, "bit parents projected charges");

        // The measured cost-model direction rule stays exact too.
        let r = bfs_with_opts(&g, source, &BfsOpts::default().cost_model(true), None);
        prop_assert_eq!(&r.depths, &d_scalar, "cost-model depths");
    }
}
