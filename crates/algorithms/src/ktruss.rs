//! k-truss decomposition by iterated masked SpGEMM — an extension of the
//! triangle-counting generality claim (§5.6): the support of every edge is
//! `C⟨A⟩ = A·A` (triangles through that edge), output sparsity known a
//! priori to be the edge set itself, so the mask does the heavy lifting on
//! every peeling round.
//!
//! The k-truss of `G` is the maximal subgraph in which every edge
//! participates in at least `k − 2` triangles. Rounds alternate: compute
//! per-edge support with the masked product, drop under-supported edges
//! with `select`, repeat until stable.

use graphblas_core::mxm::mxm;
use graphblas_core::ops::PlusTimes;
use graphblas_matrix::{Csr, Graph};

/// Result of a k-truss run.
#[derive(Clone, Debug)]
pub struct KtrussResult {
    /// Adjacency of the k-truss subgraph (symmetric, unit values).
    pub truss: Csr<u64>,
    /// Peeling rounds until fixpoint.
    pub rounds: usize,
}

/// Compute the k-truss subgraph for `k ≥ 2`.
#[must_use]
pub fn ktruss(g: &Graph<bool>, k: u32) -> KtrussResult {
    assert!(k >= 2, "k-truss defined for k >= 2");
    let need = u64::from(k - 2);
    // Work on the symmetric adjacency with unit weights.
    let mut a: Csr<u64> = g.csr().map_values(|_| 1u64);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        // Support: s(u,v) = #common neighbors = (A·A)(u,v), masked to A.
        let support = mxm(Some(&a), PlusTimes, &a, &a, 0u64, None);
        // Keep edges with support ≥ k−2. `support` only holds entries with
        // ≥1 triangle; edges of A absent from `support` have support 0.
        let keep = |i: usize, j: u32| -> bool {
            if need == 0 {
                return true;
            }
            match support.row(i).binary_search(&j) {
                Ok(pos) => support.row_values(i)[pos] >= need,
                Err(_) => false,
            }
        };
        let next = a.select(|i, j, _| keep(i, j));
        if next.nnz() == a.nnz() {
            return KtrussResult { truss: a, rounds };
        }
        a = next;
        if a.nnz() == 0 {
            return KtrussResult { truss: a, rounds };
        }
    }
}

/// Check the k-truss property directly (test helper): every edge of the
/// subgraph closes at least `k − 2` triangles inside the subgraph.
#[must_use]
pub fn verify_ktruss(truss: &Csr<u64>, k: u32) -> bool {
    let need = (k - 2) as usize;
    for u in 0..truss.n_rows() {
        for &v in truss.row(u) {
            let common = intersect_count(truss.row(u), truss.row(v as usize));
            if common < need {
                return false;
            }
        }
    }
    true
}

fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::erdos::erdos_renyi;
    use graphblas_matrix::Coo;

    fn complete(n: usize) -> Graph<bool> {
        let mut coo = Coo::new(n, n);
        for i in 0..n as u32 {
            for j in 0..i {
                coo.push(i, j, true);
            }
        }
        coo.clean_undirected();
        Graph::from_coo(&coo)
    }

    #[test]
    fn complete_graph_survives_up_to_its_order() {
        let g = complete(5); // K5: every edge in 3 triangles.
        let t5 = ktruss(&g, 5);
        assert_eq!(t5.truss.nnz(), 20, "K5 is itself a 5-truss");
        let t6 = ktruss(&g, 6);
        assert_eq!(t6.truss.nnz(), 0, "no 6-truss in K5");
    }

    #[test]
    fn pendant_edges_peel_at_k3() {
        // Triangle 0-1-2 with a tail 2-3.
        let mut coo = Coo::new(4, 4);
        for &(u, v) in &[(0u32, 1u32), (1, 2), (0, 2), (2, 3)] {
            coo.push(u, v, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let r = ktruss(&g, 3);
        assert_eq!(r.truss.nnz(), 6, "only the triangle survives");
        assert!(verify_ktruss(&r.truss, 3));
        assert_eq!(r.truss.row(3), &[] as &[u32]);
    }

    #[test]
    fn k2_is_identity() {
        let g = erdos_renyi(200, 800, 5);
        let r = ktruss(&g, 2);
        assert_eq!(r.truss.nnz(), g.n_edges());
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn result_satisfies_truss_property() {
        let g = erdos_renyi(150, 2000, 9);
        for k in [3u32, 4, 5] {
            let r = ktruss(&g, k);
            assert!(verify_ktruss(&r.truss, k), "k = {k}");
        }
    }

    #[test]
    fn nested_trusses() {
        let g = erdos_renyi(150, 2000, 11);
        let t3 = ktruss(&g, 3);
        let t4 = ktruss(&g, 4);
        assert!(t4.truss.nnz() <= t3.truss.nnz(), "trusses are nested");
    }
}
