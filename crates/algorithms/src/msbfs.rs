//! Multi-source (batched) BFS — frontiers from `k` sources advanced
//! simultaneously as a sparse `k × n` Boolean matrix, each step one masked
//! SpGEMM: `F' = (F · A) .∗ ¬V`.
//!
//! This is the matrix-level face of the paper's thesis: where single-source
//! BFS is a masked mat*vec*, the batched traversal is a masked mat*mat*
//! with the per-source visited matrix `V` as the mask complement. The
//! batched betweenness-centrality workload of §1 is the canonical consumer
//! (Brandes forward sweeps for a whole source batch at once), and it
//! exercises `mxm`'s masking machinery the same way BFS exercises `mxv`'s.

use graphblas_matrix::{Csr, Graph, VertexId};
use graphblas_primitives::BitVec;
use rayon::prelude::*;

/// Depth label for unreached (source, vertex) pairs.
pub const UNREACHED: i32 = -1;

/// Result of a batched BFS.
#[derive(Clone, Debug)]
pub struct MsBfsResult {
    /// `depths[s][v]` = depth of `v` from `sources[s]`.
    pub depths: Vec<Vec<i32>>,
    /// Levels executed (maximum over the batch).
    pub levels: usize,
}

/// Batched BFS from `sources` (duplicates allowed).
#[must_use]
pub fn multi_source_bfs(g: &Graph<bool>, sources: &[VertexId]) -> MsBfsResult {
    let n = g.n_vertices();
    let k = sources.len();
    assert!(k > 0, "need at least one source");
    for &s in sources {
        assert!((s as usize) < n, "source out of range");
    }

    // Frontier rows and per-source visited bitmaps.
    let mut frontier: Vec<Vec<VertexId>> = sources.iter().map(|&s| vec![s]).collect();
    let mut visited: Vec<BitVec> = sources
        .iter()
        .map(|&s| {
            let mut b = BitVec::new(n);
            b.set(s as usize);
            b
        })
        .collect();
    let mut depths: Vec<Vec<i32>> = sources
        .iter()
        .map(|&s| {
            let mut d = vec![UNREACHED; n];
            d[s as usize] = 0;
            d
        })
        .collect();

    let a = g.csr();
    let mut level = 0usize;
    loop {
        level += 1;
        // One SpGEMM row product per source, masked by ¬visited[s]:
        // row s of F' = union of children of frontier[s], minus visited.
        // Rows are independent ⇒ embarrassingly parallel over the batch.
        let next: Vec<Vec<VertexId>> = frontier
            .par_iter()
            .zip(visited.par_iter())
            .map(|(row, vis)| {
                let mut out: Vec<VertexId> = Vec::new();
                let mut seen = BitVec::new(n);
                for &u in row {
                    for &c in a.row(u as usize) {
                        if !vis.get(c as usize) && seen.set(c as usize) {
                            out.push(c);
                        }
                    }
                }
                out.sort_unstable();
                out
            })
            .collect();

        let mut any = false;
        for (s, row) in next.iter().enumerate() {
            for &v in row {
                visited[s].set(v as usize);
                depths[s][v as usize] = level as i32;
            }
            any |= !row.is_empty();
        }
        if !any {
            break;
        }
        frontier = next;
    }

    MsBfsResult {
        depths,
        levels: level,
    }
}

/// The batch frontier after `steps` synchronous steps, materialized as a
/// `k × n` Boolean CSR — the matrix-form object the formulation advances.
/// Exposed for tests and for algorithms that want the intermediate state.
#[must_use]
pub fn frontier_matrix(g: &Graph<bool>, sources: &[VertexId], steps: usize) -> Csr<bool> {
    let r = multi_source_bfs(g, sources);
    let n = g.n_vertices();
    let k = sources.len();
    let mut row_ptr = Vec::with_capacity(k + 1);
    let mut col_ind: Vec<VertexId> = Vec::new();
    row_ptr.push(0usize);
    for s in 0..k {
        for v in 0..n {
            if r.depths[s][v] == steps as i32 {
                col_ind.push(v as VertexId);
            }
        }
        row_ptr.push(col_ind.len());
    }
    let values = vec![true; col_ind.len()];
    Csr::from_parts(k, n, row_ptr, col_ind, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_baselines::textbook::bfs_serial;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::rmat::{rmat, RmatParams};

    #[test]
    fn batch_matches_per_source_oracle() {
        let g = rmat(10, 12, RmatParams::default(), 3);
        let sources = [0u32, 17, 300, 17]; // includes a duplicate
        let r = multi_source_bfs(&g, &sources);
        assert_eq!(r.depths.len(), 4);
        for (s, &src) in sources.iter().enumerate() {
            assert_eq!(r.depths[s], bfs_serial(&g, src), "source {src}");
        }
    }

    #[test]
    fn batch_on_mesh() {
        let g = road_mesh(30, 30, RoadParams::default(), 2);
        let sources = [0u32, 450, 899];
        let r = multi_source_bfs(&g, &sources);
        for (s, &src) in sources.iter().enumerate() {
            assert_eq!(r.depths[s], bfs_serial(&g, src), "source {src}");
        }
    }

    #[test]
    fn frontier_matrix_rows_are_level_sets() {
        let g = rmat(9, 8, RmatParams::default(), 5);
        let sources = [0u32, 7];
        let f2 = frontier_matrix(&g, &sources, 2);
        assert_eq!(f2.n_rows(), 2);
        let oracle0 = bfs_serial(&g, 0);
        let expect: Vec<u32> = (0..g.n_vertices())
            .filter(|&v| oracle0[v] == 2)
            .map(|v| v as u32)
            .collect();
        assert_eq!(f2.row(0), expect.as_slice());
    }

    #[test]
    fn single_source_batch_degenerates_to_bfs() {
        let g = rmat(9, 8, RmatParams::default(), 7);
        let r = multi_source_bfs(&g, &[42]);
        assert_eq!(r.depths[0], bfs_serial(&g, 42));
    }
}
