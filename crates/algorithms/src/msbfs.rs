//! Multi-source (batched) BFS — `k` frontiers advanced simultaneously as a
//! [`MultiVector`], each step one **batched masked matvec**:
//! `F'(s, :) = (Aᵀ F(s, :)) .∗ ¬V(s, :)` for every live source `s`, in a
//! single [`mxv_batch`] call.
//!
//! This is the batched face of the paper's thesis: each source's row keeps
//! its own sparse/dense storage and its own §6.3 [`DirectionPolicy`]
//! hysteresis state, so within one batch step some sources run the
//! column-based push kernel while others run the row-based masked pull
//! kernel — the per-source direction switching that GraphBLAST observes
//! generalizes to multi-vector operands. The kernels execute over a flat
//! `(source, chunk)` work grid, so the pool's lanes stay busy even when
//! one source's frontier is a thin wave and another's is mid-supervertex.
//! The batched betweenness-centrality workload of §1 is the canonical
//! consumer ([`crate::bc`] runs its Brandes forward sweeps through exactly
//! this path); `tests/prop_core.rs` pins that a batch is bit-identical —
//! depths *and* access counters — to `k` independent single-source runs.

use graphblas_core::descriptor::{Descriptor, Direction, ShardPolicy};
use graphblas_core::mask::Mask;
use graphblas_core::ops::BoolStructure;
use graphblas_core::ops_mxv_batch::mxv_batch;
use graphblas_core::vector::{MultiVector, Vector};
use graphblas_core::{run_guarded, DirectionPolicy, ExecLimits, FormatPolicy, GrbResult};
use graphblas_matrix::{Csr, Graph, VertexId};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::BitVec;

/// Depth label for unreached (source, vertex) pairs.
pub const UNREACHED: i32 = -1;

/// Options for a batched traversal.
#[derive(Clone, Copy, Debug)]
pub struct MsBfsOpts {
    /// The §6.3 switch ratio (α = β) each source's policy runs under.
    pub switch_threshold: f64,
    /// Pin every source to one direction (ablation arms). `None` lets each
    /// source's hysteresis policy switch independently.
    pub force: Option<Direction>,
    /// Matrix storage-format policy for the batch (one format per batch
    /// step, per-row directions stay independent; default auto).
    pub format: FormatPolicy,
    /// Allow the bit-parallel pull kernel when the batch step runs over
    /// the bitmap store (default on). The batch format planner never picks
    /// the bitmap on its own, so this only engages under a forced
    /// `FormatPolicy::fixed(Bitmap)`; results and projected counters are
    /// identical either way.
    pub bit_kernels: bool,
    /// Execution limits enforced by [`try_multi_source_bfs_with_opts`];
    /// the infallible entry points ignore this field.
    pub limits: ExecLimits,
    /// Cache-blocked shard-grid policy the batch's push face runs under
    /// (default off, the oracle). Result- and counter-invariant.
    pub shards: ShardPolicy,
}

impl Default for MsBfsOpts {
    fn default() -> Self {
        Self {
            switch_threshold: 0.01,
            force: None,
            format: FormatPolicy::auto(),
            bit_kernels: true,
            limits: ExecLimits::none(),
            shards: ShardPolicy::Off,
        }
    }
}

/// Result of a batched BFS.
#[derive(Clone, Debug)]
pub struct MsBfsResult {
    /// `depths[s][v]` = depth of `v` from `sources[s]`.
    pub depths: Vec<Vec<i32>>,
    /// Levels executed (maximum over the batch).
    pub levels: usize,
}

/// Batched BFS from `sources` (duplicates allowed) with default options.
#[must_use]
pub fn multi_source_bfs(g: &Graph<bool>, sources: &[VertexId]) -> MsBfsResult {
    multi_source_bfs_with_opts(g, sources, &MsBfsOpts::default(), None)
}

/// Batched BFS with explicit options and optional access counters — the
/// counters record, besides the usual traffic, each source's per-level
/// push/pull decision (`push_steps`/`pull_steps`).
#[must_use]
pub fn multi_source_bfs_with_opts(
    g: &Graph<bool>,
    sources: &[VertexId],
    opts: &MsBfsOpts,
    counters: Option<&AccessCounters>,
) -> MsBfsResult {
    msbfs_loop(g, sources, opts, counters)
        .expect("unlimited batched BFS with verified dims cannot abort")
}

/// Batched BFS under the options' [`ExecLimits`] with full fault isolation
/// (see [`crate::bfs::try_bfs_with_opts`] for the abort/retry contract).
pub fn try_multi_source_bfs_with_opts(
    g: &Graph<bool>,
    sources: &[VertexId],
    opts: &MsBfsOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<MsBfsResult> {
    run_guarded(counters, &opts.limits, |c| msbfs_loop(g, sources, opts, c))
}

fn msbfs_loop(
    g: &Graph<bool>,
    sources: &[VertexId],
    opts: &MsBfsOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<MsBfsResult> {
    let n = g.n_vertices();
    let k = sources.len();
    assert!(k > 0, "need at least one source");
    for &s in sources {
        assert!((s as usize) < n, "source out of range");
    }

    // Per-source traversal state: frontier row, visited bitmap, depths,
    // and an independent direction policy.
    let mut frontiers: Vec<Vector<bool>> = sources
        .iter()
        .map(|&s| Vector::singleton(n, false, s, true))
        .collect();
    let mut visited: Vec<BitVec> = sources
        .iter()
        .map(|&s| {
            let mut b = BitVec::new(n);
            b.set(s as usize);
            b
        })
        .collect();
    let mut depths: Vec<Vec<i32>> = sources
        .iter()
        .map(|&s| {
            let mut d = vec![UNREACHED; n];
            d[s as usize] = 0;
            d
        })
        .collect();
    let mut policies: Vec<DirectionPolicy> = (0..k)
        .map(|_| match opts.force {
            Some(d) => DirectionPolicy::fixed(d),
            None => DirectionPolicy::hysteresis(opts.switch_threshold),
        })
        .collect();

    // Algorithm 1's descriptor: multiply by Aᵀ; direction stays Auto so
    // each row follows its own policy (a forced run pins the descriptor).
    let base_desc = match opts.force {
        Some(d) => Descriptor::new().transpose(true).force(d),
        None => Descriptor::new().transpose(true),
    }
    .bit_kernels(opts.bit_kernels)
    .shard_policy(opts.shards);
    let mut fpol = opts.format;

    let mut alive: Vec<usize> = (0..k).collect();
    let mut level = 0usize;
    while !alive.is_empty() {
        level += 1;
        let desc = base_desc.force_format(fpol.update_batch(g, true, counters));
        // Assemble the live sub-batch by moving rows out of the state
        // (restored or replaced below), with one mask and one policy per
        // live source.
        let batch = MultiVector::from_rows(
            alive
                .iter()
                .map(|&r| std::mem::replace(&mut frontiers[r], Vector::new_sparse(n, false)))
                .collect(),
        );
        let masks: Vec<Mask<'_>> = alive
            .iter()
            .map(|&r| Mask::complement(&visited[r]))
            .collect();
        let mut live_policies: Vec<DirectionPolicy> =
            alive.iter().map(|&r| policies[r].clone()).collect();

        let next: MultiVector<bool> = mxv_batch(
            Some(&masks),
            BoolStructure,
            g,
            &batch,
            &desc,
            Some(&mut live_policies),
            counters,
        )?;

        for (p, &r) in live_policies.iter().zip(&alive) {
            policies[r] = p.clone();
        }

        // GrB_assign per live source: record depths, fold the discoveries
        // into the visited set, retire sources whose frontier emptied.
        let mut still_alive = Vec::with_capacity(alive.len());
        for (row, &r) in next.into_rows().into_iter().zip(&alive) {
            let mut found = false;
            for (v, _) in row.iter_explicit() {
                depths[r][v as usize] = level as i32;
                visited[r].set(v as usize);
                found = true;
            }
            if found {
                frontiers[r] = row;
                still_alive.push(r);
            }
        }
        alive = still_alive;
    }

    Ok(MsBfsResult {
        depths,
        levels: level,
    })
}

/// The batch frontier after `steps` synchronous steps, materialized as a
/// `k × n` Boolean CSR — the matrix-form object the formulation advances.
/// Exposed for tests and for algorithms that want the intermediate state.
#[must_use]
pub fn frontier_matrix(g: &Graph<bool>, sources: &[VertexId], steps: usize) -> Csr<bool> {
    let r = multi_source_bfs(g, sources);
    let n = g.n_vertices();
    let k = sources.len();
    let mut row_ptr = Vec::with_capacity(k + 1);
    let mut col_ind: Vec<VertexId> = Vec::new();
    row_ptr.push(0usize);
    for s in 0..k {
        for v in 0..n {
            if r.depths[s][v] == steps as i32 {
                col_ind.push(v as VertexId);
            }
        }
        row_ptr.push(col_ind.len());
    }
    let values = vec![true; col_ind.len()];
    Csr::from_parts(k, n, row_ptr, col_ind, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_baselines::textbook::bfs_serial;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::rmat::{rmat, RmatParams};

    #[test]
    fn batch_matches_per_source_oracle() {
        let g = rmat(10, 12, RmatParams::default(), 3);
        let sources = [0u32, 17, 300, 17]; // includes a duplicate
        let r = multi_source_bfs(&g, &sources);
        assert_eq!(r.depths.len(), 4);
        for (s, &src) in sources.iter().enumerate() {
            assert_eq!(r.depths[s], bfs_serial(&g, src), "source {src}");
        }
    }

    #[test]
    fn batch_on_mesh() {
        let g = road_mesh(30, 30, RoadParams::default(), 2);
        let sources = [0u32, 450, 899];
        let r = multi_source_bfs(&g, &sources);
        for (s, &src) in sources.iter().enumerate() {
            assert_eq!(r.depths[s], bfs_serial(&g, src), "source {src}");
        }
    }

    #[test]
    fn frontier_matrix_rows_are_level_sets() {
        let g = rmat(9, 8, RmatParams::default(), 5);
        let sources = [0u32, 7];
        let f2 = frontier_matrix(&g, &sources, 2);
        assert_eq!(f2.n_rows(), 2);
        let oracle0 = bfs_serial(&g, 0);
        let expect: Vec<u32> = (0..g.n_vertices())
            .filter(|&v| oracle0[v] == 2)
            .map(|v| v as u32)
            .collect();
        assert_eq!(f2.row(0), expect.as_slice());
    }

    #[test]
    fn single_source_batch_degenerates_to_bfs() {
        let g = rmat(9, 8, RmatParams::default(), 7);
        let r = multi_source_bfs(&g, &[42]);
        assert_eq!(r.depths[0], bfs_serial(&g, 42));
    }

    #[test]
    fn forced_directions_match_auto() {
        let g = rmat(9, 10, RmatParams::default(), 4);
        let sources = [0u32, 3, 250];
        let auto = multi_source_bfs(&g, &sources);
        for dir in [Direction::Push, Direction::Pull] {
            let opts = MsBfsOpts {
                force: Some(dir),
                ..MsBfsOpts::default()
            };
            let forced = multi_source_bfs_with_opts(&g, &sources, &opts, None);
            assert_eq!(forced.depths, auto.depths, "{dir:?}");
            assert_eq!(forced.levels, auto.levels, "{dir:?}");
        }
    }

    #[test]
    fn batch_counters_equal_sum_of_single_source_runs() {
        // The equivalence contract at the algorithm level: a k-batch costs
        // exactly what k independent runs cost (depths AND counters), and
        // its per-source direction decisions are visible.
        let g = rmat(10, 16, RmatParams::default(), 19);
        let sources = [0u32, 5, 123];
        let opts = MsBfsOpts::default();
        let batch_c = AccessCounters::new();
        let batch = multi_source_bfs_with_opts(&g, &sources, &opts, Some(&batch_c));

        let single_c = AccessCounters::new();
        for (s, &src) in sources.iter().enumerate() {
            let r = multi_source_bfs_with_opts(&g, &[src], &opts, Some(&single_c));
            assert_eq!(r.depths[0], batch.depths[s], "source {src}");
        }
        assert_eq!(batch_c.snapshot(), single_c.snapshot());
        let snap = batch_c.snapshot();
        assert!(snap.push_steps > 0, "early thin frontiers push");
        assert!(
            snap.pull_steps > 0,
            "the scale-free supervertex phase must pull"
        );
    }

    #[test]
    fn bit_batch_pull_matches_scalar_under_forced_bitmap() {
        // The batch planner never picks the bitmap on its own, so force it:
        // per-source bit pull contexts must reproduce the scalar batch
        // exactly — depths and projected access charges.
        let g = rmat(10, 14, RmatParams::default(), 12);
        let sources = [0u32, 9, 511];
        let run = |bit: bool| {
            let c = AccessCounters::new();
            let opts = MsBfsOpts {
                format: FormatPolicy::fixed(graphblas_core::StorageFormat::Bitmap),
                bit_kernels: bit,
                ..MsBfsOpts::default()
            };
            let r = multi_source_bfs_with_opts(&g, &sources, &opts, Some(&c));
            (r.depths, c.snapshot().accesses_only())
        };
        let (d_bit, a_bit) = run(true);
        let (d_scalar, a_scalar) = run(false);
        assert_eq!(d_bit, d_scalar, "bit batch changed depths");
        assert_eq!(a_bit, a_scalar, "bit batch changed projected charges");
        for (s, &src) in sources.iter().enumerate() {
            assert_eq!(d_bit[s], bfs_serial(&g, src), "source {src}");
        }
    }
}
