//! Maximal independent set — Luby's algorithm, listed in §1 and §5.6 among
//! the algorithms whose output sparsity is known a priori: each round only
//! the surviving *candidate* vertices can change state, so the candidate
//! set is a mask for the neighbor-maximum matvec.

use graphblas_core::descriptor::Descriptor;
use graphblas_core::mask::Mask;
use graphblas_core::mxv;
use graphblas_core::ops::MaxSecond;
use graphblas_core::vector::Vector;
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a MIS run.
#[derive(Clone, Debug)]
pub struct MisResult {
    /// Membership flags.
    pub in_set: Vec<bool>,
    /// Luby rounds executed (O(log n) with high probability).
    pub rounds: usize,
}

/// Luby's randomized MIS.
#[must_use]
pub fn maximal_independent_set(g: &Graph<bool>, seed: u64) -> MisResult {
    let n = g.n_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    // Random priorities; ties broken by vertex id via the pair ordering.
    let priority: Vec<u64> = (0..n)
        .map(|i| (rng.gen::<u64>() << 20) | i as u64)
        .collect();

    let mut in_set = vec![false; n];
    let mut candidate = BitVec::new(n);
    let mut candidate_list: Vec<VertexId> = (0..n as VertexId).collect();
    for i in 0..n {
        candidate.set(i);
    }
    let mut rounds = 0usize;
    let desc = Descriptor::new().transpose(true);

    while !candidate_list.is_empty() {
        rounds += 1;
        // Sparse priority vector over the candidates.
        let ids: Vec<VertexId> = candidate_list.clone();
        let vals: Vec<u64> = ids.iter().map(|&v| priority[v as usize]).collect();
        let p = Vector::from_sparse(n, 0u64, ids, vals);
        // neighbor_max(v) = max over candidate neighbors' priorities,
        // masked to candidates (output sparsity known a priori).
        let mask = Mask::new(&candidate).with_active_list(&candidate_list);
        let neighbor_max: Vector<u64> =
            mxv(Some(&mask), MaxSecond, g, &p, &desc, None).expect("dims verified");

        // Winners: candidates whose priority beats every candidate
        // neighbor (vertices with no candidate neighbors win trivially).
        let winners: Vec<VertexId> = candidate_list
            .iter()
            .copied()
            .filter(|&v| {
                let nm = neighbor_max.get(v);
                priority[v as usize] > nm || nm == 0
            })
            .collect();
        debug_assert!(!winners.is_empty(), "Luby round must make progress");

        // Add winners; knock out winners and their neighbors.
        for &v in &winners {
            in_set[v as usize] = true;
            candidate.clear(v as usize);
            for &u in g.children(v) {
                candidate.clear(u as usize);
            }
        }
        candidate_list.retain(|&v| candidate.get(v as usize));
    }

    MisResult { in_set, rounds }
}

/// Check independence + maximality (test/bench helper).
#[must_use]
pub fn verify_mis(g: &Graph<bool>, in_set: &[bool]) -> bool {
    let n = g.n_vertices();
    // Independence: no two adjacent members.
    for u in 0..n {
        if in_set[u] {
            for &v in g.children(u as VertexId) {
                if in_set[v as usize] && v as usize != u {
                    return false;
                }
            }
        }
    }
    // Maximality: every non-member has a member neighbor.
    for u in 0..n {
        if !in_set[u] {
            let covered = g
                .children(u as VertexId)
                .iter()
                .any(|&v| in_set[v as usize]);
            if !covered {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::erdos::erdos_renyi;
    use graphblas_gen::powerlaw::{chung_lu, PowerLawParams};
    use graphblas_matrix::Coo;

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..3 {
            let g = erdos_renyi(1000, 5000, seed);
            let r = maximal_independent_set(&g, seed * 7 + 1);
            assert!(verify_mis(&g, &r.in_set), "invalid MIS for seed {seed}");
        }
    }

    #[test]
    fn valid_on_scale_free() {
        let g = chung_lu(2000, 10, PowerLawParams::default(), 5);
        let r = maximal_independent_set(&g, 42);
        assert!(verify_mis(&g, &r.in_set));
        assert!(r.rounds < 40, "Luby should converge in O(log n) rounds");
    }

    #[test]
    fn edgeless_graph_takes_everything() {
        let g = Graph::from_coo(&Coo::<bool>::new(10, 10));
        let r = maximal_independent_set(&g, 1);
        assert!(r.in_set.iter().all(|&b| b));
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn triangle_takes_exactly_one() {
        let mut coo = Coo::new(3, 3);
        for &(u, v) in &[(0u32, 1u32), (1, 2), (0, 2)] {
            coo.push(u, v, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let r = maximal_independent_set(&g, 9);
        assert_eq!(r.in_set.iter().filter(|&&b| b).count(), 1);
        assert!(verify_mis(&g, &r.in_set));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(500, 2500, 3);
        let a = maximal_independent_set(&g, 11);
        let b = maximal_independent_set(&g, 11);
        assert_eq!(a.in_set, b.in_set);
    }
}
