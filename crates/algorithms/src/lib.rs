//! Graph algorithms written against the GraphBLAS core — the paper's
//! Algorithm 1 (BFS) plus the §5.6 generality set.
//!
//! * [`bfs()`](bfs::bfs) — direction-optimized BFS, a direct transcription of
//!   Algorithm 1 with each of the five optimizations independently
//!   toggleable ([`bfs::BfsOpts`]); the Table 2 ablation ladder lives here.
//! * [`sssp`] — Bellman-Ford over min-plus with the 2-phase direction
//!   optimization §5.6 describes.
//! * [`pagerank`] — power iteration over plus-times, and *adaptive*
//!   PageRank (Kamvar et al.) where converged vertices drop out through a
//!   mask — the paper's flagship example of output-sparsity generality.
//! * [`cc`] — connected components by min-label propagation.
//! * [`mis`] — Luby's maximal independent set (masked candidate updates).
//! * [`tricount`] — triangle counting via masked SpGEMM `C⟨L⟩ = L·L`.
//! * [`msbfs`] — multi-source BFS on the batched `mxv_batch` kernels: one
//!   masked multi-vector matvec per level, direction switched per source.
//! * [`bc`] — batched Brandes betweenness centrality riding the same
//!   batched kernels (masked forward σ sweeps, level-masked backward δ
//!   accumulation, per-source push/pull switching in both phases).
//! * [`mod@entries`] — coalesced query batches: BFS / parent-BFS / SSSP
//!   entries advanced together through `mxv_batch_attributed`, each with
//!   its own [`ExecLimits`](graphblas_core::ExecLimits) and counter set
//!   (the service layer's algorithm face).
//!
//! BFS, parent BFS ([`mod@bfs_parents`]), CC, SSSP, and PageRank all run their
//! per-iteration `mxv · apply · assign` chain as a **fused pipeline**
//! (`graphblas_core::fused::FusedMxv`) by default — no intermediate vector
//! per step, bit-identical results and counters to the unfused
//! composition (each keeps a `fused: false` opt as the tested oracle).
//! Parent BFS additionally uses the fused-only first-hit pull exit.

pub mod bc;
pub mod bfs;
pub mod bfs_parents;
pub mod cc;
pub mod entries;
pub mod ktruss;
pub mod mis;
pub mod msbfs;
pub mod pagerank;
pub mod sssp;
pub mod tricount;

pub use bfs::{bfs, bfs_with_opts, BfsOpts, BfsResult, IterRecord};
pub use bfs_parents::{bfs_parents, bfs_parents_with_opts, ParentBfsOpts, ParentBfsResult};
pub use entries::{
    bfs_parents_entries, multi_source_bfs_entries, sssp_entries, BatchEntry, EntryBfs,
    EntryParents, EntrySssp,
};
