//! Parent-pointer BFS — the Graph500 output format (the benchmark 32 of
//! the top 37 entries of which run direction-optimized BFS, per the
//! paper's introduction).
//!
//! Instead of depths, each vertex records *which* parent discovered it.
//! In GraphBLAS form the frontier carries vertex ids and the semiring is
//! (min, second): a child reduces the ids of its frontier parents with
//! `min`, making the tree deterministic in both directions (a plain
//! "any parent" formulation would let push and pull disagree). Early-exit
//! cannot fire here — `min`'s annihilator is vertex id 0 — which is the
//! paper's point that Optimization 3 is semiring-specific (§5.6).

use graphblas_core::descriptor::{Descriptor, Direction};
use graphblas_core::mask::Mask;
use graphblas_core::ops::MinSecond;
use graphblas_core::vector::Vector;
use graphblas_core::{mxv, DirectionPolicy};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::BitVec;

/// Parent label for unreached vertices.
pub const NO_PARENT: u32 = u32::MAX;

/// Result of a parent BFS.
#[derive(Clone, Debug)]
pub struct ParentBfsResult {
    /// `parent[v]` = minimum-id BFS parent of `v`; the source points to
    /// itself; [`NO_PARENT`] where unreached.
    pub parent: Vec<u32>,
    /// Levels executed.
    pub levels: usize,
}

/// Direction-optimized parent BFS (min-parent tie-breaking).
#[must_use]
pub fn bfs_parents(g: &Graph<bool>, source: VertexId, switch_threshold: f64) -> ParentBfsResult {
    let n = g.n_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut parent = vec![NO_PARENT; n];
    parent[source as usize] = source;
    let mut visited = BitVec::new(n);
    visited.set(source as usize);

    // Frontier carries each frontier vertex's own id as its value.
    let mut f: Vector<u32> = Vector::singleton(n, NO_PARENT, source, source);
    let mut policy = DirectionPolicy::hysteresis(switch_threshold);
    let mut levels = 0usize;
    let base = Descriptor::new().transpose(true);

    loop {
        levels += 1;
        let dir = policy.update(f.nnz(), n);
        let desc = base.force(dir);
        match dir {
            Direction::Pull => f.make_dense(),
            Direction::Push => f.make_sparse(),
        }

        let mask = Mask::complement(&visited);
        let w: Vector<u32> =
            mxv(Some(&mask), MinSecond, g, &f, &desc, None).expect("dims verified");
        let mut discovered = 0usize;
        for (v, p) in w.iter_explicit() {
            debug_assert!(!visited.get(v as usize));
            parent[v as usize] = p;
            visited.set(v as usize);
            discovered += 1;
        }
        if discovered == 0 {
            break;
        }
        // Next frontier: the discovered vertices, carrying their own ids.
        let ids: Vec<u32> = w.iter_explicit().map(|(v, _)| v).collect();
        let vals = ids.clone();
        f = Vector::from_sparse(n, NO_PARENT, ids, vals);
    }

    ParentBfsResult { parent, levels }
}

/// Validate a parent array against the graph, Graph500-style: the source
/// is its own parent, every reached vertex's parent is reached, adjacent,
/// and exactly one level shallower.
#[must_use]
pub fn verify_parents(g: &Graph<bool>, source: VertexId, parent: &[u32]) -> bool {
    let depths = crate::bfs::bfs(g, source).depths;
    if parent[source as usize] != source {
        return false;
    }
    for v in 0..g.n_vertices() {
        let p = parent[v];
        if p == NO_PARENT {
            if depths[v] >= 0 {
                return false; // reached but no parent recorded
            }
            continue;
        }
        if v == source as usize {
            continue;
        }
        // Parent must be adjacent (edge p → v) and one level above.
        if !g.children(p).contains(&(v as u32)) {
            return false;
        }
        if depths[p as usize] + 1 != depths[v] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::rmat::{rmat, RmatParams};
    use graphblas_matrix::Coo;

    #[test]
    fn path_parents_are_predecessors() {
        let mut coo = Coo::new(4, 4);
        for i in 0..3 {
            coo.push(i as u32, i as u32 + 1, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let r = bfs_parents(&g, 0, 0.01);
        assert_eq!(r.parent, vec![0, 0, 1, 2]);
        assert!(verify_parents(&g, 0, &r.parent));
    }

    #[test]
    fn parents_valid_on_scale_free() {
        let g = rmat(11, 16, RmatParams::default(), 3);
        for src in [0u32, 99] {
            let r = bfs_parents(&g, src, 0.01);
            assert!(verify_parents(&g, src, &r.parent), "source {src}");
        }
    }

    #[test]
    fn parents_valid_on_mesh() {
        let g = road_mesh(40, 40, RoadParams::default(), 8);
        let r = bfs_parents(&g, 5, 0.01);
        assert!(verify_parents(&g, 5, &r.parent));
    }

    #[test]
    fn min_parent_is_deterministic_across_directions() {
        // Diamond: 0 -> {1,2} -> 3. Both 1 and 2 can parent 3; min wins.
        let mut coo = Coo::new(4, 4);
        for &(u, v) in &[(0u32, 1u32), (0, 2), (1, 3), (2, 3)] {
            coo.push(u, v, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        // Push-only (threshold 2.0 never crosses) and pull-heavy
        // (threshold 0.0 crosses immediately) must agree exactly.
        let push = bfs_parents(&g, 0, 2.0);
        let pull = bfs_parents(&g, 0, 0.0);
        assert_eq!(push.parent, pull.parent);
        assert_eq!(push.parent[3], 1, "minimum-id parent");
    }

    #[test]
    fn unreached_have_no_parent() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, true);
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let r = bfs_parents(&g, 0, 0.01);
        assert_eq!(r.parent[2], NO_PARENT);
        assert!(verify_parents(&g, 0, &r.parent));
    }
}
