//! Parent-pointer BFS — the Graph500 output format (the benchmark 32 of
//! the top 37 entries of which run direction-optimized BFS, per the
//! paper's introduction).
//!
//! Instead of depths, each vertex records *which* parent discovered it.
//! In GraphBLAS form the frontier carries vertex ids and the semiring is
//! (min, second): a child reduces the ids of its frontier parents with
//! `min`, making the tree deterministic in both directions (a plain
//! "any parent" formulation would let push and pull disagree). The
//! *unfused* early-exit of Optimization 3 cannot fire here — `min`'s
//! annihilator is vertex id 0 — the paper's point that Optimization 3 is
//! semiring-specific (§5.6).
//!
//! The **fused** pipeline recovers the exit the semiring forbids: because
//! the frontier carries each vertex's *own id* as its value and neighbor
//! lists are scanned ascending, the first explicit parent a pull row hits
//! *is* the minimum one, so
//! [`first_hit_exit`](graphblas_core::fused::FusedMxv::first_hit_exit)
//! stops the row there — same tree bit-for-bit, strictly less matrix
//! traffic. This per-row exit is expressible only in the fused form: the
//! standalone kernel cannot know the input's values encode its indices.

use graphblas_core::descriptor::{Descriptor, Direction, ShardPolicy};
use graphblas_core::mask::Mask;
use graphblas_core::ops::MinSecond;
use graphblas_core::vector::Vector;
use graphblas_core::{
    mxv, run_guarded, DirectionPolicy, ExecLimits, FormatPolicy, FusedMxv, GrbResult,
};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::BitVec;

/// Parent label for unreached vertices.
pub const NO_PARENT: u32 = u32::MAX;

/// Options for parent BFS.
#[derive(Clone, Copy, Debug)]
pub struct ParentBfsOpts {
    /// The §6.3 hysteresis switch ratio (α = β). Paper default 0.01.
    pub switch_threshold: f64,
    /// Run each level as one fused mxv·assign pass (default) instead of
    /// the separate-operation composition. Bit-identical either way.
    pub fused: bool,
    /// Fused pull rows stop at the first frontier parent (the minimum one,
    /// by the ascending-scan argument in the module doc). Only meaningful
    /// with `fused`; identical parents either way, less matrix traffic.
    pub first_hit_exit: bool,
    /// Matrix storage-format policy (default auto; see
    /// [`graphblas_core::plan`]). Format-invariant results and counters.
    pub format: FormatPolicy,
    /// Allow the bit-parallel kernels when a level runs over the bitmap
    /// store (default on). Here the bit path serves the fused first-hit
    /// exit: rank-of-first-set-bit recovers the same minimum parent the
    /// scalar ascending scan finds, with identical counter charges.
    pub bit_kernels: bool,
    /// Execution limits enforced by [`try_bfs_parents_with_opts`]; the
    /// infallible entry points ignore this field.
    pub limits: ExecLimits,
    /// Cache-blocked shard-grid policy each level's kernels run under
    /// (default off, the oracle). Result- and counter-invariant.
    pub shards: ShardPolicy,
}

impl Default for ParentBfsOpts {
    fn default() -> Self {
        Self {
            switch_threshold: 0.01,
            fused: true,
            first_hit_exit: true,
            format: FormatPolicy::auto(),
            bit_kernels: true,
            limits: ExecLimits::none(),
            shards: ShardPolicy::Off,
        }
    }
}

/// Result of a parent BFS.
#[derive(Clone, Debug)]
pub struct ParentBfsResult {
    /// `parent[v]` = minimum-id BFS parent of `v`; the source points to
    /// itself; [`NO_PARENT`] where unreached.
    pub parent: Vec<u32>,
    /// Levels executed.
    pub levels: usize,
}

/// Direction-optimized parent BFS (min-parent tie-breaking) with default
/// options except the given switch threshold.
#[must_use]
pub fn bfs_parents(g: &Graph<bool>, source: VertexId, switch_threshold: f64) -> ParentBfsResult {
    let opts = ParentBfsOpts {
        switch_threshold,
        ..ParentBfsOpts::default()
    };
    bfs_parents_with_opts(g, source, &opts, None)
}

/// Parent BFS with explicit options and optional access counters.
#[must_use]
pub fn bfs_parents_with_opts(
    g: &Graph<bool>,
    source: VertexId,
    opts: &ParentBfsOpts,
    counters: Option<&AccessCounters>,
) -> ParentBfsResult {
    parent_bfs_loop(g, source, opts, counters)
        .expect("unlimited parent BFS with verified dims cannot abort")
}

/// Parent BFS under the options' [`ExecLimits`] with full fault isolation
/// (see [`crate::bfs::try_bfs_with_opts`] for the abort/retry contract).
pub fn try_bfs_parents_with_opts(
    g: &Graph<bool>,
    source: VertexId,
    opts: &ParentBfsOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<ParentBfsResult> {
    run_guarded(counters, &opts.limits, |c| {
        parent_bfs_loop(g, source, opts, c)
    })
}

fn parent_bfs_loop(
    g: &Graph<bool>,
    source: VertexId,
    opts: &ParentBfsOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<ParentBfsResult> {
    let n = g.n_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut parent = vec![NO_PARENT; n];
    parent[source as usize] = source;
    let mut visited = BitVec::new(n);
    visited.set(source as usize);

    // Frontier carries each frontier vertex's own id as its value — the
    // invariant the fused first-hit exit relies on.
    let mut f: Vector<u32> = Vector::singleton(n, NO_PARENT, source, source);
    let mut policy = DirectionPolicy::hysteresis(opts.switch_threshold);
    let mut fpol = opts.format;
    let mut levels = 0usize;
    let base = Descriptor::new()
        .transpose(true)
        .bit_kernels(opts.bit_kernels)
        .shard_policy(opts.shards);

    loop {
        levels += 1;
        let dir = policy.update(f.nnz(), n);
        let desc = base
            .force(dir)
            .force_format(fpol.update(g, true, dir, counters));
        match dir {
            Direction::Pull => f.make_dense(),
            Direction::Push => f.make_sparse(),
        }

        let mask = Mask::complement(&visited);
        let discovered: Vec<u32> = if opts.fused {
            // min-parent reduce, identity apply, and the parent-array
            // assign as one kernel pass; the mask guarantees unvisited
            // outputs, so the update rule always writes.
            let out = FusedMxv::new(MinSecond, g, &f)
                .mask(&mask)
                .descriptor(desc)
                .counters(counters)
                .first_hit_exit(opts.first_hit_exit)
                .apply(|p: u32| p)
                .assign_into(&mut parent, |_, p| Some(p))?;
            out.touched
        } else {
            let w: Vector<u32> = mxv(Some(&mask), MinSecond, g, &f, &desc, counters)?;
            let mut ids = Vec::new();
            for (v, p) in w.iter_explicit() {
                debug_assert!(!visited.get(v as usize));
                parent[v as usize] = p;
                ids.push(v);
            }
            ids
        };
        for &v in &discovered {
            visited.set(v as usize);
        }
        if discovered.is_empty() {
            break;
        }
        // Next frontier: the discovered vertices, carrying their own ids.
        let vals = discovered.clone();
        f = Vector::from_sparse(n, NO_PARENT, discovered, vals);
    }

    Ok(ParentBfsResult { parent, levels })
}

/// Validate a parent array against the graph, Graph500-style: the source
/// is its own parent, every reached vertex's parent is reached, adjacent,
/// and exactly one level shallower.
#[must_use]
pub fn verify_parents(g: &Graph<bool>, source: VertexId, parent: &[u32]) -> bool {
    let depths = crate::bfs::bfs(g, source).depths;
    if parent[source as usize] != source {
        return false;
    }
    for v in 0..g.n_vertices() {
        let p = parent[v];
        if p == NO_PARENT {
            if depths[v] >= 0 {
                return false; // reached but no parent recorded
            }
            continue;
        }
        if v == source as usize {
            continue;
        }
        // Parent must be adjacent (edge p → v) and one level above.
        if !g.children(p).contains(&(v as u32)) {
            return false;
        }
        if depths[p as usize] + 1 != depths[v] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::rmat::{rmat, RmatParams};
    use graphblas_matrix::Coo;

    #[test]
    fn path_parents_are_predecessors() {
        let mut coo = Coo::new(4, 4);
        for i in 0..3 {
            coo.push(i as u32, i as u32 + 1, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let r = bfs_parents(&g, 0, 0.01);
        assert_eq!(r.parent, vec![0, 0, 1, 2]);
        assert!(verify_parents(&g, 0, &r.parent));
    }

    #[test]
    fn parents_valid_on_scale_free() {
        let g = rmat(11, 16, RmatParams::default(), 3);
        for src in [0u32, 99] {
            let r = bfs_parents(&g, src, 0.01);
            assert!(verify_parents(&g, src, &r.parent), "source {src}");
        }
    }

    #[test]
    fn parents_valid_on_mesh() {
        let g = road_mesh(40, 40, RoadParams::default(), 8);
        let r = bfs_parents(&g, 5, 0.01);
        assert!(verify_parents(&g, 5, &r.parent));
    }

    #[test]
    fn min_parent_is_deterministic_across_directions() {
        // Diamond: 0 -> {1,2} -> 3. Both 1 and 2 can parent 3; min wins.
        let mut coo = Coo::new(4, 4);
        for &(u, v) in &[(0u32, 1u32), (0, 2), (1, 3), (2, 3)] {
            coo.push(u, v, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        // Push-only (threshold 2.0 never crosses) and pull-heavy
        // (threshold 0.0 crosses immediately) must agree exactly.
        let push = bfs_parents(&g, 0, 2.0);
        let pull = bfs_parents(&g, 0, 0.0);
        assert_eq!(push.parent, pull.parent);
        assert_eq!(push.parent[3], 1, "minimum-id parent");
    }

    #[test]
    fn unreached_have_no_parent() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, true);
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let r = bfs_parents(&g, 0, 0.01);
        assert_eq!(r.parent[2], NO_PARENT);
        assert!(verify_parents(&g, 0, &r.parent));
    }

    #[test]
    fn fused_first_hit_and_unfused_agree_everywhere() {
        let g = rmat(10, 16, RmatParams::default(), 14);
        for threshold in [0.0, 0.01, 2.0] {
            let run = |fused: bool, first_hit: bool| {
                let opts = ParentBfsOpts {
                    switch_threshold: threshold,
                    fused,
                    first_hit_exit: first_hit,
                    ..ParentBfsOpts::default()
                };
                bfs_parents_with_opts(&g, 7, &opts, None).parent
            };
            let reference = run(false, false);
            assert_eq!(run(true, false), reference, "fused, t={threshold}");
            assert_eq!(run(true, true), reference, "first-hit, t={threshold}");
        }
    }

    #[test]
    fn first_hit_exit_cuts_pull_matrix_traffic() {
        // Pull-heavy run (threshold 0 switches immediately): first-hit
        // rows stop at their first frontier parent.
        let g = rmat(11, 24, RmatParams::default(), 5);
        let run = |first_hit: bool| {
            let c = AccessCounters::new();
            let opts = ParentBfsOpts {
                switch_threshold: 0.0,
                fused: true,
                first_hit_exit: first_hit,
                ..ParentBfsOpts::default()
            };
            let r = bfs_parents_with_opts(&g, 0, &opts, Some(&c));
            (r.parent, c.snapshot().matrix)
        };
        let (p_full, m_full) = run(false);
        let (p_hit, m_hit) = run(true);
        assert_eq!(p_hit, p_full, "identical trees");
        assert!(
            m_hit < m_full,
            "first-hit must reduce matrix accesses: {m_hit} vs {m_full}"
        );
    }

    #[test]
    fn bit_first_hit_recovers_scalar_min_parent_tree() {
        // Force the bitmap store so the bit first-hit path engages: the
        // rank-recovered parent must equal the scalar ascending scan's, and
        // the projected access charges must match exactly.
        let g = rmat(10, 20, RmatParams::default(), 31);
        let run = |bit: bool| {
            let c = AccessCounters::new();
            let opts = ParentBfsOpts {
                switch_threshold: 0.0,
                format: FormatPolicy::fixed(graphblas_core::StorageFormat::Bitmap),
                bit_kernels: bit,
                ..ParentBfsOpts::default()
            };
            let r = bfs_parents_with_opts(&g, 3, &opts, Some(&c));
            (r.parent, c.snapshot().accesses_only())
        };
        let (p_bit, a_bit) = run(true);
        let (p_scalar, a_scalar) = run(false);
        assert_eq!(p_bit, p_scalar, "bit first-hit changed the tree");
        assert_eq!(a_bit, a_scalar, "bit first-hit changed projected charges");
        assert!(verify_parents(&g, 3, &p_bit));
    }
}
