//! PageRank, standard and *adaptive* — the paper's flagship example of
//! masking beyond BFS (§1, §5.6: "when the PageRank value has converged
//! for a particular node" the output sparsity is known a priori).
//!
//! Standard power iteration runs a dense row-based matvec per step
//! (`O(nnz(A))`). Adaptive PageRank (Kamvar, Haveliwala & Golub 2004)
//! freezes vertices whose value has converged; the set of *non-converged*
//! vertices is exactly an output-sparsity mask, so each iteration runs the
//! masked row kernel at `O(d·nnz(m))` — the same Table 1 asymptotics that
//! make pull-BFS fast, transplanted to a numeric algorithm.

use graphblas_core::descriptor::{Descriptor, Direction};
use graphblas_core::mask::Mask;
use graphblas_core::mxv;
use graphblas_core::ops::PlusTimes;
use graphblas_core::vector::{DenseVector, Vector};
use graphblas_core::{run_guarded, ExecLimits, FormatPolicy, FusedMxv, GrbResult};
use graphblas_matrix::{Csr, Graph, VertexId};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::BitVec;

/// PageRank options.
#[derive(Clone, Copy, Debug)]
pub struct PageRankOpts {
    /// Damping factor α (0.85 standard).
    pub damping: f64,
    /// L1 convergence tolerance on the whole vector.
    pub tol: f64,
    /// Per-entry freeze tolerance for the adaptive variant.
    pub entry_tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Run each iteration as one fused mxv·apply·assign pass (default):
    /// the teleport/damping/dangling update (`GrB_apply`) and the write
    /// into the next rank vector fuse into the masked row kernel, so the
    /// per-iteration inflow vector is never materialized. Bit-identical
    /// either way (the fused pipeline assigns every allowed row, matching
    /// how the unfused loop reads its dense intermediate).
    pub fused: bool,
    /// Matrix storage-format policy (default auto; see
    /// [`graphblas_core::plan`]). Format-invariant ranks and counters.
    pub format: FormatPolicy,
    /// Execution limits enforced by [`try_pagerank_with_counters`]; the
    /// infallible entry points ignore this field.
    pub limits: ExecLimits,
}

impl Default for PageRankOpts {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tol: 1e-7,
            entry_tol: 1e-9,
            max_iters: 200,
            fused: true,
            format: FormatPolicy::auto(),
            limits: ExecLimits::none(),
        }
    }
}

/// Result of a PageRank run.
#[derive(Clone, Debug)]
pub struct PageRankResult {
    /// The rank vector (sums to ~1).
    pub ranks: Vec<f64>,
    /// Iterations executed.
    pub iters: usize,
    /// Total row-updates performed (masked runs do fewer — the measurable
    /// win of adaptive masking).
    pub row_updates: usize,
}

/// Build the column-stochastic transition structure: entry (u, v) of `A`
/// holds `1/outdeg(u)`, so row `v` of `Aᵀ` gathers `r(u)/outdeg(u)` from
/// each in-neighbor `u`.
#[must_use]
pub fn transition_matrix(g: &Graph<bool>) -> Graph<f64> {
    let a = g.csr();
    let n = a.n_rows();
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.extend_from_slice(a.row_ptr());
    let col_ind = a.col_ind().to_vec();
    let mut values = Vec::with_capacity(a.nnz());
    for u in 0..n {
        let deg = a.degree(u).max(1);
        values.extend(std::iter::repeat_n(1.0 / deg as f64, a.degree(u)));
    }
    Graph::from_csr(Csr::from_parts(n, a.n_cols(), row_ptr, col_ind, values))
}

/// Standard power-iteration PageRank (dense row-based matvec per step).
#[must_use]
pub fn pagerank(g: &Graph<bool>, opts: &PageRankOpts) -> PageRankResult {
    pagerank_with_counters(g, opts, false, None)
}

/// Adaptive PageRank: converged entries are frozen and masked out of the
/// matvec (Kamvar et al. 2004, via the paper's masking formalism).
#[must_use]
pub fn adaptive_pagerank(g: &Graph<bool>, opts: &PageRankOpts) -> PageRankResult {
    pagerank_with_counters(g, opts, true, None)
}

/// PageRank (standard or adaptive) with optional access counters.
#[must_use]
pub fn pagerank_with_counters(
    g: &Graph<bool>,
    opts: &PageRankOpts,
    adaptive: bool,
    counters: Option<&AccessCounters>,
) -> PageRankResult {
    pagerank_loop(g, opts, adaptive, counters)
        .expect("unlimited PageRank with verified dims cannot abort")
}

/// PageRank under the options' [`ExecLimits`] with full fault isolation
/// (see [`crate::bfs::try_bfs_with_opts`] for the abort/retry contract).
pub fn try_pagerank_with_counters(
    g: &Graph<bool>,
    opts: &PageRankOpts,
    adaptive: bool,
    counters: Option<&AccessCounters>,
) -> GrbResult<PageRankResult> {
    run_guarded(counters, &opts.limits, |c| {
        pagerank_loop(g, opts, adaptive, c)
    })
}

fn pagerank_loop(
    g: &Graph<bool>,
    opts: &PageRankOpts,
    adaptive: bool,
    counters: Option<&AccessCounters>,
) -> GrbResult<PageRankResult> {
    let n = g.n_vertices();
    assert!(n > 0, "empty graph");
    let t = transition_matrix(g);
    let a = g.csr();
    let teleport = (1.0 - opts.damping) / n as f64;

    let mut ranks = vec![1.0 / n as f64; n];
    let mut active = BitVec::new(n);
    for i in 0..n {
        active.set(i);
    }
    let mut active_list: Vec<VertexId> = (0..n as VertexId).collect();
    let mut iters = 0usize;
    let mut row_updates = 0usize;
    let mut fpol = opts.format;
    let base_desc = Descriptor::new().transpose(true).force(Direction::Pull);

    while iters < opts.max_iters {
        iters += 1;
        let desc = base_desc.force_format(fpol.update(&t, true, Direction::Pull, counters));
        // Dangling mass: vertices with no out-edges leak rank; spread it.
        let dangling: f64 = (0..n)
            .filter(|&u| a.degree(u) == 0)
            .map(|u| ranks[u])
            .sum::<f64>()
            / n as f64;

        let r_vec = Vector::Dense(DenseVector::from_values(ranks.clone(), 0.0));
        let mut l1 = 0.0f64;
        let mut next = ranks.clone();
        if opts.fused {
            // Fused: the rank update (GrB_apply) and the write into `next`
            // happen inside the masked row kernel; the inflow vector is
            // never materialized. `keep_identity` assigns every allowed
            // row — zero-inflow vertices still receive teleport + dangling
            // mass, exactly as the unfused loop reads them from its dense
            // intermediate.
            let damping = opts.damping;
            let rank_update = move |inflow: f64| teleport + damping * (inflow + dangling);
            // The assigned set is known a priori (the active list, or
            // every row), so skip collecting the touched index list.
            if adaptive {
                let mask = Mask::new(&active).with_active_list(&active_list);
                row_updates += active_list.len();
                FusedMxv::new(PlusTimes, &t, &r_vec)
                    .mask(&mask)
                    .descriptor(desc)
                    .counters(counters)
                    .keep_identity(true)
                    .collect_touched(false)
                    .apply(rank_update)
                    .assign_into(&mut next, |_, z| Some(z))
            } else {
                row_updates += n;
                FusedMxv::new(PlusTimes, &t, &r_vec)
                    .descriptor(desc)
                    .counters(counters)
                    .keep_identity(true)
                    .collect_touched(false)
                    .apply(rank_update)
                    .assign_into(&mut next, |_, z| Some(z))
            }?;
            // L1 drift over that same set, in the unfused loop's index
            // order so the f64 sum groups identically.
            if adaptive {
                for &i in &active_list {
                    l1 += (next[i as usize] - ranks[i as usize]).abs();
                }
            } else {
                for i in 0..n {
                    l1 += (next[i] - ranks[i]).abs();
                }
            }
        } else {
            let contrib: Vector<f64> = if adaptive {
                let mask = Mask::new(&active).with_active_list(&active_list);
                row_updates += active_list.len();
                mxv(Some(&mask), PlusTimes, &t, &r_vec, &desc, counters)?
            } else {
                row_updates += n;
                mxv(None, PlusTimes, &t, &r_vec, &desc, counters)?
            };

            let update = |i: usize, next: &mut Vec<f64>, l1: &mut f64| {
                let inflow = contrib.get(i as u32);
                let new = teleport + opts.damping * (inflow + dangling);
                *l1 += (new - next[i]).abs();
                next[i] = new;
            };
            if adaptive {
                for &i in &active_list {
                    update(i as usize, &mut next, &mut l1);
                }
            } else {
                for i in 0..n {
                    update(i, &mut next, &mut l1);
                }
            }
        }

        // Adaptive: freeze entries whose change fell below entry_tol.
        if adaptive {
            active_list.retain(|&i| {
                let changed = (next[i as usize] - ranks[i as usize]).abs() > opts.entry_tol;
                if !changed {
                    active.clear(i as usize);
                }
                changed
            });
        }
        ranks = next;
        if l1 < opts.tol || (adaptive && active_list.is_empty()) {
            break;
        }
    }

    Ok(PageRankResult {
        ranks,
        iters,
        row_updates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::erdos::erdos_renyi;
    use graphblas_gen::powerlaw::{chung_lu, PowerLawParams};
    use graphblas_matrix::Coo;

    #[test]
    fn ranks_sum_to_one() {
        let g = erdos_renyi(500, 3000, 5);
        let r = pagerank(&g, &PageRankOpts::default());
        let total: f64 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }

    #[test]
    fn symmetric_star_center_dominates() {
        let mut coo = Coo::new(5, 5);
        for leaf in 1..5u32 {
            coo.push(0, leaf, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let r = pagerank(&g, &PageRankOpts::default());
        for leaf in 1..5 {
            assert!(r.ranks[0] > 2.0 * r.ranks[leaf], "center must dominate");
        }
    }

    #[test]
    fn cycle_is_uniform() {
        let n = 8;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i as u32, ((i + 1) % n) as u32, true);
        }
        let g = Graph::from_coo(&coo);
        let r = pagerank(&g, &PageRankOpts::default());
        for &x in &r.ranks {
            assert!((x - 1.0 / n as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn adaptive_matches_standard_within_tolerance() {
        let g = chung_lu(2000, 8, PowerLawParams::default(), 3);
        let opts = PageRankOpts::default();
        let standard = pagerank(&g, &opts);
        let adaptive = adaptive_pagerank(&g, &opts);
        let linf = standard
            .ranks
            .iter()
            .zip(&adaptive.ranks)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(linf < 1e-5, "adaptive deviates by {linf}");
    }

    #[test]
    fn adaptive_does_less_work() {
        let g = chung_lu(2000, 8, PowerLawParams::default(), 3);
        let opts = PageRankOpts::default();
        let standard = pagerank(&g, &opts);
        let adaptive = adaptive_pagerank(&g, &opts);
        assert!(
            adaptive.row_updates < standard.row_updates,
            "masked iterations must shrink: {} vs {}",
            adaptive.row_updates,
            standard.row_updates
        );
    }

    #[test]
    fn dangling_vertices_do_not_lose_mass() {
        // Directed: 0 -> 1, 1 has no out-edges (dangling).
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, true);
        coo.push(2, 0, true);
        let g = Graph::from_coo(&coo);
        let r = pagerank(&g, &PageRankOpts::default());
        let total: f64 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }
}
