//! Single-source shortest paths: Bellman-Ford over the min-plus semiring,
//! with the two-phase direction optimization of §5.6.
//!
//! §5.6: "In SSSP … a simple 2-phase direction-optimized traversal can be
//! used where the traversal is begun using unmasked column-based matvec,
//! with a switch to row-based matvec when the frontier becomes large
//! enough." The *frontier* here is the delta set — vertices whose tentative
//! distance improved last round; masking does not apply because the output
//! sparsity is unknown (any vertex might improve).
//!
//! Push rounds relax only edges out of the delta set (column kernel over a
//! sparse distance vector). Pull rounds relax every vertex against the full
//! distance vector (row kernel) — valid because min is idempotent, the same
//! argument that makes operand reuse sound for BFS.

use graphblas_core::descriptor::{Descriptor, Direction, ShardPolicy};
use graphblas_core::ops::MinPlus;
use graphblas_core::vector::Vector;
use graphblas_core::{
    mxv, run_guarded, DirectionPolicy, ExecLimits, FormatPolicy, FusedMxv, GrbResult,
};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::counters::AccessCounters;

/// Options for the SSSP solver.
#[derive(Clone, Copy, Debug)]
pub struct SsspOpts {
    /// Delta-set ratio at which push switches to pull (once; 2-phase).
    pub switch_threshold: f64,
    /// Disable the switch entirely (push-only Bellman-Ford).
    pub change_of_direction: bool,
    /// Safety cap on rounds (≥ diameter suffices; default |V|).
    pub max_rounds: Option<usize>,
    /// Run each round as one fused mxv·assign pass (default): the
    /// relaxation `dist ← min(dist, candidates)` becomes the fused update
    /// rule and the candidate vector is never materialized. Bit-identical
    /// either way.
    pub fused: bool,
    /// Matrix storage-format policy (default auto; see
    /// [`graphblas_core::plan`]). Format-invariant results and counters.
    pub format: FormatPolicy,
    /// Execution limits enforced by [`try_sssp_with_counters`]; the
    /// infallible entry points ignore this field.
    pub limits: ExecLimits,
    /// Cache-blocked shard-grid policy each round's kernels run under
    /// (default off, the oracle). Result- and counter-invariant.
    pub shards: ShardPolicy,
}

impl Default for SsspOpts {
    fn default() -> Self {
        Self {
            switch_threshold: 0.01,
            change_of_direction: true,
            max_rounds: None,
            fused: true,
            format: FormatPolicy::auto(),
            limits: ExecLimits::none(),
            shards: ShardPolicy::Off,
        }
    }
}

/// Result of an SSSP run.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Tentative distances; `f32::INFINITY` where unreachable.
    pub dist: Vec<f32>,
    /// Relaxation rounds executed.
    pub rounds: usize,
    /// Rounds executed in the pull (row-based) phase.
    pub pull_rounds: usize,
}

/// Bellman-Ford from `source` on a non-negatively weighted graph.
#[must_use]
pub fn sssp(g: &Graph<f32>, source: VertexId, opts: &SsspOpts) -> SsspResult {
    sssp_with_counters(g, source, opts, None)
}

/// [`sssp`] with optional access counters.
#[must_use]
pub fn sssp_with_counters(
    g: &Graph<f32>,
    source: VertexId,
    opts: &SsspOpts,
    counters: Option<&AccessCounters>,
) -> SsspResult {
    sssp_loop(g, source, opts, counters).expect("unlimited SSSP with verified dims cannot abort")
}

/// SSSP under the options' [`ExecLimits`] with full fault isolation (see
/// [`crate::bfs::try_bfs_with_opts`] for the abort/retry contract).
pub fn try_sssp_with_counters(
    g: &Graph<f32>,
    source: VertexId,
    opts: &SsspOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<SsspResult> {
    run_guarded(counters, &opts.limits, |c| sssp_loop(g, source, opts, c))
}

fn sssp_loop(
    g: &Graph<f32>,
    source: VertexId,
    opts: &SsspOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<SsspResult> {
    let n = g.n_vertices();
    assert!((source as usize) < n, "source out of range");
    let max_rounds = opts.max_rounds.unwrap_or(n.max(1));

    let mut dist = vec![f32::INFINITY; n];
    dist[source as usize] = 0.0;
    // Delta set: vertices improved last round, with their distances.
    let mut delta: Vector<f32> = Vector::singleton(n, f32::INFINITY, source, 0.0);
    // 2-phase switch (§5.6): once the delta set crosses the threshold, stay
    // row-based for the remainder.
    let mut policy = if opts.change_of_direction {
        DirectionPolicy::two_phase(opts.switch_threshold)
    } else {
        DirectionPolicy::fixed(Direction::Push)
    };
    let mut rounds = 0usize;
    let mut pull_rounds = 0usize;
    let mut fpol = opts.format;
    let base_push = Descriptor::new()
        .transpose(true)
        .force(Direction::Push)
        .shard_policy(opts.shards);
    let base_pull = Descriptor::new()
        .transpose(true)
        .force(Direction::Pull)
        .shard_policy(opts.shards);

    while rounds < max_rounds {
        rounds += 1;
        let dir = policy.update(delta.nnz(), n);
        if dir == Direction::Pull {
            pull_rounds += 1;
        }
        let fmt = fpol.update(g, true, dir, counters);
        let desc_push = base_push.force_format(fmt);
        let desc_pull = base_pull.force_format(fmt);

        // Pull rounds relax against the full distance vector (superset of
        // the delta — idempotent min makes the extra relaxations
        // harmless); push rounds expand only the delta set.
        let touched: Vec<u32> = if opts.fused {
            // dist ← min(dist, candidates) as the fused update rule; the
            // candidate vector never exists.
            let out = if dir == Direction::Pull {
                let full = Vector::Dense(graphblas_core::DenseVector::from_values(
                    dist.clone(),
                    f32::INFINITY,
                ));
                FusedMxv::new(MinPlus, g, &full)
                    .descriptor(desc_pull)
                    .counters(counters)
                    .apply(|d: f32| d)
                    .assign_into(&mut dist, |old, new| (new < old).then_some(new))
            } else {
                FusedMxv::new(MinPlus, g, &delta)
                    .descriptor(desc_push)
                    .counters(counters)
                    .apply(|d: f32| d)
                    .assign_into(&mut dist, |old, new| (new < old).then_some(new))
            }?;
            out.touched
        } else {
            let candidates: Vector<f32> = if dir == Direction::Pull {
                let full = Vector::Dense(graphblas_core::DenseVector::from_values(
                    dist.clone(),
                    f32::INFINITY,
                ));
                mxv(None, MinPlus, g, &full, &desc_pull, counters)?
            } else {
                mxv(None, MinPlus, g, &delta, &desc_push, counters)?
            };
            // dist ← min(dist, candidates); next delta = strict improvements.
            let mut ids = Vec::new();
            for (i, c) in candidates.iter_explicit() {
                if c < dist[i as usize] {
                    dist[i as usize] = c;
                    ids.push(i);
                }
            }
            ids
        };
        if touched.is_empty() {
            break;
        }
        let vals: Vec<f32> = touched.iter().map(|&i| dist[i as usize]).collect();
        delta = Vector::from_sparse(n, f32::INFINITY, touched, vals);
    }

    Ok(SsspResult {
        dist,
        rounds,
        pull_rounds,
    })
}

/// Serial Dijkstra used as the correctness oracle in tests and benches.
#[must_use]
pub fn dijkstra_oracle(g: &Graph<f32>, source: VertexId) -> Vec<f32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.n_vertices();
    let mut dist = vec![f32::INFINITY; n];
    dist[source as usize] = 0.0;
    // f32 is not Ord; order by bit pattern of non-negative floats.
    let key = |d: f32| d.to_bits();
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((key(0.0), source)));
    while let Some(Reverse((k, u))) = heap.pop() {
        if k != key(dist[u as usize]) {
            continue;
        }
        let du = dist[u as usize];
        let a = g.csr();
        for (idx, &v) in a.row(u as usize).iter().enumerate() {
            let w = a.row_values(u as usize)[idx];
            let nd = du + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((key(nd), v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::erdos::erdos_renyi;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::rmat::{rmat, RmatParams};
    use graphblas_gen::with_uniform_weights;
    use graphblas_matrix::Coo;

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            if x.is_infinite() || y.is_infinite() {
                assert_eq!(x, y, "at {i}");
            } else {
                assert!((x - y).abs() < 1e-4, "at {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn tiny_weighted_graph_exact() {
        // 0 -1-> 1 -1-> 2 and 0 -5-> 2: shortest to 2 is 2.0.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0f32);
        coo.push(1, 2, 1.0);
        coo.push(0, 2, 5.0);
        let g = Graph::from_coo(&coo);
        let r = sssp(&g, 0, &SsspOpts::default());
        assert_close(&r.dist, &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let gb = erdos_renyi(1500, 9000, 21);
        let g = with_uniform_weights(&gb, 4);
        let r = sssp(&g, 3, &SsspOpts::default());
        assert_close(&r.dist, &dijkstra_oracle(&g, 3));
    }

    #[test]
    fn matches_dijkstra_on_scale_free_and_uses_pull() {
        let gb = rmat(11, 16, RmatParams::default(), 6);
        let g = with_uniform_weights(&gb, 8);
        let r = sssp(&g, 0, &SsspOpts::default());
        assert_close(&r.dist, &dijkstra_oracle(&g, 0));
        assert!(
            r.pull_rounds > 0,
            "scale-free delta set must cross the 1% threshold"
        );
    }

    #[test]
    fn push_only_agrees_with_switching() {
        let gb = erdos_renyi(800, 4000, 9);
        let g = with_uniform_weights(&gb, 2);
        let auto = sssp(&g, 1, &SsspOpts::default());
        let push = sssp(
            &g,
            1,
            &SsspOpts {
                change_of_direction: false,
                ..SsspOpts::default()
            },
        );
        assert_close(&auto.dist, &push.dist);
        assert_eq!(push.pull_rounds, 0);
    }

    #[test]
    fn mesh_stays_push() {
        let gb = road_mesh(30, 30, RoadParams::default(), 3);
        let g = with_uniform_weights(&gb, 13);
        let r = sssp(&g, 0, &SsspOpts::default());
        assert_close(&r.dist, &dijkstra_oracle(&g, 0));
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0f32);
        coo.push(2, 3, 1.0);
        let g = Graph::from_coo(&coo);
        let r = sssp(&g, 0, &SsspOpts::default());
        assert_eq!(r.dist[2], f32::INFINITY);
        assert_eq!(r.dist[3], f32::INFINITY);
    }
}
