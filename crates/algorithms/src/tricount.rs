//! Triangle counting via masked SpGEMM — the first algorithm §1 names when
//! generalizing masking: "this speed-up extends to all algorithms for which
//! there is a priori information regarding the sparsity pattern of the
//! output such as triangle counting and enumeration [Azad, Buluç, Gilbert]".
//!
//! With `L` the strictly-lower triangle of the adjacency matrix, the
//! triangle count is `Σ (L·L) .∗ L` — and because the elementwise mask `L`
//! is known *before* the multiply, the masked kernel only accumulates
//! products that can survive, skipping the (much larger) full wedge set.

use graphblas_core::mxm::mxm;
use graphblas_core::ops::PlusTimes;
use graphblas_matrix::{Csr, Graph};
use graphblas_primitives::counters::AccessCounters;

/// Strictly-lower-triangular part of the adjacency structure, with
/// numeric 1 values (so plus-times counts wedges).
#[must_use]
pub fn lower_triangle(g: &Graph<bool>) -> Csr<u64> {
    let a = g.csr();
    let n = a.n_rows();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_ind = Vec::new();
    row_ptr.push(0usize);
    for i in 0..n {
        for &j in a.row(i) {
            if (j as usize) < i {
                col_ind.push(j);
            }
        }
        row_ptr.push(col_ind.len());
    }
    let values = vec![1u64; col_ind.len()];
    Csr::from_parts(n, n, row_ptr, col_ind, values)
}

/// Count triangles with the masked SpGEMM formulation.
#[must_use]
pub fn triangle_count(g: &Graph<bool>) -> u64 {
    triangle_count_with_counters(g, None)
}

/// [`triangle_count`] with the SpGEMM's access counters exposed — the
/// measurable face of the masked-mxm claim (mask probes vs SPA traffic).
#[must_use]
pub fn triangle_count_with_counters(g: &Graph<bool>, counters: Option<&AccessCounters>) -> u64 {
    let l = lower_triangle(g);
    let c = mxm(Some(&l), PlusTimes, &l, &l, 0u64, counters);
    c.values().iter().sum()
}

/// Count triangles the expensive way: full `L·L`, then filter by `L` —
/// the unmasked comparator for the masking-generality ablation bench.
#[must_use]
pub fn triangle_count_unmasked(g: &Graph<bool>) -> u64 {
    let l = lower_triangle(g);
    let full = mxm(None::<&Csr<u64>>, PlusTimes, &l, &l, 0u64, None);
    let mut total = 0u64;
    for i in 0..full.n_rows() {
        let allowed = l.row(i);
        for (idx, &j) in full.row(i).iter().enumerate() {
            if allowed.binary_search(&j).is_ok() {
                total += full.row_values(i)[idx];
            }
        }
    }
    total
}

/// Brute-force oracle: check every vertex triple adjacency via sorted rows.
/// O(Σ deg²) — test-sized graphs only.
#[must_use]
pub fn triangle_oracle(g: &Graph<bool>) -> u64 {
    let a = g.csr();
    let mut count = 0u64;
    for u in 0..a.n_rows() {
        let nu = a.row(u);
        for &v in nu {
            if (v as usize) >= u {
                continue;
            }
            // Count common neighbors w < v of u and v.
            let nv = a.row(v as usize);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                let (x, y) = (nu[i], nv[j]);
                if x >= v || y >= v {
                    break;
                }
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::erdos::erdos_renyi;
    use graphblas_gen::powerlaw::{chung_lu, PowerLawParams};
    use graphblas_matrix::Coo;

    fn complete_graph(n: usize) -> Graph<bool> {
        let mut coo = Coo::new(n, n);
        for i in 0..n as u32 {
            for j in 0..i {
                coo.push(i, j, true);
            }
        }
        coo.clean_undirected();
        Graph::from_coo(&coo)
    }

    #[test]
    fn complete_graph_has_n_choose_3() {
        for n in [3usize, 4, 5, 8] {
            let g = complete_graph(n);
            let expect = (n * (n - 1) * (n - 2) / 6) as u64;
            assert_eq!(triangle_count(&g), expect, "K_{n}");
        }
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        // Even cycle is bipartite ⇒ no triangles.
        let n = 10;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i as u32, ((i + 1) % n) as u32, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn masked_matches_unmasked_and_oracle() {
        let g = erdos_renyi(400, 4000, 13);
        let masked = triangle_count(&g);
        let unmasked = triangle_count_unmasked(&g);
        let oracle = triangle_oracle(&g);
        assert_eq!(masked, oracle);
        assert_eq!(unmasked, oracle);
        assert!(oracle > 0, "dense ER graph should close triangles");
    }

    #[test]
    fn scale_free_counts_match_oracle() {
        let g = chung_lu(1000, 8, PowerLawParams::default(), 3);
        assert_eq!(triangle_count(&g), triangle_oracle(&g));
    }

    #[test]
    fn counters_show_mask_culling_spgemm_traffic() {
        let g = erdos_renyi(300, 2400, 7);
        let c = AccessCounters::new();
        let count = triangle_count_with_counters(&g, Some(&c));
        assert_eq!(count, triangle_oracle(&g));
        let s = c.snapshot();
        assert!(s.matrix > 0, "wedge expansion is charged");
        assert_eq!(s.mask, s.matrix, "every wedge probes the L mask");
        assert!(
            s.vector < 2 * s.matrix,
            "mask culls SPA traffic below the unmasked bound"
        );
    }
}
