//! Direction-optimized BFS — Algorithm 1 of the paper.
//!
//! ```text
//! procedure GrB_BFS(Vector v, Graph A, Source s)
//!   f(s) ← 1; v ← 0; d ← 1
//!   while c > 0:
//!     v ← f × d + v          ▷ GrB_assign
//!     f ← Aᵀf .∗ ¬v          ▷ GrB_mxv   (push OR pull — backend decides)
//!     c ← Σ f(i)             ▷ GrB_reduce
//!     d ← d + 1
//! ```
//!
//! The whole point of the paper is that this *one* expression covers both
//! traversal directions; everything interesting happens in the options:
//!
//! * **change of direction** — frontier storage follows the §6.3 hysteresis
//!   rule (`r = nnz(f)/M` vs. `α = β = 0.01`); off ⇒ push-only.
//! * **masking** — `¬v` passed as a kernel mask (with the amortized
//!   unvisited active list of §3.2); off ⇒ unmasked matvec followed by an
//!   elementwise filter.
//! * **early-exit** — pull rows stop at the first frontier parent.
//! * **operand reuse** — pull iterations feed the dense *visited* vector as
//!   the input (`Aᵀv .∗ ¬v`), so push→pull switches skip the sparse→dense
//!   frontier conversion (§5.4, Gunrock's trick).
//! * **structure-only** — the Boolean semiring ignores matrix values and
//!   the push kernel key-only sorts (§5.5).
//!
//! [`BfsOpts::ladder`] reproduces Table 2's cumulative configurations.
//!
//! By default each level runs as a **fused pipeline**
//! ([`graphblas_core::fused::FusedMxv`]): the masked matvec, the depth
//! `apply`, and the `assign` into the depth array execute as one kernel
//! pass with no intermediate frontier-product vector. [`BfsOpts::fused`]
//! toggles back to the separate-operation composition; the two are
//! bit-identical in results *and* access counters (pinned by
//! `tests/fused_pipelines.rs`), fusion just skips the intermediate writes
//! (`fused_saved_writes` in the counters).

use graphblas_core::descriptor::{Descriptor, Direction, ShardPolicy};
use graphblas_core::mask::Mask;
use graphblas_core::ops::{BoolOrAnd, BoolStructure, Semiring};
use graphblas_core::vector::Vector;
use graphblas_core::vector_ops::filter_by_mask;
use graphblas_core::{
    mxv, run_guarded, CostConstants, CostModelInputs, DirectionPolicy, ExecLimits, FormatPolicy,
    FusedMxv, GrbResult,
};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::BitVec;
use std::time::Instant;

/// Depth label for unreached vertices (matches `graphblas_baselines`).
pub const UNREACHED: i32 = -1;

/// Per-optimization switches; defaults enable everything (the "This Work"
/// configuration of Figure 7).
#[derive(Clone, Copy, Debug)]
pub struct BfsOpts {
    /// Optimization 1 (§5.1): push↔pull switching. Off ⇒ push-only.
    pub change_of_direction: bool,
    /// Optimization 2 (§5.2): `¬v` as a kernel-level mask.
    pub masking: bool,
    /// Optimization 3 (§5.3): pull rows stop at the first frontier parent.
    pub early_exit: bool,
    /// Optimization 4 (§5.4): pull input is the visited vector.
    pub operand_reuse: bool,
    /// Optimization 5 (§5.5): pattern-only semiring + key-only sort.
    pub structure_only: bool,
    /// The §6.3 switch ratio (α = β). Paper default 0.01.
    pub switch_threshold: f64,
    /// Force every iteration into one direction (Figs. 5–6 per-direction
    /// studies). Overrides `change_of_direction`.
    pub force: Option<Direction>,
    /// Record per-iteration telemetry (adds two timer reads per level).
    pub record_trace: bool,
    /// Run each level as one fused mxv·apply·assign pass (default) instead
    /// of the separate-operation composition. Orthogonal to the five paper
    /// optimizations: results and access counters are bit-identical either
    /// way.
    pub fused: bool,
    /// Matrix storage-format policy the per-level planner runs under
    /// (default [`FormatPolicy::auto`]; `FormatPolicy::fixed(Csr)` is the
    /// tested oracle). Formats never change results or access counters —
    /// only wall clock and the `format_switches` tally.
    pub format: FormatPolicy,
    /// Let the boolean kernels run bit-parallel when the level's planned
    /// store is the bitmap (default on). Value- and projected-counter
    /// neutral; `false` is the scalar-oracle arm of the equivalence tests.
    pub bit_kernels: bool,
    /// Replace the ratio-threshold direction rule with the measured cost
    /// model: `pushwork = c_push · nnz(A(:, f))` against
    /// `pullwork = c_pull · d · |unvisited|`, per level (overridden by
    /// [`BfsOpts::force`]). Pair with [`FormatPolicy::cost_model`] to let
    /// the same constants pick the format half of the plan.
    pub cost_model: bool,
    /// Execution limits (deadline, work budget, bytes budget) enforced by
    /// [`try_bfs_with_opts`]. The infallible entry points ignore this
    /// field — they cannot surface an abort.
    pub limits: ExecLimits,
    /// Cache-blocked shard-grid policy each level's kernels run under
    /// (default [`ShardPolicy::Off`], the proptested oracle). Sharding
    /// never changes results or access counters — only memory locality
    /// and the `shard_merges`/`cross_shard_writes` telemetry.
    pub shards: ShardPolicy,
}

impl Default for BfsOpts {
    fn default() -> Self {
        Self {
            change_of_direction: true,
            masking: true,
            early_exit: true,
            operand_reuse: true,
            structure_only: true,
            switch_threshold: 0.01,
            force: None,
            record_trace: false,
            fused: true,
            format: FormatPolicy::auto(),
            bit_kernels: true,
            cost_model: false,
            limits: ExecLimits::none(),
            shards: ShardPolicy::Off,
        }
    }
}

impl BfsOpts {
    /// Everything off: the push-only, unmasked, key-value-sort
    /// linear-algebra BFS — Table 2's "Baseline" row.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            change_of_direction: false,
            masking: false,
            early_exit: false,
            operand_reuse: false,
            structure_only: false,
            switch_threshold: 0.01,
            force: None,
            record_trace: false,
            fused: true,
            format: FormatPolicy::auto(),
            // The baseline is the scalar reference configuration.
            bit_kernels: false,
            cost_model: false,
            limits: ExecLimits::none(),
            shards: ShardPolicy::Off,
        }
    }

    /// Builder: set the shard-grid policy (see [`BfsOpts::shards`]).
    #[must_use]
    pub fn shard_policy(mut self, p: ShardPolicy) -> Self {
        self.shards = p;
        self
    }

    /// Builder: toggle the fused pipeline (see [`BfsOpts::fused`]).
    #[must_use]
    pub fn fused(mut self, on: bool) -> Self {
        self.fused = on;
        self
    }

    /// Builder: toggle the bit-parallel kernels (see
    /// [`BfsOpts::bit_kernels`]).
    #[must_use]
    pub fn bit_kernels(mut self, on: bool) -> Self {
        self.bit_kernels = on;
        self
    }

    /// Builder: toggle the measured cost-model direction rule (see
    /// [`BfsOpts::cost_model`]).
    #[must_use]
    pub fn cost_model(mut self, on: bool) -> Self {
        self.cost_model = on;
        self
    }

    /// Table 2's cumulative optimization ladder, in paper order. Each row
    /// adds one optimization on top of all previous ones.
    #[must_use]
    pub fn ladder() -> Vec<(&'static str, Self)> {
        let mut cfg = Self::baseline();
        let mut out = vec![("Baseline", cfg)];
        cfg.structure_only = true;
        out.push(("Structure only", cfg));
        cfg.change_of_direction = true;
        out.push(("Change of direction", cfg));
        cfg.masking = true;
        out.push(("Masking", cfg));
        cfg.early_exit = true;
        out.push(("Early exit", cfg));
        cfg.operand_reuse = true;
        out.push(("Operand reuse", cfg));
        out
    }

    /// Builder: force a direction for every iteration.
    #[must_use]
    pub fn forced(mut self, d: Direction) -> Self {
        self.force = Some(d);
        self
    }

    /// Builder: set the storage-format policy (see [`BfsOpts::format`]).
    #[must_use]
    pub fn format(mut self, p: FormatPolicy) -> Self {
        self.format = p;
        self
    }

    /// Builder: enable per-iteration telemetry.
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Builder: set the execution limits [`try_bfs_with_opts`] enforces.
    #[must_use]
    pub fn limits(mut self, l: ExecLimits) -> Self {
        self.limits = l;
        self
    }
}

/// One BFS level's telemetry (feeds Figures 5 and 6).
#[derive(Clone, Copy, Debug)]
pub struct IterRecord {
    /// 1-based BFS level.
    pub level: usize,
    /// Kernel family this level ran.
    pub direction: Direction,
    /// `nnz(f)` entering the level.
    pub frontier_nnz: usize,
    /// Unvisited vertex count entering the level (`nnz(¬v)`).
    pub unvisited: usize,
    /// Wall time of the level's matvec + bookkeeping.
    pub micros: u128,
}

/// Output of a BFS run.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Per-vertex depth; [`UNREACHED`] where not reachable.
    pub depths: Vec<i32>,
    /// Number of levels executed.
    pub levels: usize,
    /// Per-level telemetry (empty unless `record_trace`).
    pub trace: Vec<IterRecord>,
}

impl BfsResult {
    /// Vertices reached (including the source).
    #[must_use]
    pub fn reached(&self) -> usize {
        self.depths.iter().filter(|&&d| d != UNREACHED).count()
    }
}

/// BFS with all optimizations enabled.
///
/// ```
/// use graphblas_algo::bfs::bfs;
/// use graphblas_matrix::{Coo, Graph};
///
/// // Path 0 – 1 – 2 (undirected).
/// let mut coo = Coo::new(3, 3);
/// coo.push(0, 1, true);
/// coo.push(1, 2, true);
/// coo.clean_undirected();
/// let g = Graph::from_coo(&coo);
///
/// let r = bfs(&g, 0);
/// assert_eq!(r.depths, vec![0, 1, 2]);
/// assert_eq!(r.reached(), 3);
/// ```
#[must_use]
pub fn bfs(g: &Graph<bool>, source: VertexId) -> BfsResult {
    bfs_with_opts(g, source, &BfsOpts::default(), None)
}

/// BFS with explicit options and optional access counters.
#[must_use]
pub fn bfs_with_opts(
    g: &Graph<bool>,
    source: VertexId,
    opts: &BfsOpts,
    counters: Option<&AccessCounters>,
) -> BfsResult {
    dispatch_bfs(g, source, opts, counters).expect("unlimited BFS with verified dims cannot abort")
}

/// BFS under the options' [`ExecLimits`], with full fault isolation: a
/// tripped deadline or budget, or a panicking worker chunk, surfaces as a
/// typed [`GrbError`](graphblas_core::GrbError) with counters rolled back
/// to their entry snapshot, so an immediate retry is bit-identical to a
/// fresh run.
pub fn try_bfs_with_opts(
    g: &Graph<bool>,
    source: VertexId,
    opts: &BfsOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<BfsResult> {
    run_guarded(counters, &opts.limits, |c| dispatch_bfs(g, source, opts, c))
}

fn dispatch_bfs(
    g: &Graph<bool>,
    source: VertexId,
    opts: &BfsOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<BfsResult> {
    if opts.structure_only {
        bfs_loop(g, source, opts, BoolStructure, counters)
    } else {
        bfs_loop(g, source, opts, BoolOrAnd, counters)
    }
}

fn bfs_loop<S>(
    g: &Graph<bool>,
    source: VertexId,
    opts: &BfsOpts,
    semiring: S,
    counters: Option<&AccessCounters>,
) -> GrbResult<BfsResult>
where
    S: Semiring<bool, bool, bool>,
{
    let n = g.n_vertices();
    assert!((source as usize) < n, "source out of range");

    let mut depths = vec![UNREACHED; n];
    depths[source as usize] = 0;
    let mut visited = BitVec::new(n);
    visited.set(source as usize);
    // Dense visited vector maintained for operand reuse (cheap: one write
    // per discovered vertex; passed by reference, never cloned).
    let mut visited_vec: Vector<bool> = Vector::new_dense(n, false);
    visited_vec
        .as_dense_mut()
        .expect("dense by construction")
        .set(source as usize, true);
    // The §3.2 amortized list of unvisited vertices: built once at cost
    // O(M), compacted lazily (only when a pull iteration will use it).
    let mut unvisited: Vec<VertexId> = if opts.masking {
        (0..n as VertexId).filter(|&i| i != source).collect()
    } else {
        Vec::new()
    };
    let mut unvisited_stale = false;
    let mut unvisited_count = n - 1;

    let mut f: Vector<bool> = Vector::singleton(n, false, source, true);
    let mut frontier_nnz = 1usize;
    // Optimization 1's switching rule lives in graphblas_core; BFS only
    // chooses which policy variant it runs under.
    let mut policy = match opts.force {
        Some(d) => DirectionPolicy::fixed(d),
        None if opts.cost_model => DirectionPolicy::cost_model(CostConstants::default()),
        None if opts.change_of_direction => DirectionPolicy::hysteresis(opts.switch_threshold),
        None => DirectionPolicy::fixed(Direction::Push),
    };
    // The format half of the per-level plan, beside the direction policy.
    let mut fpol = opts.format;
    let mut level = 0usize;
    let mut trace = Vec::new();

    // One descriptor per direction, derived from the options. transpose =
    // true: Algorithm 1 multiplies by Aᵀ.
    let base_desc = Descriptor::new()
        .transpose(true)
        .early_exit(opts.early_exit)
        .structure_only(opts.structure_only)
        .switch_threshold(opts.switch_threshold)
        .bit_kernels(opts.bit_kernels)
        .shard_policy(opts.shards);

    loop {
        let t0 = opts.record_trace.then(Instant::now);
        level += 1;

        // Optimization 1: pick this level's direction; the format policy
        // picks the matrix store the level's kernel face runs over.
        let dir = if opts.cost_model && opts.force.is_none() {
            // Measured workloads for the Beamer-style rule: push expands the
            // out-rows of the frontier; pull scans into the unvisited set.
            let csr = g.csr();
            let frontier_edges = f
                .iter_explicit()
                .map(|(i, _)| csr.degree(i as usize))
                .sum::<usize>();
            let inputs = CostModelInputs {
                frontier_edges,
                unvisited: unvisited_count,
                avg_degree: csr.avg_degree(),
            };
            policy.update_measured(frontier_nnz, n, inputs)
        } else {
            policy.update(frontier_nnz, n)
        };
        // The frontier population lets the cost-model policy price the
        // compressed frontier-word scan of a bit pull (shape-only pricing
        // assumed the dense window stride and overpriced sparse levels).
        let fmt = fpol.update_with_frontier(g, true, dir, Some(frontier_nnz), counters);
        let desc = base_desc.force(dir).force_format(fmt);

        // Storage follows direction (the convert() of §6.3). With operand
        // reuse the pull input is the dense visited vector, so the frontier
        // itself never needs densifying.
        let use_reuse = dir == Direction::Pull && opts.operand_reuse;
        if !use_reuse {
            match dir {
                Direction::Push => f.make_sparse(),
                Direction::Pull => f.make_dense(),
            }
        }
        // With operand reuse the frontier is not an operand this level, so
        // its storage is left alone — the "free conversion" of §5.4.

        // Optimization 2's amortized active list: compaction only needs to
        // happen on the first pull after new discoveries.
        if opts.masking && dir == Direction::Pull && unvisited_stale {
            unvisited.retain(|&v| !visited.get(v as usize));
        }
        // Optimization 2's kernel mask (¬visited, with the amortized
        // active list on pull) and the §5.4 operand choice — with reuse,
        // the pull input is the dense visited vector (Aᵀv .∗ ¬v; f ⊂ v
        // makes it equivalent) — shared by both execution forms below.
        let mask = opts.masking.then(|| {
            if dir == Direction::Pull {
                Mask::complement(&visited).with_active_list(&unvisited)
            } else {
                Mask::complement(&visited)
            }
        });
        let input = if use_reuse { &visited_vec } else { &f };

        let new_count = if opts.fused {
            // One fused pass: masked mxv, the depth apply, and the assign
            // into `depths` execute inside the kernel — no intermediate
            // frontier-product vector is materialized.
            let mut pipe = FusedMxv::new(semiring, g, input)
                .descriptor(desc)
                .counters(counters);
            if let Some(m) = mask.as_ref() {
                pipe = pipe.mask(m);
            }
            let depth = level as i32;
            let staged = pipe.apply(move |_reached: bool| depth);
            let out = if opts.masking {
                // The mask guarantees unvisited outputs: always assign.
                staged.assign_into(&mut depths, |_, d| Some(d))
            } else {
                // Masking off: the Table 2 post-filter becomes the assign's
                // update rule — only unreached slots accept a depth.
                staged.assign_into(&mut depths, |old, d| (old == UNREACHED).then_some(d))
            }?;
            let vd = visited_vec.as_dense_mut().expect("dense by construction");
            for &i in &out.touched {
                debug_assert!(!visited.get(i as usize), "assigned a visited vertex");
                visited.set(i as usize);
                vd.set(i as usize, true);
            }
            let count = out.touched.len();
            if count > 0 {
                f = Vector::from_sparse(n, false, out.touched, vec![true; count]);
            }
            count
        } else {
            // Unfused composition: separate mxv, (optional) filter, and
            // assign loop — kept both as the Table 2 reference shape and as
            // the equivalence oracle the fused path is tested against.
            let w: Vector<bool> = match mask.as_ref() {
                Some(m) => mxv(Some(m), semiring, g, input, &desc, counters)?,
                None => {
                    let raw: Vector<bool> = mxv(None, semiring, g, input, &desc, counters)?;
                    filter_by_mask(&raw, &Mask::complement(&visited))
                }
            };

            // GrB_assign + GrB_reduce: record depths, update the visited set.
            let mut count = 0usize;
            {
                let vd = visited_vec.as_dense_mut().expect("dense by construction");
                for (i, _) in w.iter_explicit() {
                    let i = i as usize;
                    debug_assert!(!visited.get(i), "mask let a visited vertex through");
                    depths[i] = level as i32;
                    visited.set(i);
                    vd.set(i, true);
                    count += 1;
                }
            }
            f = w;
            count
        };
        unvisited_count -= new_count;
        unvisited_stale = new_count > 0;

        if let Some(t0) = t0 {
            trace.push(IterRecord {
                level,
                direction: dir,
                frontier_nnz,
                unvisited: unvisited_count + new_count,
                micros: t0.elapsed().as_micros(),
            });
        }
        if new_count == 0 {
            break;
        }
        frontier_nnz = new_count;
    }

    Ok(BfsResult {
        depths,
        levels: level,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_baselines::textbook::bfs_serial;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::powerlaw::{chung_lu, PowerLawParams};
    use graphblas_gen::rmat::{rmat, RmatParams};
    use graphblas_matrix::Coo;

    fn check_against_oracle(g: &Graph<bool>, sources: &[u32], opts: &BfsOpts) {
        for &s in sources {
            let got = bfs_with_opts(g, s, opts, None);
            let expect = bfs_serial(g, s);
            assert_eq!(got.depths, expect, "source {s}, opts {opts:?}");
        }
    }

    #[test]
    fn default_opts_match_oracle_on_scale_free() {
        let g = rmat(12, 16, RmatParams::default(), 5);
        check_against_oracle(&g, &[0, 7, 1000], &BfsOpts::default());
    }

    #[test]
    fn default_opts_match_oracle_on_mesh() {
        let g = road_mesh(50, 50, RoadParams::default(), 6);
        check_against_oracle(&g, &[0, 1249, 2499], &BfsOpts::default());
    }

    #[test]
    fn every_ladder_rung_matches_oracle() {
        let g = rmat(11, 12, RmatParams::default(), 8);
        for (name, opts) in BfsOpts::ladder() {
            let got = bfs_with_opts(&g, 3, &opts, None);
            let expect = bfs_serial(&g, 3);
            assert_eq!(got.depths, expect, "ladder rung `{name}`");
        }
    }

    #[test]
    fn all_32_option_combinations_match_oracle() {
        // The five toggles are claimed separable: every combination must be
        // correct, not just the paper's ladder.
        let g = chung_lu(2048, 10, PowerLawParams::default(), 17);
        let expect = bfs_serial(&g, 11);
        for bits in 0u32..32 {
            let opts = BfsOpts {
                change_of_direction: bits & 1 != 0,
                masking: bits & 2 != 0,
                early_exit: bits & 4 != 0,
                operand_reuse: bits & 8 != 0,
                structure_only: bits & 16 != 0,
                ..BfsOpts::baseline()
            };
            let got = bfs_with_opts(&g, 11, &opts, None);
            assert_eq!(got.depths, expect, "combination {bits:05b}");
        }
    }

    #[test]
    fn forced_push_and_pull_match_oracle() {
        let g = rmat(10, 16, RmatParams::default(), 2);
        let expect = bfs_serial(&g, 0);
        for d in [Direction::Push, Direction::Pull] {
            let got = bfs_with_opts(&g, 0, &BfsOpts::default().forced(d), None);
            assert_eq!(got.depths, expect, "forced {d:?}");
        }
    }

    #[test]
    fn trace_records_three_phase_shape() {
        // Scale-free graph: expect push → pull → push somewhere in the
        // trace (the Figure 5 phenomenon).
        let g = rmat(13, 24, RmatParams::default(), 9);
        let r = bfs_with_opts(&g, 0, &BfsOpts::default().traced(), None);
        assert!(!r.trace.is_empty());
        let dirs: Vec<Direction> = r.trace.iter().map(|t| t.direction).collect();
        assert_eq!(dirs[0], Direction::Push, "level 1 is push");
        assert!(
            dirs.contains(&Direction::Pull),
            "a pull phase must appear on a scale-free graph: {dirs:?}"
        );
        // Frontier counts in the trace match a sane BFS profile.
        let total_frontier: usize = r.trace.iter().map(|t| t.frontier_nnz).sum();
        assert_eq!(
            total_frontier,
            r.reached(),
            "frontiers partition reached vertices"
        );
        // Unvisited is non-increasing.
        assert!(r.trace.windows(2).all(|w| w[0].unvisited >= w[1].unvisited));
    }

    #[test]
    fn road_network_stays_push_only() {
        // Road frontiers are O(side) waves while 1% of n is O(side²/100):
        // at paper-like proportions (side ≥ ~150) the threshold is never
        // crossed, which is why road networks run push-only (§7.3).
        let g = road_mesh(200, 200, RoadParams::default(), 10);
        let r = bfs_with_opts(&g, 0, &BfsOpts::default().traced(), None);
        assert!(
            r.trace.iter().all(|t| t.direction == Direction::Push),
            "thin frontiers never cross the 1% threshold on a road mesh"
        );
        assert_eq!(r.depths, bfs_serial(&g, 0));
    }

    #[test]
    fn isolated_source_terminates_immediately() {
        let mut coo = Coo::new(5, 5);
        coo.push(1, 2, true);
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let r = bfs(&g, 0);
        assert_eq!(r.reached(), 1);
        assert_eq!(r.depths[0], 0);
        assert_eq!(r.levels, 1);
    }

    #[test]
    fn directed_graph_bfs_follows_edge_direction() {
        // 0 -> 1 -> 2, plus 3 -> 0: from 0 only {0,1,2} reachable.
        let mut coo = Coo::new(4, 4);
        for &(u, v) in &[(0u32, 1u32), (1, 2), (3, 0)] {
            coo.push(u, v, true);
        }
        let g = Graph::from_coo(&coo);
        let r = bfs(&g, 0);
        assert_eq!(r.depths, vec![0, 1, 2, UNREACHED]);
        // And pull must agree on the directed graph too.
        let pulled = bfs_with_opts(&g, 0, &BfsOpts::default().forced(Direction::Pull), None);
        assert_eq!(pulled.depths, r.depths);
    }

    #[test]
    fn counters_show_masking_beats_unmasked_pull() {
        // Pull-only BFS with and without masking: the masked variant must
        // touch far fewer matrix elements (Table 1's O(dM) vs O(d·nnz(m))).
        let g = rmat(12, 16, RmatParams::default(), 4);
        let run = |masking: bool| {
            let c = AccessCounters::new();
            let opts = BfsOpts {
                masking,
                ..BfsOpts::default()
            }
            .forced(Direction::Pull);
            let _ = bfs_with_opts(&g, 0, &opts, Some(&c));
            c.snapshot().matrix
        };
        let masked = run(true);
        let unmasked = run(false);
        assert!(
            masked * 2 < unmasked,
            "masking must cut matrix traffic: {masked} vs {unmasked}"
        );
    }

    #[test]
    fn cost_model_matches_oracle_and_stays_competitive() {
        // The measured rule must stay correct, and its charged accesses may
        // not lose to the better of the two fixed directions by more than
        // 10% (the acceptance bound the bench study re-checks on disk).
        let g = rmat(12, 16, RmatParams::default(), 4);
        let expect = bfs_serial(&g, 0);
        let run = |opts: BfsOpts| {
            let c = AccessCounters::new();
            let r = bfs_with_opts(&g, 0, &opts, Some(&c));
            (r, c.snapshot().accesses_only().total())
        };
        let (got, model_total) = run(BfsOpts::default().cost_model(true));
        assert_eq!(got.depths, expect, "cost-model BFS must stay exact");
        let (_, push_total) = run(BfsOpts::default().forced(Direction::Push));
        let (_, pull_total) = run(BfsOpts::default().forced(Direction::Pull));
        let best_fixed = push_total.min(pull_total);
        assert!(
            model_total as f64 <= best_fixed as f64 * 1.1,
            "cost model lost to best fixed direction: {model_total} vs {best_fixed}"
        );
    }

    #[test]
    fn bit_kernels_are_value_and_counter_equivalent_in_bfs() {
        // Force the bitmap store so the bit pull actually engages, then pin
        // the bit arm against the scalar arm: same depths, same projected
        // access charges (bit_word_ops is telemetry the projection zeroes).
        let g = chung_lu(1500, 12, PowerLawParams::default(), 23);
        let run = |bit: bool| {
            let c = AccessCounters::new();
            let opts = BfsOpts::default()
                .bit_kernels(bit)
                .format(FormatPolicy::fixed(graphblas_core::StorageFormat::Bitmap));
            let r = bfs_with_opts(&g, 2, &opts, Some(&c));
            (r.depths, c.snapshot().accesses_only())
        };
        let (bit_depths, bit_acc) = run(true);
        let (scalar_depths, scalar_acc) = run(false);
        assert_eq!(bit_depths, scalar_depths, "bit arm changed BFS values");
        assert_eq!(bit_acc, scalar_acc, "bit arm changed projected charges");
        assert_eq!(bit_depths, bfs_serial(&g, 2));
    }
}
