//! Connected components by min-label propagation over the (min, second)
//! semiring — one of the traversal-style algorithms §5.6 claims the
//! direction-optimization machinery generalizes to.
//!
//! Every vertex starts labeled with its own id; each round propagates the
//! minimum label across edges. The *delta* set (vertices whose label
//! changed) is the frontier: small deltas run the column kernel, large
//! deltas the row kernel, with the same hysteresis switch BFS uses.
//!
//! By default each round runs as a fused pipeline
//! ([`graphblas_core::fused::FusedMxv`]): the matvec's candidate labels
//! flow straight into the `labels` array through a write-if-smaller update
//! rule — the relaxation `labels ← min(labels, candidates)` is the fused
//! `assign`, and the candidate vector is never materialized.

use graphblas_core::descriptor::{Descriptor, Direction};
use graphblas_core::ops::MinSecond;
use graphblas_core::vector::{DenseVector, Vector};
use graphblas_core::{
    mxv, run_guarded, DirectionPolicy, ExecLimits, FormatPolicy, FusedMxv, GrbResult,
};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::counters::AccessCounters;

/// Result of a components run.
#[derive(Clone, Debug)]
pub struct CcResult {
    /// Per-vertex component label (the minimum vertex id in the component).
    pub labels: Vec<u32>,
    /// Propagation rounds executed.
    pub rounds: usize,
}

/// Number of distinct components in a label vector.
#[must_use]
pub fn component_count(labels: &[u32]) -> usize {
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Options for connected components.
#[derive(Clone, Copy, Debug)]
pub struct CcOpts {
    /// The §6.3 hysteresis switch ratio on the delta set. Paper default
    /// 0.01.
    pub switch_threshold: f64,
    /// Run each round as one fused mxv·assign pass (default) instead of
    /// materializing the candidate vector. Bit-identical either way.
    pub fused: bool,
    /// Matrix storage-format policy (default auto; see
    /// [`graphblas_core::plan`]). Format-invariant results and counters.
    pub format: FormatPolicy,
    /// Allow the bit-parallel kernels (default on). Inert for the
    /// `(min, second)` semiring today — it has no product hint — but kept
    /// uniform with the other traversals so a future Boolean CC variant
    /// inherits the gate.
    pub bit_kernels: bool,
    /// Execution limits enforced by [`try_connected_components_with_opts`];
    /// the infallible entry points ignore this field.
    pub limits: ExecLimits,
}

impl Default for CcOpts {
    fn default() -> Self {
        Self {
            switch_threshold: 0.01,
            fused: true,
            format: FormatPolicy::auto(),
            bit_kernels: true,
            limits: ExecLimits::none(),
        }
    }
}

/// Label-propagation connected components (undirected graphs) with default
/// options except the given switch threshold.
#[must_use]
pub fn connected_components(g: &Graph<bool>, switch_threshold: f64) -> CcResult {
    let opts = CcOpts {
        switch_threshold,
        ..CcOpts::default()
    };
    connected_components_with_opts(g, &opts, None)
}

/// Connected components with explicit options and optional access counters.
#[must_use]
pub fn connected_components_with_opts(
    g: &Graph<bool>,
    opts: &CcOpts,
    counters: Option<&AccessCounters>,
) -> CcResult {
    cc_loop(g, opts, counters).expect("unlimited CC with verified dims cannot abort")
}

/// Connected components under the options' [`ExecLimits`] with full fault
/// isolation (see [`crate::bfs::try_bfs_with_opts`] for the abort/retry
/// contract).
pub fn try_connected_components_with_opts(
    g: &Graph<bool>,
    opts: &CcOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<CcResult> {
    run_guarded(counters, &opts.limits, |c| cc_loop(g, opts, c))
}

fn cc_loop(
    g: &Graph<bool>,
    opts: &CcOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<CcResult> {
    let n = g.n_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    // Initially every vertex is "changed".
    let mut delta: Vector<u32> = Vector::Dense(DenseVector::from_values(labels.clone(), u32::MAX));
    let mut rounds = 0usize;
    // Same hysteresis rule as BFS (§6.3), on the delta set; dense start
    // means the policy begins in pull.
    let mut policy = DirectionPolicy::hysteresis_from(Direction::Pull, opts.switch_threshold);
    let mut fpol = opts.format;
    let base_push = Descriptor::new()
        .transpose(true)
        .force(Direction::Push)
        .bit_kernels(opts.bit_kernels);
    let base_pull = Descriptor::new()
        .transpose(true)
        .force(Direction::Pull)
        .bit_kernels(opts.bit_kernels);

    loop {
        rounds += 1;
        let dir = policy.update(delta.nnz(), n);
        let fmt = fpol.update(g, true, dir, counters);
        let desc_push = base_push.force_format(fmt);
        let desc_pull = base_pull.force_format(fmt);

        // Pull rounds relax against the *full* label vector (min is
        // idempotent, so the superset of the delta is sound — operand
        // reuse again); push rounds expand only the delta set.
        let touched: Vec<u32> = if opts.fused {
            // labels ← min(labels, candidates) as the fused update rule;
            // the candidate vector never exists.
            let out = if dir == Direction::Pull {
                let full = Vector::Dense(DenseVector::from_values(labels.clone(), u32::MAX));
                FusedMxv::new(MinSecond, g, &full)
                    .descriptor(desc_pull)
                    .counters(counters)
                    .apply(|l: u32| l)
                    .assign_into(&mut labels, |old, new| (new < old).then_some(new))
            } else {
                FusedMxv::new(MinSecond, g, &delta)
                    .descriptor(desc_push)
                    .counters(counters)
                    .apply(|l: u32| l)
                    .assign_into(&mut labels, |old, new| (new < old).then_some(new))
            }?;
            out.touched
        } else {
            let candidates: Vector<u32> = if dir == Direction::Pull {
                let full = Vector::Dense(DenseVector::from_values(labels.clone(), u32::MAX));
                mxv(None, MinSecond, g, &full, &desc_pull, counters)?
            } else {
                mxv(None, MinSecond, g, &delta, &desc_push, counters)?
            };
            let mut ids = Vec::new();
            for (i, c) in candidates.iter_explicit() {
                if c < labels[i as usize] {
                    labels[i as usize] = c;
                    ids.push(i);
                }
            }
            ids
        };
        if touched.is_empty() {
            break;
        }
        let vals: Vec<u32> = touched.iter().map(|&i| labels[i as usize]).collect();
        delta = Vector::from_sparse(n, u32::MAX, touched, vals);
    }

    Ok(CcResult { labels, rounds })
}

/// Serial union-find oracle.
#[must_use]
pub fn cc_oracle(g: &Graph<bool>) -> Vec<u32> {
    let n = g.n_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for u in 0..n {
        for &v in g.children(u as VertexId) {
            let ru = find(&mut parent, u as u32);
            let rv = find(&mut parent, v);
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
    }
    // Normalize: label = min id in component.
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::erdos::erdos_renyi;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_matrix::Coo;

    #[test]
    fn two_components() {
        let mut coo = Coo::new(6, 6);
        for &(u, v) in &[(0u32, 1u32), (1, 2), (3, 4)] {
            coo.push(u, v, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let r = connected_components(&g, 0.01);
        assert_eq!(r.labels, vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(component_count(&r.labels), 3);
    }

    #[test]
    fn matches_union_find_on_random_graph() {
        let g = erdos_renyi(2000, 3000, 31); // sparse ⇒ many components
        let r = connected_components(&g, 0.01);
        assert_eq!(r.labels, cc_oracle(&g));
    }

    #[test]
    fn matches_union_find_on_sparse_mesh() {
        let g = road_mesh(
            40,
            40,
            RoadParams {
                keep: 0.55,
                diagonal: 0.0,
            },
            7,
        );
        let r = connected_components(&g, 0.01);
        assert_eq!(r.labels, cc_oracle(&g));
        assert!(component_count(&r.labels) > 1, "low keep ⇒ fragmentation");
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::from_coo(&Coo::<bool>::new(4, 4));
        let r = connected_components(&g, 0.01);
        assert_eq!(r.labels, vec![0, 1, 2, 3]);
        assert_eq!(r.rounds, 1);
    }
}
