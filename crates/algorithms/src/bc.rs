//! Batched betweenness centrality (Brandes), the "batched BC" of §1/§5.6.
//!
//! Brandes' algorithm is two traversals per source: a forward BFS counting
//! shortest paths σ, and a backward sweep accumulating dependencies δ. Both
//! are masked matvecs:
//!
//! * forward — `σ_{l+1} = (Aᵀ σ_l) .∗ ¬visited` over plus-second: the
//!   frontier is sparse, output sparsity is the unvisited set, exactly the
//!   BFS pattern with counts instead of Booleans;
//! * backward — each level `l` pulls `(1 + δ_w)/σ_w` from its level-`l+1`
//!   children through `A`, masked by level-`l` membership (output sparsity
//!   known: only that level updates), then scales by `σ_v`.

use graphblas_core::descriptor::Descriptor;
use graphblas_core::mask::Mask;
use graphblas_core::mxv;
use graphblas_core::ops::PlusSecond;
use graphblas_core::vector::Vector;
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::BitVec;

/// Betweenness scores from a batch of sources (unnormalized, directed
/// counting; for undirected BC halve the scores).
#[must_use]
pub fn betweenness(g: &Graph<bool>, sources: &[VertexId]) -> Vec<f64> {
    let n = g.n_vertices();
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        accumulate_source(g, s, &mut bc);
    }
    bc
}

fn accumulate_source(g: &Graph<bool>, source: VertexId, bc: &mut [f64]) {
    let n = g.n_vertices();
    assert!((source as usize) < n);
    let desc_fwd = Descriptor::new().transpose(true);
    let desc_bwd = Descriptor::new(); // children direction: A, not Aᵀ

    // Forward phase: per-level sparse (ids, σ) frontiers.
    let mut visited = BitVec::new(n);
    visited.set(source as usize);
    let mut sigma = vec![0.0f64; n];
    sigma[source as usize] = 1.0;
    let mut levels: Vec<Vector<f64>> = vec![Vector::singleton(n, 0.0, source, 1.0)];
    loop {
        let frontier = levels.last().expect("non-empty");
        let mask = Mask::complement(&visited);
        let next: Vector<f64> =
            mxv(Some(&mask), PlusSecond, g, frontier, &desc_fwd, None).expect("dims verified");
        if next.nnz() == 0 {
            break;
        }
        for (i, s) in next.iter_explicit() {
            visited.set(i as usize);
            sigma[i as usize] = s;
        }
        levels.push(next);
    }

    // Backward phase: δ accumulation level by level.
    let mut delta = vec![0.0f64; n];
    for l in (0..levels.len().saturating_sub(1)).rev() {
        // Weights from the deeper level: (1 + δ_w) / σ_w.
        let deeper = &levels[l + 1];
        let ids: Vec<VertexId> = deeper.iter_explicit().map(|(i, _)| i).collect();
        let vals: Vec<f64> = ids
            .iter()
            .map(|&w| (1.0 + delta[w as usize]) / sigma[w as usize])
            .collect();
        let weights = Vector::from_sparse(n, 0.0, ids, vals);
        // Level-l membership mask: only vertices of this level update.
        let mut level_bits = BitVec::new(n);
        for (i, _) in levels[l].iter_explicit() {
            level_bits.set(i as usize);
        }
        let mask = Mask::new(&level_bits);
        // Pull from children through A (row v of A lists v's children).
        let contrib: Vector<f64> =
            mxv(Some(&mask), PlusSecond, g, &weights, &desc_bwd, None).expect("dims verified");
        for (v, c) in contrib.iter_explicit() {
            delta[v as usize] += sigma[v as usize] * c;
        }
    }

    for v in 0..n {
        if v != source as usize {
            bc[v] += delta[v];
        }
    }
}

/// Serial Brandes oracle (exact, queue-based).
#[must_use]
pub fn brandes_oracle(g: &Graph<bool>, sources: &[VertexId]) -> Vec<f64> {
    let n = g.n_vertices();
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        let mut stack: Vec<u32> = Vec::new();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.children(v) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::erdos::erdos_renyi;
    use graphblas_gen::powerlaw::{chung_lu, PowerLawParams};
    use graphblas_matrix::Coo;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < 1e-6, "at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_middle_dominates() {
        // Path 0-1-2-3-4: vertex 2 lies on the most shortest paths.
        let mut coo = Coo::new(5, 5);
        for i in 0..4 {
            coo.push(i as u32, i as u32 + 1, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let sources: Vec<u32> = (0..5).collect();
        let bc = betweenness(&g, &sources);
        assert_close(&bc, &brandes_oracle(&g, &sources));
        assert!(bc[2] > bc[1] && bc[2] > bc[3]);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
    }

    #[test]
    fn star_center_carries_everything() {
        let n = 7;
        let mut coo = Coo::new(n, n);
        for leaf in 1..n as u32 {
            coo.push(0, leaf, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let sources: Vec<u32> = (0..n as u32).collect();
        let bc = betweenness(&g, &sources);
        assert_close(&bc, &brandes_oracle(&g, &sources));
        // Center: all (n-1)(n-2) ordered leaf pairs route through it.
        assert!((bc[0] - ((n - 1) * (n - 2)) as f64).abs() < 1e-9);
        for &leaf_bc in &bc[1..n] {
            assert_eq!(leaf_bc, 0.0);
        }
    }

    #[test]
    fn batched_matches_oracle_on_random_graph() {
        let g = erdos_renyi(300, 1800, 23);
        let sources: Vec<u32> = vec![0, 5, 17, 100];
        assert_close(&betweenness(&g, &sources), &brandes_oracle(&g, &sources));
    }

    #[test]
    fn batched_matches_oracle_on_scale_free() {
        let g = chung_lu(500, 8, PowerLawParams::default(), 11);
        let sources: Vec<u32> = vec![1, 2, 3];
        assert_close(&betweenness(&g, &sources), &brandes_oracle(&g, &sources));
    }
}
