//! Batched betweenness centrality (Brandes), the "batched BC" of §1/§5.6 —
//! the whole source batch advances through [`mxv_batch`] at once.
//!
//! Brandes' algorithm is two traversals per source: a forward BFS counting
//! shortest paths σ, and a backward sweep accumulating dependencies δ.
//! Both phases are *batched* masked matvecs over the plus-second semiring:
//!
//! * forward — `Σ'(s, :) = (Aᵀ Σ(s, :)) .∗ ¬visited(s, :)` for every live
//!   source in one [`mxv_batch`] call: the multi-source BFS pattern with
//!   counts instead of Booleans, each source carrying its own
//!   [`DirectionPolicy`] hysteresis state (one source can pull through its
//!   supervertex level while another still pushes a thin wave);
//! * backward — level by level from the deepest, each live source's row
//!   pulls `(1 + δ_w)/σ_w` from its level-`l+1` children through `A`,
//!   masked by level-`l` membership (output sparsity known a priori), then
//!   scales by `σ_v`.
//!
//! Per-source work — values and access counters — is bit-identical to `k`
//! independent single-source runs: both kernel faces reduce each output
//! vertex's contributions in ascending neighbor order, so even the f64
//! accumulations agree bit-for-bit across direction choices and batch
//! sizes (`tests/thread_scaling.rs` additionally pins lane-count
//! invariance).

use graphblas_core::descriptor::Descriptor;
use graphblas_core::mask::Mask;
use graphblas_core::ops::PlusSecond;
use graphblas_core::ops_mxv_batch::mxv_batch;
use graphblas_core::vector::{MultiVector, Vector};
use graphblas_core::{run_guarded, DirectionPolicy, ExecLimits, FormatPolicy, GrbResult};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::BitVec;

/// Options for batched betweenness centrality.
#[derive(Clone, Copy, Debug, Default)]
pub struct BcOpts {
    /// Matrix storage-format policy both sweeps' batched matvecs run
    /// under (default auto; `FormatPolicy::fixed(Csr)` is the tested
    /// oracle). Scores and access counters are format-invariant.
    pub format: FormatPolicy,
    /// Execution limits enforced by [`try_betweenness_with_opts`]; the
    /// infallible entry points ignore this field.
    pub limits: ExecLimits,
}

/// Betweenness scores from a batch of sources (unnormalized, directed
/// counting; for undirected BC halve the scores).
#[must_use]
pub fn betweenness(g: &Graph<bool>, sources: &[VertexId]) -> Vec<f64> {
    betweenness_with_counters(g, sources, None)
}

/// [`betweenness`] with access counters — per-source push/pull switch
/// decisions of both sweeps land in `push_steps`/`pull_steps`.
#[must_use]
pub fn betweenness_with_counters(
    g: &Graph<bool>,
    sources: &[VertexId],
    counters: Option<&AccessCounters>,
) -> Vec<f64> {
    betweenness_with_opts(g, sources, &BcOpts::default(), counters)
}

/// [`betweenness`] with explicit options and optional access counters.
#[must_use]
pub fn betweenness_with_opts(
    g: &Graph<bool>,
    sources: &[VertexId],
    opts: &BcOpts,
    counters: Option<&AccessCounters>,
) -> Vec<f64> {
    bc_loop(g, sources, opts, counters)
        .expect("unlimited betweenness with verified dims cannot abort")
}

/// Betweenness under the options' [`ExecLimits`] with full fault isolation
/// (see [`crate::bfs::try_bfs_with_opts`] for the abort/retry contract).
pub fn try_betweenness_with_opts(
    g: &Graph<bool>,
    sources: &[VertexId],
    opts: &BcOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<Vec<f64>> {
    run_guarded(counters, &opts.limits, |c| bc_loop(g, sources, opts, c))
}

fn bc_loop(
    g: &Graph<bool>,
    sources: &[VertexId],
    opts: &BcOpts,
    counters: Option<&AccessCounters>,
) -> GrbResult<Vec<f64>> {
    let n = g.n_vertices();
    let mut bc = vec![0.0f64; n];
    if sources.is_empty() {
        return Ok(bc);
    }
    let k = sources.len();
    for &s in sources {
        assert!((s as usize) < n, "source out of range");
    }
    let base_fwd = Descriptor::new().transpose(true);
    let base_bwd = Descriptor::new(); // children direction: A, not Aᵀ
                                      // One format policy per sweep (the sweeps iterate opposite
                                      // orientations, so their occupancy statistics differ on directed
                                      // graphs).
    let mut fpol_fwd = opts.format;
    let mut fpol_bwd = opts.format;

    // ---- Forward phase: batched per-level σ frontiers. ----
    let mut visited: Vec<BitVec> = sources
        .iter()
        .map(|&s| {
            let mut b = BitVec::new(n);
            b.set(s as usize);
            b
        })
        .collect();
    let mut sigma: Vec<Vec<f64>> = sources
        .iter()
        .map(|&s| {
            let mut sg = vec![0.0f64; n];
            sg[s as usize] = 1.0;
            sg
        })
        .collect();
    let mut levels: Vec<Vec<Vector<f64>>> = sources
        .iter()
        .map(|&s| vec![Vector::singleton(n, 0.0, s, 1.0)])
        .collect();
    let mut policies: Vec<DirectionPolicy> =
        (0..k).map(|_| DirectionPolicy::hysteresis(0.01)).collect();

    let mut alive: Vec<usize> = (0..k).collect();
    while !alive.is_empty() {
        // Move each live source's last level into the batch (mxv_batch
        // only borrows it); restored below — no O(n) clone per source per
        // level on the hot path.
        let batch = MultiVector::from_rows(
            alive
                .iter()
                .map(|&s| levels[s].pop().expect("non-empty"))
                .collect(),
        );
        let masks: Vec<Mask<'_>> = alive
            .iter()
            .map(|&s| Mask::complement(&visited[s]))
            .collect();
        let mut live_policies: Vec<DirectionPolicy> =
            alive.iter().map(|&s| policies[s].clone()).collect();
        let desc_fwd = base_fwd.force_format(fpol_fwd.update_batch(g, true, counters));
        let next: MultiVector<f64> = mxv_batch(
            Some(&masks),
            PlusSecond,
            g,
            &batch,
            &desc_fwd,
            Some(&mut live_policies),
            counters,
        )?;
        for (row, &s) in batch.into_rows().into_iter().zip(&alive) {
            levels[s].push(row);
        }
        for (p, &s) in live_policies.iter().zip(&alive) {
            policies[s] = p.clone();
        }

        let mut still_alive = Vec::with_capacity(alive.len());
        for (row, &s) in next.into_rows().into_iter().zip(&alive) {
            let mut found = false;
            for (i, sg) in row.iter_explicit() {
                visited[s].set(i as usize);
                sigma[s][i as usize] = sg;
                found = true;
            }
            if found {
                levels[s].push(row);
                still_alive.push(s);
            }
        }
        alive = still_alive;
    }

    // ---- Backward phase: batched δ accumulation, deepest level first. ----
    let mut delta: Vec<Vec<f64>> = (0..k).map(|_| vec![0.0f64; n]).collect();
    let mut bwd_policies: Vec<DirectionPolicy> =
        (0..k).map(|_| DirectionPolicy::hysteresis(0.01)).collect();
    let max_levels = levels.iter().map(Vec::len).max().expect("k > 0");
    for l in (0..max_levels.saturating_sub(1)).rev() {
        // Sources deep enough to have a level l+1 participate this step.
        let active: Vec<usize> = (0..k).filter(|&s| levels[s].len() > l + 1).collect();
        if active.is_empty() {
            continue;
        }
        // Weights from each source's deeper level: (1 + δ_w) / σ_w.
        let rows: Vec<Vector<f64>> = active
            .iter()
            .map(|&s| {
                let deeper = &levels[s][l + 1];
                let ids: Vec<VertexId> = deeper.iter_explicit().map(|(i, _)| i).collect();
                let vals: Vec<f64> = ids
                    .iter()
                    .map(|&w| (1.0 + delta[s][w as usize]) / sigma[s][w as usize])
                    .collect();
                Vector::from_sparse(n, 0.0, ids, vals)
            })
            .collect();
        // Level-l membership masks: only that level's vertices update.
        let level_bits: Vec<BitVec> = active
            .iter()
            .map(|&s| {
                let mut bits = BitVec::new(n);
                for (i, _) in levels[s][l].iter_explicit() {
                    bits.set(i as usize);
                }
                bits
            })
            .collect();
        let masks: Vec<Mask<'_>> = level_bits.iter().map(Mask::new).collect();
        let mut live_policies: Vec<DirectionPolicy> =
            active.iter().map(|&s| bwd_policies[s].clone()).collect();
        // Pull from children through A (row v of A lists v's children).
        let desc_bwd = base_bwd.force_format(fpol_bwd.update_batch(g, false, counters));
        let contrib: MultiVector<f64> = mxv_batch(
            Some(&masks),
            PlusSecond,
            g,
            &MultiVector::from_rows(rows),
            &desc_bwd,
            Some(&mut live_policies),
            counters,
        )?;
        for (p, &s) in live_policies.iter().zip(&active) {
            bwd_policies[s] = p.clone();
        }
        for (row, &s) in contrib.rows().iter().zip(&active) {
            for (v, c) in row.iter_explicit() {
                delta[s][v as usize] += sigma[s][v as usize] * c;
            }
        }
    }

    // Accumulate per-source dependencies in source order (the same
    // grouping as k sequential runs).
    for (s_idx, &s) in sources.iter().enumerate() {
        for v in 0..n {
            if v != s as usize {
                bc[v] += delta[s_idx][v];
            }
        }
    }
    Ok(bc)
}

/// Serial Brandes oracle (exact, queue-based).
#[must_use]
pub fn brandes_oracle(g: &Graph<bool>, sources: &[VertexId]) -> Vec<f64> {
    let n = g.n_vertices();
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        let mut stack: Vec<u32> = Vec::new();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.children(v) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::erdos::erdos_renyi;
    use graphblas_gen::powerlaw::{chung_lu, PowerLawParams};
    use graphblas_matrix::Coo;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < 1e-6, "at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_middle_dominates() {
        // Path 0-1-2-3-4: vertex 2 lies on the most shortest paths.
        let mut coo = Coo::new(5, 5);
        for i in 0..4 {
            coo.push(i as u32, i as u32 + 1, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let sources: Vec<u32> = (0..5).collect();
        let bc = betweenness(&g, &sources);
        assert_close(&bc, &brandes_oracle(&g, &sources));
        assert!(bc[2] > bc[1] && bc[2] > bc[3]);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
    }

    #[test]
    fn star_center_carries_everything() {
        let n = 7;
        let mut coo = Coo::new(n, n);
        for leaf in 1..n as u32 {
            coo.push(0, leaf, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let sources: Vec<u32> = (0..n as u32).collect();
        let bc = betweenness(&g, &sources);
        assert_close(&bc, &brandes_oracle(&g, &sources));
        // Center: all (n-1)(n-2) ordered leaf pairs route through it.
        assert!((bc[0] - ((n - 1) * (n - 2)) as f64).abs() < 1e-9);
        for &leaf_bc in &bc[1..n] {
            assert_eq!(leaf_bc, 0.0);
        }
    }

    #[test]
    fn batched_matches_oracle_on_random_graph() {
        let g = erdos_renyi(300, 1800, 23);
        let sources: Vec<u32> = vec![0, 5, 17, 100];
        assert_close(&betweenness(&g, &sources), &brandes_oracle(&g, &sources));
    }

    #[test]
    fn batched_matches_oracle_on_scale_free() {
        let g = chung_lu(500, 8, PowerLawParams::default(), 11);
        let sources: Vec<u32> = vec![1, 2, 3];
        assert_close(&betweenness(&g, &sources), &brandes_oracle(&g, &sources));
    }

    #[test]
    fn batch_bitwise_equals_sum_of_single_source_runs() {
        // The batched sweeps must not change a single bit relative to
        // running each source alone — the f64 accumulation grouping is
        // per-source and ascending-neighbor-ordered in both shapes.
        let g = chung_lu(400, 10, PowerLawParams::default(), 29);
        let sources: Vec<u32> = vec![0, 7, 44, 300];
        let batch = betweenness(&g, &sources);
        let mut summed = vec![0.0f64; g.n_vertices()];
        for &s in &sources {
            for (v, x) in betweenness(&g, &[s]).into_iter().enumerate() {
                summed[v] += x;
            }
        }
        let a: Vec<u64> = batch.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u64> = summed.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn counters_expose_direction_switches() {
        let g = chung_lu(600, 12, PowerLawParams::default(), 5);
        let sources: Vec<u32> = vec![1, 2, 3, 4];
        let c = AccessCounters::new();
        let bc = betweenness_with_counters(&g, &sources, Some(&c));
        assert_close(&bc, &brandes_oracle(&g, &sources));
        let snap = c.snapshot();
        assert!(snap.push_steps > 0, "thin early frontiers push");
        assert!(snap.pull_steps > 0, "supervertex levels pull");
    }

    #[test]
    fn empty_source_batch_is_all_zeros() {
        let g = erdos_renyi(50, 200, 3);
        assert_eq!(betweenness(&g, &[]), vec![0.0; 50]);
    }
}
