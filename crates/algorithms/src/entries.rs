//! Batch entries — coalescing independent single-source queries into one
//! batched traversal while each query keeps its own counters and limits.
//!
//! This is the algorithm-level face of per-request attribution
//! ([`mxv_batch_attributed`]): a [`BatchEntry`] couples a source vertex
//! with its own [`ExecLimits`] and [`AccessCounters`], and the
//! `*_entries` drivers below advance all entries together — one
//! [`MultiVector`] batch per level, exactly the msbfs/mxv_batch machinery
//! — while every kernel charge lands on the owning entry's counters.
//! Each entry resolves independently:
//!
//! * **Completed** entries return `Ok` with their result; their counters
//!   keep the run's tallies (limits uninstalled), so a coalesced entry's
//!   snapshot is bit-identical to running it alone through the same
//!   driver (`tests/service_equivalence.rs` pins this at 1/2/8 lanes).
//! * **Tripped** entries (their own deadline or budget) abort with the
//!   typed error ([`GrbError::Cancelled`] / [`GrbError::BudgetExceeded`])
//!   at the end of the level that tripped; their counters are restored to
//!   the entry baseline so an immediate retry is bit-identical to a fresh
//!   run. Sibling entries are untouched — the tripped entry's kernel rows
//!   bail with identity results that are discarded here.
//! * A **worker-chunk panic** or a batch-wide error (shared-counter trip,
//!   dimension mismatch) aborts every still-live entry with the same
//!   typed error ([`GrbError::WorkerPanicked`] carries the chunk); the
//!   caller decides whether to de-coalesce and retry solo.
//!
//! Batch-scoped charges that no single request owns — storage-conversion
//! bytes and `format_switches` from the per-level `FormatPolicy` call —
//! go to the `shared` counters, as they do in a solo run through this
//! driver, so full per-entry snapshots compare equal between coalesced
//! and solo executions.

use std::panic::{self, AssertUnwindSafe};

use graphblas_core::descriptor::{Descriptor, Direction};
use graphblas_core::exec::stop_error;
use graphblas_core::mask::Mask;
use graphblas_core::ops::{BoolStructure, MinSecond};
use graphblas_core::vector::{MultiVector, Vector};
use graphblas_core::{
    mxv_batch_attributed, DenseVector, DirectionPolicy, ExecLimits, GrbError, GrbResult, MinPlus,
};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::counters::{AccessCounters, CounterSnapshot};
use graphblas_primitives::BitVec;

use crate::bfs_parents::{ParentBfsOpts, NO_PARENT};
use crate::msbfs::{MsBfsOpts, UNREACHED};
use crate::sssp::SsspOpts;

/// One coalesced query: a source plus its own limits and counter set.
///
/// Counter sets must be pairwise distinct across a batch and disjoint
/// from the driver's `shared` counters — attribution folds per-entry
/// growth into `shared` at each level, so aliasing would double-charge.
#[derive(Clone, Copy, Debug)]
pub struct BatchEntry<'a> {
    /// Source vertex of this query.
    pub source: VertexId,
    /// Per-request limits, installed on `counters` for the run's duration.
    pub limits: ExecLimits,
    /// This request's private counter set; holds the request's snapshot
    /// after completion (tallies kept, limits uninstalled).
    pub counters: &'a AccessCounters,
}

impl<'a> BatchEntry<'a> {
    /// An unlimited entry over the given counter set.
    #[must_use]
    pub fn new(source: VertexId, counters: &'a AccessCounters) -> Self {
        Self {
            source,
            limits: ExecLimits::none(),
            counters,
        }
    }

    /// Attach per-request limits.
    #[must_use]
    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// Per-entry BFS result (one source's slice of
/// [`MsBfsResult`](crate::msbfs::MsBfsResult)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryBfs {
    /// `depths[v]` = depth of `v`; [`UNREACHED`] where unreached.
    pub depths: Vec<i32>,
    /// Levels this source executed (its frontier emptied at this level).
    pub levels: usize,
}

/// Per-entry parent-BFS result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryParents {
    /// `parent[v]` = minimum-id BFS parent; [`NO_PARENT`] where unreached.
    pub parent: Vec<u32>,
    /// Levels this source executed.
    pub levels: usize,
}

/// Per-entry SSSP result.
#[derive(Clone, Debug, PartialEq)]
pub struct EntrySssp {
    /// Tentative distances; `f32::INFINITY` where unreachable.
    pub dist: Vec<f32>,
    /// Relaxation rounds this source executed.
    pub rounds: usize,
    /// Rounds in the pull (row-based) phase.
    pub pull_rounds: usize,
}

/// Scoreboard: installs limits on construction, resolves each entry
/// exactly once (abort restores the baseline; completion keeps tallies),
/// and guarantees uninstallation on every path.
struct Board<'a, 'b, R> {
    entries: &'b [BatchEntry<'a>],
    baselines: Vec<CounterSnapshot>,
    results: Vec<Option<GrbResult<R>>>,
}

impl<'a, 'b, R> Board<'a, 'b, R> {
    fn new(entries: &'b [BatchEntry<'a>]) -> Self {
        for e in entries {
            e.counters.install_limits(&e.limits);
        }
        Self {
            entries,
            baselines: entries.iter().map(|e| e.counters.snapshot()).collect(),
            results: (0..entries.len()).map(|_| None).collect(),
        }
    }

    /// Abort entry `i`: restore its counters to the entry baseline (retry
    /// is bit-identical to fresh) and record the typed error.
    fn abort(&mut self, i: usize, err: GrbError) {
        self.entries[i].counters.restore(&self.baselines[i]);
        self.entries[i].counters.uninstall_limits();
        self.results[i] = Some(Err(err));
    }

    /// Complete entry `i`: keep its tallies, drop its limits.
    fn complete(&mut self, i: usize, value: R) {
        self.entries[i].counters.uninstall_limits();
        self.results[i] = Some(Ok(value));
    }

    /// Abort every unresolved entry in `live` with clones of `err`.
    fn abort_all(&mut self, live: &[usize], err: &GrbError) {
        for &i in live {
            if self.results[i].is_none() {
                self.abort(i, err.clone());
            }
        }
    }

    /// If entry `i` tripped its own limits, abort it and report `true`.
    fn retire_if_tripped(&mut self, i: usize) -> bool {
        match self.entries[i].counters.stop_reason() {
            Some(reason) => {
                self.abort(i, stop_error(reason));
                true
            }
            None => false,
        }
    }

    fn finish(self) -> Vec<GrbResult<R>> {
        self.results
            .into_iter()
            .map(|r| r.expect("every entry resolved"))
            .collect()
    }
}

/// Best-effort rendering of a panic payload (mirrors `exec`'s private
/// helper) for [`GrbError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One batched kernel call with the `run_guarded` panic contract: a pool
/// chunk panic becomes a typed batch-wide error; any other panic cleans
/// up the still-live entries and re-throws (caller bug).
fn catch_batch<R, T>(
    board: &mut Board<'_, '_, R>,
    live: &[usize],
    f: impl FnOnce() -> GrbResult<T>,
) -> GrbResult<T> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            if let Some(chunk) = rayon::take_last_panic_chunk() {
                Err(GrbError::WorkerPanicked {
                    chunk,
                    message: panic_message(payload.as_ref()),
                })
            } else {
                let bug = GrbError::InvalidValue("entry batch panicked outside the pool");
                board.abort_all(live, &bug);
                panic::resume_unwind(payload);
            }
        }
    }
}

/// Coalesced multi-source BFS: each entry's depths and counter snapshot
/// are bit-identical to a solo (`k = 1`) run through this same driver.
pub fn multi_source_bfs_entries(
    g: &Graph<bool>,
    entries: &[BatchEntry<'_>],
    opts: &MsBfsOpts,
    shared: Option<&AccessCounters>,
) -> Vec<GrbResult<EntryBfs>> {
    let n = g.n_vertices();
    let k = entries.len();
    for e in entries {
        assert!((e.source as usize) < n, "source out of range");
    }
    let mut board: Board<'_, '_, EntryBfs> = Board::new(entries);

    let mut frontiers: Vec<Vector<bool>> = entries
        .iter()
        .map(|e| Vector::singleton(n, false, e.source, true))
        .collect();
    let mut visited: Vec<BitVec> = entries
        .iter()
        .map(|e| {
            let mut b = BitVec::new(n);
            b.set(e.source as usize);
            b
        })
        .collect();
    let mut depths: Vec<Vec<i32>> = entries
        .iter()
        .map(|e| {
            let mut d = vec![UNREACHED; n];
            d[e.source as usize] = 0;
            d
        })
        .collect();
    let mut policies: Vec<DirectionPolicy> = (0..k)
        .map(|_| match opts.force {
            Some(d) => DirectionPolicy::fixed(d),
            None => DirectionPolicy::hysteresis(opts.switch_threshold),
        })
        .collect();

    let base_desc = match opts.force {
        Some(d) => Descriptor::new().transpose(true).force(d),
        None => Descriptor::new().transpose(true),
    }
    .bit_kernels(opts.bit_kernels)
    .shard_policy(opts.shards);
    let mut fpol = opts.format;

    let mut alive: Vec<usize> = (0..k).collect();
    let mut level = 0usize;
    while !alive.is_empty() {
        level += 1;
        let desc = base_desc.force_format(fpol.update_batch(g, true, shared));
        let batch = MultiVector::from_rows(
            alive
                .iter()
                .map(|&r| std::mem::replace(&mut frontiers[r], Vector::new_sparse(n, false)))
                .collect(),
        );
        let masks: Vec<Mask<'_>> = alive
            .iter()
            .map(|&r| Mask::complement(&visited[r]))
            .collect();
        let mut live_policies: Vec<DirectionPolicy> =
            alive.iter().map(|&r| policies[r].clone()).collect();
        let row_refs: Vec<&AccessCounters> = alive.iter().map(|&r| entries[r].counters).collect();

        let next = catch_batch(&mut board, &alive, || {
            mxv_batch_attributed(
                Some(&masks),
                BoolStructure,
                g,
                &batch,
                &desc,
                Some(&mut live_policies),
                shared,
                Some(&row_refs),
            )
        });
        let next: MultiVector<bool> = match next {
            Ok(v) => v,
            Err(e) => {
                board.abort_all(&alive, &e);
                return board.finish();
            }
        };
        for (p, &r) in live_policies.iter().zip(&alive) {
            policies[r] = p.clone();
        }

        let mut still_alive = Vec::with_capacity(alive.len());
        for (row, &r) in next.into_rows().into_iter().zip(&alive) {
            if board.retire_if_tripped(r) {
                continue; // its bailed row is identity-shaped — discard
            }
            let mut found = false;
            for (v, _) in row.iter_explicit() {
                depths[r][v as usize] = level as i32;
                visited[r].set(v as usize);
                found = true;
            }
            if found {
                frontiers[r] = row;
                still_alive.push(r);
            } else {
                board.complete(
                    r,
                    EntryBfs {
                        depths: std::mem::take(&mut depths[r]),
                        levels: level,
                    },
                );
            }
        }
        alive = still_alive;
    }
    board.finish()
}

/// Coalesced parent BFS (min-parent tie-breaking). The batched form runs
/// the unfused (min, second) composition — `opts.fused` /
/// `opts.first_hit_exit` only shape the solo pipeline — so coalesced and
/// solo runs through *this* driver stay bit-identical in values and
/// per-entry counters.
pub fn bfs_parents_entries(
    g: &Graph<bool>,
    entries: &[BatchEntry<'_>],
    opts: &ParentBfsOpts,
    shared: Option<&AccessCounters>,
) -> Vec<GrbResult<EntryParents>> {
    let n = g.n_vertices();
    let k = entries.len();
    for e in entries {
        assert!((e.source as usize) < n, "source out of range");
    }
    let mut board: Board<'_, '_, EntryParents> = Board::new(entries);

    // Frontier rows carry each frontier vertex's own id as its value, the
    // same invariant the solo loop keeps.
    let mut frontiers: Vec<Vector<u32>> = entries
        .iter()
        .map(|e| Vector::singleton(n, NO_PARENT, e.source, e.source))
        .collect();
    let mut visited: Vec<BitVec> = entries
        .iter()
        .map(|e| {
            let mut b = BitVec::new(n);
            b.set(e.source as usize);
            b
        })
        .collect();
    let mut parents: Vec<Vec<u32>> = entries
        .iter()
        .map(|e| {
            let mut p = vec![NO_PARENT; n];
            p[e.source as usize] = e.source;
            p
        })
        .collect();
    let mut policies: Vec<DirectionPolicy> = (0..k)
        .map(|_| DirectionPolicy::hysteresis(opts.switch_threshold))
        .collect();

    let base_desc = Descriptor::new()
        .transpose(true)
        .bit_kernels(opts.bit_kernels)
        .shard_policy(opts.shards);
    let mut fpol = opts.format;

    let mut alive: Vec<usize> = (0..k).collect();
    let mut level = 0usize;
    while !alive.is_empty() {
        level += 1;
        let desc = base_desc.force_format(fpol.update_batch(g, true, shared));
        let batch = MultiVector::from_rows(
            alive
                .iter()
                .map(|&r| std::mem::replace(&mut frontiers[r], Vector::new_sparse(n, NO_PARENT)))
                .collect(),
        );
        let masks: Vec<Mask<'_>> = alive
            .iter()
            .map(|&r| Mask::complement(&visited[r]))
            .collect();
        let mut live_policies: Vec<DirectionPolicy> =
            alive.iter().map(|&r| policies[r].clone()).collect();
        let row_refs: Vec<&AccessCounters> = alive.iter().map(|&r| entries[r].counters).collect();

        let next = catch_batch(&mut board, &alive, || {
            mxv_batch_attributed(
                Some(&masks),
                MinSecond,
                g,
                &batch,
                &desc,
                Some(&mut live_policies),
                shared,
                Some(&row_refs),
            )
        });
        let next: MultiVector<u32> = match next {
            Ok(v) => v,
            Err(e) => {
                board.abort_all(&alive, &e);
                return board.finish();
            }
        };
        for (p, &r) in live_policies.iter().zip(&alive) {
            policies[r] = p.clone();
        }

        let mut still_alive = Vec::with_capacity(alive.len());
        for (row, &r) in next.into_rows().into_iter().zip(&alive) {
            if board.retire_if_tripped(r) {
                continue;
            }
            let mut discovered: Vec<u32> = Vec::new();
            for (v, p) in row.iter_explicit() {
                debug_assert!(!visited[r].get(v as usize));
                parents[r][v as usize] = p;
                visited[r].set(v as usize);
                discovered.push(v);
            }
            if discovered.is_empty() {
                board.complete(
                    r,
                    EntryParents {
                        parent: std::mem::take(&mut parents[r]),
                        levels: level,
                    },
                );
            } else {
                let vals = discovered.clone();
                frontiers[r] = Vector::from_sparse(n, NO_PARENT, discovered, vals);
                still_alive.push(r);
            }
        }
        alive = still_alive;
    }
    board.finish()
}

/// Coalesced SSSP (Bellman-Ford over min-plus with the §5.6 two-phase
/// switch). Direction is resolved *outside* the kernel, per entry: a pull
/// round ships that entry's full distance vector as a dense row, a push
/// round ships the sparse delta set, and the batch kernel's storage rule
/// (dense → row-based, sparse → column-based) dispatches each row to the
/// face its phase chose. `opts.fused` only shapes the solo pipeline.
pub fn sssp_entries(
    g: &Graph<f32>,
    entries: &[BatchEntry<'_>],
    opts: &SsspOpts,
    shared: Option<&AccessCounters>,
) -> Vec<GrbResult<EntrySssp>> {
    let n = g.n_vertices();
    let k = entries.len();
    for e in entries {
        assert!((e.source as usize) < n, "source out of range");
    }
    let max_rounds = opts.max_rounds.unwrap_or(n.max(1));
    let mut board: Board<'_, '_, EntrySssp> = Board::new(entries);

    let mut dists: Vec<Vec<f32>> = entries
        .iter()
        .map(|e| {
            let mut d = vec![f32::INFINITY; n];
            d[e.source as usize] = 0.0;
            d
        })
        .collect();
    let mut deltas: Vec<Vector<f32>> = entries
        .iter()
        .map(|e| Vector::singleton(n, f32::INFINITY, e.source, 0.0))
        .collect();
    let mut policies: Vec<DirectionPolicy> = (0..k)
        .map(|_| {
            if opts.change_of_direction {
                DirectionPolicy::two_phase(opts.switch_threshold)
            } else {
                DirectionPolicy::fixed(Direction::Push)
            }
        })
        .collect();
    let mut rounds = vec![0usize; k];
    let mut pull_rounds = vec![0usize; k];

    let base_desc = Descriptor::new().transpose(true).shard_policy(opts.shards);
    let mut fpol = opts.format;

    let mut alive: Vec<usize> = (0..k).collect();
    while !alive.is_empty() {
        let desc = base_desc.force_format(fpol.update_batch(g, true, shared));
        // External per-entry direction resolution: the row's storage
        // encodes the phase and the kernel's storage rule honors it.
        let rows: Vec<Vector<f32>> = alive
            .iter()
            .map(|&r| {
                rounds[r] += 1;
                match policies[r].update(deltas[r].nnz(), n) {
                    Direction::Pull => {
                        pull_rounds[r] += 1;
                        Vector::Dense(DenseVector::from_values(dists[r].clone(), f32::INFINITY))
                    }
                    Direction::Push => {
                        std::mem::replace(&mut deltas[r], Vector::new_sparse(n, f32::INFINITY))
                    }
                }
            })
            .collect();
        let batch = MultiVector::from_rows(rows);
        let row_refs: Vec<&AccessCounters> = alive.iter().map(|&r| entries[r].counters).collect();

        let out = catch_batch(&mut board, &alive, || {
            mxv_batch_attributed(
                None,
                MinPlus,
                g,
                &batch,
                &desc,
                None,
                shared,
                Some(&row_refs),
            )
        });
        let out: MultiVector<f32> = match out {
            Ok(v) => v,
            Err(e) => {
                board.abort_all(&alive, &e);
                return board.finish();
            }
        };

        let mut still_alive = Vec::with_capacity(alive.len());
        for (row, &r) in out.into_rows().into_iter().zip(&alive) {
            if board.retire_if_tripped(r) {
                continue;
            }
            // dist ← min(dist, candidates); next delta = strict improvements.
            let mut touched: Vec<u32> = Vec::new();
            for (i, c) in row.iter_explicit() {
                if c < dists[r][i as usize] {
                    dists[r][i as usize] = c;
                    touched.push(i);
                }
            }
            if touched.is_empty() || rounds[r] >= max_rounds {
                board.complete(
                    r,
                    EntrySssp {
                        dist: std::mem::take(&mut dists[r]),
                        rounds: rounds[r],
                        pull_rounds: pull_rounds[r],
                    },
                );
            } else {
                let vals: Vec<f32> = touched.iter().map(|&i| dists[r][i as usize]).collect();
                deltas[r] = Vector::from_sparse(n, f32::INFINITY, touched, vals);
                still_alive.push(r);
            }
        }
        alive = still_alive;
    }
    board.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_parents::verify_parents;
    use crate::msbfs::multi_source_bfs;
    use crate::sssp::dijkstra_oracle;
    use graphblas_baselines::textbook::bfs_serial;
    use graphblas_gen::rmat::{rmat, RmatParams};
    use graphblas_gen::with_uniform_weights;

    fn counters(k: usize) -> Vec<AccessCounters> {
        (0..k).map(|_| AccessCounters::new()).collect()
    }

    /// Run one entry solo through the same driver — the equivalence
    /// baseline the service uses.
    fn solo_bfs(g: &Graph<bool>, source: VertexId) -> (EntryBfs, CounterSnapshot) {
        let c = AccessCounters::new();
        let shared = AccessCounters::new();
        let r = multi_source_bfs_entries(
            g,
            &[BatchEntry::new(source, &c)],
            &MsBfsOpts::default(),
            Some(&shared),
        )
        .pop()
        .unwrap()
        .unwrap();
        (r, c.snapshot())
    }

    #[test]
    fn coalesced_bfs_entries_match_solo_runs_and_oracle() {
        let g = rmat(10, 14, RmatParams::default(), 23);
        let sources = [0u32, 17, 300];
        let cs = counters(3);
        let entries: Vec<BatchEntry<'_>> = sources
            .iter()
            .zip(&cs)
            .map(|(&s, c)| BatchEntry::new(s, c))
            .collect();
        let shared = AccessCounters::new();
        let rs = multi_source_bfs_entries(&g, &entries, &MsBfsOpts::default(), Some(&shared));
        for ((r, &src), c) in rs.iter().zip(&sources).zip(&cs) {
            let r = r.as_ref().unwrap();
            assert_eq!(r.depths, bfs_serial(&g, src), "source {src}");
            let (solo, solo_snap) = solo_bfs(&g, src);
            assert_eq!(r.depths, solo.depths);
            assert_eq!(r.levels, solo.levels);
            assert_eq!(c.snapshot(), solo_snap, "source {src} counters");
        }
        // And the whole-batch result matches the plain msbfs driver.
        let plain = multi_source_bfs(&g, &sources);
        for (r, d) in rs.iter().zip(&plain.depths) {
            assert_eq!(&r.as_ref().unwrap().depths, d);
        }
    }

    #[test]
    fn tripped_entry_aborts_typed_and_spares_siblings() {
        let g = rmat(10, 14, RmatParams::default(), 23);
        let cs = counters(3);
        let entries = [
            BatchEntry::new(0, &cs[0]),
            BatchEntry::new(17, &cs[1])
                .with_limits(ExecLimits::none().with_deadline(std::time::Duration::ZERO)),
            BatchEntry::new(300, &cs[2]),
        ];
        let shared = AccessCounters::new();
        let rs = multi_source_bfs_entries(&g, &entries, &MsBfsOpts::default(), Some(&shared));
        assert_eq!(rs[1], Err(GrbError::Cancelled));
        for (i, src) in [(0usize, 0u32), (2, 300)] {
            let r = rs[i].as_ref().unwrap();
            let (solo, solo_snap) = solo_bfs(&g, src);
            assert_eq!(r.depths, solo.depths, "sibling {src}");
            assert_eq!(cs[i].snapshot(), solo_snap, "sibling {src} counters");
        }
        // Aborted entry's counters restored: an immediate retry is fresh.
        assert_eq!(cs[1].snapshot(), CounterSnapshot::default());
        let retry = multi_source_bfs_entries(
            &g,
            &[BatchEntry::new(17, &cs[1])],
            &MsBfsOpts::default(),
            Some(&AccessCounters::new()),
        )
        .pop()
        .unwrap()
        .unwrap();
        let (solo, solo_snap) = solo_bfs(&g, 17);
        assert_eq!(retry.depths, solo.depths);
        assert_eq!(cs[1].snapshot(), solo_snap);
    }

    #[test]
    fn coalesced_parents_match_solo_and_verify() {
        let g = rmat(10, 14, RmatParams::default(), 29);
        let sources = [3u32, 99, 500];
        let cs = counters(3);
        let entries: Vec<BatchEntry<'_>> = sources
            .iter()
            .zip(&cs)
            .map(|(&s, c)| BatchEntry::new(s, c))
            .collect();
        let rs = bfs_parents_entries(&g, &entries, &ParentBfsOpts::default(), None);
        for ((r, &src), c) in rs.iter().zip(&sources).zip(&cs) {
            let r = r.as_ref().unwrap();
            assert!(verify_parents(&g, src, &r.parent), "source {src}");
            let solo_c = AccessCounters::new();
            let solo = bfs_parents_entries(
                &g,
                &[BatchEntry::new(src, &solo_c)],
                &ParentBfsOpts::default(),
                None,
            )
            .pop()
            .unwrap()
            .unwrap();
            assert_eq!(r, &solo, "source {src}");
            assert_eq!(c.snapshot(), solo_c.snapshot(), "source {src} counters");
        }
    }

    #[test]
    fn coalesced_sssp_matches_solo_and_dijkstra() {
        let gb = rmat(10, 14, RmatParams::default(), 31);
        let g = with_uniform_weights(&gb, 7);
        let sources = [0u32, 42, 777];
        let cs = counters(3);
        let entries: Vec<BatchEntry<'_>> = sources
            .iter()
            .zip(&cs)
            .map(|(&s, c)| BatchEntry::new(s, c))
            .collect();
        let rs = sssp_entries(&g, &entries, &SsspOpts::default(), None);
        for ((r, &src), c) in rs.iter().zip(&sources).zip(&cs) {
            let r = r.as_ref().unwrap();
            let oracle = dijkstra_oracle(&g, src);
            for (i, (&x, &y)) in r.dist.iter().zip(&oracle).enumerate() {
                if x.is_infinite() || y.is_infinite() {
                    assert_eq!(x, y, "source {src} at {i}");
                } else {
                    assert!((x - y).abs() < 1e-4, "source {src} at {i}: {x} vs {y}");
                }
            }
            let solo_c = AccessCounters::new();
            let solo = sssp_entries(
                &g,
                &[BatchEntry::new(src, &solo_c)],
                &SsspOpts::default(),
                None,
            )
            .pop()
            .unwrap()
            .unwrap();
            assert_eq!(r, &solo, "source {src} (values bit-identical)");
            assert_eq!(c.snapshot(), solo_c.snapshot(), "source {src} counters");
        }
    }

    #[test]
    fn zero_work_budget_trips_every_entry_but_leaves_counters_fresh() {
        let g = rmat(9, 10, RmatParams::default(), 5);
        let cs = counters(2);
        let entries = [
            BatchEntry::new(0, &cs[0]).with_limits(ExecLimits::none().with_work_budget(0)),
            BatchEntry::new(1, &cs[1]),
        ];
        let rs = multi_source_bfs_entries(&g, &entries, &MsBfsOpts::default(), None);
        assert!(
            matches!(rs[0], Err(GrbError::BudgetExceeded { .. })),
            "{:?}",
            rs[0]
        );
        assert!(rs[1].is_ok());
        assert_eq!(cs[0].snapshot(), CounterSnapshot::default());
    }
}
