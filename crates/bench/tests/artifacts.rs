//! Assertions over the committed bench artifacts in `results/`.
//!
//! The tiled bitmap exists so that suite-scale graphs stop falling off the
//! bit-parallel path: feasibility is per-tile occupancy, not the global
//! `n² ≤ MAX_BITS` cliff. This test pins that property on the committed
//! `BENCH_bitfrontier.json` — every dataset with at least 32 Ki vertices
//! must report `bitmap_degrades == 0` and an engaged bit path.
//!
//! The serve artifact (`BENCH_serve.json`) is pinned the same way: the
//! service must actually coalesce at k ≥ 4 (batches bigger than one,
//! positive coalescing rate), keep latency percentiles monotone, beat the
//! sequential-dispatch baseline on at least one coalesced scenario, and
//! its abort probe — one expired-deadline request inside a coalesced
//! batch — must report a typed abort with siblings bit-identical to solo.
//!
//! If an artifact is stale, regenerate it with `paper -- bench-all`.

use std::path::PathBuf;

/// Per-dataset fields scraped out of the bitfrontier artifact.
#[derive(Debug, Default)]
struct Sample {
    name: String,
    vertices: u64,
    bit_word_ops: u64,
    bitmap_degrades: u64,
    engaged: bool,
}

/// Hand-scan of the artifact (no JSON crate offline). The file is our own
/// `Json::render` output: one `"key": value` pair per line, datasets in
/// order, `"name"` opening each object.
fn scrape(text: &str) -> Vec<Sample> {
    let mut out: Vec<Sample> = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "name" => out.push(Sample {
                name: value.trim_matches('"').to_string(),
                ..Sample::default()
            }),
            "vertices" => {
                if let (Some(s), Ok(v)) = (out.last_mut(), value.parse()) {
                    s.vertices = v;
                }
            }
            "bit_word_ops" => {
                if let (Some(s), Ok(v)) = (out.last_mut(), value.parse()) {
                    s.bit_word_ops = v;
                }
            }
            "bitmap_degrades" => {
                if let (Some(s), Ok(v)) = (out.last_mut(), value.parse()) {
                    s.bitmap_degrades = v;
                }
            }
            "bit_path_engaged" => {
                if let Some(s) = out.last_mut() {
                    s.engaged = value == "true";
                }
            }
            _ => {}
        }
    }
    out
}

#[test]
fn committed_bitfrontier_artifact_keeps_large_graphs_on_the_bit_path() {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_bitfrontier.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let samples = scrape(&text);
    assert!(
        samples.len() >= 2,
        "artifact should cover the dataset suite, scraped {samples:?}"
    );
    let mut large = 0;
    for s in &samples {
        if s.vertices < 32 * 1024 {
            continue;
        }
        large += 1;
        assert_eq!(
            s.bitmap_degrades, 0,
            "{}: {} vertices fell off the bit-parallel path (tiled bitmap \
             should make suite graphs feasible); regenerate with bench-all",
            s.name, s.vertices
        );
        assert!(
            s.engaged && s.bit_word_ops > 0,
            "{}: bit path never engaged (bit_word_ops = {})",
            s.name,
            s.bit_word_ops
        );
    }
    assert!(
        large >= 2,
        "suite should include n ≥ 32Ki graphs (found {large})"
    );
}

/// One serve scenario scraped out of `BENCH_serve.json`.
#[derive(Debug, Default)]
struct ServeScenario {
    dataset: String,
    mix: String,
    target_k: u64,
    coalescing_rate: f64,
    max_batch_size: u64,
    qps_speedup: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Scrape scenarios plus the per-dataset abort-probe booleans.
fn scrape_serve(text: &str) -> (Vec<ServeScenario>, Vec<(bool, bool)>) {
    let mut scenarios: Vec<ServeScenario> = Vec::new();
    let mut probes: Vec<(bool, bool)> = Vec::new();
    let mut dataset = String::new();
    let parse_f = |v: &str| v.parse::<f64>().ok();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "name" => dataset = value.trim_matches('"').to_string(),
            "mix" => scenarios.push(ServeScenario {
                dataset: dataset.clone(),
                mix: value.trim_matches('"').to_string(),
                ..ServeScenario::default()
            }),
            "target_k" => {
                if let (Some(s), Ok(v)) = (scenarios.last_mut(), value.parse()) {
                    s.target_k = v;
                }
            }
            "coalescing_rate" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.coalescing_rate = v;
                }
            }
            "max_batch_size" => {
                if let (Some(s), Ok(v)) = (scenarios.last_mut(), value.parse()) {
                    s.max_batch_size = v;
                }
            }
            "qps_speedup" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.qps_speedup = v;
                }
            }
            "p50_ms" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.p50_ms = v;
                }
            }
            "p95_ms" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.p95_ms = v;
                }
            }
            "p99_ms" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.p99_ms = v;
                }
            }
            "aborted_typed" => probes.push((value == "true", false)),
            "siblings_unchanged" => {
                if let Some(p) = probes.last_mut() {
                    p.1 = value == "true";
                }
            }
            _ => {}
        }
    }
    (scenarios, probes)
}

#[test]
fn committed_serve_artifact_shows_coalescing_and_isolation() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_serve.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let (scenarios, probes) = scrape_serve(&text);
    assert!(
        scenarios.len() >= 4,
        "artifact should cover multiple scenarios per dataset, scraped {scenarios:?}"
    );

    for s in &scenarios {
        assert!(
            s.p50_ms > 0.0 && s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms,
            "{}/{} k={}: latency percentiles must be monotone \
             (p50 {} / p95 {} / p99 {})",
            s.dataset,
            s.mix,
            s.target_k,
            s.p50_ms,
            s.p95_ms,
            s.p99_ms
        );
        if s.target_k >= 4 {
            assert!(
                s.max_batch_size > 1,
                "{}/{} k={}: admission never formed a batch bigger than one",
                s.dataset,
                s.mix,
                s.target_k
            );
            assert!(
                s.coalescing_rate > 0.0,
                "{}/{} k={}: no request ever shared a coalesced traversal",
                s.dataset,
                s.mix,
                s.target_k
            );
        }
    }

    // The coalescing payoff: every dataset beats sequential dispatch on
    // at least one k ≥ 4 scenario (the pure-BFS workload rides the
    // bit-parallel batched path, so the win is structural, not luck).
    let mut datasets: Vec<&str> = scenarios.iter().map(|s| s.dataset.as_str()).collect();
    datasets.dedup();
    for d in datasets {
        assert!(
            scenarios
                .iter()
                .any(|s| s.dataset == d && s.target_k >= 4 && s.qps_speedup >= 1.0),
            "{d}: no coalesced scenario matched or beat sequential dispatch; \
             regenerate with bench-all"
        );
    }

    assert!(
        probes.len() >= 2,
        "every dataset should carry an abort probe, scraped {probes:?}"
    );
    for (i, &(typed, unchanged)) in probes.iter().enumerate() {
        assert!(
            typed,
            "abort probe {i}: the expired-deadline request must abort typed"
        );
        assert!(
            unchanged,
            "abort probe {i}: siblings of the aborted request must be \
             bit-identical to their solo runs"
        );
    }
}
