//! Assertions over the committed bench artifacts in `results/`.
//!
//! The tiled bitmap exists so that suite-scale graphs stop falling off the
//! bit-parallel path: feasibility is per-tile occupancy, not the global
//! `n² ≤ MAX_BITS` cliff. This test pins that property on the committed
//! `BENCH_bitfrontier.json` — every dataset with at least 32 Ki vertices
//! must report `bitmap_degrades == 0` and an engaged bit path. If the
//! artifact is stale, regenerate it with `paper -- bench-all`.

use std::path::PathBuf;

/// Per-dataset fields scraped out of the bitfrontier artifact.
#[derive(Debug, Default)]
struct Sample {
    name: String,
    vertices: u64,
    bit_word_ops: u64,
    bitmap_degrades: u64,
    engaged: bool,
}

/// Hand-scan of the artifact (no JSON crate offline). The file is our own
/// `Json::render` output: one `"key": value` pair per line, datasets in
/// order, `"name"` opening each object.
fn scrape(text: &str) -> Vec<Sample> {
    let mut out: Vec<Sample> = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "name" => out.push(Sample {
                name: value.trim_matches('"').to_string(),
                ..Sample::default()
            }),
            "vertices" => {
                if let (Some(s), Ok(v)) = (out.last_mut(), value.parse()) {
                    s.vertices = v;
                }
            }
            "bit_word_ops" => {
                if let (Some(s), Ok(v)) = (out.last_mut(), value.parse()) {
                    s.bit_word_ops = v;
                }
            }
            "bitmap_degrades" => {
                if let (Some(s), Ok(v)) = (out.last_mut(), value.parse()) {
                    s.bitmap_degrades = v;
                }
            }
            "bit_path_engaged" => {
                if let Some(s) = out.last_mut() {
                    s.engaged = value == "true";
                }
            }
            _ => {}
        }
    }
    out
}

#[test]
fn committed_bitfrontier_artifact_keeps_large_graphs_on_the_bit_path() {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_bitfrontier.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let samples = scrape(&text);
    assert!(
        samples.len() >= 2,
        "artifact should cover the dataset suite, scraped {samples:?}"
    );
    let mut large = 0;
    for s in &samples {
        if s.vertices < 32 * 1024 {
            continue;
        }
        large += 1;
        assert_eq!(
            s.bitmap_degrades, 0,
            "{}: {} vertices fell off the bit-parallel path (tiled bitmap \
             should make suite graphs feasible); regenerate with bench-all",
            s.name, s.vertices
        );
        assert!(
            s.engaged && s.bit_word_ops > 0,
            "{}: bit path never engaged (bit_word_ops = {})",
            s.name,
            s.bit_word_ops
        );
    }
    assert!(
        large >= 2,
        "suite should include n ≥ 32Ki graphs (found {large})"
    );
}
