//! Assertions over the committed bench artifacts in `results/`.
//!
//! The tiled bitmap exists so that suite-scale graphs stop falling off the
//! bit-parallel path: feasibility is per-tile occupancy, not the global
//! `n² ≤ MAX_BITS` cliff. This test pins that property on the committed
//! `BENCH_bitfrontier.json` — every dataset with at least 32 Ki vertices
//! must report `bitmap_degrades == 0` and an engaged bit path.
//!
//! The serve artifact (`BENCH_serve.json`) is pinned the same way: the
//! service must actually coalesce at k ≥ 4 (batches bigger than one,
//! positive coalescing rate), keep latency percentiles monotone, beat the
//! sequential-dispatch baseline on at least one coalesced scenario, and
//! its abort probe — one expired-deadline request inside a coalesced
//! batch — must report a typed abort with siblings bit-identical to solo.
//!
//! If an artifact is stale, regenerate it with `paper -- bench-all`.

use std::path::PathBuf;

/// Per-dataset fields scraped out of the bitfrontier artifact.
#[derive(Debug, Default)]
struct Sample {
    name: String,
    vertices: u64,
    bit_word_ops: u64,
    bitmap_degrades: u64,
    engaged: bool,
}

/// Hand-scan of the artifact (no JSON crate offline). The file is our own
/// `Json::render` output: one `"key": value` pair per line, datasets in
/// order, `"name"` opening each object.
fn scrape(text: &str) -> Vec<Sample> {
    let mut out: Vec<Sample> = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "name" => out.push(Sample {
                name: value.trim_matches('"').to_string(),
                ..Sample::default()
            }),
            "vertices" => {
                if let (Some(s), Ok(v)) = (out.last_mut(), value.parse()) {
                    s.vertices = v;
                }
            }
            "bit_word_ops" => {
                if let (Some(s), Ok(v)) = (out.last_mut(), value.parse()) {
                    s.bit_word_ops = v;
                }
            }
            "bitmap_degrades" => {
                if let (Some(s), Ok(v)) = (out.last_mut(), value.parse()) {
                    s.bitmap_degrades = v;
                }
            }
            "bit_path_engaged" => {
                if let Some(s) = out.last_mut() {
                    s.engaged = value == "true";
                }
            }
            _ => {}
        }
    }
    out
}

#[test]
fn committed_bitfrontier_artifact_keeps_large_graphs_on_the_bit_path() {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_bitfrontier.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let samples = scrape(&text);
    assert!(
        samples.len() >= 2,
        "artifact should cover the dataset suite, scraped {samples:?}"
    );
    let mut large = 0;
    for s in &samples {
        if s.vertices < 32 * 1024 {
            continue;
        }
        large += 1;
        assert_eq!(
            s.bitmap_degrades, 0,
            "{}: {} vertices fell off the bit-parallel path (tiled bitmap \
             should make suite graphs feasible); regenerate with bench-all",
            s.name, s.vertices
        );
        assert!(
            s.engaged && s.bit_word_ops > 0,
            "{}: bit path never engaged (bit_word_ops = {})",
            s.name,
            s.bit_word_ops
        );
    }
    assert!(
        large >= 2,
        "suite should include n ≥ 32Ki graphs (found {large})"
    );
}

/// One serve scenario scraped out of `BENCH_serve.json`.
#[derive(Debug, Default)]
struct ServeScenario {
    dataset: String,
    mix: String,
    target_k: u64,
    coalescing_rate: f64,
    max_batch_size: u64,
    qps_speedup: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Scrape scenarios plus the per-dataset abort-probe booleans.
fn scrape_serve(text: &str) -> (Vec<ServeScenario>, Vec<(bool, bool)>) {
    let mut scenarios: Vec<ServeScenario> = Vec::new();
    let mut probes: Vec<(bool, bool)> = Vec::new();
    let mut dataset = String::new();
    let parse_f = |v: &str| v.parse::<f64>().ok();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "name" => dataset = value.trim_matches('"').to_string(),
            "mix" => scenarios.push(ServeScenario {
                dataset: dataset.clone(),
                mix: value.trim_matches('"').to_string(),
                ..ServeScenario::default()
            }),
            "target_k" => {
                if let (Some(s), Ok(v)) = (scenarios.last_mut(), value.parse()) {
                    s.target_k = v;
                }
            }
            "coalescing_rate" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.coalescing_rate = v;
                }
            }
            "max_batch_size" => {
                if let (Some(s), Ok(v)) = (scenarios.last_mut(), value.parse()) {
                    s.max_batch_size = v;
                }
            }
            "qps_speedup" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.qps_speedup = v;
                }
            }
            "p50_ms" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.p50_ms = v;
                }
            }
            "p95_ms" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.p95_ms = v;
                }
            }
            "p99_ms" => {
                if let (Some(s), Some(v)) = (scenarios.last_mut(), parse_f(value)) {
                    s.p99_ms = v;
                }
            }
            "aborted_typed" => probes.push((value == "true", false)),
            "siblings_unchanged" => {
                if let Some(p) = probes.last_mut() {
                    p.1 = value == "true";
                }
            }
            _ => {}
        }
    }
    (scenarios, probes)
}

#[test]
fn committed_serve_artifact_shows_coalescing_and_isolation() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_serve.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let (scenarios, probes) = scrape_serve(&text);
    assert!(
        scenarios.len() >= 4,
        "artifact should cover multiple scenarios per dataset, scraped {scenarios:?}"
    );

    for s in &scenarios {
        assert!(
            s.p50_ms > 0.0 && s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms,
            "{}/{} k={}: latency percentiles must be monotone \
             (p50 {} / p95 {} / p99 {})",
            s.dataset,
            s.mix,
            s.target_k,
            s.p50_ms,
            s.p95_ms,
            s.p99_ms
        );
        if s.target_k >= 4 {
            assert!(
                s.max_batch_size > 1,
                "{}/{} k={}: admission never formed a batch bigger than one",
                s.dataset,
                s.mix,
                s.target_k
            );
            assert!(
                s.coalescing_rate > 0.0,
                "{}/{} k={}: no request ever shared a coalesced traversal",
                s.dataset,
                s.mix,
                s.target_k
            );
        }
    }

    // The coalescing payoff: every dataset beats sequential dispatch on
    // at least one k ≥ 4 scenario (the pure-BFS workload rides the
    // bit-parallel batched path, so the win is structural, not luck).
    let mut datasets: Vec<&str> = scenarios.iter().map(|s| s.dataset.as_str()).collect();
    datasets.dedup();
    for d in datasets {
        assert!(
            scenarios
                .iter()
                .any(|s| s.dataset == d && s.target_k >= 4 && s.qps_speedup >= 1.0),
            "{d}: no coalesced scenario matched or beat sequential dispatch; \
             regenerate with bench-all"
        );
    }

    assert!(
        probes.len() >= 2,
        "every dataset should carry an abort probe, scraped {probes:?}"
    );
    for (i, &(typed, unchanged)) in probes.iter().enumerate() {
        assert!(
            typed,
            "abort probe {i}: the expired-deadline request must abort typed"
        );
        assert!(
            unchanged,
            "abort probe {i}: siblings of the aborted request must be \
             bit-identical to their solo runs"
        );
    }
}

/// One dataset scraped out of `BENCH_shards.json`: the unsharded push/pull
/// totals plus every grid arm's totals and telemetry.
#[derive(Debug, Default)]
struct ShardDataset {
    name: String,
    unsharded_push_total: u64,
    unsharded_pull_total: u64,
    /// `(push_total, pull_total, shard_merges)` per grid arm.
    arms: Vec<(u64, u64, u64)>,
}

/// Hand-scan of the shards artifact. `"name"` opens a dataset object;
/// `"grid_rows"` opens a grid arm within the current dataset.
fn scrape_shards(text: &str) -> Vec<ShardDataset> {
    let mut out: Vec<ShardDataset> = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "name" => out.push(ShardDataset {
                name: value.trim_matches('"').to_string(),
                ..ShardDataset::default()
            }),
            "unsharded_push_total" => {
                if let (Some(d), Ok(v)) = (out.last_mut(), value.parse()) {
                    d.unsharded_push_total = v;
                }
            }
            "unsharded_pull_total" => {
                if let (Some(d), Ok(v)) = (out.last_mut(), value.parse()) {
                    d.unsharded_pull_total = v;
                }
            }
            "grid_rows" => {
                if let Some(d) = out.last_mut() {
                    d.arms.push((0, 0, 0));
                }
            }
            "push_total" => {
                if let (Some(a), Ok(v)) = (
                    out.last_mut().and_then(|d| d.arms.last_mut()),
                    value.parse(),
                ) {
                    a.0 = v;
                }
            }
            "pull_total" => {
                if let (Some(a), Ok(v)) = (
                    out.last_mut().and_then(|d| d.arms.last_mut()),
                    value.parse(),
                ) {
                    a.1 = v;
                }
            }
            "shard_merges" => {
                if let (Some(a), Ok(v)) = (
                    out.last_mut().and_then(|d| d.arms.last_mut()),
                    value.parse(),
                ) {
                    a.2 = v;
                }
            }
            _ => {}
        }
    }
    out
}

/// The committed shards artifact carries the acceptance claim of the
/// sharded execution layer: on every suite dataset and every grid, the
/// sharded push charges no more total accesses than the unsharded oracle
/// (the study's equivalence gate makes them identical), pull likewise, and
/// the stripe-local merge telemetry shows sharding genuinely engaged.
#[test]
fn committed_shards_artifact_never_charges_more_than_unsharded() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_shards.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let datasets = scrape_shards(&text);
    assert!(
        datasets.len() >= 2,
        "artifact should cover the dataset suite, scraped {datasets:?}"
    );
    for d in &datasets {
        assert!(
            d.arms.len() >= 2,
            "{}: artifact should sweep multiple grid shapes",
            d.name
        );
        assert!(
            d.unsharded_push_total > 0 && d.unsharded_pull_total > 0,
            "{}: counted oracle runs must charge accesses",
            d.name
        );
        for (i, &(push, pull, merges)) in d.arms.iter().enumerate() {
            assert!(
                push <= d.unsharded_push_total,
                "{} arm {i}: sharded push charged {push} > unsharded {}; \
                 regenerate with bench-all",
                d.name,
                d.unsharded_push_total
            );
            assert!(
                pull <= d.unsharded_pull_total,
                "{} arm {i}: sharded pull charged {pull} > unsharded {}",
                d.name,
                d.unsharded_pull_total
            );
            assert!(
                merges >= 1,
                "{} arm {i}: no stripe-local merge recorded — sharding never engaged",
                d.name
            );
        }
    }
}
