//! Criterion bench for Table 2: each rung of the cumulative optimization
//! ladder as a full-BFS benchmark on the kron stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_algo::bfs::{bfs_with_opts, BfsOpts};
use graphblas_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_ladder(c: &mut Criterion) {
    let g = rmat(13, 24, RmatParams::default(), 5);
    let mut group = c.benchmark_group("table2_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (name, opts) in BfsOpts::ladder() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| black_box(bfs_with_opts(&g, 0, opts, None)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ladder);
criterion_main!(benches);
