//! Thread-scaling bench: pull (row, dense-input) and push (column,
//! sparse-input) mxv at 1/2/4/8 lanes on the generator-suite stand-ins.
//!
//! The pool distributes a size-derived chunk list, so every lane count
//! computes the identical result; this suite measures how much wall clock
//! the extra lanes actually buy — the direct check of the PR's claim that
//! parallelism is real. The workload is `study::scaling_inputs`, shared
//! with the machine-readable companion artifact `results/BENCH_scaling.json`
//! (`cargo run --release -p graphblas_bench --bin paper -- scaling`), so
//! the bench and the artifact always measure the same regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphblas_bench::study::{scaling_inputs, ScalingInputs};
use graphblas_core::mxv;
use graphblas_core::ops::BoolOrAnd;
use graphblas_core::vector::Vector;
use graphblas_gen::powerlaw::{chung_lu, PowerLawParams};
use graphblas_gen::rmat::{rmat, RmatParams};
use graphblas_matrix::Graph;
use std::hint::black_box;
use std::time::Duration;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 3;

fn graphs() -> Vec<(&'static str, Graph<bool>)> {
    vec![
        ("kron", rmat(13, 16, RmatParams::default(), 11)),
        ("chung_lu", chung_lu(8192, 16, PowerLawParams::default(), 7)),
    ]
}

fn bench_pull_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_pull_mxv");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, g) in graphs() {
        let inputs = scaling_inputs(&g, SEED);
        group.throughput(Throughput::Elements(inputs.pull_edges as u64));
        for threads in THREAD_COUNTS {
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter(|| {
                    rayon::with_num_threads(threads, || {
                        let w: Vector<bool> = mxv(
                            None,
                            BoolOrAnd,
                            &g,
                            black_box(&inputs.dense_f),
                            &inputs.desc_pull,
                            None,
                        )
                        .unwrap();
                        black_box(w)
                    })
                })
            });
        }
    }
    group.finish();
}

fn bench_push_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_push_mxv");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, g) in graphs() {
        let inputs: ScalingInputs = scaling_inputs(&g, SEED);
        group.throughput(Throughput::Elements(inputs.frontier_edges.max(1) as u64));
        for threads in THREAD_COUNTS {
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter(|| {
                    rayon::with_num_threads(threads, || {
                        let w: Vector<bool> = mxv(
                            None,
                            BoolOrAnd,
                            &g,
                            black_box(&inputs.sparse_f),
                            &inputs.desc_push,
                            None,
                        )
                        .unwrap();
                        black_box(w)
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pull_scaling, bench_push_scaling);
criterion_main!(benches);
