//! Criterion bench for Figure 2: matvec runtime as a function of vector /
//! mask density with *random* vectors (no BFS semantics), exposing the
//! crossovers between the flat row curve and the rising masked/column
//! curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphblas_bench::study::matvec_variant_sweep;
use graphblas_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_sweep(c: &mut Criterion) {
    let g = rmat(13, 16, RmatParams::default(), 2);
    let n = g.n_vertices();
    let mut group = c.benchmark_group("fig2_matvec_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for frac in [5usize, 25, 75] {
        let k = n * frac / 100;
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("all_variants", frac), &k, |b, &k| {
            b.iter(|| black_box(matvec_variant_sweep(&g, &[k], 1, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
