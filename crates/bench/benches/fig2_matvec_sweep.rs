//! Criterion bench for Figure 2: matvec runtime as a function of vector /
//! mask density with *random* vectors (no BFS semantics), exposing the
//! crossovers between the flat row curve and the rising masked/column
//! curves — plus per-storage-format arms (CSR / bitmap / hypersparse
//! DCSR) over the same kernels, including the hypersparse
//! batched-frontier microbench where DCSR's compressed row list beats
//! CSR's O(n) `row_ptr` scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphblas_bench::study::{hypersparse_embed, matvec_variant_sweep};
use graphblas_core::descriptor::{Descriptor, Direction};
use graphblas_core::ops::BoolOrAnd;
use graphblas_core::{mxv, mxv_batch, DenseVector, MultiVector, StorageFormat, Vector};
use graphblas_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_sweep(c: &mut Criterion) {
    let g = rmat(13, 16, RmatParams::default(), 2);
    let n = g.n_vertices();
    let mut group = c.benchmark_group("fig2_matvec_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for frac in [5usize, 25, 75] {
        let k = n * frac / 100;
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("all_variants", frac), &k, |b, &k| {
            b.iter(|| black_box(matvec_variant_sweep(&g, &[k], 1, 3)))
        });
    }
    group.finish();
}

/// Per-format arms over the same kernels: unmasked pull and push matvec
/// with each storage format forced. Formats are bit-identical in results;
/// only wall clock may move.
fn bench_formats(c: &mut Criterion) {
    let g = rmat(12, 16, RmatParams::default(), 2);
    let n = g.n_vertices();
    let dense_f = Vector::Dense(DenseVector::from_values(vec![true; n], false));
    let ids: Vec<u32> = (0..n as u32).step_by(20).collect();
    let k = ids.len();
    let sparse_f = Vector::from_sparse(n, false, ids, vec![true; k]);

    let mut group = c.benchmark_group("fig2_formats");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for format in StorageFormat::all() {
        let desc_pull = Descriptor::new()
            .transpose(true)
            .force(Direction::Pull)
            .early_exit(false)
            .force_format(format);
        let desc_push = Descriptor::new()
            .transpose(true)
            .force(Direction::Push)
            .force_format(format);
        // Warm the format cache outside the timed region.
        let _: Vector<bool> = mxv(None, BoolOrAnd, &g, &dense_f, &desc_pull, None).unwrap();
        group.bench_function(BenchmarkId::new("pull", format.name()), |b| {
            b.iter(|| {
                let w: Vector<bool> = mxv(None, BoolOrAnd, &g, &dense_f, &desc_pull, None).unwrap();
                black_box(w)
            })
        });
        group.bench_function(BenchmarkId::new("push", format.name()), |b| {
            b.iter(|| {
                let w: Vector<bool> =
                    mxv(None, BoolOrAnd, &g, &sparse_f, &desc_push, None).unwrap();
                black_box(w)
            })
        });
    }
    group.finish();
}

/// The hypersparse batched-frontier microbench: k dense frontiers pulled
/// through an operand whose rows are ~98% empty. DCSR scans only the
/// non-empty rows; CSR walks the full `row_ptr` per source.
fn bench_hypersparse_batch(c: &mut Criterion) {
    let base = rmat(9, 8, RmatParams::default(), 7);
    let g = hypersparse_embed(&base, 64);
    let n = g.n_vertices();
    let k = 8usize;
    let batch = MultiVector::from_rows(
        (0..k)
            .map(|_| Vector::Dense(DenseVector::from_values(vec![true; n], false)))
            .collect(),
    );
    let mut group = c.benchmark_group("fig2_hypersparse_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for format in StorageFormat::all() {
        let desc = Descriptor::new()
            .transpose(true)
            .force(Direction::Pull)
            .force_format(format);
        let _: MultiVector<bool> =
            mxv_batch(None, BoolOrAnd, &g, &batch, &desc, None, None).unwrap();
        group.bench_function(BenchmarkId::new("pull_batch", format.name()), |b| {
            b.iter(|| {
                let out: MultiVector<bool> =
                    mxv_batch(None, BoolOrAnd, &g, &batch, &desc, None, None).unwrap();
                black_box(out)
            })
        });
    }
    group.finish();
}

/// Bit-parallel boolean kernels against their scalar twins on a dense
/// bitmap-regime graph: unmasked pull (word-AND over row words), masked
/// pull, and push (word-OR frontier merge). Same forced Bitmap format on
/// both arms so the only variable is the bit path itself.
fn bench_bit_kernels(c: &mut Criterion) {
    use graphblas_core::ops::BoolStructure;
    use graphblas_core::Mask;
    use graphblas_primitives::BitVec;

    let g = graphblas_gen::erdos::erdos_renyi(1024, 131_072, 11);
    let n = g.n_vertices();
    let dense_f = Vector::Dense(DenseVector::from_values(vec![true; n], false));
    let ids: Vec<u32> = (0..n as u32).step_by(16).collect();
    let k = ids.len();
    let sparse_f = Vector::from_sparse(n, false, ids, vec![true; k]);
    let visited = {
        let mut b = BitVec::new(n);
        for i in (0..n).step_by(2) {
            b.set(i);
        }
        b
    };
    let mask = Mask::complement(&visited);

    let mut group = c.benchmark_group("fig2_bit_kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for bit in [false, true] {
        let arm = if bit { "bit" } else { "scalar" };
        let desc = |dir| {
            Descriptor::new()
                .transpose(true)
                .structure_only(true)
                .force(dir)
                .force_format(StorageFormat::Bitmap)
                .bit_kernels(bit)
        };
        let desc_pull = desc(Direction::Pull);
        let desc_push = desc(Direction::Push);
        // Warm the format cache outside the timed region.
        let _: Vector<bool> = mxv(None, BoolStructure, &g, &dense_f, &desc_pull, None).unwrap();
        group.bench_function(BenchmarkId::new("pull", arm), |b| {
            b.iter(|| {
                let w: Vector<bool> =
                    mxv(None, BoolStructure, &g, &dense_f, &desc_pull, None).unwrap();
                black_box(w)
            })
        });
        group.bench_function(BenchmarkId::new("masked_pull", arm), |b| {
            b.iter(|| {
                let w: Vector<bool> =
                    mxv(Some(&mask), BoolStructure, &g, &dense_f, &desc_pull, None).unwrap();
                black_box(w)
            })
        });
        group.bench_function(BenchmarkId::new("push", arm), |b| {
            b.iter(|| {
                let w: Vector<bool> =
                    mxv(None, BoolStructure, &g, &sparse_f, &desc_push, None).unwrap();
                black_box(w)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep,
    bench_formats,
    bench_hypersparse_batch,
    bench_bit_kernels
);
criterion_main!(benches);
