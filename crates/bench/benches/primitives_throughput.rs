//! Throughput benches for the parallel-primitives substrate (the layer the
//! paper gets "for free" from ModernGPU/CUB). Regressions here silently
//! poison every matvec number above, so the substrate is benchmarked on
//! its own: scan, key-only vs key-value radix sort (the structure-only
//! factor at its source), gather, and segmented reduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphblas_primitives::{gather, scan, segreduce, sort};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 1 << 20;

fn bench_scan(c: &mut Criterion) {
    let data: Vec<usize> = (0..N).map(|i| i % 17).collect();
    let mut group = c.benchmark_group("primitives_scan");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(N as u64));
    group.bench_function("exclusive_scan_1M", |b| {
        b.iter(|| {
            let mut v = data.clone();
            black_box(scan::exclusive_scan_in_place(&mut v));
            v
        })
    });
    group.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let max_key = (1 << 21) - 1;
    let keys: Vec<u32> = (0..N).map(|_| rng.gen_range(0..=max_key)).collect();
    let vals: Vec<u32> = (0..N as u32).collect();

    let mut group = c.benchmark_group("primitives_sort");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(N as u64));
    group.bench_function("key_only_1M", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            sort::sort_keys(&mut k, max_key);
            black_box(k)
        })
    });
    group.bench_function("key_value_1M", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            let mut v = vals.clone();
            sort::sort_pairs(&mut k, &mut v, max_key);
            black_box((k, v))
        })
    });
    group.bench_function("std_sort_unstable_1M", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            k.sort_unstable();
            black_box(k)
        })
    });
    group.finish();
}

fn bench_gather_and_segreduce(c: &mut Criterion) {
    // Segment layout shaped like a BFS expansion: many short segments plus
    // a few supervertex-sized ones.
    let mut rng = StdRng::seed_from_u64(2);
    let mut lengths: Vec<usize> = (0..50_000).map(|_| rng.gen_range(1..16)).collect();
    lengths.extend(std::iter::repeat_n(20_000, 20));
    let offsets = scan::exclusive_scan_offsets(&lengths);
    let total = *offsets.last().unwrap();
    let src: Vec<u32> = (0..total as u32).collect();
    let starts: Vec<usize> = offsets[..lengths.len()].to_vec();

    let mut group = c.benchmark_group("primitives_gather_segreduce");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(total as u64));
    group.bench_with_input(
        BenchmarkId::new("interval_gather", total),
        &total,
        |b, _| b.iter(|| black_box(gather::gather_segments(&src, &starts, &offsets, 4096))),
    );

    let mut keys: Vec<u32> = (0..total).map(|_| rng.gen_range(0..100_000u32)).collect();
    keys.sort_unstable();
    let vals: Vec<u64> = (0..total as u64).collect();
    group.bench_with_input(
        BenchmarkId::new("segmented_reduce", total),
        &total,
        |b, _| {
            b.iter(|| {
                black_box(segreduce::segmented_reduce_by_key(&keys, &vals, |a, b| {
                    a + b
                }))
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_scan, bench_sort, bench_gather_and_segreduce);
criterion_main!(benches);
