//! Criterion bench for Figure 6: per-iteration matvec cost with
//! *BFS-semantic* vectors (sampled mid-traversal) rather than random ones —
//! the distinction that produces the supervertex oval and backwards-L
//! shapes of the figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_core::descriptor::{Descriptor, Direction};
use graphblas_core::mask::Mask;
use graphblas_core::mxv;
use graphblas_core::ops::BoolStructure;
use graphblas_core::vector::Vector;
use graphblas_gen::rmat::{rmat, RmatParams};
use graphblas_primitives::BitVec;
use std::hint::black_box;
use std::time::Duration;

/// Capture the frontier + visited state entering each BFS level.
fn bfs_states(
    g: &graphblas_matrix::Graph<bool>,
    source: u32,
) -> Vec<(Vector<bool>, BitVec, Vec<u32>)> {
    let n = g.n_vertices();
    let mut visited = BitVec::new(n);
    visited.set(source as usize);
    let mut unvisited: Vec<u32> = (0..n as u32).filter(|&v| v != source).collect();
    let mut f = Vector::singleton(n, false, source, true);
    let desc = Descriptor::new().transpose(true).force(Direction::Push);
    let mut states = Vec::new();
    loop {
        states.push((f.clone(), visited.clone(), unvisited.clone()));
        let mask = Mask::complement(&visited);
        let w: Vector<bool> = mxv(Some(&mask), BoolStructure, g, &f, &desc, None).unwrap();
        if w.nnz() == 0 {
            break;
        }
        for (i, _) in w.iter_explicit() {
            visited.set(i as usize);
        }
        unvisited.retain(|&v| !visited.get(v as usize));
        f = w;
    }
    states
}

fn bench_bfs_semantic_iterations(c: &mut Criterion) {
    let g = rmat(13, 24, RmatParams::default(), 21);
    let states = bfs_states(&g, 0);
    let desc_push = Descriptor::new().transpose(true).force(Direction::Push);
    let desc_pull = Descriptor::new().transpose(true).force(Direction::Pull);

    let mut group = c.benchmark_group("fig6_bfs_semantic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (level, (f, visited, unvisited)) in states.iter().enumerate() {
        let level = level + 1;
        group.bench_with_input(BenchmarkId::new("push", level), &level, |b, _| {
            let mut sf = f.clone();
            sf.make_sparse();
            b.iter(|| {
                let mask = Mask::complement(visited);
                let w: Vector<bool> = mxv(
                    Some(&mask),
                    BoolStructure,
                    &g,
                    black_box(&sf),
                    &desc_push,
                    None,
                )
                .unwrap();
                black_box(w)
            })
        });
        group.bench_with_input(BenchmarkId::new("pull", level), &level, |b, _| {
            let mut df = f.clone();
            df.make_dense();
            b.iter(|| {
                let mask = Mask::complement(visited).with_active_list(unvisited);
                let w: Vector<bool> = mxv(
                    Some(&mask),
                    BoolStructure,
                    &g,
                    black_box(&df),
                    &desc_pull,
                    None,
                )
                .unwrap();
                black_box(w)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs_semantic_iterations);
criterion_main!(benches);
