//! Criterion bench for Figure 7: all six engines on one scale-free and one
//! road-mesh graph — the two regimes whose contrast drives the paper's
//! §7.3 discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::engines::figure7_lineup;
use graphblas_gen::grid::{road_mesh, RoadParams};
use graphblas_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_frameworks(c: &mut Criterion) {
    let kron = rmat(13, 24, RmatParams::default(), 5);
    let road = road_mesh(150, 150, RoadParams::default(), 5);
    let engines = figure7_lineup();

    let mut group = c.benchmark_group("fig7_frameworks");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for engine in &engines {
        group.bench_with_input(
            BenchmarkId::new("kron", engine.name()),
            engine,
            |b, engine| b.iter(|| black_box(engine.bfs(&kron, 0))),
        );
        group.bench_with_input(
            BenchmarkId::new("road", engine.name()),
            engine,
            |b, engine| b.iter(|| black_box(engine.bfs(&road, 0))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_frameworks);
criterion_main!(benches);
