//! Criterion bench for Figure 5b: forced push-only vs pull-only vs
//! direction-optimized full BFS on the kron stand-in — the integral of the
//! per-level curves the figure plots.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_algo::bfs::{bfs_with_opts, BfsOpts};
use graphblas_core::descriptor::Direction;
use graphblas_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_directions(c: &mut Criterion) {
    let g = rmat(13, 24, RmatParams::default(), 9);
    let mut group = c.benchmark_group("fig5_directions");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("push_only", |b| {
        let opts = BfsOpts::default().forced(Direction::Push);
        b.iter(|| black_box(bfs_with_opts(&g, 0, &opts, None)))
    });
    group.bench_function("pull_only", |b| {
        let opts = BfsOpts::default().forced(Direction::Pull);
        b.iter(|| black_box(bfs_with_opts(&g, 0, &opts, None)))
    });
    group.bench_function("direction_optimized", |b| {
        let opts = BfsOpts::default();
        b.iter(|| black_box(bfs_with_opts(&g, 0, &opts, None)))
    });
    group.finish();
}

criterion_group!(benches, bench_directions);
criterion_main!(benches);
