//! Fused-pipeline bench: each algorithm's fused mxv·apply·assign form vs
//! its unfused separate-operation composition.
//!
//! The two forms compute bit-identical results and access counters (pinned
//! by `tests/fused_pipelines.rs`), so the delta is pure intermediate-vector
//! traffic: the unfused pull face allocates, fills, and re-scans an `O(M)`
//! dense buffer every iteration that fusion never materializes, and the
//! unfused push face builds a sparse vector the caller immediately tears
//! apart. Parent BFS additionally benches the fused-only first-hit early
//! exit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_algo::bfs::{bfs_with_opts, BfsOpts};
use graphblas_algo::bfs_parents::{bfs_parents_with_opts, ParentBfsOpts};
use graphblas_algo::cc::{connected_components_with_opts, CcOpts};
use graphblas_algo::pagerank::{pagerank_with_counters, PageRankOpts};
use graphblas_gen::grid::{road_mesh, RoadParams};
use graphblas_gen::rmat::{rmat, RmatParams};
use graphblas_matrix::Graph;
use std::hint::black_box;
use std::time::Duration;

fn graphs() -> Vec<(&'static str, Graph<bool>)> {
    vec![
        ("kron", rmat(13, 16, RmatParams::default(), 11)),
        ("road", road_mesh(90, 90, RoadParams::default(), 6)),
    ]
}

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_bfs");
    configure(&mut group);
    for (name, g) in graphs() {
        for fused in [false, true] {
            let label = if fused { "fused" } else { "unfused" };
            let opts = BfsOpts::default().fused(fused);
            group.bench_with_input(BenchmarkId::new(name, label), &opts, |b, opts| {
                b.iter(|| black_box(bfs_with_opts(&g, black_box(0), opts, None)));
            });
        }
    }
    group.finish();
}

fn bench_parent_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_parent_bfs");
    configure(&mut group);
    for (name, g) in graphs() {
        for (label, fused, first_hit) in [
            ("unfused", false, false),
            ("fused", true, false),
            ("fused_first_hit", true, true),
        ] {
            let opts = ParentBfsOpts {
                fused,
                first_hit_exit: first_hit,
                ..ParentBfsOpts::default()
            };
            group.bench_with_input(BenchmarkId::new(name, label), &opts, |b, opts| {
                b.iter(|| black_box(bfs_parents_with_opts(&g, black_box(0), opts, None)));
            });
        }
    }
    group.finish();
}

fn bench_cc(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_cc");
    configure(&mut group);
    for (name, g) in graphs() {
        for fused in [false, true] {
            let label = if fused { "fused" } else { "unfused" };
            let opts = CcOpts {
                fused,
                ..CcOpts::default()
            };
            group.bench_with_input(BenchmarkId::new(name, label), &opts, |b, opts| {
                b.iter(|| black_box(connected_components_with_opts(&g, opts, None)));
            });
        }
    }
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_pagerank");
    configure(&mut group);
    for (name, g) in graphs() {
        for fused in [false, true] {
            let label = if fused { "fused" } else { "unfused" };
            let opts = PageRankOpts {
                fused,
                max_iters: 30,
                ..PageRankOpts::default()
            };
            group.bench_with_input(BenchmarkId::new(name, label), &opts, |b, opts| {
                b.iter(|| black_box(pagerank_with_counters(&g, opts, true, None)));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs,
    bench_parent_bfs,
    bench_cc,
    bench_pagerank
);
criterion_main!(benches);
