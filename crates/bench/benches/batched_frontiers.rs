//! Batched-frontier bench: `k`-source multi-source BFS through the
//! `mxv_batch` kernels vs `k` sequential single-source runs of the same
//! machinery, at several lane counts.
//!
//! The batch and the sequential loop compute bit-identical depths (pinned
//! by `tests/prop_core.rs` and the msbfs suite), so the delta is pure
//! `(source, chunk)` grid occupancy: the batch keeps lanes busy across
//! sources even when one source's frontier is tiny. The machine-readable
//! companion is `results/BENCH_batched.json`
//! (`cargo run --release -p graphblas_bench --bin paper -- batched`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_algo::bc::betweenness;
use graphblas_algo::msbfs::multi_source_bfs;
use graphblas_bench::study::random_sources;
use graphblas_gen::powerlaw::{chung_lu, PowerLawParams};
use graphblas_gen::rmat::{rmat, RmatParams};
use graphblas_matrix::Graph;
use std::hint::black_box;
use std::time::Duration;

const THREAD_COUNTS: [usize; 2] = [1, 4];
const BATCH_SIZES: [usize; 2] = [4, 16];
const SEED: u64 = 17;

fn graphs() -> Vec<(&'static str, Graph<bool>)> {
    vec![
        ("kron", rmat(12, 16, RmatParams::default(), 11)),
        ("chung_lu", chung_lu(4096, 16, PowerLawParams::default(), 7)),
    ]
}

fn bench_msbfs_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_msbfs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, g) in graphs() {
        for k in BATCH_SIZES {
            let sources = random_sources(&g, k, SEED);
            for threads in THREAD_COUNTS {
                let id = format!("{name}/k{k}");
                group.bench_with_input(BenchmarkId::new(id, threads), &threads, |b, &threads| {
                    b.iter(|| {
                        rayon::with_num_threads(threads, || {
                            black_box(multi_source_bfs(&g, black_box(&sources)))
                        })
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_msbfs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_msbfs_kx1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, g) in graphs() {
        for k in BATCH_SIZES {
            let sources = random_sources(&g, k, SEED);
            for threads in THREAD_COUNTS {
                let id = format!("{name}/k{k}");
                group.bench_with_input(BenchmarkId::new(id, threads), &threads, |b, &threads| {
                    b.iter(|| {
                        rayon::with_num_threads(threads, || {
                            for &s in &sources {
                                black_box(multi_source_bfs(&g, black_box(&[s])));
                            }
                        })
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_bc_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_bc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, g) in graphs() {
        let sources = random_sources(&g, 4, SEED ^ 0xbc);
        for threads in THREAD_COUNTS {
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter(|| {
                    rayon::with_num_threads(threads, || {
                        black_box(betweenness(&g, black_box(&sources)))
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_msbfs_batched,
    bench_msbfs_sequential,
    bench_bc_batched
);
criterion_main!(benches);
