//! Criterion bench for Table 1: the four matvec variants at three points
//! of the input/mask-sparsity sweep. Wall-clock companion to the
//! access-count validation in `paper table1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::study::random_ids;
use graphblas_core::descriptor::{Descriptor, Direction};
use graphblas_core::mask::Mask;
use graphblas_core::mxv;
use graphblas_core::ops::BoolOrAnd;
use graphblas_core::vector::Vector;
use graphblas_gen::rmat::{rmat, RmatParams};
use graphblas_primitives::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_variants(c: &mut Criterion) {
    let g = rmat(14, 16, RmatParams::default(), 1);
    let n = g.n_vertices();
    let mut rng = StdRng::seed_from_u64(7);
    let desc_pull = Descriptor::new()
        .transpose(true)
        .force(Direction::Pull)
        .early_exit(false);
    let desc_push = Descriptor::new().transpose(true).force(Direction::Push);
    let full: Vector<bool> = {
        let mut v = Vector::from_sparse(n, false, (0..n as u32).collect(), vec![true; n]);
        v.make_dense();
        v
    };

    let mut group = c.benchmark_group("table1_cost_model");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for frac in [1usize, 10, 50] {
        let k = n * frac / 100;
        let ids = random_ids(n, k.max(1), &mut rng);
        let sparse = Vector::from_sparse(n, false, ids.clone(), vec![true; ids.len()]);
        let mut dense = sparse.clone();
        dense.make_dense();
        let bits = {
            let mut b = BitVec::new(n);
            for &i in &ids {
                b.set(i as usize);
            }
            b
        };

        group.bench_with_input(BenchmarkId::new("row_no_mask", frac), &frac, |b, _| {
            b.iter(|| {
                let w: Vector<bool> =
                    mxv(None, BoolOrAnd, &g, black_box(&dense), &desc_pull, None).unwrap();
                black_box(w)
            })
        });
        group.bench_with_input(BenchmarkId::new("row_masked", frac), &frac, |b, _| {
            b.iter(|| {
                let mask = Mask::new(&bits).with_active_list(&ids);
                let w: Vector<bool> = mxv(
                    Some(&mask),
                    BoolOrAnd,
                    &g,
                    black_box(&full),
                    &desc_pull,
                    None,
                )
                .unwrap();
                black_box(w)
            })
        });
        group.bench_with_input(BenchmarkId::new("col_no_mask", frac), &frac, |b, _| {
            b.iter(|| {
                let w: Vector<bool> =
                    mxv(None, BoolOrAnd, &g, black_box(&sparse), &desc_push, None).unwrap();
                black_box(w)
            })
        });
        group.bench_with_input(BenchmarkId::new("col_masked", frac), &frac, |b, _| {
            b.iter(|| {
                let mask = Mask::new(&bits);
                let w: Vector<bool> = mxv(
                    Some(&mask),
                    BoolOrAnd,
                    &g,
                    black_box(&sparse),
                    &desc_push,
                    None,
                )
                .unwrap();
                black_box(w)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
