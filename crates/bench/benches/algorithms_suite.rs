//! Criterion bench for the §5.6 generality set: every algorithm the paper
//! claims the push-pull/masking machinery extends to, timed on the same
//! scale-free graph so relative costs are comparable.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_algo::bc::betweenness;
use graphblas_algo::bfs_parents::bfs_parents;
use graphblas_algo::cc::connected_components;
use graphblas_algo::ktruss::ktruss;
use graphblas_algo::mis::maximal_independent_set;
use graphblas_algo::msbfs::multi_source_bfs;
use graphblas_algo::pagerank::{adaptive_pagerank, pagerank, PageRankOpts};
use graphblas_algo::sssp::{sssp, SsspOpts};
use graphblas_algo::tricount::triangle_count;
use graphblas_gen::rmat::{rmat, RmatParams};
use graphblas_gen::with_uniform_weights;
use std::hint::black_box;
use std::time::Duration;

fn bench_algorithms(c: &mut Criterion) {
    let g = rmat(12, 12, RmatParams::default(), 7);
    let w = with_uniform_weights(&g, 9);
    let pr_opts = PageRankOpts::default();

    let mut group = c.benchmark_group("algorithms_suite");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("bfs_parents", |b| {
        b.iter(|| black_box(bfs_parents(&g, 0, 0.01)))
    });
    group.bench_function("multi_source_bfs_8", |b| {
        let sources: Vec<u32> = (0..8).map(|i| i * 37).collect();
        b.iter(|| black_box(multi_source_bfs(&g, &sources)))
    });
    group.bench_function("sssp", |b| {
        b.iter(|| black_box(sssp(&w, 0, &SsspOpts::default())))
    });
    group.bench_function("pagerank", |b| b.iter(|| black_box(pagerank(&g, &pr_opts))));
    group.bench_function("adaptive_pagerank", |b| {
        b.iter(|| black_box(adaptive_pagerank(&g, &pr_opts)))
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| black_box(connected_components(&g, 0.01)))
    });
    group.bench_function("mis", |b| {
        b.iter(|| black_box(maximal_independent_set(&g, 5)))
    });
    group.bench_function("triangle_count", |b| {
        b.iter(|| black_box(triangle_count(&g)))
    });
    group.bench_function("ktruss_k4", |b| b.iter(|| black_box(ktruss(&g, 4))));
    group.bench_function("betweenness_4_sources", |b| {
        b.iter(|| black_box(betweenness(&g, &[0, 11, 222, 3333])))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
