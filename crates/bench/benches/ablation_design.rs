//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. column-kernel merge strategy — radix sort (§6.2) vs heap k-way merge
//!    (§3.1);
//! 2. key-only vs key-value sort in the expansion (structure-only, §5.5);
//! 3. masked row kernel with the amortized active list (§3.2) vs plain
//!    dense bit scan;
//! 4. α = β switch-threshold sensitivity around the paper's 0.01;
//! 5. masked vs unmasked SpGEMM for triangle counting (§5.6 generality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_algo::bfs::{bfs_with_opts, BfsOpts};
use graphblas_algo::tricount::{triangle_count, triangle_count_unmasked};
use graphblas_bench::study::random_ids;
use graphblas_core::descriptor::{Descriptor, Direction, MergeStrategy};
use graphblas_core::mask::Mask;
use graphblas_core::mxv;
use graphblas_core::ops::{BoolOrAnd, BoolStructure};
use graphblas_core::vector::Vector;
use graphblas_gen::rmat::{rmat, RmatParams};
use graphblas_primitives::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_merge_strategy(c: &mut Criterion) {
    let g = rmat(13, 16, RmatParams::default(), 11);
    let n = g.n_vertices();
    let mut rng = StdRng::seed_from_u64(3);
    let ids = random_ids(n, n / 20, &mut rng);
    let f = Vector::from_sparse(n, false, ids.clone(), vec![true; ids.len()]);

    let mut group = c.benchmark_group("ablation_merge_strategy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, strategy) in [
        ("radix_sort", MergeStrategy::SortBased),
        ("heap_merge", MergeStrategy::HeapMerge),
        ("spa_merge", MergeStrategy::SpaMerge),
    ] {
        let desc = Descriptor::new()
            .transpose(true)
            .force(Direction::Push)
            .merge_strategy(strategy)
            .structure_only(false);
        group.bench_function(name, |b| {
            b.iter(|| {
                let w: Vector<bool> = mxv(None, BoolOrAnd, &g, black_box(&f), &desc, None).unwrap();
                black_box(w)
            })
        });
    }
    // Gunrock's §7.3 alternative: bitmask culling, no sort at all (needs a
    // constant-product semiring).
    {
        let desc = Descriptor::new()
            .transpose(true)
            .force(Direction::Push)
            .merge_strategy(MergeStrategy::BitmaskCull);
        group.bench_function("bitmask_cull", |b| {
            b.iter(|| {
                let w: Vector<bool> =
                    mxv(None, BoolStructure, &g, black_box(&f), &desc, None).unwrap();
                black_box(w)
            })
        });
    }
    group.finish();
}

fn bench_structure_only_sort(c: &mut Criterion) {
    let g = rmat(13, 16, RmatParams::default(), 11);
    let n = g.n_vertices();
    let mut rng = StdRng::seed_from_u64(4);
    let ids = random_ids(n, n / 10, &mut rng);
    let f = Vector::from_sparse(n, false, ids.clone(), vec![true; ids.len()]);

    let mut group = c.benchmark_group("ablation_structure_only");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("key_value_sort", |b| {
        let desc = Descriptor::new()
            .transpose(true)
            .force(Direction::Push)
            .structure_only(false);
        b.iter(|| {
            let w: Vector<bool> = mxv(None, BoolOrAnd, &g, black_box(&f), &desc, None).unwrap();
            black_box(w)
        })
    });
    group.bench_function("key_only_sort", |b| {
        let desc = Descriptor::new()
            .transpose(true)
            .force(Direction::Push)
            .structure_only(true);
        b.iter(|| {
            let w: Vector<bool> = mxv(None, BoolStructure, &g, black_box(&f), &desc, None).unwrap();
            black_box(w)
        })
    });
    group.finish();
}

fn bench_mask_active_list(c: &mut Criterion) {
    let g = rmat(13, 16, RmatParams::default(), 11);
    let n = g.n_vertices();
    let mut rng = StdRng::seed_from_u64(5);
    // Sparse mask: the regime where the active list matters.
    let ids = random_ids(n, n / 50, &mut rng);
    let bits = {
        let mut b = BitVec::new(n);
        for &i in &ids {
            b.set(i as usize);
        }
        b
    };
    let full: Vector<bool> = {
        let mut v = Vector::from_sparse(n, false, (0..n as u32).collect(), vec![true; n]);
        v.make_dense();
        v
    };
    let desc = Descriptor::new()
        .transpose(true)
        .force(Direction::Pull)
        .early_exit(false);

    let mut group = c.benchmark_group("ablation_mask_active_list");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("with_active_list", |b| {
        b.iter(|| {
            let mask = Mask::new(&bits).with_active_list(&ids);
            let w: Vector<bool> =
                mxv(Some(&mask), BoolOrAnd, &g, black_box(&full), &desc, None).unwrap();
            black_box(w)
        })
    });
    group.bench_function("bit_scan_only", |b| {
        b.iter(|| {
            let mask = Mask::new(&bits);
            let w: Vector<bool> =
                mxv(Some(&mask), BoolOrAnd, &g, black_box(&full), &desc, None).unwrap();
            black_box(w)
        })
    });
    group.finish();
}

fn bench_alpha_sensitivity(c: &mut Criterion) {
    let g = rmat(13, 24, RmatParams::default(), 13);
    let mut group = c.benchmark_group("ablation_alpha");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for alpha in [0.001, 0.01, 0.1] {
        let opts = BfsOpts {
            switch_threshold: alpha,
            ..BfsOpts::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &opts, |b, opts| {
            b.iter(|| black_box(bfs_with_opts(&g, 0, opts, None)))
        });
    }
    group.finish();
}

fn bench_masked_tricount(c: &mut Criterion) {
    let g = rmat(11, 8, RmatParams::default(), 17);
    let mut group = c.benchmark_group("ablation_tricount_mask");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("masked_spgemm", |b| {
        b.iter(|| black_box(triangle_count(&g)))
    });
    group.bench_function("unmasked_then_filter", |b| {
        b.iter(|| black_box(triangle_count_unmasked(&g)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_merge_strategy,
    bench_structure_only_sort,
    bench_mask_active_list,
    bench_alpha_sensitivity,
    bench_masked_tricount
);
criterion_main!(benches);
