//! Serve study: the concurrent query service under deterministic
//! open-loop load, against a sequential-dispatch baseline.
//!
//! Each scenario replays the *same* seeded trace twice — once under a
//! windowed admission plan targeting batches of `target_k`, once with a
//! zero window (every request its own batch) — so the speedup isolates
//! coalescing, not workload luck. Composition, values, and per-request
//! counters are trace-deterministic; only the clock readings move.

use graphblas_core::ExecLimits;
use graphblas_gen::with_uniform_weights;
use graphblas_matrix::Graph;
use graphblas_service::{
    compute, execute_batch, generate_trace, run_trace, AdmissionConfig, ExecOpts, LoadGenConfig,
    Query, QueryMix, Request, ServeStats, ServiceGraphs, TraceOutcome,
};

/// Nanoseconds per arrival tick in the virtual clock (1 µs: request
/// gaps are small against millisecond-scale traversals, so admission
/// windows actually coalesce).
pub const TICK_NS: u64 = 1_000;

/// One load scenario's measurements.
#[derive(Clone, Debug)]
pub struct ServeScenario {
    /// Workload label: `"mixed"` (the standard BFS-heavy mix) or `"bfs"`
    /// (pure single-source BFS traffic, the bit-parallel batched path).
    pub mix: &'static str,
    /// Intended batch size (admission cap; the window is sized to fill it).
    pub target_k: usize,
    pub window_ticks: u64,
    pub stats: ServeStats,
    /// Same trace, zero window, batch cap 1.
    pub sequential_qps: f64,
    /// `stats.qps / sequential_qps`.
    pub qps_speedup: f64,
    /// Requests de-coalesced and retried solo (worker panics; 0 here).
    pub retried: usize,
}

/// A measurement arm: one trace under one admission plan. `target_k` is
/// `None` for a workload's sequential baseline.
struct Arm {
    mix: &'static str,
    workload: usize,
    adm: AdmissionConfig,
    target_k: Option<usize>,
}

/// Replay two workloads at increasing coalescing targets: the standard
/// BFS-heavy mix (where solo PageRank/BC and dense SSSP rows dilute the
/// coalescing win) and a pure-BFS trace that isolates the bit-parallel
/// batched-frontier path the paper's `mxv_batch` machinery was built for.
///
/// One warm-up replay pays the shared graph's format-cache conversions
/// before anything is timed; the arms (per-workload sequential baselines
/// and scenarios) then replay in rotating order and each reports its
/// best pass, so run-to-run jitter and position bias don't masquerade as
/// coalescing effects. Composition, values, and per-request counters are
/// identical across passes — only the clock readings move.
#[must_use]
pub fn serve_study(graph: &Graph<bool>, seed: u64, n_requests: usize) -> Vec<ServeScenario> {
    let graphs = ServiceGraphs::new(graph.clone(), with_uniform_weights(graph, seed ^ 0x5e));
    let opts = ExecOpts::default();
    let mixed_lg = LoadGenConfig {
        seed,
        n_requests,
        ..LoadGenConfig::default()
    };
    let bfs_lg = LoadGenConfig {
        mix: QueryMix {
            bfs: 1,
            parents: 0,
            sssp: 0,
            pagerank: 0,
            bc: 0,
        },
        ..mixed_lg
    };
    let mean_gap = mixed_lg.mean_gap_ticks;
    let traces = [
        generate_trace(&mixed_lg, graphs.n_vertices()),
        generate_trace(&bfs_lg, graphs.n_vertices()),
    ];

    let seq_adm = AdmissionConfig {
        window_ticks: 0,
        max_batch: 1,
    };
    let coalesced = |target_k: usize| AdmissionConfig {
        // Window long enough that arrivals (mean gap `mean_gap` ticks)
        // usually fill the cap.
        window_ticks: 2 * mean_gap * target_k as u64,
        max_batch: target_k,
    };
    let mut arms: Vec<Arm> = Vec::new();
    for (workload, (mix, targets)) in [("mixed", &[1usize, 4, 16][..]), ("bfs", &[4, 16][..])]
        .into_iter()
        .enumerate()
    {
        arms.push(Arm {
            mix,
            workload,
            adm: seq_adm,
            target_k: None,
        });
        arms.extend(targets.iter().map(|&k| Arm {
            mix,
            workload,
            adm: if k == 1 { seq_adm } else { coalesced(k) },
            target_k: Some(k),
        }));
    }

    // Warm-up: first contact with the shared graphs pays the format
    // conversions every later replay reuses.
    let _ = run_trace(&graphs, &opts, &traces[0], &seq_adm, TICK_NS, None);

    // Rotate which arm leads each pass, so slow drift, turbo decay, and
    // scheduler warm-up hit all arms alike instead of whichever arm
    // always ran first. Each arm keeps its best pass.
    let passes = 3;
    let mut picked: Vec<Option<(TraceOutcome, ServeStats)>> =
        (0..arms.len()).map(|_| None).collect();
    for pass in 0..passes {
        for j in 0..arms.len() {
            let i = (pass + j) % arms.len();
            let arm = &arms[i];
            let outcome = run_trace(
                &graphs,
                &opts,
                &traces[arm.workload],
                &arm.adm,
                TICK_NS,
                None,
            );
            let stats = compute(&outcome);
            if picked[i].as_ref().is_none_or(|(_, b)| stats.qps > b.qps) {
                picked[i] = Some((outcome, stats));
            }
        }
    }

    let mut baseline_qps = [0.0f64; 2];
    for (arm, slot) in arms.iter().zip(&picked) {
        if arm.target_k.is_none() {
            baseline_qps[arm.workload] = slot.as_ref().expect("passes >= 1").1.qps;
        }
    }

    arms.iter()
        .zip(picked)
        .filter_map(|(arm, slot)| {
            let target_k = arm.target_k?;
            let (outcome, stats) = slot.expect("passes >= 1");
            let seq_qps = baseline_qps[arm.workload];
            let retried = outcome.responses.iter().filter(|r| r.retried_solo).count();
            Some(ServeScenario {
                mix: arm.mix,
                target_k,
                window_ticks: arm.adm.window_ticks,
                qps_speedup: stats.qps / seq_qps.max(1e-12),
                sequential_qps: seq_qps,
                stats,
                retried,
            })
        })
        .collect()
}

/// The isolation claim, executed: a coalesced batch where one request
/// carries an expired deadline. The probe records whether the victim
/// aborted with its typed error and whether every sibling's values *and*
/// counter snapshot are bit-identical to its solo run.
#[derive(Clone, Copy, Debug)]
pub struct AbortProbe {
    pub aborted_typed: bool,
    pub siblings_unchanged: bool,
}

#[must_use]
pub fn abort_probe(graph: &Graph<bool>, seed: u64) -> AbortProbe {
    let graphs = ServiceGraphs::new(graph.clone(), with_uniform_weights(graph, seed ^ 0x5e));
    let opts = ExecOpts::default();
    let n = graphs.n_vertices() as u32;
    let sources = [0u32, n / 3, n / 2, 2 * n / 3];
    let batch: Vec<Request> = sources
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let r = Request::new(i as u64, Query::Bfs { source: s });
            if i == 1 {
                r.with_limits(ExecLimits::none().with_deadline(std::time::Duration::ZERO))
            } else {
                r
            }
        })
        .collect();
    let rs = execute_batch(&graphs, &opts, &batch, None);
    let aborted_typed = matches!(rs[1].result, Err(graphblas_core::GrbError::Cancelled));
    let siblings_unchanged = [0usize, 2, 3].iter().all(|&i| {
        let solo = execute_batch(
            &graphs,
            &opts,
            &[Request::new(99, Query::Bfs { source: sources[i] })],
            None,
        )
        .pop()
        .expect("one response");
        match (&rs[i].result, &solo.result) {
            (Ok(a), Ok(b)) => a == b && rs[i].counters == solo.counters,
            _ => false,
        }
    });
    AbortProbe {
        aborted_typed,
        siblings_unchanged,
    }
}
