//! Regenerate every table and figure of "Implementing Push-Pull Efficiently
//! in GraphBLAS" (ICPP '18) on synthetic stand-in datasets.
//!
//! ```sh
//! cargo run --release -p graphblas-bench --bin paper -- all
//! cargo run --release -p graphblas-bench --bin paper -- table2 --shrink 5
//! cargo run --release -p graphblas-bench --bin paper -- fig7 --sources 5
//! ```
//!
//! Experiments: `table1` `table2` `table3` `fig2` `fig5` `fig6` `fig7`
//! `heuristic` `scaling` `batched` `serve` `formats` `bitfrontier` `shards`
//! `chaos` `validate` `all`. `bench-all` regenerates exactly the
//! machine-readable `BENCH_*.json` artifacts (scaling, batched, serve,
//! formats, bitfrontier, shards, and — when built with
//! `--features fault-injection` — the chaos study). CSVs land in `--out`
//! (default `results/`).
//!
//! `--shrink N` divides every dataset's vertex count by 2^N (default 6;
//! 0 regenerates paper-scale graphs). `--sources N` sets the number of BFS
//! sources per measurement. `--seed N` fixes all randomness.

use graphblas_algo::bfs::{bfs_with_opts, BfsOpts};
use graphblas_bench::engines::figure7_lineup;
use graphblas_bench::report::{f, Json, Table};
use graphblas_bench::study::{
    batched_study, bitfrontier_study, formats_study, matvec_variant_sweep, per_level_study,
    random_sources, shards_study, thread_scaling_study, time_bfs,
};
use graphblas_bench::{geomean, median, mteps, time_ms};
use graphblas_core::descriptor::Direction;
use graphblas_gen::suite::{dataset, suite, Dataset};
use graphblas_matrix::{Graph, GraphStats};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Per (series, level) accumulators: (nnz samples, microsecond samples).
type LevelSamples = BTreeMap<(&'static str, usize), (Vec<f64>, Vec<f64>)>;

struct Config {
    shrink: u32,
    sources: usize,
    seed: u64,
    out: PathBuf,
    /// Restrict fig7 to one dataset by paper name.
    dataset: Option<String>,
}

impl Config {
    fn kron(&self) -> Graph<bool> {
        dataset("kron", self.shrink, self.seed)
            .expect("kron is a known dataset")
            .graph
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let cfg = Config {
        shrink: flag("--shrink").map_or(6, |s| s.parse().expect("--shrink N")),
        sources: flag("--sources").map_or(10, |s| s.parse().expect("--sources N")),
        seed: flag("--seed").map_or(42, |s| s.parse().expect("--seed N")),
        out: flag("--out").map_or_else(|| PathBuf::from("results"), PathBuf::from),
        dataset: flag("--dataset"),
    };

    match cmd {
        "table1" => table1(&cfg),
        "table2" => table2(&cfg),
        "table3" => table3(&cfg),
        "fig2" => fig2(&cfg),
        "fig5" => fig5(&cfg),
        "fig6" => fig6(&cfg),
        "fig7" => fig7(&cfg),
        "heuristic" => heuristic(&cfg),
        "scaling" => scaling(&cfg),
        "batched" => batched(&cfg),
        "serve" => serve(&cfg),
        "formats" => formats(&cfg),
        "bitfrontier" => bitfrontier(&cfg),
        "shards" => shards(&cfg),
        "chaos" => chaos(&cfg),
        "validate" => validate(&cfg),
        "bench-all" => {
            // Exactly the experiments that emit BENCH_*.json artifacts.
            scaling(&cfg);
            batched(&cfg);
            serve(&cfg);
            formats(&cfg);
            bitfrontier(&cfg);
            shards(&cfg);
            if cfg!(feature = "fault-injection") {
                chaos(&cfg);
            } else {
                eprintln!(
                    "[bench-all] skipping chaos study (rebuild with \
                     --features fault-injection to regenerate BENCH_chaos.json)"
                );
            }
        }
        "all" => {
            table1(&cfg);
            table2(&cfg);
            table3(&cfg);
            fig2(&cfg);
            fig5(&cfg);
            fig6(&cfg);
            fig7(&cfg);
            heuristic(&cfg);
            scaling(&cfg);
            batched(&cfg);
            serve(&cfg);
            formats(&cfg);
            bitfrontier(&cfg);
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of: \
                 table1 table2 table3 fig2 fig5 fig6 fig7 heuristic scaling batched serve \
                 formats bitfrontier shards chaos validate bench-all all"
            );
            std::process::exit(2);
        }
    }
}

/// Table 1: the four-variant cost model, validated in *measured memory
/// accesses* against the O(dM) / O(d·nnz(m)) / O(d·nnz(f)) predictions.
fn table1(cfg: &Config) {
    let g = cfg.kron();
    let n = g.n_vertices();
    let d = g.avg_degree();
    eprintln!(
        "[table1] kron stand-in: {} vertices, {} edges",
        n,
        g.n_edges()
    );
    let sweep: Vec<usize> = [0.001, 0.01, 0.05, 0.2, 0.5]
        .iter()
        .map(|&r| ((n as f64 * r) as usize).max(1))
        .collect();
    let samples = matvec_variant_sweep(&g, &sweep, 1, cfg.seed);

    let mut t = Table::new(
        "Table 1 — cost model in measured matrix accesses (kron stand-in)",
        &[
            "nnz",
            "row",
            "row/pred(dM)",
            "row+mask",
            "mask/pred(d*nnz)",
            "col",
            "col/pred(d*nnz)",
        ],
    );
    for s in &samples {
        let pred_row = g.n_edges() as f64;
        let pred_masked = d * s.nnz as f64;
        let pred_col = d * s.nnz as f64;
        t.row(vec![
            s.nnz.to_string(),
            s.row_accesses.matrix.to_string(),
            f(s.row_accesses.matrix as f64 / pred_row),
            s.row_masked_accesses.matrix.to_string(),
            f(s.row_masked_accesses.matrix as f64 / pred_masked),
            s.col_accesses.matrix.to_string(),
            f(s.col_accesses.matrix as f64 / pred_col),
        ]);
    }
    t.print();
    println!(
        "ratios ≈ 1 and flat across the sweep confirm the Table 1 model; the row\n\
         variant's accesses equal nnz(A) at every point (input-sparsity blind)."
    );
    let _ = t.write_csv(&cfg.out, "table1_cost_model");
}

/// Table 2: cumulative optimization ladder, MTEPS on the kron stand-in.
fn table2(cfg: &Config) {
    let g = cfg.kron();
    let sources = random_sources(&g, cfg.sources, cfg.seed);
    eprintln!(
        "[table2] kron stand-in: {} vertices, {} edges, {} sources",
        g.n_vertices(),
        g.n_edges(),
        sources.len()
    );

    let mut t = Table::new(
        "Table 2 — optimization ladder (cumulative), kron stand-in",
        &["Optimization", "ms/BFS", "MTEPS", "Speed-up"],
    );
    let mut prev: Option<f64> = None;
    for (name, opts) in BfsOpts::ladder() {
        let _ = time_bfs(&g, &sources[..1], &opts); // warmup
        let (ms, edges) = time_bfs(&g, &sources, &opts);
        let per_bfs = ms / sources.len() as f64;
        let rate = mteps(edges, ms);
        let speedup = prev.map_or("—".to_string(), |p| format!("{:.2}x", p / per_bfs));
        prev = Some(per_bfs);
        t.row(vec![name.to_string(), f(per_bfs), f(rate), speedup]);
    }
    t.print();
    println!(
        "paper (K40c GPU, scale-21): 0.874 → 1.41 → 1.53 → 3.93 → 15.8 → 42.4 GTEPS;\n\
         expect the same ordering and a large cumulative factor, not the absolutes."
    );
    let _ = t.write_csv(&cfg.out, "table2_ablation");
}

/// Table 3: the dataset description table over the synthetic suite.
fn table3(cfg: &Config) {
    let mut t = Table::new(
        "Table 3 — dataset suite (synthetic stand-ins)",
        &[
            "Dataset",
            "Vertices",
            "Edges",
            "Max Degree",
            "Pseudo-Diameter",
            "Type",
        ],
    );
    for Dataset { name, class, graph } in suite(cfg.shrink, cfg.seed) {
        eprintln!("[table3] {name}");
        let s = GraphStats::compute(graph.csr());
        t.row(vec![
            name.to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            s.max_degree.to_string(),
            s.pseudo_diameter.to_string(),
            class.code().to_string(),
        ]);
    }
    t.print();
    let _ = t.write_csv(&cfg.out, "table3_datasets");
}

/// Figure 2: wall-clock runtime of the four variants vs nnz, random
/// vectors/masks.
fn fig2(cfg: &Config) {
    let g = cfg.kron();
    let n = g.n_vertices();
    eprintln!(
        "[fig2] kron stand-in: {} vertices, {} edges",
        n,
        g.n_edges()
    );
    let sweep: Vec<usize> = (1..=10).map(|i| n * i / 10).collect();
    let samples = matvec_variant_sweep(&g, &sweep, 3, cfg.seed);

    let mut t = Table::new(
        "Figure 2 — matvec runtime (ms) vs nnz, random vectors (kron stand-in)",
        &[
            "nnz",
            "row (no mask)",
            "row (mask)",
            "col (no mask)",
            "col (mask)",
        ],
    );
    for s in &samples {
        t.row(vec![
            s.nnz.to_string(),
            f(s.row_ms),
            f(s.row_masked_ms),
            f(s.col_ms),
            f(s.col_masked_ms),
        ]);
    }
    t.print();
    println!(
        "expected shape (paper Fig. 2): row flat; row+mask and col rising with nnz;\n\
         col ≈ col+mask (a mask cannot reduce column-kernel work); crossover where\n\
         the rising curves meet the flat one."
    );
    let _ = t.write_csv(&cfg.out, "fig2_matvec_sweep");
}

/// Figure 5: frontier/unvisited counts per BFS level (5a) and per-level
/// push vs pull runtime (5b) on the kron stand-in.
fn fig5(cfg: &Config) {
    let g = cfg.kron();
    let sources = random_sources(&g, 1, cfg.seed);
    eprintln!("[fig5] per-level study from source {}", sources[0]);
    let levels = per_level_study(&g, sources[0], 3);

    let mut t = Table::new(
        "Figure 5 — per-level frontier/unvisited counts and push/pull runtime",
        &[
            "level",
            "frontier",
            "unvisited",
            "push ms",
            "pull ms",
            "winner",
        ],
    );
    for l in &levels {
        t.row(vec![
            l.level.to_string(),
            l.frontier_nnz.to_string(),
            l.unvisited.to_string(),
            f(l.push_ms),
            f(l.pull_ms),
            if l.push_ms <= l.pull_ms {
                "push"
            } else {
                "pull"
            }
            .to_string(),
        ]);
    }
    t.print();
    println!(
        "expected shape (paper Fig. 5): frontier peaks mid-traversal while unvisited\n\
         collapses; pull wins exactly in the middle levels — the 3-phase pattern."
    );
    let _ = t.write_csv(&cfg.out, "fig5_per_level");
}

/// Figure 6: per-iteration runtime vs nnz with BFS-semantic vectors from
/// many sources, push-only and pull-only.
fn fig6(cfg: &Config) {
    let g = cfg.kron();
    let n_sources = cfg.sources.max(10);
    let sources = random_sources(&g, n_sources, cfg.seed ^ 0xf16);
    eprintln!("[fig6] sampling {} sources", sources.len());

    // Raw scatter samples: (mode, level, nnz, micros).
    let mut samples: Vec<(&'static str, usize, usize, u128)> = Vec::new();
    for &s in &sources {
        for (mode, dir) in [("push", Direction::Push), ("pull", Direction::Pull)] {
            let r = bfs_with_opts(&g, s, &BfsOpts::default().forced(dir).traced(), None);
            for rec in &r.trace {
                // Push cost scales with nnz(f); pull cost with unvisited.
                let nnz = match dir {
                    Direction::Push => rec.frontier_nnz,
                    Direction::Pull => rec.unvisited,
                };
                samples.push((mode, rec.level, nnz, rec.micros));
            }
        }
    }
    let mut raw = Table::new(
        "Figure 6 (raw) — per-iteration samples from BFS frontiers",
        &["mode", "level", "nnz", "micros"],
    );
    for &(mode, level, nnz, us) in &samples {
        raw.row(vec![
            mode.to_string(),
            level.to_string(),
            nnz.to_string(),
            us.to_string(),
        ]);
    }
    if let Ok(p) = raw.write_csv(&cfg.out, "fig6_bfs_samples") {
        eprintln!("[fig6] raw scatter written to {}", p.display());
    }

    // Compact view: medians per (mode, level) — the paper's "Push 1 …
    // Pull 6" legend entries.
    let mut grouped: LevelSamples = BTreeMap::new();
    for &(mode, level, nnz, us) in &samples {
        let e = grouped.entry((mode, level)).or_default();
        e.0.push(nnz as f64);
        e.1.push(us as f64);
    }
    let mut t = Table::new(
        "Figure 6 (summary) — median per-level runtime, BFS-semantic vectors",
        &["series", "median nnz", "median micros"],
    );
    for ((mode, level), (nnzs, uss)) in &grouped {
        t.row(vec![
            format!("{mode} {level}"),
            f(median(nnzs)),
            f(median(uss)),
        ]);
    }
    t.print();
    println!(
        "expected shape (paper Fig. 6): push costs track the frontier oval (cheap at\n\
         both ends, expensive at the supervertex peak); early pull levels are the\n\
         most expensive points, collapsing once supervertices are visited."
    );
    let _ = t.write_csv(&cfg.out, "fig6_summary");
}

/// Figure 7 / §7.2: full framework comparison across the suite. Honors
/// `--dataset <name>` to restrict the run to one dataset.
fn fig7(cfg: &Config) {
    let engines = figure7_lineup();
    let n_sources = cfg.sources.clamp(1, 5);
    let mut runtime = Table::new(
        "Figure 7 — runtime (ms per BFS) [lower is better]",
        &[
            "Dataset",
            "SuiteSparse",
            "CuSha",
            "Baseline",
            "Ligra",
            "Gunrock",
            "This Work",
        ],
    );
    let mut throughput = Table::new(
        "Figure 7 — edge throughput (MTEPS) [higher is better]",
        &[
            "Dataset",
            "SuiteSparse",
            "CuSha",
            "Baseline",
            "Ligra",
            "Gunrock",
            "This Work",
        ],
    );
    let mut ours_vs: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    let mut scale_free_ratio: Vec<f64> = Vec::new();
    let mut mesh_ratio: Vec<f64> = Vec::new();

    for Dataset { name, class, graph } in suite(cfg.shrink, cfg.seed) {
        if let Some(only) = &cfg.dataset {
            if only != name {
                continue;
            }
        }
        eprintln!(
            "[fig7] {name}: {} vertices, {} edges",
            graph.n_vertices(),
            graph.n_edges()
        );
        let sources = random_sources(&graph, n_sources, cfg.seed ^ 0x77);
        // Correctness gate: every engine must agree with the serial oracle
        // on the first source before being timed.
        let oracle = graphblas_baselines::textbook::bfs_serial(&graph, sources[0]);
        let mut ms_cells = vec![name.to_string()];
        let mut tp_cells = vec![name.to_string()];
        let mut per_engine_ms = Vec::new();
        for engine in &engines {
            let got = engine.bfs(&graph, sources[0]);
            assert_eq!(got, oracle, "{} wrong on {name}", engine.name());
            let mut total_ms = 0.0;
            let mut total_edges = 0usize;
            for &s in &sources {
                let (depths, ms) = time_ms(|| engine.bfs(&graph, s));
                total_ms += ms;
                total_edges += graphblas_baselines::edges_traversed(&graph, &depths);
            }
            let per_bfs = total_ms / sources.len() as f64;
            per_engine_ms.push(per_bfs);
            ms_cells.push(f(per_bfs));
            tp_cells.push(f(mteps(total_edges, total_ms)));
        }
        runtime.row(ms_cells);
        throughput.row(tp_cells);

        // Ratios for the summary (this work = last column).
        let ours = *per_engine_ms.last().expect("non-empty");
        for (engine, &ms) in engines.iter().zip(&per_engine_ms) {
            if engine.name() != "This Work" {
                ours_vs.entry(engine.name()).or_default().push(ms / ours);
            }
        }
        let ligra_ms = per_engine_ms[3];
        if class.is_scale_free() {
            scale_free_ratio.push(ligra_ms / ours);
        } else {
            mesh_ratio.push(ligra_ms / ours);
        }
    }
    runtime.print();
    throughput.print();

    let mut summary = Table::new(
        "Figure 7 — geomean speed-up of This Work over each framework",
        &["vs", "geomean speed-up", "paper reported"],
    );
    let paper: &[(&str, &str)] = &[
        ("SuiteSparse-like", "122x"),
        ("CuSha-like", "48.3x"),
        ("Baseline", "3.37x"),
        ("Ligra-like", "1.16x"),
        ("Gunrock-like", "0.74x (34.6% slower)"),
    ];
    for (name, reported) in paper {
        if let Some(ratios) = ours_vs.get(name) {
            summary.row(vec![
                (*name).to_string(),
                format!("{:.2}x", geomean(ratios)),
                (*reported).to_string(),
            ]);
        }
    }
    summary.print();
    println!(
        "scale-free datasets: This Work vs Ligra-like geomean {:.2}x (paper: 3.51x faster)\n\
         mesh/road datasets:  This Work vs Ligra-like geomean {:.2}x (paper: 3.2x slower ⇒ 0.31x)",
        geomean(&scale_free_ratio),
        geomean(&mesh_ratio)
    );
    let _ = runtime.write_csv(&cfg.out, "fig7_runtime");
    let _ = throughput.write_csv(&cfg.out, "fig7_mteps");
    let _ = summary.write_csv(&cfg.out, "fig7_summary");
}

/// §6.3 heuristic study: α = β sweep against the per-level oracle.
fn heuristic(cfg: &Config) {
    let g = cfg.kron();
    let sources = random_sources(&g, 1, cfg.seed);
    let levels = per_level_study(&g, sources[0], 3);
    let oracle_ms: f64 = levels.iter().map(|l| l.push_ms.min(l.pull_ms)).sum();
    let push_only_ms: f64 = levels.iter().map(|l| l.push_ms).sum();
    let pull_only_ms: f64 = levels.iter().map(|l| l.pull_ms).sum();

    let mut t = Table::new(
        "§6.3 heuristic — α = β sweep vs per-level oracle (kron stand-in)",
        &["policy", "total ms", "vs oracle"],
    );
    t.row(vec![
        "oracle (per-level best)".into(),
        f(oracle_ms),
        "1.00x".into(),
    ]);
    t.row(vec![
        "push-only".into(),
        f(push_only_ms),
        format!("{:.2}x", push_only_ms / oracle_ms),
    ]);
    t.row(vec![
        "pull-only".into(),
        f(pull_only_ms),
        format!("{:.2}x", pull_only_ms / oracle_ms),
    ]);
    for alpha in [0.002, 0.005, 0.01, 0.02, 0.05] {
        let opts = BfsOpts {
            switch_threshold: alpha,
            ..BfsOpts::default()
        };
        let _ = time_bfs(&g, &sources, &opts); // warmup
        let (ms, _) = time_bfs(&g, &sources, &opts);
        t.row(vec![
            format!("heuristic α = {alpha}"),
            f(ms),
            format!("{:.2}x", ms / oracle_ms),
        ]);
    }
    t.print();
    println!(
        "paper finding: α = β = 0.01 is near-optimal on every studied graph except\n\
         i04 and the meshes (whose optimum is push-only)."
    );
    let _ = t.write_csv(&cfg.out, "heuristic_alpha_sweep");
}

/// Thread-scaling study: pull and push matvec throughput at 1/2/4/8 lanes
/// over the generator suite, printed as a table and emitted as the
/// machine-readable `BENCH_scaling.json` so the perf trajectory can be
/// tracked across commits. Results are bit-identical at every lane count
/// (size-derived chunking); only throughput moves.
fn scaling(cfg: &Config) {
    let thread_counts = [1usize, 2, 4, 8];
    let machine = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("[scaling] machine parallelism: {machine}");

    let mut t = Table::new(
        "Thread scaling — mxv throughput (MTEPS) and speedup vs 1 thread",
        &[
            "Dataset",
            "Threads",
            "pull ms",
            "pull MTEPS",
            "pull x",
            "push ms",
            "push MTEPS",
            "push x",
        ],
    );
    let mut dataset_objs: Vec<Json> = Vec::new();
    for Dataset { name, graph, .. } in suite(cfg.shrink, cfg.seed) {
        if let Some(only) = &cfg.dataset {
            if only != name {
                continue;
            }
        }
        eprintln!(
            "[scaling] {name}: {} vertices, {} edges",
            graph.n_vertices(),
            graph.n_edges()
        );
        let samples = thread_scaling_study(&graph, &thread_counts, 3, cfg.seed);
        let base = samples[0];
        let mut sample_objs: Vec<Json> = Vec::new();
        for s in &samples {
            let pull_x = base.pull_ms / s.pull_ms.max(1e-12);
            let push_x = base.push_ms / s.push_ms.max(1e-12);
            t.row(vec![
                name.to_string(),
                s.threads.to_string(),
                f(s.pull_ms),
                f(s.pull_mteps),
                format!("{pull_x:.2}x"),
                f(s.push_ms),
                f(s.push_mteps),
                format!("{push_x:.2}x"),
            ]);
            sample_objs.push(Json::Obj(vec![
                ("threads", Json::Int(s.threads as u64)),
                ("pull_ms", Json::Num(s.pull_ms)),
                ("pull_mteps", Json::Num(s.pull_mteps)),
                ("pull_speedup", Json::Num(pull_x)),
                ("push_ms", Json::Num(s.push_ms)),
                ("push_mteps", Json::Num(s.push_mteps)),
                ("push_speedup", Json::Num(push_x)),
            ]));
        }
        dataset_objs.push(Json::Obj(vec![
            ("name", Json::Str(name.to_string())),
            ("vertices", Json::Int(graph.n_vertices() as u64)),
            ("edges", Json::Int(graph.n_edges() as u64)),
            ("samples", Json::Arr(sample_objs)),
        ]));
    }
    t.print();
    println!(
        "speedups depend on the machine: lanes beyond the physical core count\n\
         add scheduling overhead, not throughput."
    );
    let _ = t.write_csv(&cfg.out, "scaling_threads");
    let doc = Json::Obj(vec![
        ("machine_parallelism", Json::Int(machine as u64)),
        (
            "thread_counts",
            Json::Arr(thread_counts.iter().map(|&t| Json::Int(t as u64)).collect()),
        ),
        ("shrink", Json::Int(u64::from(cfg.shrink))),
        ("seed", Json::Int(cfg.seed)),
        ("datasets", Json::Arr(dataset_objs)),
    ]);
    match doc.write_file(&cfg.out, "BENCH_scaling.json") {
        Ok(p) => eprintln!("[scaling] wrote {}", p.display()),
        Err(e) => eprintln!("[scaling] could not write BENCH_scaling.json: {e}"),
    }
}

/// Batched-frontier study: multi-source BFS (and batched BC) through the
/// `mxv_batch` kernels at increasing batch sizes, against `k` sequential
/// single-source runs of the same machinery, with each batch's per-source
/// push/pull switch decisions from the access counters. Emits the
/// machine-readable `BENCH_batched.json` companion artifact.
fn batched(cfg: &Config) {
    let ks = [1usize, 4, 16];
    let mut t = Table::new(
        "Batched frontiers — k-source msbfs vs k × 1-source, per-source switching",
        &[
            "Dataset",
            "k",
            "batch ms",
            "k×1 ms",
            "batch x",
            "levels",
            "push steps",
            "pull steps",
            "BC ms",
        ],
    );
    let mut dataset_objs: Vec<Json> = Vec::new();
    for Dataset { name, graph, .. } in suite(cfg.shrink, cfg.seed) {
        if let Some(only) = &cfg.dataset {
            if only != name {
                continue;
            }
        }
        eprintln!(
            "[batched] {name}: {} vertices, {} edges",
            graph.n_vertices(),
            graph.n_edges()
        );
        let samples = batched_study(&graph, &ks, 3, cfg.seed);
        let mut sample_objs: Vec<Json> = Vec::new();
        for s in &samples {
            let speedup = s.sequential_ms / s.batched_ms.max(1e-12);
            t.row(vec![
                name.to_string(),
                s.k.to_string(),
                f(s.batched_ms),
                f(s.sequential_ms),
                format!("{speedup:.2}x"),
                s.levels.to_string(),
                s.push_steps.to_string(),
                s.pull_steps.to_string(),
                f(s.bc_ms),
            ]);
            sample_objs.push(Json::Obj(vec![
                ("k", Json::Int(s.k as u64)),
                ("batched_ms", Json::Num(s.batched_ms)),
                ("sequential_ms", Json::Num(s.sequential_ms)),
                ("batch_speedup", Json::Num(speedup)),
                ("levels", Json::Int(s.levels as u64)),
                ("push_steps", Json::Int(s.push_steps)),
                ("pull_steps", Json::Int(s.pull_steps)),
                ("matrix_accesses", Json::Int(s.accesses.matrix)),
                ("vector_accesses", Json::Int(s.accesses.vector)),
                ("mask_accesses", Json::Int(s.accesses.mask)),
                ("sort_accesses", Json::Int(s.accesses.sort)),
                ("bc_ms", Json::Num(s.bc_ms)),
            ]));
        }
        dataset_objs.push(Json::Obj(vec![
            ("name", Json::Str(name.to_string())),
            ("vertices", Json::Int(graph.n_vertices() as u64)),
            ("edges", Json::Int(graph.n_edges() as u64)),
            ("samples", Json::Arr(sample_objs)),
        ]));
    }
    t.print();
    println!(
        "batch results are bit-identical to the k×1 runs (pinned by tests); the\n\
         push/pull step counts show each source switching direction independently\n\
         inside one batch step."
    );
    let _ = t.write_csv(&cfg.out, "batched_frontiers");
    let doc = Json::Obj(vec![
        (
            "batch_sizes",
            Json::Arr(ks.iter().map(|&k| Json::Int(k as u64)).collect()),
        ),
        ("shrink", Json::Int(u64::from(cfg.shrink))),
        ("seed", Json::Int(cfg.seed)),
        ("datasets", Json::Arr(dataset_objs)),
    ]);
    match doc.write_file(&cfg.out, "BENCH_batched.json") {
        Ok(p) => eprintln!("[batched] wrote {}", p.display()),
        Err(e) => eprintln!("[batched] could not write BENCH_batched.json: {e}"),
    }
}

/// Serve study: the concurrent query service replaying a seeded open-loop
/// trace at coalescing targets k ∈ {1, 4, 16}, against the same trace
/// dispatched sequentially (zero admission window). Reports queries/sec,
/// latency percentiles, batch-size histogram, and coalescing rate, plus an
/// abort probe executing the isolation claim (one expired-deadline request
/// inside a coalesced batch; siblings bit-identical to solo). Emits the
/// machine-readable `BENCH_serve.json` companion artifact.
fn serve(cfg: &Config) {
    use graphblas_bench::serve::{abort_probe, serve_study, TICK_NS};

    let n_requests = 32;
    let mut t = Table::new(
        "Serve — coalesced admission vs sequential dispatch (same trace)",
        &[
            "Dataset",
            "mix",
            "target k",
            "window",
            "coalesce %",
            "max batch",
            "qps",
            "seq qps",
            "speedup",
            "p50 ms",
            "p95 ms",
            "p99 ms",
        ],
    );
    let mut dataset_objs: Vec<Json> = Vec::new();
    for name in ["kron", "roadnet"] {
        let Some(Dataset { graph, .. }) = dataset(name, cfg.shrink, cfg.seed) else {
            continue;
        };
        if let Some(only) = &cfg.dataset {
            if only != name {
                continue;
            }
        }
        eprintln!(
            "[serve] {name}: {} vertices, {} edges, {n_requests} requests",
            graph.n_vertices(),
            graph.n_edges()
        );
        let scenarios = serve_study(&graph, cfg.seed, n_requests);
        let mut scenario_objs: Vec<Json> = Vec::new();
        for s in &scenarios {
            t.row(vec![
                name.to_string(),
                s.mix.to_string(),
                s.target_k.to_string(),
                format!("{}t", s.window_ticks),
                format!("{:.0}%", s.stats.coalescing_rate * 100.0),
                s.stats.max_batch.to_string(),
                f(s.stats.qps),
                f(s.sequential_qps),
                format!("{:.2}x", s.qps_speedup),
                f(s.stats.p50_ms),
                f(s.stats.p95_ms),
                f(s.stats.p99_ms),
            ]);
            scenario_objs.push(Json::Obj(vec![
                ("mix", Json::Str(s.mix.to_string())),
                ("target_k", Json::Int(s.target_k as u64)),
                ("window_ticks", Json::Int(s.window_ticks)),
                ("coalescing_rate", Json::Num(s.stats.coalescing_rate)),
                ("max_batch_size", Json::Int(s.stats.max_batch as u64)),
                ("max_group_size", Json::Int(s.stats.max_group as u64)),
                (
                    "batch_hist",
                    Json::Arr(
                        s.stats
                            .batch_hist
                            .iter()
                            .map(|&c| Json::Int(c as u64))
                            .collect(),
                    ),
                ),
                ("qps", Json::Num(s.stats.qps)),
                ("sequential_qps", Json::Num(s.sequential_qps)),
                ("qps_speedup", Json::Num(s.qps_speedup)),
                ("p50_ms", Json::Num(s.stats.p50_ms)),
                ("p95_ms", Json::Num(s.stats.p95_ms)),
                ("p99_ms", Json::Num(s.stats.p99_ms)),
                ("aborted", Json::Int(s.stats.aborted as u64)),
                ("retried_solo", Json::Int(s.retried as u64)),
            ]));
        }
        let probe = abort_probe(&graph, cfg.seed);
        eprintln!(
            "[serve] {name}: abort probe — typed abort: {}, siblings unchanged: {}",
            probe.aborted_typed, probe.siblings_unchanged
        );
        dataset_objs.push(Json::Obj(vec![
            ("name", Json::Str(name.to_string())),
            ("vertices", Json::Int(graph.n_vertices() as u64)),
            ("edges", Json::Int(graph.n_edges() as u64)),
            ("scenarios", Json::Arr(scenario_objs)),
            (
                "abort_probe",
                Json::Obj(vec![
                    ("aborted_typed", Json::Bool(probe.aborted_typed)),
                    ("siblings_unchanged", Json::Bool(probe.siblings_unchanged)),
                ]),
            ),
        ]));
    }
    t.print();
    println!(
        "each scenario replays the identical seeded trace; the speedup column\n\
         isolates coalesced admission against one-at-a-time dispatch of the\n\
         same queries (per-request values and counters are pinned identical\n\
         by tests/service_equivalence.rs)."
    );
    let _ = t.write_csv(&cfg.out, "serve");
    let doc = Json::Obj(vec![
        ("n_requests", Json::Int(n_requests as u64)),
        ("tick_ns", Json::Int(TICK_NS)),
        ("shrink", Json::Int(u64::from(cfg.shrink))),
        ("seed", Json::Int(cfg.seed)),
        ("datasets", Json::Arr(dataset_objs)),
    ]);
    match doc.write_file(&cfg.out, "BENCH_serve.json") {
        Ok(p) => eprintln!("[serve] wrote {}", p.display()),
        Err(e) => eprintln!("[serve] could not write BENCH_serve.json: {e}"),
    }
}

/// Storage-format study: the fixed-format arms (CSR oracle / bitmap /
/// hypersparse DCSR) against the auto planner over the generator suite,
/// with the hypersparse batched-frontier microbench where DCSR's
/// compressed row list beats CSR's O(n) `row_ptr` scan. Emits the
/// machine-readable `BENCH_formats.json` companion artifact. Results are
/// asserted bit-identical across formats before timing.
fn formats(cfg: &Config) {
    let mut t = Table::new(
        "Storage formats — per-format matvec/BFS and the hypersparse microbench",
        &[
            "Dataset",
            "Format",
            "pull ms",
            "push ms",
            "BFS ms",
            "hyper-batch ms",
            "hyper x vs csr",
        ],
    );
    let mut dataset_objs: Vec<Json> = Vec::new();
    for Dataset { name, graph, .. } in suite(cfg.shrink, cfg.seed) {
        if let Some(only) = &cfg.dataset {
            if only != name {
                continue;
            }
        }
        eprintln!(
            "[formats] {name}: {} vertices, {} edges",
            graph.n_vertices(),
            graph.n_edges()
        );
        let study = formats_study(&graph, 3, cfg.seed);
        let csr_hyper = study.arms[0].hyper_batch_ms;
        let mut arm_objs: Vec<Json> = Vec::new();
        for a in &study.arms {
            let hyper_x = csr_hyper / a.hyper_batch_ms.max(1e-12);
            t.row(vec![
                name.to_string(),
                a.format.to_string(),
                f(a.pull_ms),
                f(a.push_ms),
                f(a.bfs_ms),
                f(a.hyper_batch_ms),
                format!("{hyper_x:.2}x"),
            ]);
            arm_objs.push(Json::Obj(vec![
                ("format", Json::Str(a.format.to_string())),
                ("pull_ms", Json::Num(a.pull_ms)),
                ("push_ms", Json::Num(a.push_ms)),
                ("bfs_ms", Json::Num(a.bfs_ms)),
                ("hyper_batch_ms", Json::Num(a.hyper_batch_ms)),
                ("hyper_speedup_vs_csr", Json::Num(hyper_x)),
            ]));
        }
        t.row(vec![
            name.to_string(),
            "auto".to_string(),
            "—".into(),
            "—".into(),
            f(study.auto_bfs_ms),
            "—".into(),
            format!("{} switches", study.auto_format_switches),
        ]);
        dataset_objs.push(Json::Obj(vec![
            ("name", Json::Str(name.to_string())),
            ("vertices", Json::Int(graph.n_vertices() as u64)),
            ("edges", Json::Int(graph.n_edges() as u64)),
            ("hyper_n", Json::Int(study.hyper_n as u64)),
            (
                "hyper_nonempty_rows",
                Json::Int(study.hyper_nonempty as u64),
            ),
            ("hyper_k", Json::Int(study.hyper_k as u64)),
            ("auto_bfs_ms", Json::Num(study.auto_bfs_ms)),
            (
                "auto_format_switches",
                Json::Int(study.auto_format_switches),
            ),
            ("arms", Json::Arr(arm_objs)),
        ]));
    }
    t.print();
    println!(
        "formats are bit-identical in results and access counters (pinned by tests);\n\
         only wall clock moves. Expect dcsr to beat csr on the hypersparse\n\
         batched-frontier microbench and to trail slightly on dense workloads."
    );
    let _ = t.write_csv(&cfg.out, "formats_study");
    let doc = Json::Obj(vec![
        ("shrink", Json::Int(u64::from(cfg.shrink))),
        ("seed", Json::Int(cfg.seed)),
        ("datasets", Json::Arr(dataset_objs)),
    ]);
    match doc.write_file(&cfg.out, "BENCH_formats.json") {
        Ok(p) => eprintln!("[formats] wrote {}", p.display()),
        Err(e) => eprintln!("[formats] could not write BENCH_formats.json: {e}"),
    }
}

/// Bit-parallel kernel study: bit vs scalar boolean kernels (equivalence-
/// gated, then timed) and the measured cost model against both fixed
/// directions, on a dense "bitmap regime" graph (the word-ratio headline:
/// `bit_word_ops ≤ ⅛ · scalar edge examinations`) plus the generator
/// suite (where the bitmap may degrade — recorded, not hidden). Emits the
/// machine-readable `BENCH_bitfrontier.json` companion artifact.
fn bitfrontier(cfg: &Config) {
    let mut t = Table::new(
        "Bit-parallel kernels — word ops vs scalar examinations, cost model",
        &[
            "Dataset",
            "word ops",
            "scalar exam",
            "ratio",
            "degrades",
            "pull bit ms",
            "pull scalar ms",
            "push bit ms",
            "push scalar ms",
            "model/best",
        ],
    );
    let mut dataset_objs: Vec<Json> = Vec::new();
    let mut run = |name: &str, graph: &Graph<bool>| {
        eprintln!(
            "[bitfrontier] {name}: {} vertices, {} edges",
            graph.n_vertices(),
            graph.n_edges()
        );
        let s = bitfrontier_study(graph, 3, cfg.seed);
        t.row(vec![
            name.to_string(),
            s.bit_word_ops.to_string(),
            s.scalar_edge_examinations.to_string(),
            s.word_ratio.map_or_else(|| "n/a".to_string(), f),
            s.bitmap_degrades.to_string(),
            f(s.bit_pull_ms),
            f(s.scalar_pull_ms),
            f(s.bit_push_ms),
            f(s.scalar_push_ms),
            format!("{:.3}x", s.cost_model_vs_best),
        ]);
        dataset_objs.push(Json::Obj(vec![
            ("name", Json::Str(name.to_string())),
            ("vertices", Json::Int(graph.n_vertices() as u64)),
            ("edges", Json::Int(graph.n_edges() as u64)),
            ("bit_word_ops", Json::Int(s.bit_word_ops)),
            (
                "scalar_edge_examinations",
                Json::Int(s.scalar_edge_examinations),
            ),
            ("bit_path_engaged", Json::Bool(s.bit_path_engaged)),
            // `null` when the bit path never engaged: a literal 0 would
            // read as a perfect ratio.
            ("word_ratio", Json::Num(s.word_ratio.unwrap_or(f64::NAN))),
            ("bitmap_degrades", Json::Int(s.bitmap_degrades)),
            ("bit_pull_ms", Json::Num(s.bit_pull_ms)),
            ("scalar_pull_ms", Json::Num(s.scalar_pull_ms)),
            ("bit_push_ms", Json::Num(s.bit_push_ms)),
            ("scalar_push_ms", Json::Num(s.scalar_push_ms)),
            ("cost_model_total", Json::Int(s.cost_model_total)),
            ("push_only_total", Json::Int(s.push_only_total)),
            ("pull_only_total", Json::Int(s.pull_only_total)),
            ("cost_model_vs_best", Json::Num(s.cost_model_vs_best)),
        ]));
    };

    // The headline arm: a dense Erdős graph in the bitmap regime (avg
    // degree ≈ 256, 16 row words per vertex), where each scanned word
    // covers many edges and the ⅛ acceptance bound must hold.
    let dense = graphblas_gen::erdos::erdos_renyi(1024, 131_072, cfg.seed ^ 0xb1);
    run("dense-bitmap", &dense);
    for Dataset { name, graph, .. } in suite(cfg.shrink, cfg.seed) {
        if let Some(only) = &cfg.dataset {
            if only != name {
                continue;
            }
        }
        run(name, &graph);
    }
    t.print();
    println!(
        "bit and scalar arms are equivalence-gated (same depths, same projected\n\
         charges) before timing; the dense-bitmap row carries the ≤⅛ word-ratio\n\
         claim, and model/best ≤ 1.10 is the cost-model acceptance bound."
    );
    let _ = t.write_csv(&cfg.out, "bitfrontier_study");
    let doc = Json::Obj(vec![
        ("shrink", Json::Int(u64::from(cfg.shrink))),
        ("seed", Json::Int(cfg.seed)),
        ("datasets", Json::Arr(dataset_objs)),
    ]);
    match doc.write_file(&cfg.out, "BENCH_bitfrontier.json") {
        Ok(p) => eprintln!("[bitfrontier] wrote {}", p.display()),
        Err(e) => eprintln!("[bitfrontier] could not write BENCH_bitfrontier.json: {e}"),
    }
}

/// Sharded 2D tile execution study: cache-blocked push (stripe-local SPA
/// merges, no global merge barrier) and pull (tile-streamed) matvecs over
/// each shard grid vs the unsharded oracle, per dataset. Every arm is
/// equivalence-gated — identical values and identical charged accesses —
/// before anything is timed, so sharding can only move wall clock. Emits
/// the machine-readable `BENCH_shards.json` companion artifact.
fn shards(cfg: &Config) {
    const GRIDS: [(u32, u32); 3] = [(1, 4), (2, 4), (4, 8)];
    let mut t = Table::new(
        "Sharded tile execution — push/pull vs the unsharded oracle",
        &[
            "Dataset",
            "grid",
            "push ms",
            "base push ms",
            "pull ms",
            "base pull ms",
            "push acc",
            "base push acc",
            "merges",
            "x-stripe",
        ],
    );
    let mut dataset_objs: Vec<Json> = Vec::new();
    for Dataset { name, graph, .. } in suite(cfg.shrink, cfg.seed) {
        if let Some(only) = &cfg.dataset {
            if only != name {
                continue;
            }
        }
        eprintln!(
            "[shards] {name}: {} vertices, {} edges",
            graph.n_vertices(),
            graph.n_edges()
        );
        let s = shards_study(&graph, &GRIDS, 3, cfg.seed);
        let mut grid_objs: Vec<Json> = Vec::new();
        for arm in &s.arms {
            t.row(vec![
                name.to_string(),
                format!("{}x{}", arm.grid.0, arm.grid.1),
                f(arm.push_ms),
                f(s.unsharded_push_ms),
                f(arm.pull_ms),
                f(s.unsharded_pull_ms),
                arm.push_total.to_string(),
                s.unsharded_push_total.to_string(),
                arm.shard_merges.to_string(),
                arm.cross_shard_writes.to_string(),
            ]);
            grid_objs.push(Json::Obj(vec![
                ("grid_rows", Json::Int(u64::from(arm.grid.0))),
                ("grid_cols", Json::Int(u64::from(arm.grid.1))),
                ("push_ms", Json::Num(arm.push_ms)),
                ("pull_ms", Json::Num(arm.pull_ms)),
                ("push_total", Json::Int(arm.push_total)),
                ("pull_total", Json::Int(arm.pull_total)),
                ("shard_merges", Json::Int(arm.shard_merges)),
                ("cross_shard_writes", Json::Int(arm.cross_shard_writes)),
            ]));
        }
        dataset_objs.push(Json::Obj(vec![
            ("name", Json::Str(name.to_string())),
            ("vertices", Json::Int(graph.n_vertices() as u64)),
            ("edges", Json::Int(graph.n_edges() as u64)),
            ("unsharded_push_ms", Json::Num(s.unsharded_push_ms)),
            ("unsharded_pull_ms", Json::Num(s.unsharded_pull_ms)),
            ("unsharded_push_total", Json::Int(s.unsharded_push_total)),
            ("unsharded_pull_total", Json::Int(s.unsharded_pull_total)),
            ("grids", Json::Arr(grid_objs)),
        ]));
    }
    t.print();
    println!(
        "every sharded arm is equivalence-gated against the unsharded oracle\n\
         (identical values, identical charged accesses) before timing; merges\n\
         and x-stripe are telemetry outside the charged total, so `push acc`\n\
         never exceeds `base push acc` by construction."
    );
    let _ = t.write_csv(&cfg.out, "shards_study");
    let doc = Json::Obj(vec![
        ("shrink", Json::Int(u64::from(cfg.shrink))),
        ("seed", Json::Int(cfg.seed)),
        ("datasets", Json::Arr(dataset_objs)),
    ]);
    match doc.write_file(&cfg.out, "BENCH_shards.json") {
        Ok(p) => eprintln!("[shards] wrote {}", p.display()),
        Err(e) => eprintln!("[shards] could not write BENCH_shards.json: {e}"),
    }
}

/// Chaos study (§robustness): drive every injected fault class — deadline
/// expiry, work-budget exhaustion, bytes-budget degrade, fail-Nth
/// allocation, panic-in-Kth-chunk, cost-model inflation — through the
/// guarded BFS entry point at 1/2/8 lanes, asserting typed-error survival
/// and bit-identical post-fault recovery. Emits `BENCH_chaos.json` and
/// exits non-zero if any scenario fails either contract.
#[cfg(feature = "fault-injection")]
fn chaos(cfg: &Config) {
    use graphblas_bench::chaos::chaos_study;
    let thread_counts = [1usize, 2, 8];
    let mut t = Table::new(
        "Chaos — injected faults: typed survival and bit-identical recovery",
        &[
            "Dataset",
            "Fault",
            "Threads",
            "Observed",
            "Survived",
            "Recovered",
            "limit degrades",
        ],
    );
    let mut dataset_objs: Vec<Json> = Vec::new();
    let mut failures = 0usize;
    // One scale-free and one mesh stand-in keep the suite fast while
    // covering both traversal regimes (pull-heavy and push-only).
    for name in ["kron", "roadnet"] {
        if let Some(only) = &cfg.dataset {
            if only != name {
                continue;
            }
        }
        let graph = dataset(name, cfg.shrink, cfg.seed)
            .expect("known dataset")
            .graph;
        eprintln!(
            "[chaos] {name}: {} vertices, {} edges",
            graph.n_vertices(),
            graph.n_edges()
        );
        let source = random_sources(&graph, 1, cfg.seed ^ 0xc4a05)[0];
        let outcomes = chaos_study(&graph, source, cfg.seed, &thread_counts);
        let mut outcome_objs: Vec<Json> = Vec::new();
        for o in &outcomes {
            if !(o.survived && o.recovered) {
                failures += 1;
            }
            t.row(vec![
                name.to_string(),
                o.fault.name().to_string(),
                o.threads.to_string(),
                o.observed.clone(),
                o.survived.to_string(),
                o.recovered.to_string(),
                o.limit_degrades.to_string(),
            ]);
            outcome_objs.push(Json::Obj(vec![
                ("fault", Json::Str(o.fault.name().to_string())),
                ("threads", Json::Int(o.threads as u64)),
                ("observed", Json::Str(o.observed.clone())),
                ("survived", Json::Str(o.survived.to_string())),
                ("recovered", Json::Str(o.recovered.to_string())),
                ("limit_degrades", Json::Int(o.limit_degrades)),
            ]));
        }
        dataset_objs.push(Json::Obj(vec![
            ("name", Json::Str(name.to_string())),
            ("vertices", Json::Int(graph.n_vertices() as u64)),
            ("edges", Json::Int(graph.n_edges() as u64)),
            ("source", Json::Int(u64::from(source))),
            ("outcomes", Json::Arr(outcome_objs)),
        ]));
    }
    t.print();
    println!(
        "every fault class must surface as its typed GrbError (or a recorded\n\
         graceful degrade) and every post-fault retry must be bit-identical —\n\
         depths and counter snapshot — to the uninterrupted run."
    );
    let _ = t.write_csv(&cfg.out, "chaos_study");
    let doc = Json::Obj(vec![
        (
            "thread_counts",
            Json::Arr(thread_counts.iter().map(|&t| Json::Int(t as u64)).collect()),
        ),
        ("shrink", Json::Int(u64::from(cfg.shrink))),
        ("seed", Json::Int(cfg.seed)),
        ("datasets", Json::Arr(dataset_objs)),
    ]);
    match doc.write_file(&cfg.out, "BENCH_chaos.json") {
        Ok(p) => eprintln!("[chaos] wrote {}", p.display()),
        Err(e) => eprintln!("[chaos] could not write BENCH_chaos.json: {e}"),
    }
    if failures > 0 {
        eprintln!("[chaos] {failures} scenario(s) failed survival/recovery");
        std::process::exit(1);
    }
}

/// Without the `fault-injection` feature there are no chaos hooks to arm;
/// explain how to get them instead of silently doing nothing.
#[cfg(not(feature = "fault-injection"))]
fn chaos(_cfg: &Config) {
    eprintln!(
        "the chaos study needs the injection hooks compiled in:\n    \
         cargo run --release -p graphblas_bench --features fault-injection -- chaos"
    );
    std::process::exit(2);
}

/// Cross-validation gate: every engine and every BFS optimization
/// configuration against the serial oracle on every dataset — the check
/// Figure 7 runs per-dataset, factored out so it can be run alone (and in
/// CI) without the timing cost.
fn validate(cfg: &Config) {
    let engines = figure7_lineup();
    let mut checks = 0usize;
    for Dataset { name, graph, .. } in suite(cfg.shrink.max(8), cfg.seed) {
        let sources = random_sources(&graph, 2, cfg.seed ^ 0x7a11);
        for &s in &sources {
            let oracle = graphblas_baselines::textbook::bfs_serial(&graph, s);
            for engine in &engines {
                assert_eq!(
                    engine.bfs(&graph, s),
                    oracle,
                    "{} wrong on {name} from {s}",
                    engine.name()
                );
                checks += 1;
            }
            for (rung, opts) in BfsOpts::ladder() {
                assert_eq!(
                    bfs_with_opts(&graph, s, &opts, None).depths,
                    oracle,
                    "ladder rung `{rung}` wrong on {name} from {s}"
                );
                checks += 1;
            }
        }
        eprintln!("[validate] {name} ok");
    }
    println!("validate: {checks} engine/config × dataset × source checks passed");
}
