//! Table rendering and CSV output for the experiment harness.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple column-aligned table that prints like the paper's tables and
/// can also be dumped as CSV next to the printed form.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Write as CSV under `dir/<slug>.csv`; returns the path.
    pub fn write_csv(&self, dir: &Path, slug: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{slug}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Minimal JSON value for machine-readable bench artifacts
/// (`BENCH_scaling.json` and friends). No serializer crate is available
/// offline; this covers exactly the shapes the bench suite emits.
#[derive(Debug, Clone)]
pub enum Json {
    /// A number (non-finite values serialize as `null`).
    Num(f64),
    /// An integer, kept exact (no float round-trip).
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped minimally: quotes and backslashes).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Render with two-space indentation.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(x) => out.push_str(&x.to_string()),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        // RFC 8259: all other control characters must be
                        // \u-escaped or strict parsers reject the document.
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    out.push_str(&format!("\"{k}\": "));
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }

    /// Write to `dir/<file_name>` (creating `dir`); returns the path.
    pub fn write_file(&self, dir: &Path, file_name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(file_name);
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.render())?;
        Ok(path)
    }
}

/// Format a float with a sensible width for tables.
#[must_use]
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip_csv() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["2".into(), "y".into()]);
        let dir = std::env::temp_dir().join("pp_report_test");
        let path = t.write_csv(&dir, "demo").expect("writes");
        let text = std::fs::read_to_string(path).expect("reads");
        assert_eq!(text, "a,b\n1,x\n2,y\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_enforced() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn json_renders_and_writes() {
        let doc = Json::Obj(vec![
            ("name", Json::Str("kron \"half\"".into())),
            ("threads", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("speedup", Json::Num(1.5)),
            ("bad", Json::Num(f64::NAN)),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"kron \\\"half\\\"\""));
        assert!(text.contains("\"speedup\": 1.5"));
        assert!(text.contains("\"bad\": null"));
        assert!(text.contains("\"empty\": []"));
        let dir = std::env::temp_dir().join("pp_report_json_test");
        let path = doc.write_file(&dir, "t.json").expect("writes");
        let back = std::fs::read_to_string(path).expect("reads");
        assert_eq!(back.trim_end(), text);
    }

    #[test]
    fn float_formatting_bands() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(42.42), "42.4");
        assert_eq!(f(1.5), "1.500");
        assert_eq!(f(0.0001234), "1.23e-4");
    }
}
