//! "This work" wrapped as a [`BfsEngine`], plus the full Figure 7 lineup.

use graphblas_algo::bfs::{bfs_with_opts, BfsOpts};
use graphblas_baselines::{all_engines, BfsEngine};
use graphblas_matrix::{Graph, VertexId};

/// The paper's system: DOBFS with all five optimizations.
pub struct ThisWork;

impl BfsEngine for ThisWork {
    fn name(&self) -> &'static str {
        "This Work"
    }
    fn bfs(&self, g: &Graph<bool>, source: VertexId) -> Vec<i32> {
        bfs_with_opts(g, source, &BfsOpts::default(), None).depths
    }
}

/// The Figure 7 lineup: five comparators then this work, in paper column
/// order (SuiteSparse, CuSha, Baseline, Ligra, Gunrock, This Work).
#[must_use]
pub fn figure7_lineup() -> Vec<Box<dyn BfsEngine>> {
    let mut engines = all_engines();
    engines.push(Box::new(ThisWork));
    engines
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_baselines::textbook::bfs_serial;
    use graphblas_gen::rmat::{rmat, RmatParams};

    #[test]
    fn lineup_order_matches_paper() {
        let names: Vec<&str> = figure7_lineup().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "SuiteSparse-like",
                "CuSha-like",
                "Baseline",
                "Ligra-like",
                "Gunrock-like",
                "This Work"
            ]
        );
    }

    #[test]
    fn this_work_matches_oracle() {
        let g = rmat(10, 8, RmatParams::default(), 44);
        assert_eq!(ThisWork.bfs(&g, 0), bfs_serial(&g, 0));
    }
}
