//! The experiment implementations behind each table/figure, shared by the
//! `paper` binary and the criterion benches.

use crate::{median, time_ms};
use graphblas_algo::bfs::{bfs_with_opts, BfsOpts};
use graphblas_core::descriptor::{Descriptor, Direction};
use graphblas_core::mask::Mask;
use graphblas_core::mxv;
use graphblas_core::ops::BoolOrAnd;
use graphblas_core::vector::{DenseVector, Vector};
use graphblas_matrix::{Graph, StorageFormat, VertexId};
use graphblas_primitives::counters::{AccessCounters, CounterSnapshot};
use graphblas_primitives::BitVec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Draw `k` distinct vertex ids, sorted.
#[must_use]
pub fn random_ids(n: usize, k: usize, rng: &mut StdRng) -> Vec<VertexId> {
    let k = k.min(n);
    // Partial Fisher-Yates over an index pool for small k; full shuffle
    // when k is a large fraction.
    let mut ids: Vec<VertexId> = if k * 3 >= n {
        let mut all: Vec<VertexId> = (0..n as VertexId).collect();
        all.shuffle(rng);
        all.truncate(k);
        all
    } else {
        let mut set = std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let v = rng.gen_range(0..n) as VertexId;
            if set.insert(v) {
                out.push(v);
            }
        }
        out
    };
    ids.sort_unstable();
    ids
}

/// One measurement of the four matvec variants at a given vector/mask size.
#[derive(Clone, Copy, Debug)]
pub struct VariantSample {
    /// nnz of the input vector (col variants) or of the mask (row-masked).
    pub nnz: usize,
    /// Wall time, ms.
    pub row_ms: f64,
    pub row_masked_ms: f64,
    pub col_ms: f64,
    pub col_masked_ms: f64,
    /// Matrix access counts from the instrumented kernels.
    pub row_accesses: CounterSnapshot,
    pub row_masked_accesses: CounterSnapshot,
    pub col_accesses: CounterSnapshot,
    pub col_masked_accesses: CounterSnapshot,
}

/// The Figure 2 / Table 1 microbenchmark: random vectors and masks of
/// increasing nnz against one matrix, measuring all four variants.
///
/// Protocol follows §3.2: (1) row-based sweeps nnz(f) with no mask (its
/// cost must stay flat); (2) row-based masked fixes nnz(f) = M and sweeps
/// nnz(m); (3) column-based sweeps nnz(f); (4) column-based masked sweeps
/// nnz(f) with the mask at ⅔·nnz(f). Early-exit is disabled — these are
/// *random* vectors, the pure cost-model study.
#[must_use]
pub fn matvec_variant_sweep(
    g: &Graph<bool>,
    sweep: &[usize],
    repeats: usize,
    seed: u64,
) -> Vec<VariantSample> {
    let n = g.n_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let desc_pull = Descriptor::new()
        .transpose(true)
        .force(Direction::Pull)
        .early_exit(false);
    let desc_push = Descriptor::new().transpose(true).force(Direction::Push);

    // Full dense input for the row-masked variant (nnz(f) = M).
    let full: Vector<bool> = {
        let mut v = Vector::from_sparse(n, false, (0..n as VertexId).collect(), vec![true; n]);
        v.make_dense();
        v
    };

    sweep
        .iter()
        .map(|&k| {
            let k = k.min(n);
            let ids = random_ids(n, k, &mut rng);
            let sparse_f = Vector::from_sparse(n, false, ids.clone(), vec![true; ids.len()]);
            let mut dense_f = sparse_f.clone();
            dense_f.make_dense();
            let mask_bits = {
                let mut b = BitVec::new(n);
                for &i in &ids {
                    b.set(i as usize);
                }
                b
            };
            let mask_list = ids.clone();
            // Column-masked protocol: mask at ⅔ of nnz(f).
            let col_mask_bits = {
                let mut b = BitVec::new(n);
                for &i in ids.iter().take(k * 2 / 3) {
                    b.set(i as usize);
                }
                b
            };

            let run = |f: &dyn Fn(Option<&AccessCounters>)| -> (f64, CounterSnapshot) {
                // Counted pass (once), then timed passes without counters.
                let c = AccessCounters::new();
                f(Some(&c));
                let times: Vec<f64> = (0..repeats).map(|_| time_ms(|| f(None)).1).collect();
                (median(&times), c.snapshot())
            };

            let (row_ms, row_accesses) = run(&|c| {
                let _: Vector<bool> =
                    mxv(None, BoolOrAnd, g, &dense_f, &desc_pull, c).expect("dims");
            });
            let (row_masked_ms, row_masked_accesses) = run(&|c| {
                let mask = Mask::new(&mask_bits).with_active_list(&mask_list);
                let _: Vector<bool> =
                    mxv(Some(&mask), BoolOrAnd, g, &full, &desc_pull, c).expect("dims");
            });
            let (col_ms, col_accesses) = run(&|c| {
                let _: Vector<bool> =
                    mxv(None, BoolOrAnd, g, &sparse_f, &desc_push, c).expect("dims");
            });
            let (col_masked_ms, col_masked_accesses) = run(&|c| {
                let mask = Mask::new(&col_mask_bits);
                let _: Vector<bool> =
                    mxv(Some(&mask), BoolOrAnd, g, &sparse_f, &desc_push, c).expect("dims");
            });

            VariantSample {
                nnz: k,
                row_ms,
                row_masked_ms,
                col_ms,
                col_masked_ms,
                row_accesses,
                row_masked_accesses,
                col_accesses,
                col_masked_accesses,
            }
        })
        .collect()
}

/// One BFS level with both directions timed on identical state (Figure 5b,
/// and the oracle for the §6.3 heuristic study).
#[derive(Clone, Copy, Debug)]
pub struct LevelTiming {
    pub level: usize,
    pub frontier_nnz: usize,
    pub unvisited: usize,
    pub push_ms: f64,
    pub pull_ms: f64,
}

/// Replay a BFS from `source`, timing the push kernel and the pull kernel
/// at every level on the same traversal state.
#[must_use]
pub fn per_level_study(g: &Graph<bool>, source: VertexId, repeats: usize) -> Vec<LevelTiming> {
    let n = g.n_vertices();
    let mut visited = BitVec::new(n);
    visited.set(source as usize);
    let mut unvisited_list: Vec<VertexId> = (0..n as VertexId).filter(|&v| v != source).collect();
    let mut frontier = Vector::singleton(n, false, source, true);
    let desc_push = Descriptor::new().transpose(true).force(Direction::Push);
    let desc_pull = Descriptor::new().transpose(true).force(Direction::Pull);
    let mut out = Vec::new();
    let mut level = 0usize;

    loop {
        level += 1;
        let frontier_nnz = frontier.nnz();
        let unvisited = unvisited_list.len();

        // Timed pull (masked row with early exit + active list).
        let mut dense_f = frontier.clone();
        dense_f.make_dense();
        let pull_times: Vec<f64> = (0..repeats)
            .map(|_| {
                time_ms(|| {
                    let mask = Mask::complement(&visited).with_active_list(&unvisited_list);
                    let w: Vector<bool> =
                        mxv(Some(&mask), BoolOrAnd, g, &dense_f, &desc_pull, None).expect("dims");
                    w
                })
                .1
            })
            .collect();

        // Timed push (masked column), also used to advance the state.
        let mut sparse_f = frontier.clone();
        sparse_f.make_sparse();
        let mut next = None;
        let push_times: Vec<f64> = (0..repeats)
            .map(|_| {
                let (w, ms) = time_ms(|| {
                    let mask = Mask::complement(&visited);
                    let w: Vector<bool> =
                        mxv(Some(&mask), BoolOrAnd, g, &sparse_f, &desc_push, None).expect("dims");
                    w
                });
                next = Some(w);
                ms
            })
            .collect();
        let next = next.expect("at least one repeat");

        out.push(LevelTiming {
            level,
            frontier_nnz,
            unvisited,
            push_ms: median(&push_times),
            pull_ms: median(&pull_times),
        });

        if next.nnz() == 0 {
            break;
        }
        for (i, _) in next.iter_explicit() {
            visited.set(i as usize);
        }
        unvisited_list.retain(|&v| !visited.get(v as usize));
        frontier = next;
    }
    out
}

/// One thread-count sample of the scaling study: median kernel times and
/// edge throughputs for the pull (row, dense input) and push (column,
/// sparse input) matvec at a given lane count.
#[derive(Clone, Copy, Debug)]
pub struct ScalingSample {
    /// Lane count the kernels ran with.
    pub threads: usize,
    /// Median wall time of the unmasked pull matvec (dense input), ms.
    pub pull_ms: f64,
    /// Median wall time of the unmasked push matvec (sparse frontier), ms.
    pub push_ms: f64,
    /// Pull edge throughput, millions of traversed edges per second.
    pub pull_mteps: f64,
    /// Push edge throughput, MTEPS.
    pub push_mteps: f64,
}

/// The fixed workload both the thread-scaling study and the
/// `scaling_threads` criterion bench measure — one definition so the table,
/// the JSON artifact, and the bench can never drift onto different regimes.
pub struct ScalingInputs {
    /// Full dense input for the pull (row) kernel: touches every edge.
    pub dense_f: Vector<bool>,
    /// Random sparse frontier of `n / 20` vertices — a mid-BFS regime.
    pub sparse_f: Vector<bool>,
    /// Edges the push kernel expands (sum of frontier out-degrees).
    pub frontier_edges: usize,
    /// Edges the pull kernel touches (`nnz(A)`).
    pub pull_edges: usize,
    /// Row-kernel descriptor (transposed, early-exit off: pure throughput).
    pub desc_pull: Descriptor,
    /// Column-kernel descriptor (transposed).
    pub desc_push: Descriptor,
}

/// Build the scaling workload for `g` (deterministic in `seed`).
#[must_use]
pub fn scaling_inputs(g: &Graph<bool>, seed: u64) -> ScalingInputs {
    let n = g.n_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let dense_f = Vector::Dense(DenseVector::from_values(vec![true; n], false));
    let ids = random_ids(n, (n / 20).max(1), &mut rng);
    let frontier_edges: usize = ids.iter().map(|&v| g.csr_t().degree(v as usize)).sum();
    let sparse_f = Vector::from_sparse(n, false, ids.clone(), vec![true; ids.len()]);
    ScalingInputs {
        dense_f,
        sparse_f,
        frontier_edges,
        pull_edges: g.n_edges(),
        desc_pull: Descriptor::new()
            .transpose(true)
            .force(Direction::Pull)
            .early_exit(false),
        desc_push: Descriptor::new().transpose(true).force(Direction::Push),
    }
}

/// Measure pull and push matvec throughput at each lane count in
/// `thread_counts` (via `rayon::with_num_threads`, the same override
/// `PUSH_PULL_THREADS` sets process-wide).
///
/// The workload is [`scaling_inputs`]. Because chunk layouts are
/// size-derived, every lane count computes the identical result; only the
/// wall clock moves.
#[must_use]
pub fn thread_scaling_study(
    g: &Graph<bool>,
    thread_counts: &[usize],
    repeats: usize,
    seed: u64,
) -> Vec<ScalingSample> {
    let ScalingInputs {
        dense_f,
        sparse_f,
        frontier_edges,
        pull_edges,
        desc_pull,
        desc_push,
    } = scaling_inputs(g, seed);

    thread_counts
        .iter()
        .map(|&threads| {
            rayon::with_num_threads(threads, || {
                let time_median = |f: &dyn Fn()| -> f64 {
                    f(); // warm-up (also first-touch of pool workers)
                    let times: Vec<f64> = (0..repeats.max(1)).map(|_| time_ms(f).1).collect();
                    median(&times)
                };
                let pull_ms = time_median(&|| {
                    let w: Vector<bool> =
                        mxv(None, BoolOrAnd, g, &dense_f, &desc_pull, None).expect("dims");
                    std::hint::black_box(w);
                });
                let push_ms = time_median(&|| {
                    let w: Vector<bool> =
                        mxv(None, BoolOrAnd, g, &sparse_f, &desc_push, None).expect("dims");
                    std::hint::black_box(w);
                });
                ScalingSample {
                    threads,
                    pull_ms,
                    push_ms,
                    pull_mteps: crate::mteps(pull_edges, pull_ms),
                    push_mteps: crate::mteps(frontier_edges, push_ms),
                }
            })
        })
        .collect()
}

/// One batch-size sample of the batched-traversal study: wall time of one
/// `k`-source batched BFS vs `k` independent single-source runs through
/// the same kernels, plus the batch's access profile and its per-source
/// push/pull switch decisions.
#[derive(Clone, Copy, Debug)]
pub struct BatchedSample {
    /// Sources in the batch.
    pub k: usize,
    /// Median wall time of the batched run, ms.
    pub batched_ms: f64,
    /// Median wall time of `k` sequential single-source runs, ms.
    pub sequential_ms: f64,
    /// Levels the batch executed (max over sources).
    pub levels: usize,
    /// Matvec steps the batch resolved to push (column kernel).
    pub push_steps: u64,
    /// Matvec steps the batch resolved to pull (row kernel).
    pub pull_steps: u64,
    /// Full access profile of one counted batched run.
    pub accesses: CounterSnapshot,
    /// Median wall time of batched Brandes BC on the same sources, ms.
    pub bc_ms: f64,
}

/// The batched-frontier study: for each batch size in `ks`, run the
/// multi-source BFS (and batched BC) from `k` random sources, once counted
/// and `repeats` times timed, against `k` sequential single-source runs of
/// the *same* batched machinery — so the delta is pure batching (shared
/// `(source, chunk)` grid occupancy), not a kernel change. Because batch
/// results are bit-identical to the sequential runs, only wall clock and
/// lane occupancy can differ.
#[must_use]
pub fn batched_study(
    g: &Graph<bool>,
    ks: &[usize],
    repeats: usize,
    seed: u64,
) -> Vec<BatchedSample> {
    use graphblas_algo::bc::betweenness;
    use graphblas_algo::msbfs::{multi_source_bfs_with_opts, MsBfsOpts};

    let opts = MsBfsOpts::default();
    ks.iter()
        .map(|&k| {
            let sources = random_sources(g, k.max(1), seed ^ (k as u64).wrapping_mul(0x9e37));
            // Counted pass (once), then timed passes without counters.
            let c = AccessCounters::new();
            let counted = multi_source_bfs_with_opts(g, &sources, &opts, Some(&c));
            let snapshot = c.snapshot();

            let time_median = |f: &dyn Fn()| -> f64 {
                let times: Vec<f64> = (0..repeats.max(1)).map(|_| time_ms(f).1).collect();
                median(&times)
            };
            let batched_ms = time_median(&|| {
                std::hint::black_box(multi_source_bfs_with_opts(g, &sources, &opts, None));
            });
            let sequential_ms = time_median(&|| {
                for &s in &sources {
                    std::hint::black_box(multi_source_bfs_with_opts(g, &[s], &opts, None));
                }
            });
            let bc_ms = time_median(&|| {
                std::hint::black_box(betweenness(g, &sources));
            });

            BatchedSample {
                k: sources.len(),
                batched_ms,
                sequential_ms,
                levels: counted.levels,
                push_steps: snapshot.push_steps,
                pull_steps: snapshot.pull_steps,
                accesses: snapshot,
                bc_ms,
            }
        })
        .collect()
}

/// One per-format arm of the storage-format study.
#[derive(Clone, Copy, Debug)]
pub struct FormatArm {
    /// The storage format this arm forced.
    pub format: StorageFormat,
    /// Median unmasked pull matvec on the standard workload, ms.
    pub pull_ms: f64,
    /// Median push matvec on the standard workload, ms.
    pub push_ms: f64,
    /// Median full direction-optimized BFS under `FormatPolicy::fixed`, ms.
    pub bfs_ms: f64,
    /// Median hypersparse batched-frontier microbench (k dense frontiers
    /// pulled through a mostly-empty-row operand), ms — the regime where
    /// DCSR's compressed row list beats CSR's O(n) `row_ptr` scan.
    pub hyper_batch_ms: f64,
}

/// Result of the storage-format study: one arm per fixed format plus the
/// auto-planner run.
#[derive(Clone, Debug)]
pub struct FormatsStudy {
    /// One arm per [`StorageFormat`], in [`StorageFormat::all`] order.
    pub arms: Vec<FormatArm>,
    /// Median BFS under the auto planner (`FormatPolicy::auto`), ms.
    pub auto_bfs_ms: f64,
    /// Format switches the auto planner charged across one counted BFS.
    pub auto_format_switches: u64,
    /// Vertex count of the hypersparse microbench graph.
    pub hyper_n: usize,
    /// Non-empty rows of the hypersparse operand.
    pub hyper_nonempty: usize,
    /// Batch size of the hypersparse microbench.
    pub hyper_k: usize,
}

/// Embed a small graph's edges into a `stride`× larger vertex space
/// (vertex `v` ↦ `v · stride`), producing a hypersparse operand: only
/// `1/stride` of rows are non-empty — the batched-frontier regime where a
/// k-source traversal's operand slice leaves most of `row_ptr` dead.
#[must_use]
pub fn hypersparse_embed(g: &Graph<bool>, stride: usize) -> Graph<bool> {
    let n = g.n_vertices() * stride;
    let mut coo = graphblas_matrix::Coo::new(n, n);
    let a = g.csr();
    for u in 0..g.n_vertices() {
        for &v in a.row(u) {
            coo.push((u * stride) as u32, (v as usize * stride) as u32, true);
        }
    }
    Graph::from_coo(&coo)
}

/// The storage-format study: the fixed-format arms (CSR oracle, bitmap,
/// hypersparse DCSR) each run the standard pull/push matvec workload, a
/// full direction-optimized BFS, and the hypersparse batched-frontier
/// microbench; the auto planner runs the BFS once more with counted
/// `format_switches`. Results are asserted bit-identical across arms
/// before anything is timed — formats may only move wall clock.
#[must_use]
pub fn formats_study(g: &Graph<bool>, repeats: usize, seed: u64) -> FormatsStudy {
    use graphblas_core::{mxv_batch, FormatPolicy, MultiVector, StorageFormat};

    let ScalingInputs {
        dense_f,
        sparse_f,
        desc_pull,
        desc_push,
        ..
    } = scaling_inputs(g, seed);
    let sources = random_sources(g, 1, seed ^ 0xf0);

    // Hypersparse microbench operand: embed a small slice of the workload
    // graph at stride 64 (≈1.6 % row occupancy) and pull k dense
    // frontiers through it — unmasked row kernel, the face whose full
    // scan DCSR compresses.
    let stride = 64usize;
    let base = sub_graph(g, (g.n_vertices() / stride).clamp(64, 1024), seed);
    let hyper = hypersparse_embed(&base, stride);
    let hyper_n = hyper.n_vertices();
    let hyper_k = 8usize;
    let hyper_batch = MultiVector::from_rows(
        (0..hyper_k)
            .map(|_| Vector::Dense(DenseVector::from_values(vec![true; hyper_n], false)))
            .collect(),
    );
    let hyper_desc = Descriptor::new().transpose(true).force(Direction::Pull);

    let time_median = |f: &dyn Fn()| -> f64 {
        f(); // warm-up (also pays any one-time format conversion)
        let times: Vec<f64> = (0..repeats.max(1)).map(|_| time_ms(f).1).collect();
        median(&times)
    };

    // Correctness gate before timing: every fixed format and the auto
    // planner must reproduce the CSR oracle's BFS bit-for-bit.
    let oracle = bfs_with_opts(
        g,
        sources[0],
        &BfsOpts::default().format(FormatPolicy::fixed(StorageFormat::Csr)),
        None,
    )
    .depths;
    for format in StorageFormat::all() {
        let got = bfs_with_opts(
            g,
            sources[0],
            &BfsOpts::default().format(FormatPolicy::fixed(format)),
            None,
        );
        assert_eq!(got.depths, oracle, "{format} must match the CSR oracle");
    }

    let arms = StorageFormat::all()
        .into_iter()
        .map(|format| {
            let desc_pull = desc_pull.force_format(format);
            let desc_push = desc_push.force_format(format);
            let hyper_desc = hyper_desc.force_format(format);
            let bfs_opts = BfsOpts::default().format(FormatPolicy::fixed(format));
            let pull_ms = time_median(&|| {
                let w: Vector<bool> =
                    mxv(None, BoolOrAnd, g, &dense_f, &desc_pull, None).expect("dims");
                std::hint::black_box(w);
            });
            let push_ms = time_median(&|| {
                let w: Vector<bool> =
                    mxv(None, BoolOrAnd, g, &sparse_f, &desc_push, None).expect("dims");
                std::hint::black_box(w);
            });
            let bfs_ms = time_median(&|| {
                std::hint::black_box(bfs_with_opts(g, sources[0], &bfs_opts, None));
            });
            let hyper_batch_ms = time_median(&|| {
                let out: graphblas_core::MultiVector<bool> = mxv_batch(
                    None,
                    BoolOrAnd,
                    &hyper,
                    &hyper_batch,
                    &hyper_desc,
                    None,
                    None,
                )
                .expect("dims");
                std::hint::black_box(out);
            });
            FormatArm {
                format,
                pull_ms,
                push_ms,
                bfs_ms,
                hyper_batch_ms,
            }
        })
        .collect();

    // Auto-planner arm: timed BFS plus one counted run for the switches.
    let auto_opts = BfsOpts::default().format(FormatPolicy::auto());
    let auto_bfs_ms = time_median(&|| {
        std::hint::black_box(bfs_with_opts(g, sources[0], &auto_opts, None));
    });
    let c = AccessCounters::new();
    let auto = bfs_with_opts(g, sources[0], &auto_opts, Some(&c));
    assert_eq!(
        auto.depths, oracle,
        "auto planner must match the CSR oracle"
    );

    FormatsStudy {
        arms,
        auto_bfs_ms,
        auto_format_switches: c.snapshot().format_switches,
        hyper_n,
        hyper_nonempty: hyper.nonempty_rows(true),
        hyper_k,
    }
}

/// Result of the bit-parallel kernel study on one graph.
#[derive(Clone, Copy, Debug)]
pub struct BitFrontierSample {
    /// u64 word operations the bit kernels charged across one counted
    /// pull-only BFS over the bitmap store.
    pub bit_word_ops: u64,
    /// Per-edge examinations (matrix accesses) the scalar oracle charged on
    /// the identical run — the denominator of the ≥8× word-parallel claim.
    pub scalar_edge_examinations: u64,
    /// Whether the bit path actually ran (`bit_word_ops > 0`). When false,
    /// the "bit" arm executed the scalar kernels end to end and no word
    /// ratio exists.
    pub bit_path_engaged: bool,
    /// `bit_word_ops / scalar_edge_examinations`: ≤ 0.125 in the bitmap
    /// regime, where each scanned row word covers many explicit edges.
    /// `None` when the bit path never engaged — reporting 0 here used to
    /// masquerade as a perfect ratio in BENCH_bitfrontier.json.
    pub word_ratio: Option<f64>,
    /// Times a forced-Bitmap request silently degraded to CSR during the
    /// pull arms (0 in the bitmap regime; honest on graphs past the bitmap
    /// feasibility bound, where the "bit" arm is really the scalar path).
    pub bitmap_degrades: u64,
    /// Median wall time of the pull-only BFS with bit kernels on, ms.
    pub bit_pull_ms: f64,
    /// Median wall time of the same pull-only BFS, scalar kernels, ms.
    pub scalar_pull_ms: f64,
    /// Median wall time of the push-only BFS with bit kernels on, ms.
    pub bit_push_ms: f64,
    /// Median wall time of the same push-only BFS, scalar kernels, ms.
    pub scalar_push_ms: f64,
    /// Charged accesses (`accesses_only().total()`) of a full BFS under the
    /// measured cost model.
    pub cost_model_total: u64,
    /// Same, pinned push-only.
    pub push_only_total: u64,
    /// Same, pinned pull-only.
    pub pull_only_total: u64,
    /// `cost_model_total / min(push_only_total, pull_only_total)` — the
    /// acceptance bound is ≤ 1.1 (never lose to the best fixed direction
    /// by more than 10%).
    pub cost_model_vs_best: f64,
}

/// The bit-parallel kernel study: one pull-only BFS over the bitmap store
/// with the bit kernels on and off (equivalence-gated: depths and projected
/// charges must match exactly before anything is timed), one push-only pair
/// the same way, and the measured cost model's charged accesses against
/// both fixed directions. The word-ratio headline belongs to a dense
/// "bitmap regime" graph — on sparse suite graphs the bitmap either
/// degrades (recorded) or scans mostly-empty words (ratio reported
/// honestly, above the ⅛ bound).
#[must_use]
pub fn bitfrontier_study(g: &Graph<bool>, repeats: usize, seed: u64) -> BitFrontierSample {
    use graphblas_core::FormatPolicy;

    let source = random_sources(g, 1, seed ^ 0xb17)[0];
    let pull_opts = |bit: bool| {
        BfsOpts::default()
            .forced(Direction::Pull)
            .format(FormatPolicy::fixed(StorageFormat::Bitmap))
            .bit_kernels(bit)
    };
    let push_opts = |bit: bool| BfsOpts::default().forced(Direction::Push).bit_kernels(bit);

    let count = |opts: &BfsOpts| {
        let c = AccessCounters::new();
        let r = bfs_with_opts(g, source, opts, Some(&c));
        (r.depths, c.snapshot())
    };

    // Equivalence gate before timing: the bit arm must reproduce the scalar
    // arm's depths and projected access charges exactly.
    let (bit_depths, bit_snap) = count(&pull_opts(true));
    let (scalar_depths, scalar_snap) = count(&pull_opts(false));
    assert_eq!(bit_depths, scalar_depths, "bit pull must match scalar pull");
    assert_eq!(
        bit_snap.accesses_only(),
        scalar_snap.accesses_only(),
        "bit pull must charge identical projected accesses"
    );

    let time_median = |opts: &BfsOpts| -> f64 {
        let _ = bfs_with_opts(g, source, opts, None); // warm-up
        let times: Vec<f64> = (0..repeats.max(1))
            .map(|_| time_ms(|| std::hint::black_box(bfs_with_opts(g, source, opts, None))).1)
            .collect();
        median(&times)
    };
    let bit_pull_ms = time_median(&pull_opts(true));
    let scalar_pull_ms = time_median(&pull_opts(false));
    let bit_push_ms = time_median(&push_opts(true));
    let scalar_push_ms = time_median(&push_opts(false));

    // Cost-model competitiveness in charged accesses, all arms exact.
    let total = |opts: &BfsOpts| {
        let (depths, snap) = count(opts);
        assert_eq!(depths, scalar_depths, "every arm reaches the same depths");
        snap.accesses_only().total()
    };
    let cost_model_total = total(&BfsOpts::default().cost_model(true));
    let push_only_total = total(&BfsOpts::default().forced(Direction::Push));
    let pull_only_total = total(&BfsOpts::default().forced(Direction::Pull));
    let best_fixed = push_only_total.min(pull_only_total).max(1);

    BitFrontierSample {
        bit_word_ops: bit_snap.bit_word_ops,
        scalar_edge_examinations: scalar_snap.matrix,
        bit_path_engaged: bit_snap.bit_word_ops > 0,
        word_ratio: (bit_snap.bit_word_ops > 0)
            .then(|| bit_snap.bit_word_ops as f64 / scalar_snap.matrix.max(1) as f64),
        bitmap_degrades: bit_snap.bitmap_degrades + scalar_snap.bitmap_degrades,
        bit_pull_ms,
        scalar_pull_ms,
        bit_push_ms,
        scalar_push_ms,
        cost_model_total,
        push_only_total,
        pull_only_total,
        cost_model_vs_best: cost_model_total as f64 / best_fixed as f64,
    }
}

/// One grid arm of the sharding study on one graph.
#[derive(Clone, Copy, Debug)]
pub struct ShardArm {
    /// Shard grid shape (row stripes × column stripes).
    pub grid: (u32, u32),
    /// Median sharded push matvec (sparse frontier, SPA merge), ms.
    pub push_ms: f64,
    /// Median sharded pull matvec (dense input, tile-streamed), ms.
    pub pull_ms: f64,
    /// Total charged accesses of the counted sharded push run.
    pub push_total: u64,
    /// Total charged accesses of the counted sharded pull run.
    pub pull_total: u64,
    /// Stripe-local merges recorded across the counted runs (telemetry,
    /// outside the charged total).
    pub shard_merges: u64,
    /// Expansions that landed outside their source's home column stripe
    /// (telemetry, outside the charged total).
    pub cross_shard_writes: u64,
}

/// Result of the sharding study: the unsharded oracle plus one arm per
/// grid shape.
#[derive(Clone, Debug)]
pub struct ShardsStudy {
    /// Median unsharded push matvec wall time, ms.
    pub unsharded_push_ms: f64,
    /// Median unsharded pull matvec wall time, ms.
    pub unsharded_pull_ms: f64,
    /// Total charged accesses of the counted unsharded push run.
    pub unsharded_push_total: u64,
    /// Total charged accesses of the counted unsharded pull run.
    pub unsharded_pull_total: u64,
    /// One arm per requested grid, in input order.
    pub arms: Vec<ShardArm>,
}

/// The sharding study: the standard scaling workload's push (sparse
/// frontier through the SPA-merge kernel — the face whose global merge
/// sharding replaces with stripe-local merges) and pull (dense input,
/// tile-streamed) matvecs, unsharded vs each 2D shard grid.
///
/// Every arm is equivalence-gated before timing: sharded values and every
/// charged access must match the unsharded oracle bit for bit (shard
/// telemetry aside), so the artifact's "sharded push never charges more
/// than unsharded" claim is an identity this gate enforces — the grids
/// may only move wall clock.
#[must_use]
pub fn shards_study(
    g: &Graph<bool>,
    grids: &[(u32, u32)],
    repeats: usize,
    seed: u64,
) -> ShardsStudy {
    use graphblas_core::{MergeStrategy, ShardGrid};

    let ScalingInputs {
        dense_f,
        sparse_f,
        desc_pull,
        desc_push,
        ..
    } = scaling_inputs(g, seed);
    // Pin the push face to the SPA-merge kernel (the face sharding
    // reworks) and keep the pull face off the bit-parallel arm so the
    // tile-streaming traversal is the path under test.
    let desc_push = desc_push.merge_strategy(MergeStrategy::SpaMerge);
    let desc_pull = desc_pull.bit_kernels(false);

    let run = |f: &Vector<bool>, desc: &Descriptor, c: Option<&AccessCounters>| -> Vector<bool> {
        mxv(None, BoolOrAnd, g, f, desc, c).expect("dims")
    };
    let counted =
        |f: &Vector<bool>, desc: &Descriptor| -> (Vec<(VertexId, bool)>, CounterSnapshot) {
            let c = AccessCounters::new();
            let out = run(f, desc, Some(&c));
            (out.iter_explicit().collect(), c.snapshot())
        };
    let time_median = |f: &Vector<bool>, desc: &Descriptor| -> f64 {
        let _ = run(f, desc, None); // warm-up
        let times: Vec<f64> = (0..repeats.max(1))
            .map(|_| time_ms(|| std::hint::black_box(run(f, desc, None))).1)
            .collect();
        median(&times)
    };
    let scrub = |mut s: CounterSnapshot| -> CounterSnapshot {
        s.shard_merges = 0;
        s.cross_shard_writes = 0;
        s
    };

    let (push_oracle, push_snap) = counted(&sparse_f, &desc_push);
    let (pull_oracle, pull_snap) = counted(&dense_f, &desc_pull);

    let arms = grids
        .iter()
        .map(|&(rs, cs)| {
            let grid = ShardGrid::new(rs, cs);
            let dp = desc_push.shard_grid(grid);
            let dl = desc_pull.shard_grid(grid);
            let (push_vals, push_s) = counted(&sparse_f, &dp);
            assert_eq!(
                push_vals, push_oracle,
                "sharded push {rs}x{cs} must match the unsharded oracle"
            );
            assert_eq!(
                scrub(push_s),
                scrub(push_snap),
                "sharded push {rs}x{cs} must charge identical accesses"
            );
            let (pull_vals, pull_s) = counted(&dense_f, &dl);
            assert_eq!(
                pull_vals, pull_oracle,
                "sharded pull {rs}x{cs} must match the unsharded oracle"
            );
            assert_eq!(
                scrub(pull_s),
                scrub(pull_snap),
                "sharded pull {rs}x{cs} must charge identical accesses"
            );
            ShardArm {
                grid: (rs, cs),
                push_ms: time_median(&sparse_f, &dp),
                pull_ms: time_median(&dense_f, &dl),
                push_total: push_s.accesses_only().total(),
                pull_total: pull_s.accesses_only().total(),
                shard_merges: push_s.shard_merges + pull_s.shard_merges,
                cross_shard_writes: push_s.cross_shard_writes + pull_s.cross_shard_writes,
            }
        })
        .collect();

    ShardsStudy {
        unsharded_push_ms: time_median(&sparse_f, &desc_push),
        unsharded_pull_ms: time_median(&dense_f, &desc_pull),
        unsharded_push_total: push_snap.accesses_only().total(),
        unsharded_pull_total: pull_snap.accesses_only().total(),
        arms,
    }
}

/// First-`k`-vertices induced subgraph (used to seed the hypersparse
/// embedding from the workload graph's own edge structure).
fn sub_graph(g: &Graph<bool>, k: usize, seed: u64) -> Graph<bool> {
    let _ = seed;
    let k = k.min(g.n_vertices()).max(1);
    let mut coo = graphblas_matrix::Coo::new(k, k);
    let a = g.csr();
    for u in 0..k {
        for &v in a.row(u) {
            if (v as usize) < k {
                coo.push(u as u32, v, true);
            }
        }
    }
    // Guarantee at least one edge so the microbench has work.
    if coo.nnz() == 0 && k >= 2 {
        coo.push(0, 1, true);
        coo.push(1, 0, true);
    }
    Graph::from_coo(&coo)
}

/// Time a full BFS under given options, returning (ms, edges traversed).
#[must_use]
pub fn time_bfs(g: &Graph<bool>, sources: &[VertexId], opts: &BfsOpts) -> (f64, usize) {
    let mut total_ms = 0.0;
    let mut total_edges = 0usize;
    for &s in sources {
        let (r, ms) = time_ms(|| bfs_with_opts(g, s, opts, None));
        total_ms += ms;
        total_edges += r
            .depths
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d >= 0)
            .map(|(v, _)| g.csr().degree(v))
            .sum::<usize>();
    }
    (total_ms, total_edges)
}

/// Pick `count` random sources that are not isolated vertices.
#[must_use]
pub fn random_sources(g: &Graph<bool>, count: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.n_vertices();
    let mut out = Vec::with_capacity(count);
    let mut guard = 0usize;
    while out.len() < count && guard < count * 1000 {
        guard += 1;
        let v = rng.gen_range(0..n);
        if g.csr().degree(v) > 0 {
            out.push(v as VertexId);
        }
    }
    assert!(!out.is_empty(), "graph has no non-isolated vertices");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::rmat::{rmat, RmatParams};

    #[test]
    fn random_ids_distinct_sorted() {
        let mut rng = StdRng::seed_from_u64(1);
        for &k in &[0usize, 5, 100, 900] {
            let ids = random_ids(1000, k, &mut rng);
            assert_eq!(ids.len(), k);
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sweep_validates_cost_model_shape() {
        let g = rmat(11, 16, RmatParams::default(), 2);
        let samples = matvec_variant_sweep(&g, &[100, 1000], 1, 3);
        assert_eq!(samples.len(), 2);
        // Row unmasked: matrix accesses equal nnz(A), independent of sweep.
        assert_eq!(samples[0].row_accesses.matrix, g.n_edges() as u64);
        assert_eq!(samples[1].row_accesses.matrix, g.n_edges() as u64);
        // Row masked: accesses grow with nnz(m).
        assert!(samples[1].row_masked_accesses.matrix > samples[0].row_masked_accesses.matrix);
        // Col: accesses grow with nnz(f).
        assert!(samples[1].col_accesses.matrix > samples[0].col_accesses.matrix);
        // Col masked does NOT reduce matrix accesses vs col (Table 1).
        assert_eq!(
            samples[1].col_masked_accesses.matrix,
            samples[1].col_accesses.matrix
        );
    }

    #[test]
    fn per_level_study_partitions_vertices() {
        let g = rmat(10, 16, RmatParams::default(), 7);
        let levels = per_level_study(&g, 0, 1);
        assert!(!levels.is_empty());
        let frontier_sum: usize = levels.iter().map(|l| l.frontier_nnz).sum();
        // Frontier sizes over all levels = reached vertex count.
        let reached = graphblas_baselines::textbook::bfs_serial(&g, 0)
            .iter()
            .filter(|&&d| d >= 0)
            .count();
        assert_eq!(frontier_sum, reached);
        // Unvisited is strictly decreasing until the last level.
        assert!(levels.windows(2).all(|w| w[0].unvisited >= w[1].unvisited));
    }

    #[test]
    fn scaling_study_reports_each_thread_count() {
        let g = rmat(9, 8, RmatParams::default(), 5);
        let samples = thread_scaling_study(&g, &[1, 2], 1, 42);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].threads, 1);
        assert_eq!(samples[1].threads, 2);
        for s in &samples {
            assert!(s.pull_ms >= 0.0 && s.push_ms >= 0.0);
            assert!(s.pull_mteps >= 0.0 && s.push_mteps >= 0.0);
        }
    }

    #[test]
    fn batched_study_reports_each_k() {
        let g = rmat(9, 8, RmatParams::default(), 5);
        let samples = batched_study(&g, &[1, 4], 1, 42);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].k, 1);
        assert_eq!(samples[1].k, 4);
        for s in &samples {
            assert!(s.batched_ms >= 0.0 && s.sequential_ms >= 0.0 && s.bc_ms >= 0.0);
            assert!(s.levels > 0);
            assert_eq!(
                s.push_steps + s.pull_steps,
                s.accesses.push_steps + s.accesses.pull_steps
            );
            assert!(s.push_steps + s.pull_steps > 0, "every level is a decision");
        }
    }

    #[test]
    fn bitfrontier_study_meets_acceptance_in_bitmap_regime() {
        // Dense graph (avg degree ≈ 64, 4 row words): the word-parallel
        // saving and the cost-model bound must both hold.
        let g = graphblas_gen::erdos::erdos_renyi(256, 8192, 5);
        let s = bitfrontier_study(&g, 1, 42);
        assert_eq!(s.bitmap_degrades, 0, "bitmap must be feasible here");
        assert!(s.bit_word_ops > 0, "bit kernels must have engaged");
        assert!(s.bit_path_engaged, "engagement flag mirrors bit_word_ops");
        let ratio = s.word_ratio.expect("engaged path reports a ratio");
        assert!(
            ratio <= 0.125,
            "bit pull must charge ≤ 1/8 of scalar examinations, got {ratio}"
        );
        assert!(
            s.cost_model_vs_best <= 1.1,
            "cost model lost to best fixed direction: {}",
            s.cost_model_vs_best
        );
    }

    #[test]
    fn time_bfs_reports_edges() {
        let g = rmat(9, 8, RmatParams::default(), 5);
        let sources = random_sources(&g, 2, 3);
        let (ms, edges) = time_bfs(&g, &sources, &BfsOpts::default());
        assert!(ms >= 0.0);
        assert!(edges > 0);
    }
}
