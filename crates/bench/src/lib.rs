//! Experiment harness shared by the `paper` binary (which regenerates
//! every table and figure of the paper) and the criterion benches.

#[cfg(feature = "fault-injection")]
pub mod chaos;
pub mod engines;
pub mod report;
pub mod serve;
pub mod study;

use std::time::Instant;

/// Time one closure invocation in milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Median of a sample (not in-place; small vectors only).
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Geometric mean of positive samples.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Millions of traversed edges per second.
#[must_use]
pub fn mteps(edges: usize, ms: f64) -> f64 {
    edges as f64 / (ms * 1e3).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mteps_units() {
        // 1M edges in 1000 ms = 1 MTEPS.
        assert!((mteps(1_000_000, 1000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_ms_returns_value() {
        let (v, ms) = time_ms(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
