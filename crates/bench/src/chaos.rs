//! Chaos study (compiled only with the `fault-injection` feature): drive
//! every injected fault class through the guarded BFS entry point and
//! check the two robustness contracts —
//!
//! * **survival** — the faulted run surfaces as the expected typed
//!   [`GrbError`] (or completes with a recorded graceful degrade); the
//!   process never aborts;
//! * **recovery** — an immediate retry with the fault cleared is
//!   bit-identical (depths *and* counter snapshot) to an uninterrupted
//!   clean run, proving the abort left no poison behind.
//!
//! Each scenario runs clean → faulted → retry under an explicit lane
//! count, so the suite exercises the panic-isolated pool at 1/2/8 lanes.

use graphblas_algo::bfs::{try_bfs_with_opts, BfsOpts};
use graphblas_core::descriptor::Direction;
use graphblas_core::{ExecLimits, FormatPolicy, GrbError, StorageFormat};
use graphblas_matrix::{Dcsr, Graph, VertexId};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::fault::{self, FaultPlan};
use std::time::Duration;

/// Every injected fault class the chaos study exercises.
pub const FAULT_CLASSES: [FaultClass; 6] = [
    FaultClass::Deadline,
    FaultClass::WorkBudget,
    FaultClass::BytesDegrade,
    FaultClass::AllocFail,
    FaultClass::ChunkPanic,
    FaultClass::CostInflate,
];

/// One injected failure mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Zero wall-clock deadline: trips at the first checkpoint.
    Deadline,
    /// Tiny charged-access work budget: trips mid-traversal.
    WorkBudget,
    /// Bytes budget just under the DCSR conversion estimate: the
    /// conversion is denied and the run degrades to the cached CSR,
    /// recording `limit_degrades` — the graceful-degradation path.
    BytesDegrade,
    /// The first charged kernel allocation reports failure: typed
    /// `BudgetExceeded { Bytes }` at a site with no fallback.
    AllocFail,
    /// The first worker-pool chunk panics: caught at the chunk boundary
    /// and surfaced as `WorkerPanicked`; the pool stays usable.
    ChunkPanic,
    /// The measured cost model's push estimate is inflated 64×: direction
    /// choices may flip but results must not change.
    CostInflate,
}

impl FaultClass {
    /// Stable name used in the report table and `BENCH_chaos.json`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Deadline => "deadline",
            FaultClass::WorkBudget => "work-budget",
            FaultClass::BytesDegrade => "bytes-degrade",
            FaultClass::AllocFail => "alloc-fail",
            FaultClass::ChunkPanic => "chunk-panic",
            FaultClass::CostInflate => "cost-inflate",
        }
    }
}

/// Outcome of one (fault class, lane count) scenario.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Which fault was injected.
    pub fault: FaultClass,
    /// Lane count the scenario ran under.
    pub threads: usize,
    /// What the faulted run produced (typed error or completion note).
    pub observed: String,
    /// The faulted run surfaced as the expected typed error / degrade.
    pub survived: bool,
    /// Retry after clearing the fault was bit-identical to the clean run
    /// (depths and counter snapshot) and the faulted run's counters were
    /// rolled back.
    pub recovered: bool,
    /// `limit_degrades` recorded by the faulted run (non-zero only for
    /// the graceful-degradation scenario).
    pub limit_degrades: u64,
}

/// Options for one fault class: the degrade scenario pins the hypersparse
/// DCSR store behind a pull-only fused traversal (so the conversion charge
/// is the only bytes consumer), the alloc-fail scenario runs unfused (the
/// separate-op kernels charge their output buffers on the caller thread),
/// the chunk-panic scenario forces the row kernel (whose per-row loop
/// always chunks through the pool — a mesh's thin push frontiers can stay
/// under the column kernel's chunk grain and never arm a pool chunk), and
/// the inflation scenario runs under the measured cost model it skews.
fn scenario_opts(fault: FaultClass) -> BfsOpts {
    let base = BfsOpts::default();
    match fault {
        FaultClass::BytesDegrade => BfsOpts {
            format: FormatPolicy::fixed(StorageFormat::Dcsr),
            force: Some(Direction::Pull),
            ..base
        },
        FaultClass::AllocFail => BfsOpts {
            fused: false,
            ..base
        },
        FaultClass::ChunkPanic => BfsOpts {
            force: Some(Direction::Pull),
            ..base
        },
        FaultClass::CostInflate => BfsOpts {
            cost_model: true,
            ..base
        },
        _ => base,
    }
}

/// Limits and fault plan that arm the scenario's failure.
fn scenario_fault(fault: FaultClass, g: &Graph<bool>, seed: u64) -> (ExecLimits, FaultPlan) {
    let plan = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    match fault {
        FaultClass::Deadline => (ExecLimits::none().with_deadline(Duration::ZERO), plan),
        FaultClass::WorkBudget => (ExecLimits::none().with_work_budget(512), plan),
        FaultClass::BytesDegrade => {
            // One byte short of the DCSR conversion estimate: the charge is
            // denied, the traversal keeps the cached CSR, and nothing else
            // in the pull-only fused pipeline charges bytes.
            let conv = Dcsr::<bool>::estimate_bytes(g.nonempty_rows(true));
            (ExecLimits::none().with_bytes_budget(conv - 1), plan)
        }
        FaultClass::AllocFail => (
            ExecLimits::none(),
            FaultPlan {
                fail_alloc_nth: Some(1),
                ..plan
            },
        ),
        FaultClass::ChunkPanic => (
            ExecLimits::none(),
            FaultPlan {
                panic_chunk_nth: Some(1),
                ..plan
            },
        ),
        FaultClass::CostInflate => (
            ExecLimits::none(),
            FaultPlan {
                cost_inflation: Some(64.0),
                ..plan
            },
        ),
    }
}

/// Run clean → faulted → retry for every fault class at every lane count.
#[must_use]
pub fn chaos_study(
    g: &Graph<bool>,
    source: VertexId,
    seed: u64,
    thread_counts: &[usize],
) -> Vec<ChaosOutcome> {
    let mut out = Vec::new();
    for &lanes in thread_counts {
        for fc in FAULT_CLASSES {
            out.push(rayon::with_num_threads(lanes, || {
                run_scenario(g, source, seed, lanes, fc)
            }));
        }
    }
    out
}

fn run_scenario(
    g: &Graph<bool>,
    source: VertexId,
    seed: u64,
    threads: usize,
    fc: FaultClass,
) -> ChaosOutcome {
    fault::clear();
    let clean_opts = scenario_opts(fc);

    // 1. Uninterrupted clean run — the bit-identity reference.
    let clean_c = AccessCounters::new();
    let clean =
        try_bfs_with_opts(g, source, &clean_opts, Some(&clean_c)).expect("clean run cannot abort");
    let clean_snap = clean_c.snapshot();

    // 2. Faulted run.
    let (limits, plan) = scenario_fault(fc, g, seed);
    let fault_opts = BfsOpts {
        limits,
        ..clean_opts
    };
    let fault_c = AccessCounters::new();
    let baseline = fault_c.snapshot();
    fault::install(&plan);
    // The injected chunk panic unwinds through the pool's catch; silence
    // the default "thread panicked" banner for exactly that window.
    let silenced = fc == FaultClass::ChunkPanic;
    let prev_hook = silenced.then(std::panic::take_hook);
    if silenced {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let faulted = try_bfs_with_opts(g, source, &fault_opts, Some(&fault_c));
    if let Some(hook) = prev_hook {
        std::panic::set_hook(hook);
    }
    fault::clear();
    let fault_snap = fault_c.snapshot();
    let limit_degrades = fault_snap.limit_degrades;

    // 3. Survival: the expected typed outcome, and (on error) counters
    // rolled back to the pre-run snapshot.
    let (survived, observed) = classify(fc, &faulted, &clean.depths, limit_degrades);
    let rolled_back = match &faulted {
        Err(_) => fault_snap == baseline,
        Ok(_) => true,
    };

    // 4. Recovery: an immediate retry with the fault cleared must be
    // bit-identical to the clean run — depths and counter snapshot.
    let retry_c = AccessCounters::new();
    let retry = try_bfs_with_opts(g, source, &clean_opts, Some(&retry_c));
    let recovered = rolled_back
        && matches!(&retry, Ok(r) if r.depths == clean.depths)
        && retry_c.snapshot() == clean_snap;

    ChaosOutcome {
        fault: fc,
        threads,
        observed,
        survived,
        recovered,
        limit_degrades,
    }
}

/// Expected-outcome check per fault class.
fn classify(
    fc: FaultClass,
    faulted: &Result<graphblas_algo::bfs::BfsResult, GrbError>,
    clean_depths: &[i32],
    limit_degrades: u64,
) -> (bool, String) {
    use graphblas_core::BudgetResource;
    match (fc, faulted) {
        (FaultClass::Deadline, Err(e @ GrbError::Cancelled)) => (true, e.to_string()),
        (
            FaultClass::WorkBudget,
            Err(
                e @ GrbError::BudgetExceeded {
                    resource: BudgetResource::Work,
                },
            ),
        ) => (true, e.to_string()),
        (
            FaultClass::AllocFail,
            Err(
                e @ GrbError::BudgetExceeded {
                    resource: BudgetResource::Bytes,
                },
            ),
        ) => (true, e.to_string()),
        (FaultClass::ChunkPanic, Err(e @ GrbError::WorkerPanicked { .. })) => (true, e.to_string()),
        (FaultClass::BytesDegrade, Ok(r)) => (
            r.depths == clean_depths && limit_degrades > 0,
            format!("completed with {limit_degrades} limit degrade(s)"),
        ),
        (FaultClass::CostInflate, Ok(r)) => (
            r.depths == clean_depths,
            "completed under 64x inflated cost model".to_string(),
        ),
        (_, Ok(_)) => (false, "unexpected completion".to_string()),
        (_, Err(e)) => (false, format!("unexpected error: {e}")),
    }
}
