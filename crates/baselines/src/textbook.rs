//! Serial textbook BFS — the correctness oracle.
//!
//! Every other BFS in the workspace (five comparator engines, the
//! GraphBLAS DOBFS in all 2⁵ optimization configurations) is validated
//! against this queue implementation in tests and before each benchmark.

use crate::{BfsEngine, UNREACHED};
use graphblas_matrix::{Graph, VertexId};
use std::collections::VecDeque;

/// Queue BFS from `source`; returns per-vertex depth, `-1` if unreached.
#[must_use]
pub fn bfs_serial(g: &Graph<bool>, source: VertexId) -> Vec<i32> {
    let n = g.n_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut depth = vec![UNREACHED; n];
    let mut queue = VecDeque::new();
    depth[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = depth[u as usize];
        for &v in g.children(u) {
            if depth[v as usize] == UNREACHED {
                depth[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    depth
}

/// The oracle wrapped as an engine (it also appears in timing tables as a
/// serial reference point).
pub struct Textbook;

impl BfsEngine for Textbook {
    fn name(&self) -> &'static str {
        "Serial"
    }
    fn bfs(&self, g: &Graph<bool>, source: VertexId) -> Vec<i32> {
        bfs_serial(g, source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_matrix::Coo;

    fn tiny() -> Graph<bool> {
        // 0-1, 1-2, 2-3 path plus isolated vertex 4.
        let mut coo = Coo::new(5, 5);
        for &(u, v) in &[(0u32, 1u32), (1, 2), (2, 3)] {
            coo.push(u, v, true);
        }
        coo.clean_undirected();
        Graph::from_coo(&coo)
    }

    #[test]
    fn path_depths() {
        let g = tiny();
        assert_eq!(bfs_serial(&g, 0), vec![0, 1, 2, 3, UNREACHED]);
        assert_eq!(bfs_serial(&g, 2), vec![2, 1, 0, 1, UNREACHED]);
    }

    #[test]
    fn isolated_source() {
        let g = tiny();
        assert_eq!(bfs_serial(&g, 4), vec![-1, -1, -1, -1, 0]);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn source_bounds_checked() {
        let g = tiny();
        let _ = bfs_serial(&g, 99);
    }
}
