//! The paper's "Baseline": the push-only linear-algebra BFS of Yang et al.
//! 2015 ("Fast sparse matrix and sparse vector multiplication on the GPU").
//!
//! §7.2 picks it as the baseline "because it is based in linear algebra and
//! is (relatively) free of graph-specific optimizations. It does not
//! support DOBFS." Defining choices reproduced: parallel scan-gather-sort
//! SpMSpV (the same primitive pipeline as Algorithm 3) with a *key-value*
//! sort (no structure-only), no mask inside the kernel (visited filtering
//! happens on the output vector), and no direction switching ever.

use crate::{BfsEngine, UNREACHED};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::{gather, pool, scan, sort, BitVec};

/// Parallel push-only linear-algebra BFS without masking.
pub struct BaselinePush;

impl BfsEngine for BaselinePush {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn bfs(&self, g: &Graph<bool>, source: VertexId) -> Vec<i32> {
        let n = g.n_vertices();
        assert!((source as usize) < n);
        let a = g.csr();
        let mut depth = vec![UNREACHED; n];
        let mut visited = BitVec::new(n);
        visited.set(source as usize);
        depth[source as usize] = 0;
        let mut frontier: Vec<VertexId> = vec![source];
        let mut d = 0i32;
        while !frontier.is_empty() {
            d += 1;
            // Expand: scan lengths, interval-gather all children.
            let lengths: Vec<usize> = frontier.iter().map(|&u| a.degree(u as usize)).collect();
            let offsets = scan::exclusive_scan_offsets(&lengths);
            let starts: Vec<usize> = frontier.iter().map(|&u| a.row_ptr()[u as usize]).collect();
            let mut keys =
                gather::gather_segments(a.col_ind(), &starts, &offsets, pool::DEFAULT_GRAIN);
            // The 2015 baseline carries (index, value) pairs through the
            // sort; values are Boolean `true` here, so the payload is a
            // same-size dummy — the cost, not the content, is what matters.
            let mut payload: Vec<u32> = vec![1; keys.len()];
            sort::sort_pairs(&mut keys, &mut payload, n.max(1) as u32 - 1);
            keys.dedup();
            // Filter by visited *after* the matvec (no kernel-level mask).
            let mut next = Vec::with_capacity(keys.len());
            for v in keys {
                if !visited.get(v as usize) {
                    visited.set(v as usize);
                    depth[v as usize] = d;
                    next.push(v);
                }
            }
            frontier = next;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook::bfs_serial;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::rmat::{rmat, RmatParams};

    #[test]
    fn matches_oracle_on_rmat() {
        let g = rmat(11, 8, RmatParams::default(), 3);
        for src in [0u32, 17, 900] {
            assert_eq!(BaselinePush.bfs(&g, src), bfs_serial(&g, src));
        }
    }

    #[test]
    fn matches_oracle_on_mesh() {
        let g = road_mesh(40, 40, RoadParams::default(), 5);
        assert_eq!(BaselinePush.bfs(&g, 0), bfs_serial(&g, 0));
        assert_eq!(BaselinePush.bfs(&g, 799), bfs_serial(&g, 799));
    }

    #[test]
    fn source_only_component() {
        let g = road_mesh(
            3,
            3,
            RoadParams {
                keep: 0.0,
                diagonal: 0.0,
            },
            1,
        );
        let d = BaselinePush.bfs(&g, 4);
        assert_eq!(d.iter().filter(|&&x| x >= 0).count(), 1);
    }
}
