//! Gunrock-like frontier-centric BFS.
//!
//! Gunrock is the fastest GPU framework in the paper's study (ours lands
//! within ~1.1× of it on scale-free graphs). §7.3 itemizes what it does on
//! top of the paper's five optimizations, and those are what we reproduce:
//!
//! 1. **Local culling** instead of a full sort: the expanded frontier is
//!    filtered through a global bitmask (cheap, approximate dedup) and kept
//!    *unsorted, with possible duplicates* — BFS tolerates redundant
//!    vertices, trading a few wasted expansions for dropping the
//!    `log M` sort factor entirely.
//! 2. **Operand reuse** in the pull phase: it computes `Aᵀv .∗ ¬v` with the
//!    visited set as input, so the push→pull transition never pays a
//!    sparse-to-dense frontier conversion.
//! 3. Direction switching on the Beamer ratio, like the paper's heuristic.

use crate::{BfsEngine, UNREACHED};
use graphblas_core::{Direction, DirectionPolicy};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::AtomicBitVec;
use rayon::prelude::*;

/// Direction-switch ratio (paper §6.3 uses 0.01 for its own heuristic;
/// Gunrock's tuned default behaves similarly on scale-free graphs).
const SWITCH_RATIO: f64 = 0.01;

/// Frontier-centric push/pull BFS with duplicate-tolerant frontiers.
#[derive(Default)]
pub struct GunrockLike {
    _private: (),
}

impl BfsEngine for GunrockLike {
    fn name(&self) -> &'static str {
        "Gunrock-like"
    }

    fn bfs(&self, g: &Graph<bool>, source: VertexId) -> Vec<i32> {
        let n = g.n_vertices();
        assert!((source as usize) < n);
        let a = g.csr();
        let at = g.csr_t();
        let visited = AtomicBitVec::new(n);
        visited.set(source as usize);
        let mut depth = vec![UNREACHED; n];
        depth[source as usize] = 0;
        // Frontier may contain duplicates; `visited` is the source of truth.
        let mut frontier: Vec<VertexId> = vec![source];
        let mut d = 0i32;
        // Gunrock switches on the same §6.3 hysteresis rule as the paper's
        // own heuristic; the rule itself lives in graphblas_core.
        let mut policy = DirectionPolicy::hysteresis(SWITCH_RATIO);

        while !frontier.is_empty() {
            d += 1;
            let pulling = policy.update(frontier.len(), n) == Direction::Pull;

            let next: Vec<VertexId> = if pulling {
                // Operand reuse: input is the visited set, not the frontier
                // (f ⊂ v makes Aᵀv .∗ ¬v equivalent for discovery). Parent
                // checks go against a snapshot frozen at iteration start so
                // same-level claims cannot leak in as parents.
                let snapshot = visited.to_bitvec();
                (0..n as u32)
                    .into_par_iter()
                    .filter(|&v| {
                        if snapshot.get(v as usize) {
                            return false;
                        }
                        for &p in at.row(v as usize) {
                            if snapshot.get(p as usize) {
                                visited.set(v as usize);
                                return true;
                            }
                        }
                        false
                    })
                    .collect()
            } else {
                // Push with local culling: the claim bitmask removes most
                // duplicates; no sort, no exact dedup. `visited.set` returns
                // true exactly once per vertex, so duplicates never reach
                // the next frontier twice — but the *expansion* may scan a
                // vertex's children from several parents concurrently.
                frontier
                    .par_iter()
                    .flat_map_iter(|&u| {
                        a.row(u as usize)
                            .iter()
                            .copied()
                            .filter(|&v| visited.set(v as usize))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            };
            for &v in &next {
                depth[v as usize] = d;
            }
            frontier = next;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook::bfs_serial;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::powerlaw::{chung_lu, PowerLawParams};
    use graphblas_gen::rmat::{rmat, RmatParams};

    #[test]
    fn matches_oracle_on_rmat() {
        let g = rmat(12, 16, RmatParams::default(), 2);
        for src in [0u32, 100, 4000] {
            assert_eq!(GunrockLike::default().bfs(&g, src), bfs_serial(&g, src));
        }
    }

    #[test]
    fn matches_oracle_on_powerlaw() {
        let g = chung_lu(4096, 12, PowerLawParams::default(), 6);
        assert_eq!(GunrockLike::default().bfs(&g, 7), bfs_serial(&g, 7));
    }

    #[test]
    fn matches_oracle_on_mesh_stays_push() {
        let g = road_mesh(50, 50, RoadParams::default(), 8);
        assert_eq!(GunrockLike::default().bfs(&g, 0), bfs_serial(&g, 0));
    }
}
