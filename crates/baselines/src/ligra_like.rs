//! Ligra-like vertex-centric framework (Shun & Blelloch 2013).
//!
//! Ligra is the fastest multi-threaded CPU framework in the paper's study
//! and the first to generalize push-pull beyond BFS. Its defining
//! abstraction is `edgeMap(G, frontier, update, cond)` with an automatic
//! representation/direction switch: when the frontier (plus its out-edges)
//! exceeds |E|/20, it switches to a *dense* backward traversal over all
//! vertices failing `cond`, with an early break once `update` succeeds —
//! otherwise it runs sparse forward traversal with atomic claims. We
//! reproduce that abstraction (specialized to the BFS functor) including
//! the |E|/20 threshold.

use crate::{BfsEngine, UNREACHED};
use graphblas_core::{Direction, DirectionPolicy};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::AtomicBitVec;
use rayon::prelude::*;

/// Ligra's edgeMap threshold: dense mode when frontier work > |E| / 20.
const DENSE_FRACTION: usize = 20;

/// Vertex-centric push-pull BFS with Ligra's switching rule.
#[derive(Default)]
pub struct LigraLike {
    _private: (),
}

impl BfsEngine for LigraLike {
    fn name(&self) -> &'static str {
        "Ligra-like"
    }

    fn bfs(&self, g: &Graph<bool>, source: VertexId) -> Vec<i32> {
        let n = g.n_vertices();
        assert!((source as usize) < n);
        let a = g.csr();
        let at = g.csr_t();
        let visited = AtomicBitVec::new(n);
        visited.set(source as usize);
        let mut depth = vec![UNREACHED; n];
        depth[source as usize] = 0;
        let mut frontier: Vec<VertexId> = vec![source];
        let mut d = 0i32;
        // Beamer's memoryless rule, |frontier ∪ out-edges| > |E|/20, as a
        // core DirectionPolicy: threshold 1/20 on the edge-capacity ratio.
        let mut policy = DirectionPolicy::memoryless(1.0 / DENSE_FRACTION as f64);

        while !frontier.is_empty() {
            d += 1;
            let frontier_edges: usize = frontier.iter().map(|&u| a.degree(u as usize)).sum();
            let dense_mode =
                policy.update(frontier.len() + frontier_edges, g.n_edges()) == Direction::Pull;
            let next: Vec<VertexId> = if dense_mode {
                // edgeMapDense: every unvisited vertex scans in-neighbors,
                // breaking at the first frontier parent.
                let in_frontier = {
                    let f = AtomicBitVec::new(n);
                    frontier.par_iter().for_each(|&u| {
                        f.set(u as usize);
                    });
                    f
                };
                (0..n as u32)
                    .into_par_iter()
                    .filter(|&v| {
                        if visited.get(v as usize) {
                            return false;
                        }
                        for &p in at.row(v as usize) {
                            if in_frontier.get(p as usize) {
                                // cond satisfied; claim is uncontended in
                                // dense mode (one task per v).
                                visited.set(v as usize);
                                return true;
                            }
                        }
                        false
                    })
                    .collect()
            } else {
                // edgeMapSparse: frontier vertices claim children atomically.
                frontier
                    .par_iter()
                    .flat_map_iter(|&u| {
                        a.row(u as usize)
                            .iter()
                            .copied()
                            .filter(|&v| visited.set(v as usize))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            };
            for &v in &next {
                depth[v as usize] = d;
            }
            frontier = next;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook::bfs_serial;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::rmat::{rmat, RmatParams};

    fn sorted(mut d: Vec<i32>) -> Vec<i32> {
        d.sort_unstable();
        d
    }

    #[test]
    fn matches_oracle_on_scale_free() {
        // Dense-heavy traversal: must exercise edgeMapDense.
        let g = rmat(12, 16, RmatParams::default(), 8);
        for src in [0u32, 2048] {
            let got = LigraLike::default().bfs(&g, src);
            let expect = bfs_serial(&g, src);
            assert_eq!(got, expect, "depth mismatch from {src}");
        }
    }

    #[test]
    fn matches_oracle_on_mesh() {
        // Sparse-heavy traversal: edgeMapSparse for thousands of levels.
        let g = road_mesh(60, 60, RoadParams::default(), 5);
        let got = LigraLike::default().bfs(&g, 10);
        assert_eq!(got, bfs_serial(&g, 10));
    }

    #[test]
    fn depth_histogram_stable_across_runs() {
        // Parallel claim order varies, but depths are deterministic.
        let g = rmat(10, 8, RmatParams::default(), 4);
        let a = LigraLike::default().bfs(&g, 1);
        let b = LigraLike::default().bfs(&g, 1);
        assert_eq!(sorted(a), sorted(b));
    }
}
