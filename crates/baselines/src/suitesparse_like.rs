//! SuiteSparse-GraphBLAS-like BFS: single-threaded, column-based only.
//!
//! §7.2: "SuiteSparse is a single-threaded CPU implementation of GraphBLAS
//! … SuiteSparse performs matvecs with the column-based algorithm," and the
//! BFS "executes in only the forward (push) direction." The defining
//! choices reproduced here are therefore: (i) one thread, (ii) every
//! iteration is a column-based SpMSpV resolved by heap multiway merge,
//! (iii) the visited filter is applied as an elementwise multiply *after*
//! the matvec rather than as a kernel-level mask. This is the engine the
//! paper beats by 122× geomean — the gap Figure 7's log scale exists for.

use crate::{BfsEngine, UNREACHED};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::BitVec;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-threaded column-based-only GraphBLAS-style BFS.
pub struct SuiteSparseLike;

impl BfsEngine for SuiteSparseLike {
    fn name(&self) -> &'static str {
        "SuiteSparse-like"
    }

    fn bfs(&self, g: &Graph<bool>, source: VertexId) -> Vec<i32> {
        let n = g.n_vertices();
        assert!((source as usize) < n);
        let a = g.csr(); // columns of Aᵀ = children lists
        let mut depth = vec![UNREACHED; n];
        let mut visited = BitVec::new(n);
        visited.set(source as usize);
        depth[source as usize] = 0;
        let mut frontier: Vec<VertexId> = vec![source];
        let mut d = 0i32;
        while !frontier.is_empty() {
            d += 1;
            // Column-based matvec: k-way merge of the frontier's child
            // lists (sorted CSR rows), OR semiring ⇒ dedup on merge.
            let mut heap: BinaryHeap<Reverse<(VertexId, usize, usize)>> =
                BinaryHeap::with_capacity(frontier.len());
            for (li, &u) in frontier.iter().enumerate() {
                if let Some(&first) = a.row(u as usize).first() {
                    heap.push(Reverse((first, li, 0)));
                }
            }
            let mut product: Vec<VertexId> = Vec::new();
            while let Some(Reverse((v, li, pos))) = heap.pop() {
                if product.last() != Some(&v) {
                    product.push(v);
                }
                let row = a.row(frontier[li] as usize);
                if pos + 1 < row.len() {
                    heap.push(Reverse((row[pos + 1], li, pos + 1)));
                }
            }
            // Elementwise multiply with ¬visited — *after* the matvec.
            let mut next = Vec::with_capacity(product.len());
            for v in product {
                if !visited.get(v as usize) {
                    visited.set(v as usize);
                    depth[v as usize] = d;
                    next.push(v);
                }
            }
            frontier = next;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook::bfs_serial;
    use graphblas_gen::rmat::{rmat, RmatParams};
    use graphblas_matrix::Coo;

    #[test]
    fn matches_oracle_on_small_graph() {
        let mut coo = Coo::new(6, 6);
        for &(u, v) in &[(0u32, 1u32), (0, 2), (1, 3), (2, 3), (3, 4)] {
            coo.push(u, v, true);
        }
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        assert_eq!(SuiteSparseLike.bfs(&g, 0), bfs_serial(&g, 0));
        assert_eq!(SuiteSparseLike.bfs(&g, 4), bfs_serial(&g, 4));
    }

    #[test]
    fn matches_oracle_on_rmat() {
        let g = rmat(10, 8, RmatParams::default(), 31);
        for src in [0u32, 5, 100] {
            assert_eq!(SuiteSparseLike.bfs(&g, src), bfs_serial(&g, src));
        }
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, true);
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        let d = SuiteSparseLike.bfs(&g, 0);
        assert_eq!(d, vec![0, 1, UNREACHED, UNREACHED]);
    }
}
