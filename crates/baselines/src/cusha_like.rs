//! CuSha-like gather-apply-scatter (GAS) BFS over edge shards.
//!
//! CuSha (Khorasani et al. 2014) processes graphs as *shards*: edge lists
//! partitioned by destination window, streamed in full every iteration so
//! writes stay within a cached window. The defining cost is that a GAS
//! engine touches **every shard every superstep**, frontier size
//! notwithstanding — which is why the §7.2 table shows CuSha at 17.6 s on
//! indochina-04 and consistently behind frontier-centric engines on
//! high-diameter road networks (thousands of supersteps × full edge list).
//! We reproduce the shard layout and that per-iteration full sweep.

use crate::{BfsEngine, UNREACHED};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::{AtomicBitVec, BitVec};
use rayon::prelude::*;

/// Destination-window width per shard (vertices).
const SHARD_WIDTH: usize = 1 << 14;

/// Shard-based GAS BFS.
pub struct CushaLike;

impl BfsEngine for CushaLike {
    fn name(&self) -> &'static str {
        "CuSha-like"
    }

    fn bfs(&self, g: &Graph<bool>, source: VertexId) -> Vec<i32> {
        let n = g.n_vertices();
        assert!((source as usize) < n);

        // Build shards once: edges (src, dst) grouped by dst window
        // (CuSha's G-Shards layout). Construction is part of setup, like
        // the paper's excluded transfer time, but is measured inside bfs()
        // here, conservatively — CuSha's published numbers also rebuild
        // windows per algorithm run.
        let at = g.csr_t();
        let n_shards = n.div_ceil(SHARD_WIDTH);
        let mut shards: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); n_shards];
        for v in 0..n {
            for &p in at.row(v) {
                shards[v / SHARD_WIDTH].push((p, v as VertexId));
            }
        }

        let visited = AtomicBitVec::new(n);
        visited.set(source as usize);
        let mut in_frontier = BitVec::new(n);
        in_frontier.set(source as usize);
        let mut depth = vec![UNREACHED; n];
        depth[source as usize] = 0;
        let mut d = 0i32;

        loop {
            d += 1;
            // Gather + apply: stream EVERY shard, claiming unvisited dsts
            // whose src is in the frontier. Shards write disjoint dst
            // windows, so claims never contend across shards; the atomic
            // visited set keeps the code uniform anyway.
            let frontier_ref = &in_frontier;
            let discovered: Vec<Vec<VertexId>> = shards
                .par_iter()
                .map(|shard| {
                    let mut local = Vec::new();
                    for &(src, dst) in shard {
                        if frontier_ref.get(src as usize) && visited.set(dst as usize) {
                            local.push(dst);
                        }
                    }
                    local
                })
                .collect();
            // Scatter: build the next frontier bitmap.
            let mut next = BitVec::new(n);
            let mut count = 0usize;
            for local in &discovered {
                for &v in local {
                    depth[v as usize] = d;
                    next.set(v as usize);
                }
                count += local.len();
            }
            if count == 0 {
                break;
            }
            in_frontier = next;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook::bfs_serial;
    use graphblas_gen::grid::{road_mesh, RoadParams};
    use graphblas_gen::rmat::{rmat, RmatParams};

    #[test]
    fn matches_oracle_on_rmat() {
        let g = rmat(10, 8, RmatParams::default(), 12);
        for src in [0u32, 33, 512] {
            assert_eq!(CushaLike.bfs(&g, src), bfs_serial(&g, src));
        }
    }

    #[test]
    fn matches_oracle_on_mesh() {
        let g = road_mesh(30, 30, RoadParams::default(), 4);
        assert_eq!(CushaLike.bfs(&g, 0), bfs_serial(&g, 0));
    }

    #[test]
    fn spans_multiple_shards() {
        // More vertices than one shard width forces the multi-shard path.
        let g = rmat(15, 4, RmatParams::default(), 9);
        assert!(g.n_vertices() > super::SHARD_WIDTH);
        assert_eq!(CushaLike.bfs(&g, 1), bfs_serial(&g, 1));
    }
}
