//! Reimplemented comparator frameworks for the Figure 7 / §7.2 study.
//!
//! The paper benchmarks its DOBFS against five other systems. None of them
//! can be linked here (CUDA frameworks, original machines), so each is
//! re-implemented around its *defining algorithmic choice* — the property
//! the paper credits or blames for its standing:
//!
//! * [`textbook`] — serial queue BFS; correctness oracle for every other
//!   engine and algorithm in the workspace.
//! * [`suitesparse_like`] — single-threaded, column-based-only matvec BFS
//!   (§7.2: "SuiteSparse performs matvecs with the column-based algorithm",
//!   no direction switch, no masking inside the kernel).
//! * [`baseline_push`] — the linear-algebra push-only BFS of Yang et al.
//!   2015: parallel expand/sort/dedup, visited filter *after* the matvec,
//!   no masking, no direction optimization.
//! * [`ligra_like`] — vertex-centric edgeMap/vertexMap with Beamer's
//!   |frontier-edges| > |E|/20 switch (Shun & Blelloch's CPU framework).
//! * [`gunrock_like`] — frontier-centric push/pull with Gunrock's §7.3
//!   specials: unsorted frontier with duplicates + bitmask culling, and
//!   operand reuse (`Aᵀv .∗ ¬v`) in the pull phase.
//! * [`cusha_like`] — GAS (gather-apply-scatter) over edge shards; the
//!   whole edge list is streamed every iteration, which is exactly why a
//!   GAS framework trails frontier-based ones on high-diameter graphs.
//!
//! All engines implement [`BfsEngine`] and return per-vertex depths, so the
//! harness can cross-validate them against each other before timing.

pub mod baseline_push;
pub mod cusha_like;
pub mod gunrock_like;
pub mod ligra_like;
pub mod suitesparse_like;
pub mod textbook;

use graphblas_matrix::{Graph, VertexId};

/// Depth label for unreached vertices.
pub const UNREACHED: i32 = -1;

/// A BFS implementation under benchmark.
pub trait BfsEngine: Sync {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;
    /// Run a full BFS from `source`, returning per-vertex depths
    /// ([`UNREACHED`] where not reachable).
    fn bfs(&self, g: &Graph<bool>, source: VertexId) -> Vec<i32>;
}

/// Every comparator engine, in the paper's Figure 7 column order (without
/// "this work", which lives in `graphblas_algo`).
#[must_use]
pub fn all_engines() -> Vec<Box<dyn BfsEngine>> {
    vec![
        Box::new(suitesparse_like::SuiteSparseLike),
        Box::new(cusha_like::CushaLike),
        Box::new(baseline_push::BaselinePush),
        Box::new(ligra_like::LigraLike::default()),
        Box::new(gunrock_like::GunrockLike::default()),
    ]
}

/// Number of edges a BFS traversed: the sum of degrees of reached vertices
/// (the MTEPS denominator used by Graph500 and the paper).
#[must_use]
pub fn edges_traversed(g: &Graph<bool>, depths: &[i32]) -> usize {
    depths
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHED)
        .map(|(v, _)| g.csr().degree(v))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_gen::erdos::erdos_renyi;

    #[test]
    fn all_engines_present() {
        let engines = all_engines();
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "SuiteSparse-like",
                "CuSha-like",
                "Baseline",
                "Ligra-like",
                "Gunrock-like"
            ]
        );
    }

    #[test]
    fn engines_agree_with_oracle() {
        let g = erdos_renyi(800, 4000, 77);
        let oracle = textbook::bfs_serial(&g, 0);
        for engine in all_engines() {
            let got = engine.bfs(&g, 0);
            assert_eq!(got, oracle, "{} disagrees with oracle", engine.name());
        }
    }

    #[test]
    fn edges_traversed_counts_reached_degrees() {
        let g = erdos_renyi(100, 300, 5);
        let depths = textbook::bfs_serial(&g, 0);
        let t = edges_traversed(&g, &depths);
        assert!(t <= g.n_edges());
        let reached: usize = depths.iter().filter(|&&d| d >= 0).count();
        assert!(reached >= 1);
        assert!(t > 0);
    }
}
