//! Batched (multi-vector) matvec kernels: the paper's push/pull machinery
//! applied to a `k × n` frontier batch, one direction decision per row.
//!
//! GraphBLAST (Yang et al.) observes that direction optimization
//! generalizes from SpMV/SpMSpV to multi-vector operands, and Besta et
//! al.'s push-pull analysis shows the density tradeoff holds independently
//! per source: in a batched traversal one source can sit mid-supervertex
//! (dense frontier → row-based pull) while another is still a thin wave
//! (sparse frontier → column-based push). [`mxv_batch`] is therefore
//! `GrB_mxv` over a [`MultiVector`]: it resolves a [`Direction`] *per
//! row* (from a per-source [`DirectionPolicy`], or from each row's storage,
//! or forced by the descriptor), then runs
//!
//! * [`row_masked_mxv_batch`] — the pull face: every pull row's
//!   (active-listed) output rows flattened into one `(source, chunk)`
//!   grid ([`pool::grid_chunks`]) the worker pool drains by index
//!   stealing, so lanes stay busy even when one source's frontier is tiny;
//! * [`col_masked_mxv_batch`] — the push face: every push row's frontier
//!   cut into expansion-balanced SPA chunks (the same boundaries as the
//!   single-source [`crate::MergeStrategy::SpaMerge`] kernel), all chunks drained
//!   from one flat grid, then combined per source by the deterministic
//!   k-way merge in chunk order.
//!
//! **Equivalence contract** (pinned by `tests/prop_core.rs`): a batched
//! call produces bit-identical values *and access counters* to `k`
//! independent single-source [`mxv`](crate::mxv) calls — push rows match
//! the [`crate::MergeStrategy::SpaMerge`] column kernel, pull rows match the row
//! kernel — because the per-row work, chunk boundaries, and counter
//! bookkeeping are shared code, and chunk layouts derive from sizes only
//! (never the lane count), so results are also identical at every thread
//! count.

use crate::descriptor::{Descriptor, Direction, DirectionChoice};
use crate::error::{GrbError, GrbResult};
use crate::mask::Mask;
use crate::ops::{Monoid, Scalar, Semiring};
use crate::ops_mxv::{
    expansion_offsets, filter_col_output, reduce_row, spa_chunk_ranges, spa_harvest_chunk,
    spa_merge_parts, DirectionPolicy, SendPtr, ROW_GRAIN,
};
use crate::vector::{DenseVector, MultiVector, SparseVector, Vector};
use graphblas_matrix::{Graph, RowAccess, ShardPlan, StoreRef};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::pool;
use rayon::prelude::*;

/// Batched row-based (pull) masked matvec: one dense input and one mask
/// per source, outputs computed over a flat `(source, row-chunk)` grid.
///
/// Per-source semantics and counter bookkeeping are identical to
/// [`crate::ops_mxv::row_masked_mxv`] (with an active list when the mask
/// carries one) / [`crate::ops_mxv::row_mxv`] (when `masks` is `None`).
pub fn row_masked_mxv_batch<A, X, Y, S, M>(
    s: S,
    op: &M,
    vs: &[&DenseVector<X>],
    masks: Option<&[Mask<'_>]>,
    early_exit: bool,
    counters: Option<&AccessCounters>,
) -> Vec<DenseVector<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    // The public entry has no descriptor, so it cannot opt into the
    // bit-parallel arm; `mxv_batch` passes its descriptor through the
    // inner variant below.
    row_masked_mxv_batch_impl(s, op, vs, masks, early_exit, None, counters, None)
}

/// Resolve the counters row `j` of an attributed batch charges: its own
/// per-row set when attribution is on, the shared set otherwise.
#[inline]
fn row_charge<'a>(
    counters: Option<&'a AccessCounters>,
    row_counters: Option<&'a [&'a AccessCounters]>,
    j: usize,
) -> Option<&'a AccessCounters> {
    match row_counters {
        Some(rc) => Some(rc[j]),
        None => counters,
    }
}

/// [`row_masked_mxv_batch`] with the dispatcher's descriptor, so batched
/// pulls share the single-source bit-parallel arm. The bit gating is
/// source-independent (store + semiring + descriptor), so either every
/// source gets a packed context or the whole batch runs scalar.
///
/// When `row_counters` is present (one per source), each source's
/// row-scoped charges — output-buffer allocation, mask/vector traffic, and
/// every `reduce_row` — land on that source's counters instead of the
/// shared set, and each source's chunks poll *its* checkpoints, so one
/// source's tripped limit stops only its own rows.
#[allow(clippy::too_many_arguments)]
fn row_masked_mxv_batch_impl<A, X, Y, S, M>(
    s: S,
    op: &M,
    vs: &[&DenseVector<X>],
    masks: Option<&[Mask<'_>]>,
    early_exit: bool,
    desc: Option<&Descriptor>,
    counters: Option<&AccessCounters>,
    row_counters: Option<&[&AccessCounters]>,
) -> Vec<DenseVector<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    if let Some(ms) = masks {
        assert_eq!(ms.len(), vs.len(), "one mask per batch row");
        for m in ms {
            assert_eq!(m.dim(), op.n_rows(), "mask must cover output dim");
        }
    }
    for v in vs {
        assert_eq!(op.n_cols(), v.dim(), "operand columns must match input dim");
    }
    if let Some(rc) = row_counters {
        assert_eq!(rc.len(), vs.len(), "one counter set per batch row");
    }
    let add = s.add_monoid();
    let identity = add.identity();
    let n = op.n_rows();
    // Caller-thread charge for the batch's dense output buffers; the
    // per-row checkpoints below stop the sweep itself. Attributed batches
    // charge each source for its own buffer (same aggregate bytes): a
    // denied row trips only its own counters and its chunks then bail
    // with identity results while siblings proceed.
    match row_counters {
        None => {
            if !crate::exec::charge_alloc(counters, crate::ops_mxv::output_bytes::<Y>(vs.len() * n))
            {
                return vs
                    .iter()
                    .map(|_| DenseVector::from_values(Vec::new(), identity))
                    .collect();
            }
        }
        Some(rc) => {
            for c in rc {
                let _ = c.try_charge_alloc(crate::ops_mxv::output_bytes::<Y>(n));
            }
        }
    }

    // Per-source work extents: the mask's active list when present (the
    // §3.2 amortized unvisited list); otherwise all rows — or, on a
    // hypersparse store with no masks, just the non-empty rows, with the
    // skipped empty rows' bookkeeping (`examined + 1` = 1 vector touch
    // each in `reduce_row`) charged in bulk so counter totals stay
    // bit-identical to the full-scan CSR run.
    let hyper_rows = if masks.is_none() {
        op.nonempty_rows()
    } else {
        None
    };
    let lens: Vec<usize> = match masks {
        Some(ms) => ms
            .iter()
            .map(|m| m.active_list().map_or(n, <[u32]>::len))
            .collect(),
        None => vec![hyper_rows.map_or(n, <[u32]>::len); vs.len()],
    };
    if masks.is_some() {
        for (j, &len) in lens.iter().enumerate() {
            if let Some(c) = row_charge(counters, row_counters, j) {
                c.add_mask(len as u64);
            }
        }
    }
    if let Some(rows) = hyper_rows {
        for j in 0..vs.len() {
            if let Some(c) = row_charge(counters, row_counters, j) {
                c.add_vector((n - rows.len()) as u64);
            }
        }
    }

    // Per-source bit contexts: one packed word image per source vector
    // (each charging its own `bit_word_ops`), all-or-nothing since the
    // qualification test doesn't depend on the source.
    let ctxs: Option<Vec<crate::bitops::BitPull<Y>>> = desc.and_then(|d| {
        let mut cs = Vec::with_capacity(vs.len());
        for (j, v) in vs.iter().enumerate() {
            cs.push(crate::bitops::bit_pull_ctx(
                s,
                op,
                v,
                d,
                row_charge(counters, row_counters, j),
            )?);
        }
        if cs.is_empty() {
            None
        } else {
            Some(cs)
        }
    });

    let mut outs: Vec<Vec<Y>> = vs.iter().map(|_| vec![identity; n]).collect();
    let ptrs: Vec<SendPtr<Y>> = outs.iter_mut().map(|o| SendPtr(o.as_mut_ptr())).collect();

    let grid = pool::grid_chunks(&lens, ROW_GRAIN);
    grid.into_par_iter().for_each(|(j, range)| {
        let v = vs[j];
        let mask = masks.map(|ms| &ms[j]);
        for idx in range {
            // Resolve the output row this grid index names.
            let (i, allowed) = match mask {
                Some(m) => match m.active_list() {
                    Some(active) => {
                        let i = active[idx] as usize;
                        debug_assert!(m.allows(i), "active list disagrees with mask");
                        (i, true)
                    }
                    None => {
                        // The hypersparse skip is unmasked-only: with a
                        // mask present it would bypass `m.allows`.
                        debug_assert!(hyper_rows.is_none(), "skip is gated on masks.is_none()");
                        (idx, m.allows(idx))
                    }
                },
                None => match hyper_rows {
                    Some(rows) => (rows[idx] as usize, true),
                    None => (idx, true),
                },
            };
            if allowed {
                let c = row_charge(counters, row_counters, j);
                let y = match &ctxs {
                    Some(cs) => {
                        crate::bitops::bit_reduce_row(op, &cs[j], i, identity, early_exit, c)
                    }
                    None => reduce_row(s, op, v, i, identity, early_exit, c),
                };
                // SAFETY: within a source, grid indices (and the unique
                // active-list or non-empty rows they map to) are disjoint;
                // across sources the output buffers are distinct.
                unsafe { *ptrs[j].get().add(i) = y };
            }
        }
    });

    outs.into_iter()
        .map(|vals| DenseVector::from_values(vals, identity))
        .collect()
}

/// Batched column-based (push) masked matvec: one sparse frontier and
/// (optionally) one mask per source, expanded over a flat
/// `(source, SPA-chunk)` grid and recombined per source by the
/// deterministic chunk-order merge.
///
/// Per-source semantics and counter bookkeeping are identical to the
/// single-source column kernel under [`crate::MergeStrategy::SpaMerge`] — the
/// CPU-parallel merge arm — including the final mask filter of
/// Algorithm 3 (a mask never reduces push work, Fig. 4d).
pub fn col_masked_mxv_batch<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    vs: &[&SparseVector<X>],
    masks: Option<&[Mask<'_>]>,
    counters: Option<&AccessCounters>,
) -> Vec<SparseVector<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    col_masked_mxv_batch_impl(s, op_t, vs, masks, None, counters, None)
}

/// [`col_masked_mxv_batch`] with optional per-source counter attribution:
/// each source's expansion preamble, SPA harvests, merge, and mask filter
/// charge (and poll) that source's counters, so a tripped source bails out
/// of its own chunks without touching its siblings. A shard plan routes
/// every source through the stripe-local sharded merge instead of the flat
/// chunk grid — sources then run one after another, each internally
/// parallel across its stripes, which preserves the batch ≡ `k` solo runs
/// contract (values and counters) by construction.
#[allow(clippy::too_many_arguments)]
fn col_masked_mxv_batch_impl<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    vs: &[&SparseVector<X>],
    masks: Option<&[Mask<'_>]>,
    shard: Option<&ShardPlan>,
    counters: Option<&AccessCounters>,
    row_counters: Option<&[&AccessCounters]>,
) -> Vec<SparseVector<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    if let Some(rc) = row_counters {
        assert_eq!(rc.len(), vs.len(), "one counter set per batch row");
    }
    if let Some(ms) = masks {
        assert_eq!(ms.len(), vs.len(), "one mask per batch row");
        for m in ms {
            assert_eq!(m.dim(), op_t.n_rows(), "mask must cover output dim");
        }
    }
    let add = s.add_monoid();
    let identity = add.identity();
    // Entry checkpoint: the batched column kernel's pre-expansion boundary.
    if !crate::exec::live(counters) {
        return vs
            .iter()
            .map(|_| SparseVector::from_sorted(Vec::new(), Vec::new()))
            .collect();
    }

    if let Some(plan) = shard {
        // Sharded arm: each source runs the exact single-source sharded
        // kernel (stripe-parallel inside), sources in batch order. The
        // stripe tasks of one source saturate the pool on their own, so
        // cross-source parallelism buys nothing the stripes don't already.
        return vs
            .iter()
            .enumerate()
            .map(|(j, v)| {
                let cj = row_charge(counters, row_counters, j);
                if let Some(c) = cj {
                    c.add_vector(v.nnz() as u64);
                }
                if v.nnz() == 0 {
                    return SparseVector::from_sorted(Vec::new(), Vec::new());
                }
                let (mut ids, mut vals) =
                    crate::ops_mxv::spa_merge_kernel_sharded(s, op_t, v, plan, cj);
                let mask = masks.map(|ms| &ms[j]);
                filter_col_output(&mut ids, &mut vals, mask, identity, cj);
                SparseVector::from_sorted(ids, vals)
            })
            .collect();
    }

    // Expansion preamble per source, then one flat chunk grid. Chunk
    // boundaries come from `spa_chunk_ranges`, so each source's chunking
    // is bit-identical to its single-source SpaMerge run.
    let mut items: Vec<(usize, usize, usize)> = Vec::new();
    let mut chunk_counts = vec![0usize; vs.len()];
    for (j, v) in vs.iter().enumerate() {
        let cj = row_charge(counters, row_counters, j);
        if let Some(c) = cj {
            c.add_vector(v.nnz() as u64);
        }
        if v.nnz() == 0 {
            continue;
        }
        let (offsets, total) = expansion_offsets(op_t, v);
        if let Some(c) = cj {
            c.add_matrix(total as u64);
            // One SPA scatter per product plus the harvest.
            c.add_vector(2 * total as u64);
        }
        let ranges = spa_chunk_ranges(&offsets, total);
        chunk_counts[j] = ranges.len();
        items.extend(ranges.into_iter().map(|(s0, s1)| (j, s0, s1)));
    }

    // The (source, chunk) grid: every chunk is an independent SPA harvest,
    // drained from one flat list so lanes stay busy even when one
    // source's frontier is tiny.
    let harvests: Vec<Vec<(u32, Y)>> = items
        .into_par_iter()
        .map(|(j, s0, s1)| {
            spa_harvest_chunk(
                s,
                op_t,
                vs[j],
                s0,
                s1,
                row_charge(counters, row_counters, j),
            )
        })
        .collect();

    // Per-source recombination: merge that source's chunk harvests in
    // chunk order, then apply the Algorithm 3 mask filter + identity drop.
    let mut starts = Vec::with_capacity(vs.len() + 1);
    starts.push(0usize);
    for &count in &chunk_counts {
        starts.push(starts.last().expect("non-empty") + count);
    }
    (0..vs.len())
        .into_par_iter()
        .map(|j| {
            if vs[j].nnz() == 0 {
                return SparseVector::from_sorted(Vec::new(), Vec::new());
            }
            let cj = row_charge(counters, row_counters, j);
            let parts = &harvests[starts[j]..starts[j + 1]];
            let (mut ids, mut vals) = spa_merge_parts(add, parts, cj);
            let mask = masks.map(|ms| &ms[j]);
            filter_col_output(&mut ids, &mut vals, mask, identity, cj);
            SparseVector::from_sorted(ids, vals)
        })
        .collect()
}

/// GrB_mxv over a `k × n` batch: `W(r, :) = op(A) · input(r, :)` with an
/// optional per-row mask, each row's kernel chosen independently.
///
/// Direction resolution per row `r`:
///
/// * `desc.direction == Force(d)` — every row runs `d` (ablation arms);
/// * `policies == Some(ps)` — `ps[r].update(nnz(row r), n)` decides, so
///   each source carries its own §6.3 hysteresis (or two-phase, or
///   memoryless) state across iterations;
/// * otherwise — each row's *storage* decides, the same
///   [`resolve_direction`](crate::resolve_direction) rule as `mxv`.
///
/// Every resolved decision is recorded in the counters
/// (`push_steps`/`pull_steps`), making per-source switch behaviour
/// observable. Output rows adopt the kernel's natural storage: push rows
/// come back sparse, pull rows dense — so a direction-optimized batched
/// loop hands each source the representation its next iteration wants.
///
/// ```
/// use graphblas_core::{mxv_batch, BoolOrAnd, Descriptor, MultiVector};
/// use graphblas_matrix::{Coo, Graph};
///
/// // Diamond 0 → {1, 2} → 3: one BFS step for two sources at once.
/// let mut coo = Coo::new(4, 4);
/// for &(u, v) in &[(0u32, 1u32), (0, 2), (1, 3), (2, 3)] {
///     coo.push(u, v, true);
/// }
/// let g = Graph::from_coo(&coo);
/// let batch = MultiVector::singletons(4, false, &[(0, true), (1, true)]);
/// let desc = Descriptor::new().transpose(true);
///
/// let next: MultiVector<bool> =
///     mxv_batch(None, BoolOrAnd, &g, &batch, &desc, None, None).unwrap();
/// let frontier = |r: usize| next.row(r).iter_explicit().map(|(i, _)| i).collect::<Vec<_>>();
/// assert_eq!(frontier(0), vec![1, 2], "source 0 reaches 1 and 2");
/// assert_eq!(frontier(1), vec![3], "source 1 reaches 3");
/// ```
pub fn mxv_batch<A, X, Y, S>(
    masks: Option<&[Mask<'_>]>,
    s: S,
    graph: &Graph<A>,
    input: &MultiVector<X>,
    desc: &Descriptor,
    policies: Option<&mut [DirectionPolicy]>,
    counters: Option<&AccessCounters>,
) -> GrbResult<MultiVector<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
{
    mxv_batch_attributed(masks, s, graph, input, desc, policies, counters, None)
}

/// [`mxv_batch`] with **per-row counter attribution**: `row_counters[r]`
/// (one set per batch row) receives every charge row `r`'s work causes —
/// its direction step, output-buffer allocation, mask/vector/matrix
/// traffic, SPA harvests and merge, bit-word telemetry — and row `r`'s
/// kernel chunks poll *those* counters' checkpoints, so per-row
/// [`ExecLimits`](crate::ExecLimits) installed on `row_counters[r]` stop
/// only row `r` (its chunks bail with identity results; siblings are
/// untouched). This is what lets a query service coalesce independent
/// requests into one batch while each request keeps its own counter
/// snapshot, deadline, and budget.
///
/// Batch-scoped charges that no single row owns — the storage-conversion
/// bytes of [`FormatPolicy`](crate::FormatPolicy) planning and
/// `bitmap_degrades` — stay on the shared `counters`. At the end of the
/// call every row counter's growth is folded into `counters` via
/// [`AccessCounters::absorb`], so the shared aggregate is identical to an
/// unattributed `mxv_batch` of the same batch (the callers' existing
/// batch ≡ k-singles counter contract is preserved; pinned by this
/// module's tests).
///
/// `row_counters` must be disjoint from `counters` (folding into an
/// aliased set would double-charge). With `row_counters = None` this is
/// exactly [`mxv_batch`].
#[allow(clippy::too_many_arguments)]
pub fn mxv_batch_attributed<A, X, Y, S>(
    masks: Option<&[Mask<'_>]>,
    s: S,
    graph: &Graph<A>,
    input: &MultiVector<X>,
    desc: &Descriptor,
    mut policies: Option<&mut [DirectionPolicy]>,
    counters: Option<&AccessCounters>,
    row_counters: Option<&[&AccessCounters]>,
) -> GrbResult<MultiVector<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
{
    // Dims are validated on the baseline CSR; kernel stores come from the
    // resolved format below.
    let operand = if desc.transpose {
        graph.csr_t()
    } else {
        graph.csr()
    };
    let k = input.k();
    if operand.n_cols() != input.dim() {
        return Err(GrbError::DimensionMismatch {
            context: "mxv_batch input batch",
            expected: operand.n_cols(),
            actual: input.dim(),
        });
    }
    if let Some(ms) = masks {
        if ms.len() != k {
            return Err(GrbError::DimensionMismatch {
                context: "mxv_batch mask count",
                expected: k,
                actual: ms.len(),
            });
        }
        for m in ms {
            if m.dim() != operand.n_rows() {
                return Err(GrbError::DimensionMismatch {
                    context: "mxv_batch mask",
                    expected: operand.n_rows(),
                    actual: m.dim(),
                });
            }
        }
    }
    if let Some(ps) = policies.as_deref() {
        if ps.len() != k {
            return Err(GrbError::DimensionMismatch {
                context: "mxv_batch policies",
                expected: k,
                actual: ps.len(),
            });
        }
    }
    if let Some(rc) = row_counters {
        if rc.len() != k {
            return Err(GrbError::DimensionMismatch {
                context: "mxv_batch row counters",
                expected: k,
                actual: rc.len(),
            });
        }
    }

    // Pre-flight stop poll, as in `mxv`.
    crate::exec::check_stop(counters)?;

    // Attribution baselines: each row counter's growth over this call is
    // folded into the shared set before returning, keeping the shared
    // aggregate identical to an unattributed run.
    let baselines: Option<Vec<graphblas_primitives::counters::CounterSnapshot>> =
        row_counters.map(|rc| rc.iter().map(|c| c.snapshot()).collect());

    // Per-row direction resolution.
    let n = input.dim();
    let dirs: Vec<Direction> = (0..k)
        .map(|r| match desc.direction {
            DirectionChoice::Force(d) => d,
            DirectionChoice::Auto => match policies.as_deref_mut() {
                Some(ps) => ps[r].update(input.row(r).nnz(), n),
                None => {
                    if input.row(r).is_sparse() {
                        Direction::Push
                    } else {
                        Direction::Pull
                    }
                }
            },
        })
        .collect();
    for (r, d) in dirs.iter().enumerate() {
        if let Some(c) = row_charge(counters, row_counters, r) {
            match d {
                Direction::Push => c.add_push_step(),
                Direction::Pull => c.add_pull_step(),
            }
        }
    }
    let push_rows: Vec<usize> = (0..k).filter(|&r| dirs[r] == Direction::Push).collect();
    let pull_rows: Vec<usize> = (0..k).filter(|&r| dirs[r] == Direction::Pull).collect();

    let identity = s.add_monoid().identity();
    let mut out_rows: Vec<Option<Vector<Y>>> = (0..k).map(|_| None).collect();

    // One storage format serves the whole batch call (per-row directions
    // stay independent); the faces below fetch their operand in it. As in
    // `mxv`, the format changes wall clock only — per-row work and
    // counters are format-invariant.
    let format = crate::plan::resolve_format_batch(graph, desc);
    crate::plan::note_bitmap_degrade(desc, format, counters);

    // Push face: sparse inputs (converting dense rows as `mxv` does),
    // masks subset in row order.
    if !push_rows.is_empty() {
        let owned: Vec<Option<SparseVector<X>>> = push_rows
            .iter()
            .map(|&r| match input.row(r).as_sparse() {
                Some(_) => None,
                None => Some(input.row(r).to_sparse()),
            })
            .collect();
        let svs: Vec<&SparseVector<X>> = push_rows
            .iter()
            .zip(&owned)
            .map(|(&r, o)| {
                o.as_ref()
                    .unwrap_or_else(|| input.row(r).as_sparse().expect("sparse by construction"))
            })
            .collect();
        let sub_masks: Option<Vec<Mask<'_>>> =
            masks.map(|ms| push_rows.iter().map(|&r| ms[r]).collect());
        let sub_rc: Option<Vec<&AccessCounters>> =
            row_counters.map(|rc| push_rows.iter().map(|&r| rc[r]).collect());
        // Shard resolution for the push face, as in `mxv`: the grid
        // partitions the transpose-of-operand side the column kernel reads.
        let shard_plan = crate::plan::resolve_shards(graph, desc.transpose, Direction::Push, desc)
            .map(|grid| crate::ops_mxv::shard_plan_for(graph, !desc.transpose, grid));
        let shard = shard_plan.as_deref();
        let outs = match crate::exec::store_budgeted(graph, !desc.transpose, format, counters) {
            StoreRef::Csr(m) => col_masked_mxv_batch_impl(
                s,
                m,
                &svs,
                sub_masks.as_deref(),
                shard,
                counters,
                sub_rc.as_deref(),
            ),
            StoreRef::Bitmap(m) => col_masked_mxv_batch_impl(
                s,
                m,
                &svs,
                sub_masks.as_deref(),
                shard,
                counters,
                sub_rc.as_deref(),
            ),
            StoreRef::Dcsr(m) => col_masked_mxv_batch_impl(
                s,
                m,
                &svs,
                sub_masks.as_deref(),
                shard,
                counters,
                sub_rc.as_deref(),
            ),
        };
        for (&r, sv) in push_rows.iter().zip(outs) {
            let (ids, vals) = (sv.ids().to_vec(), sv.vals().to_vec());
            out_rows[r] = Some(Vector::from_sparse(operand.n_rows(), identity, ids, vals));
        }
    }

    // Pull face: dense inputs; early-exit only applies to masked pulls,
    // exactly as in the single-source dispatch.
    if !pull_rows.is_empty() {
        let owned: Vec<Option<DenseVector<X>>> = pull_rows
            .iter()
            .map(|&r| match input.row(r).as_dense() {
                Some(_) => None,
                None => Some(input.row(r).to_dense()),
            })
            .collect();
        let dvs: Vec<&DenseVector<X>> = pull_rows
            .iter()
            .zip(&owned)
            .map(|(&r, o)| {
                o.as_ref()
                    .unwrap_or_else(|| input.row(r).as_dense().expect("dense by construction"))
            })
            .collect();
        let sub_masks: Option<Vec<Mask<'_>>> =
            masks.map(|ms| pull_rows.iter().map(|&r| ms[r]).collect());
        let sub_rc: Option<Vec<&AccessCounters>> =
            row_counters.map(|rc| pull_rows.iter().map(|&r| rc[r]).collect());
        let early_exit = masks.is_some() && desc.early_exit;
        let outs = match crate::exec::store_budgeted(graph, desc.transpose, format, counters) {
            StoreRef::Csr(m) => row_masked_mxv_batch_impl(
                s,
                m,
                &dvs,
                sub_masks.as_deref(),
                early_exit,
                Some(desc),
                counters,
                sub_rc.as_deref(),
            ),
            StoreRef::Bitmap(m) => row_masked_mxv_batch_impl(
                s,
                m,
                &dvs,
                sub_masks.as_deref(),
                early_exit,
                Some(desc),
                counters,
                sub_rc.as_deref(),
            ),
            StoreRef::Dcsr(m) => row_masked_mxv_batch_impl(
                s,
                m,
                &dvs,
                sub_masks.as_deref(),
                early_exit,
                Some(desc),
                counters,
                sub_rc.as_deref(),
            ),
        };
        for (&r, dv) in pull_rows.iter().zip(outs) {
            out_rows[r] = Some(Vector::Dense(dv));
        }
    }

    // Fold each row's attributed work into the shared aggregate (before
    // the stop poll, so even an aborting batch accounts the work it did).
    // A row that tripped its own limits keeps its partial tallies here;
    // the caller restores that row's counters when it retires the row.
    if let (Some(rc), Some(base)) = (row_counters, baselines.as_ref()) {
        if let Some(shared) = counters {
            for (c, b) in rc.iter().zip(base) {
                shared.absorb(&c.snapshot().delta_since(b));
            }
        }
    }

    // Post-kernel poll: a checkpoint bail inside either face left
    // identity-shaped partial rows that must not escape. Per-row trips are
    // *not* batch errors: the caller inspects each row counter's
    // `stop_reason` and retires tripped rows individually.
    crate::exec::check_stop(counters)?;
    Ok(MultiVector::from_rows(
        out_rows
            .into_iter()
            .map(|r| r.expect("every row dispatched"))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::MergeStrategy;
    use crate::ops::{BoolOrAnd, PlusSecond};
    use crate::{mxv, resolve_direction};
    use graphblas_matrix::Coo;
    use graphblas_primitives::BitVec;

    fn diamond() -> Graph<bool> {
        // 0 → {1, 2} → 3, plus 4 isolated.
        let mut coo = Coo::new(5, 5);
        for &(u, v) in &[(0u32, 1u32), (0, 2), (1, 3), (2, 3)] {
            coo.push(u, v, true);
        }
        Graph::from_coo(&coo)
    }

    fn desc_bfs() -> Descriptor {
        Descriptor::new().transpose(true)
    }

    fn explicit(v: &Vector<bool>) -> Vec<u32> {
        v.iter_explicit().map(|(i, _)| i).collect()
    }

    #[test]
    fn batch_matches_per_row_mxv_both_directions() {
        let g = diamond();
        let batch = MultiVector::singletons(5, false, &[(0, true), (1, true), (4, true)]);
        let bits: Vec<BitVec> = (0..3).map(|_| BitVec::new(5)).collect();
        let masks: Vec<Mask<'_>> = bits.iter().map(Mask::complement).collect();
        for dir in [Direction::Push, Direction::Pull] {
            let desc = desc_bfs().force(dir);
            let out: MultiVector<bool> =
                mxv_batch(Some(&masks), BoolOrAnd, &g, &batch, &desc, None, None).unwrap();
            for (r, mask) in masks.iter().enumerate() {
                let single: Vector<bool> = mxv(
                    Some(mask),
                    BoolOrAnd,
                    &g,
                    batch.row(r),
                    &desc.merge_strategy(MergeStrategy::SpaMerge),
                    None,
                )
                .unwrap();
                assert_eq!(explicit(out.row(r)), explicit(&single), "{dir:?} row {r}");
            }
        }
    }

    #[test]
    fn per_row_policies_switch_independently() {
        let g = diamond();
        // Row 0: dense-ish frontier (3 of 5 > threshold, rising) → pull.
        // Row 1: singleton (1/5 < threshold with high bar) → push.
        let rows = vec![
            Vector::from_sparse(5, false, vec![0, 1, 2], vec![true; 3]),
            Vector::singleton(5, false, 4, true),
        ];
        let batch = MultiVector::from_rows(rows);
        let mut policies = vec![DirectionPolicy::hysteresis(0.25); 2];
        let c = AccessCounters::new();
        let out: MultiVector<bool> = mxv_batch(
            None,
            BoolOrAnd,
            &g,
            &batch,
            &desc_bfs(),
            Some(&mut policies),
            Some(&c),
        )
        .unwrap();
        assert_eq!(policies[0].current(), Direction::Pull);
        assert_eq!(policies[1].current(), Direction::Push);
        let snap = c.snapshot();
        assert_eq!(snap.pull_steps, 1, "one row pulled");
        assert_eq!(snap.push_steps, 1, "one row pushed");
        // Output storage follows the per-row kernel.
        assert!(!out.row(0).is_sparse());
        assert!(out.row(1).is_sparse());
    }

    #[test]
    fn storage_dispatch_mirrors_resolve_direction() {
        let g = diamond();
        let mut dense_row = Vector::singleton(5, false, 0, true);
        dense_row.make_dense();
        let sparse_row = Vector::singleton(5, false, 1, true);
        assert_eq!(
            resolve_direction(&dense_row, &desc_bfs()),
            Direction::Pull,
            "sanity: same rule as mxv"
        );
        let batch = MultiVector::from_rows(vec![dense_row, sparse_row]);
        let c = AccessCounters::new();
        let _: MultiVector<bool> =
            mxv_batch(None, BoolOrAnd, &g, &batch, &desc_bfs(), None, Some(&c)).unwrap();
        let snap = c.snapshot();
        assert_eq!((snap.pull_steps, snap.push_steps), (1, 1));
    }

    #[test]
    fn weighted_batch_matches_single_runs() {
        // PlusSecond over f64: σ-style accumulation, the BC forward step.
        let mut coo = Coo::new(4, 4);
        for &(u, v) in &[(0u32, 2u32), (1, 2), (0, 3), (2, 3)] {
            coo.push(u, v, true);
        }
        let g = Graph::from_coo(&coo);
        let rows = vec![
            Vector::from_sparse(4, 0.0f64, vec![0, 1], vec![1.0, 2.0]),
            Vector::from_sparse(4, 0.0f64, vec![2], vec![5.0]),
        ];
        let batch = MultiVector::from_rows(rows);
        let desc = desc_bfs().force(Direction::Push);
        let out: MultiVector<f64> =
            mxv_batch(None, PlusSecond, &g, &batch, &desc, None, None).unwrap();
        assert_eq!(out.row(0).get(2), 3.0, "σ(2) = 1 + 2");
        assert_eq!(out.row(0).get(3), 1.0);
        assert_eq!(out.row(1).get(3), 5.0);
    }

    #[test]
    fn batch_dimension_mismatches_reported() {
        let g = diamond();
        let wrong = MultiVector::<bool>::new_sparse(2, 4, false);
        let r: GrbResult<MultiVector<bool>> =
            mxv_batch(None, BoolOrAnd, &g, &wrong, &desc_bfs(), None, None);
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));

        let ok = MultiVector::<bool>::new_sparse(2, 5, false);
        let bits = BitVec::new(5);
        let one_mask = [Mask::new(&bits)];
        let r: GrbResult<MultiVector<bool>> =
            mxv_batch(Some(&one_mask), BoolOrAnd, &g, &ok, &desc_bfs(), None, None);
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));

        let mut short_policies = vec![DirectionPolicy::hysteresis(0.01)];
        let r: GrbResult<MultiVector<bool>> = mxv_batch(
            None,
            BoolOrAnd,
            &g,
            &ok,
            &desc_bfs(),
            Some(&mut short_policies),
            None,
        );
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));
    }

    #[test]
    fn empty_rows_cost_nothing_and_stay_empty() {
        let g = diamond();
        let batch = MultiVector::<bool>::new_sparse(3, 5, false);
        let c = AccessCounters::new();
        let desc = desc_bfs().force(Direction::Push);
        let out: MultiVector<bool> =
            mxv_batch(None, BoolOrAnd, &g, &batch, &desc, None, Some(&c)).unwrap();
        assert_eq!(out.nnz(), 0);
        let snap = c.snapshot();
        assert_eq!(snap.matrix, 0, "no expansion for empty frontiers");
        assert_eq!(snap.sort, 0);
    }

    /// A mixed-direction batch (row 0 dense → pull, rows 1–2 sparse → push).
    fn attribution_batch() -> MultiVector<bool> {
        let mut dense_row = Vector::from_sparse(5, false, vec![0, 1, 2], vec![true; 3]);
        dense_row.make_dense();
        MultiVector::from_rows(vec![
            dense_row,
            Vector::singleton(5, false, 0, true),
            Vector::singleton(5, false, 2, true),
        ])
    }

    #[test]
    fn attributed_rows_match_their_solo_runs() {
        let batch = attribution_batch();
        let rows: Vec<AccessCounters> = (0..3).map(|_| AccessCounters::new()).collect();
        let row_refs: Vec<&AccessCounters> = rows.iter().collect();
        let shared = AccessCounters::new();
        let out: MultiVector<bool> = mxv_batch_attributed(
            None,
            BoolOrAnd,
            &diamond(),
            &batch,
            &desc_bfs(),
            None,
            Some(&shared),
            Some(&row_refs),
        )
        .unwrap();
        for (r, row) in rows.iter().enumerate() {
            // Solo = the same row as a k=1 attributed batch on a fresh graph
            // (fresh FormatCache keeps batch-scoped conversion charges out of
            // the comparison; they live on the shared set either way).
            let solo_row = AccessCounters::new();
            let solo_shared = AccessCounters::new();
            let single = MultiVector::from_rows(vec![batch.row(r).clone()]);
            let solo: MultiVector<bool> = mxv_batch_attributed(
                None,
                BoolOrAnd,
                &diamond(),
                &single,
                &desc_bfs(),
                None,
                Some(&solo_shared),
                Some(&[&solo_row]),
            )
            .unwrap();
            assert_eq!(
                explicit(out.row(r)),
                explicit(solo.row(0)),
                "row {r} values"
            );
            assert_eq!(
                row.snapshot(),
                solo_row.snapshot(),
                "row {r} attributed counters ≠ solo run"
            );
        }
    }

    #[test]
    fn attribution_fold_keeps_the_shared_aggregate_identical() {
        let batch = attribution_batch();
        let rows: Vec<AccessCounters> = (0..3).map(|_| AccessCounters::new()).collect();
        let row_refs: Vec<&AccessCounters> = rows.iter().collect();
        let attributed_shared = AccessCounters::new();
        let a: MultiVector<bool> = mxv_batch_attributed(
            None,
            BoolOrAnd,
            &diamond(),
            &batch,
            &desc_bfs(),
            None,
            Some(&attributed_shared),
            Some(&row_refs),
        )
        .unwrap();
        let plain_shared = AccessCounters::new();
        let b: MultiVector<bool> = mxv_batch(
            None,
            BoolOrAnd,
            &diamond(),
            &batch,
            &desc_bfs(),
            None,
            Some(&plain_shared),
        )
        .unwrap();
        for r in 0..3 {
            assert_eq!(explicit(a.row(r)), explicit(b.row(r)), "row {r}");
        }
        assert_eq!(
            attributed_shared.snapshot(),
            plain_shared.snapshot(),
            "fold-at-end must keep the aggregate identical to an unattributed run"
        );
        let total_rows: u64 = rows.iter().map(|c| c.snapshot().matrix).sum();
        assert_eq!(total_rows, plain_shared.snapshot().matrix);
    }

    #[test]
    fn tripped_row_counter_stops_only_its_row() {
        use crate::{ExecLimits, StopReason};

        let batch = attribution_batch();
        let rows: Vec<AccessCounters> = (0..3).map(|_| AccessCounters::new()).collect();
        // Row 1 carries an already-expired deadline; its chunks bail at the
        // first checkpoint while siblings run to completion.
        rows[1].install_limits(&ExecLimits::none().with_deadline(std::time::Duration::ZERO));
        let row_refs: Vec<&AccessCounters> = rows.iter().collect();
        let shared = AccessCounters::new();
        let out: MultiVector<bool> = mxv_batch_attributed(
            None,
            BoolOrAnd,
            &diamond(),
            &batch,
            &desc_bfs(),
            None,
            Some(&shared),
            Some(&row_refs),
        )
        .unwrap();
        assert_eq!(rows[1].stop_reason(), Some(StopReason::Deadline));
        assert_eq!(rows[0].stop_reason(), None);
        assert_eq!(rows[2].stop_reason(), None);

        // Siblings are bit-identical to an untripped run.
        let clean: MultiVector<bool> =
            mxv_batch(None, BoolOrAnd, &diamond(), &batch, &desc_bfs(), None, None).unwrap();
        assert_eq!(explicit(out.row(0)), explicit(clean.row(0)));
        assert_eq!(explicit(out.row(2)), explicit(clean.row(2)));
    }

    #[test]
    fn row_counter_count_mismatch_reported() {
        let g = diamond();
        let batch = MultiVector::<bool>::new_sparse(2, 5, false);
        let one = AccessCounters::new();
        let r: GrbResult<MultiVector<bool>> = mxv_batch_attributed(
            None,
            BoolOrAnd,
            &g,
            &batch,
            &desc_bfs(),
            None,
            None,
            Some(&[&one]),
        );
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));
    }
}
