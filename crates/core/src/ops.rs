//! Generalized semirings (§3.2 "Generalized semirings").
//!
//! GraphBLAS replaces `(ℝ, ×, +, 0)` with an arbitrary `(D, ⊗, ⊕, I)`:
//! BFS runs over the Boolean semiring `({0,1}, AND, OR, 0)`, SSSP over
//! min-plus, PageRank over plus-times. Two properties of the ⊕ monoid are
//! surfaced explicitly because the paper's optimizations key off them:
//!
//! * **annihilator** — an element `z` with `z ⊕ x = z` for all `x`. When it
//!   exists, a row reduction may stop as soon as the accumulator reaches
//!   `z`; that is the paper's *early-exit* (Optimization 3), the
//!   short-circuit `OR` of Algorithm 2 line 8, generalized beyond Booleans.
//! * **`MULT_IGNORES_A`** — the ⊗ operator never reads the matrix value.
//!   When true, kernels skip loading matrix values and the column kernel
//!   runs a key-only sort; that is *structure-only* (Optimization 5).

use std::fmt::Debug;

/// Element types storable in vectors and matrices.
pub trait Scalar: Copy + Send + Sync + PartialEq + Debug + 'static {}
impl<T: Copy + Send + Sync + PartialEq + Debug + 'static> Scalar for T {}

/// A commutative monoid `(T, ⊕, identity)` used as the "add" of a semiring.
pub trait Monoid<T: Scalar>: Copy + Send + Sync {
    /// The identity element `I` (the semiring's "zero").
    fn identity(&self) -> T;
    /// The associative, commutative combine `⊕`.
    fn op(&self, a: T, b: T) -> T;
    /// Absorbing element `z` (with `z ⊕ x = z` ∀x), when one exists.
    /// Reaching it permits early-exit from a reduction.
    fn annihilator(&self) -> Option<T> {
        None
    }
}

/// A semiring `(D, ⊗, ⊕, I)`: `mult` maps a matrix element of type `A` and
/// a vector element of type `X` to a product of type `Y`; `Add` reduces the
/// products.
pub trait Semiring<A: Scalar, X: Scalar, Y: Scalar>: Copy + Send + Sync {
    /// The ⊕ monoid over the output domain.
    type Add: Monoid<Y>;
    /// Access the ⊕ monoid instance.
    fn add_monoid(&self) -> Self::Add;
    /// The ⊗ operator.
    fn mult(&self, a: A, x: X) -> Y;
    /// `true` when ⊗ ignores its matrix operand, enabling structure-only.
    const MULT_IGNORES_A: bool = false;
    /// When `Some(c)`, the caller may assume every product of a stored
    /// matrix entry with an *explicit* input entry equals `c`. This is the
    /// structure-only contract (§5.5): with it, the column kernel drops the
    /// value payload entirely and radix-sorts bare keys. `BoolStructure`
    /// over an all-`true` BFS frontier satisfies it with `c = true`.
    fn product_hint(&self) -> Option<Y> {
        None
    }
}

/// Numeric scalar support needed by the stock monoids/semirings, avoiding
/// an external `num-traits` dependency.
pub trait SemiringNum: Scalar + PartialOrd {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Largest representable value (the min-plus identity "∞").
    const MAX_VALUE: Self;
    /// Smallest representable value (the max identity "−∞").
    const MIN_VALUE: Self;
    /// Addition.
    fn add(self, other: Self) -> Self;
    /// Multiplication.
    fn mul(self, other: Self) -> Self;
    /// Minimum.
    fn min_of(self, other: Self) -> Self;
    /// Maximum.
    fn max_of(self, other: Self) -> Self;
}

macro_rules! impl_semiring_num_int {
    ($($t:ty),*) => {$(
        impl SemiringNum for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MAX_VALUE: Self = <$t>::MAX;
            const MIN_VALUE: Self = <$t>::MIN;
            #[inline] fn add(self, other: Self) -> Self { self.saturating_add(other) }
            #[inline] fn mul(self, other: Self) -> Self { self.saturating_mul(other) }
            #[inline] fn min_of(self, other: Self) -> Self { self.min(other) }
            #[inline] fn max_of(self, other: Self) -> Self { self.max(other) }
        }
    )*};
}
impl_semiring_num_int!(i32, i64, u32, u64, usize);

macro_rules! impl_semiring_num_float {
    ($($t:ty),*) => {$(
        impl SemiringNum for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const MAX_VALUE: Self = <$t>::INFINITY;
            const MIN_VALUE: Self = <$t>::NEG_INFINITY;
            #[inline] fn add(self, other: Self) -> Self { self + other }
            #[inline] fn mul(self, other: Self) -> Self { self * other }
            #[inline] fn min_of(self, other: Self) -> Self { self.min(other) }
            #[inline] fn max_of(self, other: Self) -> Self { self.max(other) }
        }
    )*};
}
impl_semiring_num_float!(f32, f64);

// ---------------------------------------------------------------------------
// Monoids
// ---------------------------------------------------------------------------

/// Logical OR over `bool` — identity `false`, annihilator `true`.
#[derive(Copy, Clone, Debug, Default)]
pub struct OrMonoid;
impl Monoid<bool> for OrMonoid {
    #[inline]
    fn identity(&self) -> bool {
        false
    }
    #[inline]
    fn op(&self, a: bool, b: bool) -> bool {
        a || b
    }
    #[inline]
    fn annihilator(&self) -> Option<bool> {
        Some(true)
    }
}

/// Logical AND over `bool` — identity `true`, annihilator `false`.
#[derive(Copy, Clone, Debug, Default)]
pub struct AndMonoid;
impl Monoid<bool> for AndMonoid {
    #[inline]
    fn identity(&self) -> bool {
        true
    }
    #[inline]
    fn op(&self, a: bool, b: bool) -> bool {
        a && b
    }
    #[inline]
    fn annihilator(&self) -> Option<bool> {
        Some(false)
    }
}

/// Numeric `+` monoid — identity `0`, no annihilator.
#[derive(Copy, Clone, Debug, Default)]
pub struct PlusMonoid;
impl<T: SemiringNum> Monoid<T> for PlusMonoid {
    #[inline]
    fn identity(&self) -> T {
        T::ZERO
    }
    #[inline]
    fn op(&self, a: T, b: T) -> T {
        a.add(b)
    }
}

/// Numeric `min` monoid — identity `+∞`/`MAX`, annihilator `−∞`/`MIN`.
#[derive(Copy, Clone, Debug, Default)]
pub struct MinMonoid;
impl<T: SemiringNum> Monoid<T> for MinMonoid {
    #[inline]
    fn identity(&self) -> T {
        T::MAX_VALUE
    }
    #[inline]
    fn op(&self, a: T, b: T) -> T {
        a.min_of(b)
    }
    #[inline]
    fn annihilator(&self) -> Option<T> {
        Some(T::MIN_VALUE)
    }
}

/// Numeric `max` monoid — identity `−∞`/`MIN`, annihilator `+∞`/`MAX`.
#[derive(Copy, Clone, Debug, Default)]
pub struct MaxMonoid;
impl<T: SemiringNum> Monoid<T> for MaxMonoid {
    #[inline]
    fn identity(&self) -> T {
        T::MIN_VALUE
    }
    #[inline]
    fn op(&self, a: T, b: T) -> T {
        a.max_of(b)
    }
    #[inline]
    fn annihilator(&self) -> Option<T> {
        Some(T::MAX_VALUE)
    }
}

// ---------------------------------------------------------------------------
// Semirings
// ---------------------------------------------------------------------------

/// The BFS semiring `({0,1}, AND, OR, 0)` from Algorithm 1.
///
/// `MULT_IGNORES_A` is *false* here: ⊗ = AND reads the matrix value. Use
/// [`BoolStructure`] for the structure-only variant that treats matrix
/// entry *existence* as `true` (§5.5) — for 0/1 adjacency matrices the two
/// produce identical results, which `graphblas_algo` relies on.
#[derive(Copy, Clone, Debug, Default)]
pub struct BoolOrAnd;
impl Semiring<bool, bool, bool> for BoolOrAnd {
    type Add = OrMonoid;
    #[inline]
    fn add_monoid(&self) -> OrMonoid {
        OrMonoid
    }
    #[inline]
    fn mult(&self, a: bool, x: bool) -> bool {
        a && x
    }
}

/// Structure-only Boolean semiring: ⊗ ignores the matrix value entirely,
/// treating stored-entry existence as Boolean 1 (§5.5).
#[derive(Copy, Clone, Debug, Default)]
pub struct BoolStructure;
impl<A: Scalar> Semiring<A, bool, bool> for BoolStructure {
    type Add = OrMonoid;
    #[inline]
    fn add_monoid(&self) -> OrMonoid {
        OrMonoid
    }
    #[inline]
    fn mult(&self, _a: A, x: bool) -> bool {
        x
    }
    const MULT_IGNORES_A: bool = true;
    #[inline]
    fn product_hint(&self) -> Option<bool> {
        // Explicit frontier entries are `true`, so every product is `true`.
        Some(true)
    }
}

/// Min-plus (tropical) semiring for SSSP: `(T, +, min, ∞)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct MinPlus;
impl<T: SemiringNum> Semiring<T, T, T> for MinPlus {
    type Add = MinMonoid;
    #[inline]
    fn add_monoid(&self) -> MinMonoid {
        MinMonoid
    }
    #[inline]
    fn mult(&self, a: T, x: T) -> T {
        a.add(x)
    }
}

/// Conventional arithmetic semiring for PageRank: `(T, ×, +, 0)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct PlusTimes;
impl<T: SemiringNum> Semiring<T, T, T> for PlusTimes {
    type Add = PlusMonoid;
    #[inline]
    fn add_monoid(&self) -> PlusMonoid {
        PlusMonoid
    }
    #[inline]
    fn mult(&self, a: T, x: T) -> T {
        a.mul(x)
    }
}

/// Plus-second semiring: ⊗ returns the vector operand, ignoring the matrix
/// value — PageRank over an unweighted (pattern) adjacency matrix.
#[derive(Copy, Clone, Debug, Default)]
pub struct PlusSecond;
impl<A: Scalar, T: SemiringNum> Semiring<A, T, T> for PlusSecond {
    type Add = PlusMonoid;
    #[inline]
    fn add_monoid(&self) -> PlusMonoid {
        PlusMonoid
    }
    #[inline]
    fn mult(&self, _a: A, x: T) -> T {
        x
    }
    const MULT_IGNORES_A: bool = true;
}

/// Min-second semiring: connected-components style label propagation over a
/// pattern matrix (take the neighbor's label, reduce with min).
#[derive(Copy, Clone, Debug, Default)]
pub struct MinSecond;
impl<A: Scalar, T: SemiringNum> Semiring<A, T, T> for MinSecond {
    type Add = MinMonoid;
    #[inline]
    fn add_monoid(&self) -> MinMonoid {
        MinMonoid
    }
    #[inline]
    fn mult(&self, _a: A, x: T) -> T {
        x
    }
    const MULT_IGNORES_A: bool = true;
}

/// Max-second semiring: label propagation taking the maximum label.
#[derive(Copy, Clone, Debug, Default)]
pub struct MaxSecond;
impl<A: Scalar, T: SemiringNum> Semiring<A, T, T> for MaxSecond {
    type Add = MaxMonoid;
    #[inline]
    fn add_monoid(&self) -> MaxMonoid {
        MaxMonoid
    }
    #[inline]
    fn mult(&self, _a: A, x: T) -> T {
        x
    }
    const MULT_IGNORES_A: bool = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_monoid_laws() {
        let m = OrMonoid;
        for a in [false, true] {
            assert_eq!(m.op(a, m.identity()), a, "identity law");
            assert!(m.op(m.annihilator().unwrap(), a), "annihilator law");
            for b in [false, true] {
                assert_eq!(m.op(a, b), m.op(b, a), "commutativity");
            }
        }
    }

    #[test]
    fn and_monoid_laws() {
        let m = AndMonoid;
        for a in [false, true] {
            assert_eq!(m.op(a, m.identity()), a);
            assert!(!m.op(m.annihilator().unwrap(), a));
        }
    }

    #[test]
    fn plus_monoid_over_ints_and_floats() {
        let m = PlusMonoid;
        assert_eq!(Monoid::<i64>::identity(&m), 0);
        assert_eq!(m.op(2i64, 3i64), 5);
        assert_eq!(m.op(2.5f64, 0.5f64), 3.0);
        assert_eq!(Monoid::<i64>::annihilator(&m), None);
    }

    #[test]
    fn min_monoid_identity_is_infinity() {
        let m = MinMonoid;
        assert_eq!(Monoid::<f64>::identity(&m), f64::INFINITY);
        assert_eq!(m.op(3.0f64, f64::INFINITY), 3.0);
        assert_eq!(m.op(3.0f64, 1.0), 1.0);
        assert_eq!(Monoid::<u32>::identity(&m), u32::MAX);
    }

    #[test]
    fn max_monoid() {
        let m = MaxMonoid;
        assert_eq!(Monoid::<i32>::identity(&m), i32::MIN);
        assert_eq!(m.op(3i32, 7), 7);
        assert_eq!(Monoid::<i32>::annihilator(&m), Some(i32::MAX));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the const contract
    fn bool_semiring_matches_algorithm1() {
        let s = BoolOrAnd;
        assert!(s.mult(true, true));
        assert!(!s.mult(true, false));
        assert!(!s.mult(false, true));
        let add = s.add_monoid();
        assert!(!add.identity());
        assert_eq!(add.annihilator(), Some(true), "enables early-exit");
        assert!(!<BoolOrAnd as Semiring<bool, bool, bool>>::MULT_IGNORES_A);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the const contract
    fn structure_only_semiring_ignores_matrix_value() {
        let s = BoolStructure;
        // Matrix value type can be anything; it is never read.
        assert!(Semiring::<f64, bool, bool>::mult(&s, 123.0, true));
        assert!(!Semiring::<f64, bool, bool>::mult(&s, 123.0, false));
        assert!(<BoolStructure as Semiring<f64, bool, bool>>::MULT_IGNORES_A);
    }

    #[test]
    fn min_plus_relaxation() {
        let s = MinPlus;
        // Edge weight 2.0 from a vertex at distance 3.0 offers 5.0.
        assert_eq!(Semiring::<f64, f64, f64>::mult(&s, 2.0, 3.0), 5.0);
        let add = Semiring::<f64, f64, f64>::add_monoid(&s);
        assert_eq!(add.op(5.0, 4.0), 4.0);
        assert_eq!(Monoid::<f64>::identity(&add), f64::INFINITY);
    }

    #[test]
    fn plus_times_dot_product() {
        let s = PlusTimes;
        let add = Semiring::<f64, f64, f64>::add_monoid(&s);
        let mut acc = Monoid::<f64>::identity(&add);
        for (a, x) in [(1.0, 2.0), (3.0, 4.0)] {
            acc = add.op(acc, Semiring::<f64, f64, f64>::mult(&s, a, x));
        }
        assert_eq!(acc, 14.0);
    }

    #[test]
    fn second_semirings_for_label_propagation() {
        let min_s = MinSecond;
        assert_eq!(Semiring::<bool, u32, u32>::mult(&min_s, true, 42), 42);
        let max_s = MaxSecond;
        assert_eq!(Semiring::<bool, u32, u32>::mult(&max_s, false, 42), 42);
        let plus_s = PlusSecond;
        assert_eq!(Semiring::<bool, f32, f32>::mult(&plus_s, true, 0.25), 0.25);
    }

    #[test]
    fn saturating_integer_arithmetic() {
        assert_eq!(
            u32::MAX.add(1),
            u32::MAX,
            "min-plus over ints must not wrap"
        );
        assert_eq!(i32::MAX.mul(2), i32::MAX);
    }
}
