//! Matrix-level GraphBLAS operations: eWiseAdd/eWiseMult over CSR pairs,
//! row-wise reduction to a vector, and submatrix extraction — the rest of
//! the GrB op family Algorithm 1's relatives need (degree vectors for
//! PageRank's transition matrix, pattern intersection for k-truss-style
//! analytics, block extraction for batched algorithms).

use crate::ops::{Monoid, Scalar};
use crate::vector::{DenseVector, Vector};
use graphblas_matrix::{Csr, VertexId};
use rayon::prelude::*;

/// GrB_eWiseMult on matrices (intersection semantics): keep entries present
/// in *both* operands, combining values with `op`.
#[must_use]
pub fn matrix_ewise_mult<A, B, Y, F>(a: &Csr<A>, b: &Csr<B>, op: F) -> Csr<Y>
where
    A: Scalar,
    B: Scalar,
    Y: Scalar,
    F: Fn(A, B) -> Y + Sync + Send,
{
    assert_eq!(a.n_rows(), b.n_rows(), "eWiseMult row mismatch");
    assert_eq!(a.n_cols(), b.n_cols(), "eWiseMult col mismatch");
    let rows: Vec<(Vec<VertexId>, Vec<Y>)> = (0..a.n_rows())
        .into_par_iter()
        .with_min_len(64)
        .map(|i| {
            let (ra, va) = (a.row(i), a.row_values(i));
            let (rb, vb) = (b.row(i), b.row_values(i));
            let mut ids = Vec::new();
            let mut vals = Vec::new();
            let (mut x, mut y) = (0usize, 0usize);
            while x < ra.len() && y < rb.len() {
                match ra[x].cmp(&rb[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        ids.push(ra[x]);
                        vals.push(op(va[x], vb[y]));
                        x += 1;
                        y += 1;
                    }
                }
            }
            (ids, vals)
        })
        .collect();
    assemble(a.n_rows(), a.n_cols(), rows)
}

/// GrB_eWiseAdd on matrices (union semantics): entries from either operand;
/// where both are present, combine with `op`.
#[must_use]
pub fn matrix_ewise_add<T, F>(a: &Csr<T>, b: &Csr<T>, op: F) -> Csr<T>
where
    T: Scalar,
    F: Fn(T, T) -> T + Sync + Send,
{
    assert_eq!(a.n_rows(), b.n_rows(), "eWiseAdd row mismatch");
    assert_eq!(a.n_cols(), b.n_cols(), "eWiseAdd col mismatch");
    let rows: Vec<(Vec<VertexId>, Vec<T>)> = (0..a.n_rows())
        .into_par_iter()
        .with_min_len(64)
        .map(|i| {
            let (ra, va) = (a.row(i), a.row_values(i));
            let (rb, vb) = (b.row(i), b.row_values(i));
            let mut ids = Vec::with_capacity(ra.len() + rb.len());
            let mut vals = Vec::with_capacity(ra.len() + rb.len());
            let (mut x, mut y) = (0usize, 0usize);
            while x < ra.len() && y < rb.len() {
                match ra[x].cmp(&rb[y]) {
                    std::cmp::Ordering::Less => {
                        ids.push(ra[x]);
                        vals.push(va[x]);
                        x += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        ids.push(rb[y]);
                        vals.push(vb[y]);
                        y += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        ids.push(ra[x]);
                        vals.push(op(va[x], vb[y]));
                        x += 1;
                        y += 1;
                    }
                }
            }
            ids.extend_from_slice(&ra[x..]);
            vals.extend_from_slice(&va[x..]);
            ids.extend_from_slice(&rb[y..]);
            vals.extend_from_slice(&vb[y..]);
            (ids, vals)
        })
        .collect();
    assemble(a.n_rows(), a.n_cols(), rows)
}

/// GrB_reduce (matrix → vector): fold each row's values under a monoid.
/// Row `i` of the result is the ⊕-reduction of row `i`'s stored entries
/// (identity for empty rows). Reducing `Aᵀ` gives column sums.
#[must_use]
pub fn reduce_rows<T, M>(a: &Csr<T>, m: M) -> Vector<T>
where
    T: Scalar,
    M: Monoid<T>,
{
    let identity = m.identity();
    let vals: Vec<T> = (0..a.n_rows())
        .into_par_iter()
        .with_min_len(256)
        .map(|i| {
            a.row_values(i)
                .iter()
                .fold(identity, |acc, &v| m.op(acc, v))
        })
        .collect();
    Vector::Dense(DenseVector::from_values(vals, identity))
}

/// GrB_extract: the submatrix of `a` with the given (sorted, unique) row
/// and column index sets; output indices are renumbered to positions in
/// the selection lists.
#[must_use]
pub fn extract<T: Scalar>(a: &Csr<T>, rows: &[VertexId], cols: &[VertexId]) -> Csr<T> {
    debug_assert!(
        rows.windows(2).all(|w| w[0] < w[1]),
        "rows must be sorted unique"
    );
    debug_assert!(
        cols.windows(2).all(|w| w[0] < w[1]),
        "cols must be sorted unique"
    );
    if let Some(&r) = rows.last() {
        assert!((r as usize) < a.n_rows(), "row index out of range");
    }
    if let Some(&c) = cols.last() {
        assert!((c as usize) < a.n_cols(), "col index out of range");
    }
    let picked: Vec<(Vec<VertexId>, Vec<T>)> = rows
        .par_iter()
        .with_min_len(64)
        .map(|&r| {
            let ra = a.row(r as usize);
            let va = a.row_values(r as usize);
            let mut ids = Vec::new();
            let mut vals = Vec::new();
            // Merge-walk row entries against the sorted column selection.
            let (mut x, mut y) = (0usize, 0usize);
            while x < ra.len() && y < cols.len() {
                match ra[x].cmp(&cols[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        ids.push(y as VertexId); // renumbered
                        vals.push(va[x]);
                        x += 1;
                        y += 1;
                    }
                }
            }
            (ids, vals)
        })
        .collect();
    assemble(rows.len(), cols.len(), picked)
}

fn assemble<T: Scalar>(n_rows: usize, n_cols: usize, rows: Vec<(Vec<VertexId>, Vec<T>)>) -> Csr<T> {
    let mut row_ptr = Vec::with_capacity(n_rows + 1);
    row_ptr.push(0usize);
    let mut total = 0usize;
    for (ids, _) in &rows {
        total += ids.len();
        row_ptr.push(total);
    }
    let mut col_ind = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    for (ids, vals) in rows {
        col_ind.extend(ids);
        values.extend(vals);
    }
    Csr::from_parts(n_rows, n_cols, row_ptr, col_ind, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MinMonoid, PlusMonoid};
    use graphblas_matrix::Coo;

    fn m1() -> Csr<i64> {
        let mut coo = Coo::new(3, 4);
        for &(r, c, v) in &[(0u32, 0u32, 1i64), (0, 2, 2), (1, 1, 3), (2, 3, 4)] {
            coo.push(r, c, v);
        }
        Csr::from_coo(&coo)
    }

    fn m2() -> Csr<i64> {
        let mut coo = Coo::new(3, 4);
        for &(r, c, v) in &[(0u32, 0u32, 10i64), (0, 1, 20), (1, 1, 30), (2, 0, 40)] {
            coo.push(r, c, v);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn ewise_mult_intersects_patterns() {
        let c = matrix_ewise_mult(&m1(), &m2(), |a, b| a * b);
        // Intersection: (0,0) and (1,1).
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.row(0), &[0]);
        assert_eq!(c.row_values(0), &[10]);
        assert_eq!(c.row(1), &[1]);
        assert_eq!(c.row_values(1), &[90]);
        assert_eq!(c.row(2), &[] as &[u32]);
    }

    #[test]
    fn ewise_add_unions_patterns() {
        let c = matrix_ewise_add(&m1(), &m2(), |a, b| a + b);
        assert_eq!(c.nnz(), 6);
        assert_eq!(c.row(0), &[0, 1, 2]);
        assert_eq!(c.row_values(0), &[11, 20, 2]);
        assert_eq!(c.row(2), &[0, 3]);
        assert_eq!(c.row_values(2), &[40, 4]);
    }

    #[test]
    fn ewise_with_self_is_idempotent_pattern() {
        let a = m1();
        let doubled = matrix_ewise_add(&a, &a, |x, y| x + y);
        assert_eq!(doubled.nnz(), a.nnz());
        assert_eq!(doubled.col_ind(), a.col_ind());
        let squared = matrix_ewise_mult(&a, &a, |x, y| x * y);
        assert_eq!(squared.nnz(), a.nnz());
    }

    #[test]
    fn reduce_rows_plus_gives_row_sums() {
        let v = reduce_rows(&m1(), PlusMonoid);
        assert_eq!(v.get(0), 3);
        assert_eq!(v.get(1), 3);
        assert_eq!(v.get(2), 4);
    }

    #[test]
    fn reduce_rows_min_with_empty_row() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 5.0f64);
        coo.push(0, 2, 2.0);
        let a = Csr::from_coo(&coo);
        let v = reduce_rows(&a, MinMonoid);
        assert_eq!(v.get(0), 2.0);
        assert_eq!(v.get(1), f64::INFINITY, "empty row reduces to identity");
    }

    #[test]
    fn extract_renumbers_indices() {
        // Take rows {0, 2}, cols {0, 2, 3} of m1.
        let sub = extract(&m1(), &[0, 2], &[0, 2, 3]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.n_cols(), 3);
        // (0,0,1) stays at (0,0); (0,2,2) → (0,1); (2,3,4) → (1,2).
        assert_eq!(sub.row(0), &[0, 1]);
        assert_eq!(sub.row_values(0), &[1, 2]);
        assert_eq!(sub.row(1), &[2]);
        assert_eq!(sub.row_values(1), &[4]);
    }

    #[test]
    fn extract_full_is_identity() {
        let a = m1();
        let sub = extract(&a, &[0, 1, 2], &[0, 1, 2, 3]);
        assert_eq!(sub, a);
    }

    #[test]
    #[should_panic(expected = "row index out of range")]
    fn extract_bounds_checked() {
        let _ = extract(&m1(), &[7], &[0]);
    }
}
