//! Fused masked-mxv pipelines: `mxv · apply · assign` as one kernel pass.
//!
//! Every traversal in this workspace follows the same per-iteration shape —
//! a masked [`mxv`](crate::mxv), an elementwise `apply` on the surviving
//! entries, and a `GrB_assign` that folds them into long-lived algorithm
//! state (depths, parents, labels, distances, ranks). Composed from the
//! separate GraphBLAS operations, every iteration materializes at least one
//! intermediate [`Vector`]: the pull face allocates and fills a dense
//! `O(M)` buffer just so the caller can re-scan it for explicit entries,
//! and the push face builds a sparse vector the caller immediately tears
//! back apart. GraphBLAST (Yang, Buluç & Owens 2019) identifies exactly
//! this *kernel fusion* as the co-equal optimization next to masking, and
//! lazy-evaluation GraphBLAS layers (e.g. nonblocking-mode Julia
//! GraphBLAS) expose it by deferring execution until the whole chain is
//! known.
//!
//! [`FusedMxv`] is that lazy layer, scaled to this workspace: a builder
//! that records the matvec operands, the mask, the unary `apply`, and the
//! `assign` destination, then compiles the chain into a **single pass over
//! the chosen kernel face** when the terminal
//! [`assign_into`](FusedPipeline::assign_into) runs:
//!
//! * **Pull** (row kernel): each row chunk reduces its rows, applies the
//!   unary op, and writes survivors straight into the caller's state slice
//!   — the dense intermediate never exists. With
//!   [`first_hit_exit`](FusedMxv::first_hit_exit), a row's neighbor scan
//!   additionally stops at the *first* explicit input hit — parent-BFS's
//!   per-row early exit, a win the unfused path cannot express because
//!   `min`'s annihilator (vertex id 0) almost never occurs.
//! * **Push** (column kernel): the expansion/merge of
//!   [`col_mxv`](crate::col_mxv) runs unchanged (same
//!   [`MergeStrategy`](crate::MergeStrategy), same counters), but the
//!   merged harvest flows through apply + assign at filter time instead of
//!   being materialized as a sparse vector.
//!
//! Direction resolution, [`DirectionPolicy`](crate::DirectionPolicy)
//! interplay, and the [`AccessCounters`] contract are unchanged: a fused
//! call charges **exactly** the accesses its unfused composition would
//! (same kernels, same bookkeeping), records its push/pull decision the
//! same way, and additionally tallies the intermediate writes it skipped
//! in the `fused_saved_writes` counter — so
//! `snapshot().accesses_only()` of a fused run equals the unfused run's
//! bit-for-bit, which `tests/fused_pipelines.rs` pins at 1, 2, and 8
//! lanes.

use crate::descriptor::{Descriptor, Direction};
use crate::error::{GrbError, GrbResult};
use crate::mask::Mask;
use crate::ops::{Monoid, Scalar, Semiring};
use crate::ops_mxv::{col_kernel_parts, reduce_row, SendPtr, ROW_GRAIN};
use crate::vector::{DenseVector, SparseVector, Vector};
use graphblas_matrix::{Graph, RowAccess, StoreRef, VertexId};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::pool;
use rayon::prelude::*;
use std::marker::PhantomData;

/// Result of a fused pipeline execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusedOutput {
    /// Indices whose state slot the `assign` stage wrote, ascending — for a
    /// traversal, the next frontier.
    pub touched: Vec<VertexId>,
}

/// Lazy builder for a fused `mxv · apply · assign` chain.
///
/// Nothing executes until the terminal
/// [`assign_into`](FusedPipeline::assign_into); until then the builder just
/// records operands, so constructing one is free and the kernel face (push
/// or pull) is resolved at execution time by the same
/// [`resolve_direction`](crate::resolve_direction) rule as
/// [`mxv`](crate::mxv) — the paper's Optimization 1 composes with fusion
/// unchanged.
///
/// ```
/// use graphblas_core::{BoolOrAnd, Descriptor, FusedMxv, Mask, Vector};
/// use graphblas_matrix::{Coo, Graph};
/// use graphblas_primitives::BitVec;
///
/// // 0 → 1 → 2; one fused BFS step from {0} writes depth 1 at vertex 1
/// // without materializing the frontier-product vector.
/// let mut coo = Coo::new(3, 3);
/// coo.push(0, 1, true);
/// coo.push(1, 2, true);
/// let g = Graph::from_coo(&coo);
/// let f = Vector::singleton(3, false, 0, true);
/// let mut visited = BitVec::new(3);
/// visited.set(0);
/// let mask = Mask::complement(&visited);
///
/// let mut depth = vec![-1i32; 3];
/// depth[0] = 0;
/// let out = FusedMxv::new(BoolOrAnd, &g, &f)
///     .mask(&mask)
///     .descriptor(Descriptor::new().transpose(true))
///     .apply(|_reached: bool| 1i32)
///     .assign_into(&mut depth, |_old, d| Some(d))
///     .unwrap();
/// assert_eq!(out.touched, vec![1]);
/// assert_eq!(depth, vec![0, 1, -1]);
/// ```
#[derive(Clone, Copy)]
pub struct FusedMxv<'a, A: Scalar, X: Scalar, S> {
    s: S,
    graph: &'a Graph<A>,
    input: &'a Vector<X>,
    mask: Option<&'a Mask<'a>>,
    desc: Descriptor,
    counters: Option<&'a AccessCounters>,
    first_hit_exit: bool,
    keep_identity: bool,
    collect_touched: bool,
}

impl<'a, A: Scalar, X: Scalar, S> FusedMxv<'a, A, X, S> {
    /// Start a pipeline computing `op(graph) · input` under semiring `s`
    /// (orientation and direction come from the [`Descriptor`], exactly as
    /// in [`mxv`](crate::mxv)).
    #[must_use]
    pub fn new(s: S, graph: &'a Graph<A>, input: &'a Vector<X>) -> Self {
        Self {
            s,
            graph,
            input,
            mask: None,
            desc: Descriptor::new(),
            counters: None,
            first_hit_exit: false,
            keep_identity: false,
            collect_touched: true,
        }
    }

    /// Attach an output mask (with the same kernel-face asymmetry as
    /// [`mxv`](crate::mxv): it prunes pull rows, and only filters push
    /// output).
    #[must_use]
    pub fn mask(mut self, m: &'a Mask<'a>) -> Self {
        self.mask = Some(m);
        self
    }

    /// Set the operation descriptor (transpose, direction policy,
    /// early-exit, merge strategy, …).
    #[must_use]
    pub fn descriptor(mut self, d: Descriptor) -> Self {
        self.desc = d;
        self
    }

    /// Attach access counters. The fused execution charges exactly what the
    /// unfused `mxv` would, plus `fused_saved_writes`.
    #[must_use]
    pub fn counters(mut self, c: Option<&'a AccessCounters>) -> Self {
        self.counters = c;
        self
    }

    /// Stop each pull row's neighbor scan at the **first** explicit input
    /// hit, using that single product as the row's reduction.
    ///
    /// Correctness contract (the caller's obligation): the first hit must
    /// equal the full ⊕-reduction of the row. That holds whenever products
    /// are non-decreasing in neighbor-scan order under a `min` monoid — in
    /// particular for parent BFS, where the frontier carries each vertex's
    /// *own id* as its value and neighbor lists are ascending, so the first
    /// explicit parent *is* the minimum one. Ignored by the push face
    /// (its expansion already touches only frontier columns).
    #[must_use]
    pub fn first_hit_exit(mut self, on: bool) -> Self {
        self.first_hit_exit = on;
        self
    }

    /// Run `apply`/`assign` for **every** mask-allowed pull row, including
    /// rows whose reduction is the ⊕ identity (implicit zeros).
    ///
    /// This mirrors how a dense-output consumer like PageRank reads its
    /// unfused intermediate: `contrib.get(i)` over the active set returns
    /// the fill for zero-inflow rows, and the update still runs. Push
    /// output has no implicit slots, so the flag only affects pull steps.
    #[must_use]
    pub fn keep_identity(mut self, on: bool) -> Self {
        self.keep_identity = on;
        self
    }

    /// Whether to collect the assigned indices into
    /// [`FusedOutput::touched`] (default `true`).
    ///
    /// Turn this off when the assigned set is known a priori — e.g. a
    /// [`keep_identity`](FusedMxv::keep_identity) consumer that assigns
    /// every allowed row — so the pipeline skips building an index list
    /// the caller would discard. With it off, `touched` comes back empty.
    #[must_use]
    pub fn collect_touched(mut self, on: bool) -> Self {
        self.collect_touched = on;
        self
    }

    /// Add the elementwise stage: every surviving matvec output entry is
    /// mapped through `f` before the `assign`. Use the identity closure
    /// when the algorithm consumes raw products (CC and SSSP do).
    #[must_use]
    pub fn apply<Y, Z, F>(self, f: F) -> FusedPipeline<'a, A, X, Y, Z, S, F>
    where
        Y: Scalar,
        Z: Scalar,
        F: Fn(Y) -> Z,
    {
        FusedPipeline {
            base: self,
            apply: f,
            _types: PhantomData,
        }
    }
}

/// A [`FusedMxv`] with its `apply` stage attached; run it with
/// [`assign_into`](FusedPipeline::assign_into).
pub struct FusedPipeline<'a, A: Scalar, X: Scalar, Y, Z, S, F> {
    base: FusedMxv<'a, A, X, S>,
    apply: F,
    _types: PhantomData<fn(Y) -> Z>,
}

impl<A, X, Y, Z, S, F> FusedPipeline<'_, A, X, Y, Z, S, F>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    Z: Scalar,
    S: Semiring<A, X, Y>,
    F: Fn(Y) -> Z + Sync + Send,
{
    /// Execute the chain, assigning into `state` (one slot per output
    /// vertex): for each surviving entry `(i, y)` of the masked matvec,
    /// `update(state[i], apply(y))` decides the write — `Some(z)` stores
    /// `z` and records `i` in [`FusedOutput::touched`], `None` leaves the
    /// slot alone. `update` is the fused `GrB_assign`(-with-accumulator):
    /// always-write for BFS, write-if-smaller for CC/SSSP relaxations.
    ///
    /// Runs the push or pull kernel face per
    /// [`resolve_direction`](crate::resolve_direction); pull chunks write
    /// `state` directly in parallel (rows are disjoint across chunks), push
    /// assigns from the merged harvest — neither face materializes an
    /// intermediate [`Vector`].
    ///
    /// An attached mask's active list must honor the
    /// [`Mask::with_active_list`] contract (strictly ascending, hence
    /// unique — debug-asserted here): the pull face partitions the list
    /// across workers and writes each listed row's state slot without
    /// synchronization.
    pub fn assign_into<U>(self, state: &mut [Z], update: U) -> GrbResult<FusedOutput>
    where
        U: Fn(Z, Z) -> Option<Z> + Sync + Send,
    {
        let FusedPipeline { base, apply, .. } = self;
        // Dims are validated on the baseline CSR; the executed face's
        // store is served in the planned format below.
        let operand = if base.desc.transpose {
            base.graph.csr_t()
        } else {
            base.graph.csr()
        };
        if operand.n_cols() != base.input.dim() {
            return Err(GrbError::DimensionMismatch {
                context: "fused mxv input vector",
                expected: operand.n_cols(),
                actual: base.input.dim(),
            });
        }
        if let Some(m) = base.mask {
            if m.dim() != operand.n_rows() {
                return Err(GrbError::DimensionMismatch {
                    context: "fused mxv mask",
                    expected: operand.n_rows(),
                    actual: m.dim(),
                });
            }
        }
        if state.len() != operand.n_rows() {
            return Err(GrbError::DimensionMismatch {
                context: "fused assign state",
                expected: operand.n_rows(),
                actual: state.len(),
            });
        }

        // Pre-flight stop poll, as in `mxv`.
        crate::exec::check_stop(base.counters)?;

        // Same planner as `mxv`: direction by the §6.3 storage rule,
        // storage format by the shape rule (or the descriptor's forces).
        let plan = crate::plan::resolve_plan(base.graph, base.input, &base.desc);
        if let Some(c) = base.counters {
            match plan.direction {
                Direction::Push => c.add_push_step(),
                Direction::Pull => c.add_pull_step(),
            }
        }
        match plan.direction {
            Direction::Push => {
                let sparse_input;
                let sv = match base.input.as_sparse() {
                    Some(sv) => sv,
                    None => {
                        sparse_input = base.input.to_sparse();
                        &sparse_input
                    }
                };
                // Same shard resolution as `mxv`'s push arm: the stripe
                // grid partitions the store side the column kernel reads.
                let shard_plan = plan.shard.map(|grid| {
                    crate::ops_mxv::shard_plan_for(base.graph, !base.desc.transpose, grid)
                });
                let shard = shard_plan.as_deref();
                let out = match crate::exec::store_budgeted(
                    base.graph,
                    !base.desc.transpose,
                    plan.format,
                    base.counters,
                ) {
                    StoreRef::Csr(m) => fused_push(&base, m, sv, shard, &apply, &update, state),
                    StoreRef::Bitmap(m) => fused_push(&base, m, sv, shard, &apply, &update, state),
                    StoreRef::Dcsr(m) => fused_push(&base, m, sv, shard, &apply, &update, state),
                };
                // Post-kernel poll: a checkpoint bail upstream must not
                // let a partial assignment masquerade as success.
                crate::exec::check_stop(base.counters)?;
                Ok(out)
            }
            Direction::Pull => {
                let dense_input;
                let dv = match base.input.as_dense() {
                    Some(dv) => dv,
                    None => {
                        dense_input = base.input.to_dense();
                        &dense_input
                    }
                };
                let out = match crate::exec::store_budgeted(
                    base.graph,
                    base.desc.transpose,
                    plan.format,
                    base.counters,
                ) {
                    StoreRef::Csr(m) => fused_pull(&base, m, dv, &apply, &update, state),
                    StoreRef::Bitmap(m) => fused_pull(&base, m, dv, &apply, &update, state),
                    StoreRef::Dcsr(m) => fused_pull(&base, m, dv, &apply, &update, state),
                };
                // Post-kernel poll: see the push arm.
                crate::exec::check_stop(base.counters)?;
                Ok(out)
            }
        }
    }
}

/// Push face: the column kernel's expansion/merge/filter runs unchanged
/// (via [`col_kernel_parts`], so counters match the unfused kernel exactly),
/// then apply + assign consume the harvested parts in one sequential pass —
/// the sparse output vector is never built.
fn fused_push<A, X, Y, Z, S, F, U, M>(
    base: &FusedMxv<'_, A, X, S>,
    op_t: &M,
    v: &SparseVector<X>,
    shard: Option<&graphblas_matrix::ShardPlan>,
    apply: &F,
    update: &U,
    state: &mut [Z],
) -> FusedOutput
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    Z: Scalar,
    S: Semiring<A, X, Y>,
    F: Fn(Y) -> Z,
    U: Fn(Z, Z) -> Option<Z>,
    M: RowAccess<A>,
{
    let (ids, vals): (Vec<u32>, Vec<Y>) =
        col_kernel_parts(base.s, op_t, v, base.mask, &base.desc, shard, base.counters);
    // A trip during the kernel leaves partial parts: skip the assign pass
    // entirely so the caller's state sees as little of the aborted run as
    // possible (the dispatcher converts the sticky trip into an error, and
    // guarded callers discard the state buffer on any error).
    if base.counters.is_some_and(|c| c.stop_reason().is_some()) {
        return FusedOutput {
            touched: Vec::new(),
        };
    }
    if let Some(c) = base.counters {
        // The unfused composition would write each filtered entry into a
        // sparse output vector the caller immediately re-reads.
        c.add_fused_saved_writes(ids.len() as u64);
    }
    let mut touched = Vec::with_capacity(if base.collect_touched { ids.len() } else { 0 });
    for (&i, &y) in ids.iter().zip(vals.iter()) {
        let z = apply(y);
        if let Some(next) = update(state[i as usize], z) {
            state[i as usize] = next;
            if base.collect_touched {
                touched.push(i);
            }
        }
    }
    FusedOutput { touched }
}

/// Pull face: row chunks reduce, apply, and assign in one pass, writing the
/// caller's state slice directly — the `O(M)` dense intermediate of the
/// unfused row kernel is never allocated. Chunk boundaries derive from the
/// work-list size only ([`pool::index_chunks`]), so `touched` and every
/// state write are identical at any lane count.
fn fused_pull<A, X, Y, Z, S, F, U, M>(
    base: &FusedMxv<'_, A, X, S>,
    op: &M,
    v: &DenseVector<X>,
    apply: &F,
    update: &U,
    state: &mut [Z],
) -> FusedOutput
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    Z: Scalar,
    S: Semiring<A, X, Y>,
    F: Fn(Y) -> Z + Sync + Send,
    U: Fn(Z, Z) -> Option<Z> + Sync + Send,
    M: RowAccess<A>,
{
    let s = base.s;
    let identity = s.add_monoid().identity();
    let n = op.n_rows();
    // Same mask charges as the unfused row kernels: the active list when
    // present, a full row scan otherwise, nothing when unmasked.
    let active = base.mask.and_then(|m| m.active_list());
    // The with_active_list contract — strictly ascending, hence unique —
    // is what makes the unsynchronized per-row *caller-state* writes below
    // race-free: a duplicated row split across two chunks would be a data
    // race on state[i]. Checked unconditionally (not just in debug) because
    // the list arrives through safe public API and the consequence is UB;
    // the O(len) scan is noise next to the per-row reductions.
    assert!(
        active.is_none_or(|list| list.windows(2).all(|w| w[0] < w[1])),
        "mask active list must be strictly ascending (unique)"
    );
    if let (Some(c), Some(m)) = (base.counters, base.mask) {
        c.add_mask(m.active_list().map_or(n, <[u32]>::len) as u64);
    }
    if let Some(c) = base.counters {
        // The unfused composition materializes (and identity-fills) a dense
        // n-slot output buffer every pull step; fusion skips all of it.
        c.add_fused_saved_writes(n as u64);
    }
    // Early-exit applies to masked pulls only, mirroring the `mxv`
    // dispatch; first-hit exit is the caller's stronger opt-in.
    let early_exit = base.mask.is_some() && base.desc.early_exit;
    // Bit-parallel arm, packed once per call (same dispatch rule as the
    // unfused pull face). The first-hit path is fully generic — the CSR
    // rank of the first AND hit indexes the CSR values — so it needs only
    // the packed operand words; the plain reduction goes through the
    // hint-qualified context.
    let fh_words = if base.first_hit_exit && base.desc.bit_kernels && op.has_row_words() {
        Some(crate::bitops::pack_frontier(v, base.counters))
    } else {
        None
    };
    let bitctx = if base.first_hit_exit {
        None
    } else {
        crate::bitops::bit_pull_ctx(s, op, v, &base.desc, base.counters)
    };
    // Unmasked, not keep-identity: a hypersparse store's empty rows reduce
    // to the ⊕ identity and are skipped before apply/assign anyway, so
    // scan only the non-empty rows and bulk-charge the skipped rows'
    // bookkeeping (`examined + 1` = 1 vector touch each in `reduce_row`) —
    // counter totals stay bit-identical to the full scan. `keep_identity`
    // consumers (PageRank) assign identity rows too, so they keep the
    // full scan.
    let hyper = if base.mask.is_none() && !base.keep_identity {
        op.nonempty_rows()
    } else {
        None
    };
    if let (Some(c), Some(rows)) = (base.counters, hyper) {
        c.add_vector((n - rows.len()) as u64);
    }
    let work_len = active.or(hyper).map_or(n, <[u32]>::len);
    let out = SendPtr(state.as_mut_ptr());
    let parts: Vec<Vec<u32>> = pool::index_chunks(work_len, ROW_GRAIN)
        .into_par_iter()
        .map(|range| {
            let mut touched = Vec::new();
            for idx in range {
                let (i, allowed) = match (base.mask, active) {
                    (_, Some(list)) => {
                        let i = list[idx] as usize;
                        debug_assert!(
                            base.mask.is_none_or(|m| m.allows(i)),
                            "active list disagrees with mask"
                        );
                        (i, true)
                    }
                    (Some(m), None) => (idx, m.allows(idx)),
                    (None, None) => match hyper {
                        Some(rows) => (rows[idx] as usize, true),
                        None => (idx, true),
                    },
                };
                if !allowed {
                    continue;
                }
                let y = if base.first_hit_exit {
                    match &fh_words {
                        Some(words) => crate::bitops::bit_reduce_row_first_hit(
                            s,
                            op,
                            words,
                            v,
                            i,
                            identity,
                            base.counters,
                        ),
                        None => reduce_row_first_hit(s, op, v, i, identity, base.counters),
                    }
                } else {
                    match &bitctx {
                        Some(ctx) => crate::bitops::bit_reduce_row(
                            op,
                            ctx,
                            i,
                            identity,
                            early_exit,
                            base.counters,
                        ),
                        None => reduce_row(s, op, v, i, identity, early_exit, base.counters),
                    }
                };
                if base.keep_identity || y != identity {
                    let z = apply(y);
                    // SAFETY: each output row belongs to exactly one chunk
                    // (ranges partition the work list; active-list entries
                    // are strictly ascending, asserted above), so
                    // reads/writes of state[i] are disjoint across workers.
                    let old = unsafe { *out.get().add(i) };
                    if let Some(next) = update(old, z) {
                        unsafe { *out.get().add(i) = next };
                        if base.collect_touched {
                            touched.push(i as u32);
                        }
                    }
                }
            }
            touched
        })
        .collect();
    let mut touched = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        touched.extend(part);
    }
    debug_assert!(touched.windows(2).all(|w| w[0] < w[1]), "touched sorted");
    FusedOutput { touched }
}

/// Reduce one row stopping at the first explicit input hit (the
/// [`FusedMxv::first_hit_exit`] contract). Counter bookkeeping matches
/// [`reduce_row`]: one matrix access per examined neighbor.
#[inline]
fn reduce_row_first_hit<A, X, Y, S, M>(
    s: S,
    op: &M,
    v: &DenseVector<X>,
    i: usize,
    identity: Y,
    counters: Option<&AccessCounters>,
) -> Y
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    let add = s.add_monoid();
    let cols = op.row(i);
    let avals = op.row_values(i);
    let mut acc = identity;
    let mut examined = 0u64;
    for (idx, &j) in cols.iter().enumerate() {
        examined += 1;
        if v.is_explicit(j as usize) {
            acc = add.op(acc, s.mult(avals[idx], v.get(j as usize)));
            break;
        }
    }
    if let Some(c) = counters {
        c.add_matrix(examined);
        c.add_vector(examined + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::MergeStrategy;
    use crate::ops::{BoolOrAnd, MinSecond};
    use crate::{mxv, Mask};
    use graphblas_matrix::Coo;
    use graphblas_primitives::BitVec;

    /// Figure 3's shape: frontier {1,2,3}, visited {0,1,2,3}, children to
    /// discover {4,5}.
    fn fig3_graph() -> Graph<bool> {
        let mut coo = Coo::new(8, 8);
        for &(u, c) in &[(1u32, 0u32), (1, 4), (2, 5), (3, 0), (3, 5), (6, 7)] {
            coo.push(u, c, true);
        }
        Graph::from_coo(&coo)
    }

    fn setup() -> (Vector<bool>, BitVec) {
        let f = Vector::from_sparse(8, false, vec![1, 2, 3], vec![true; 3]);
        let mut visited = BitVec::new(8);
        for i in 0..4 {
            visited.set(i);
        }
        (f, visited)
    }

    fn bfs_desc() -> Descriptor {
        Descriptor::new().transpose(true)
    }

    /// The unfused composition a fused call must match: mxv, then apply +
    /// assign as plain loops over the explicit output entries.
    fn unfused_step(
        g: &Graph<bool>,
        f: &Vector<bool>,
        mask: &Mask<'_>,
        desc: &Descriptor,
        depth: &mut [i32],
        counters: Option<&AccessCounters>,
    ) -> Vec<u32> {
        let w: Vector<bool> = mxv(Some(mask), BoolOrAnd, g, f, desc, counters).unwrap();
        let mut touched = Vec::new();
        for (i, _) in w.iter_explicit() {
            depth[i as usize] = 1;
            touched.push(i);
        }
        touched
    }

    #[test]
    fn fused_matches_unfused_both_faces() {
        let g = fig3_graph();
        let (mut f, visited) = setup();
        for dir in [Direction::Push, Direction::Pull] {
            if dir == Direction::Pull {
                f.make_dense();
            }
            let mask = Mask::complement(&visited);
            let desc = bfs_desc().force(dir);

            let mut d_unfused = vec![-1i32; 8];
            let cu = AccessCounters::new();
            let expect = unfused_step(&g, &f, &mask, &desc, &mut d_unfused, Some(&cu));

            let mut d_fused = vec![-1i32; 8];
            let cf = AccessCounters::new();
            let got = FusedMxv::new(BoolOrAnd, &g, &f)
                .mask(&mask)
                .descriptor(desc)
                .counters(Some(&cf))
                .apply(|_: bool| 1i32)
                .assign_into(&mut d_fused, |_, z| Some(z))
                .unwrap();

            assert_eq!(got.touched, expect, "{dir:?} touched set");
            assert_eq!(d_fused, d_unfused, "{dir:?} state");
            assert_eq!(
                cf.snapshot().accesses_only(),
                cu.snapshot().accesses_only(),
                "{dir:?} counters"
            );
            assert!(cf.snapshot().fused_saved_writes > 0, "{dir:?} saved writes");
            assert_eq!(cu.snapshot().fused_saved_writes, 0);
        }
    }

    #[test]
    fn fused_push_honors_merge_strategy() {
        let g = fig3_graph();
        let (f, visited) = setup();
        let mask = Mask::complement(&visited);
        let run = |strategy: MergeStrategy| {
            let mut d = vec![-1i32; 8];
            let out = FusedMxv::new(BoolOrAnd, &g, &f)
                .mask(&mask)
                .descriptor(bfs_desc().force(Direction::Push).merge_strategy(strategy))
                .apply(|_: bool| 1i32)
                .assign_into(&mut d, |_, z| Some(z))
                .unwrap();
            (out.touched, d)
        };
        let reference = run(MergeStrategy::SortBased);
        for strategy in [
            MergeStrategy::SpaMerge,
            MergeStrategy::HeapMerge,
            MergeStrategy::BitmaskCull,
        ] {
            assert_eq!(run(strategy), reference, "{strategy:?}");
        }
    }

    #[test]
    fn update_rule_rejections_stay_out_of_touched() {
        // No mask; the update rule itself filters already-visited slots —
        // the fused form of the Table 2 "masking off" post-filter.
        let g = fig3_graph();
        let (f, _) = setup();
        let mut d = vec![-1i32; 8];
        d[0] = 0; // 0 is "visited": raw mxv re-discovers it, update rejects.
        let out = FusedMxv::new(BoolOrAnd, &g, &f)
            .descriptor(bfs_desc().force(Direction::Push))
            .apply(|_: bool| 1i32)
            .assign_into(&mut d, |old, z| (old == -1).then_some(z))
            .unwrap();
        assert_eq!(out.touched, vec![4, 5], "0 rejected by the update rule");
        assert_eq!(d[0], 0, "rejected slot untouched");
    }

    #[test]
    fn first_hit_exit_matches_full_reduction_for_min_parent() {
        // Star into vertex 0: every frontier vertex is a candidate parent;
        // the first explicit hit in ascending scan order IS the min parent.
        let n = 64;
        let mut coo = Coo::new(n, n);
        for p in 1..n as u32 {
            coo.push(p, 0, true);
        }
        let g = Graph::from_coo(&coo);
        let ids: Vec<u32> = (3..n as u32).collect();
        let mut f = Vector::from_sparse(n, u32::MAX, ids.clone(), ids);
        f.make_dense();
        let visited = BitVec::new(n);
        let mask = Mask::complement(&visited);
        let run = |first_hit: bool| {
            let c = AccessCounters::new();
            let mut parent = vec![u32::MAX; n];
            let out = FusedMxv::new(MinSecond, &g, &f)
                .mask(&mask)
                .descriptor(bfs_desc().force(Direction::Pull))
                .counters(Some(&c))
                .first_hit_exit(first_hit)
                .apply(|p: u32| p)
                .assign_into(&mut parent, |_, p| Some(p))
                .unwrap();
            (out.touched, parent, c.snapshot().matrix)
        };
        let (t_full, p_full, m_full) = run(false);
        let (t_hit, p_hit, m_hit) = run(true);
        assert_eq!(t_hit, t_full);
        assert_eq!(p_hit, p_full);
        assert_eq!(p_hit[0], 3, "minimum-id parent");
        assert!(
            m_hit < m_full,
            "first-hit exit must cut matrix traffic: {m_hit} vs {m_full}"
        );
    }

    #[test]
    fn keep_identity_assigns_implicit_zero_rows() {
        let g = fig3_graph();
        let mut f = Vector::from_sparse(8, false, vec![1], vec![true]);
        f.make_dense();
        // Unmasked pull with keep_identity: every row is assigned, even
        // rows with no frontier parent (reduction = identity = false).
        let mut hits = vec![-1i32; 8];
        let out = FusedMxv::new(BoolOrAnd, &g, &f)
            .descriptor(bfs_desc().force(Direction::Pull))
            .keep_identity(true)
            .apply(|reached: bool| i32::from(reached))
            .assign_into(&mut hits, |_, z| Some(z))
            .unwrap();
        assert_eq!(out.touched.len(), 8, "every row assigned");
        assert_eq!(hits[0], 1, "child of 1");
        assert_eq!(hits[2], 0, "no frontier parent, identity still applied");
    }

    #[test]
    fn dimension_mismatches_reported() {
        let g = fig3_graph();
        let (f, visited) = setup();
        let mut full_state = [0i32; 8];
        let mut short_state = [0i32; 5];

        let short = Vector::<bool>::new_sparse(5, false);
        let r = FusedMxv::new(BoolOrAnd, &g, &short)
            .apply(|_: bool| 0i32)
            .assign_into(&mut full_state, |_, z| Some(z));
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));

        let bad_bits = BitVec::new(3);
        let bad_mask = Mask::new(&bad_bits);
        let r = FusedMxv::new(BoolOrAnd, &g, &f)
            .mask(&bad_mask)
            .apply(|_: bool| 0i32)
            .assign_into(&mut full_state, |_, z| Some(z));
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));

        let mask = Mask::complement(&visited);
        let r = FusedMxv::new(BoolOrAnd, &g, &f)
            .mask(&mask)
            .apply(|_: bool| 0i32)
            .assign_into(&mut short_state, |_, z| Some(z));
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));
    }

    #[test]
    fn collect_touched_off_still_assigns() {
        let g = fig3_graph();
        let (mut f, visited) = setup();
        f.make_dense();
        let mask = Mask::complement(&visited);
        let mut d = vec![-1i32; 8];
        let out = FusedMxv::new(BoolOrAnd, &g, &f)
            .mask(&mask)
            .descriptor(bfs_desc().force(Direction::Pull))
            .collect_touched(false)
            .apply(|_: bool| 1i32)
            .assign_into(&mut d, |_, z| Some(z))
            .unwrap();
        assert!(out.touched.is_empty(), "index list skipped on request");
        assert_eq!(d[4], 1, "state still assigned");
        assert_eq!(d[5], 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn duplicate_active_list_is_rejected_in_release_too() {
        // The unsynchronized caller-state writes rely on list uniqueness;
        // a duplicated row must be refused, not raced on.
        let g = fig3_graph();
        let (mut f, visited) = setup();
        f.make_dense();
        let dup = [4u32, 4];
        let mask = Mask::complement(&visited).with_active_list(&dup);
        let mut d = vec![-1i32; 8];
        let _ = FusedMxv::new(BoolOrAnd, &g, &f)
            .mask(&mask)
            .descriptor(bfs_desc().force(Direction::Pull))
            .apply(|_: bool| 1i32)
            .assign_into(&mut d, |_, z| Some(z));
    }

    #[test]
    fn empty_frontier_is_a_no_op() {
        let g = fig3_graph();
        let f = Vector::<bool>::new_sparse(8, false);
        let c = AccessCounters::new();
        let mut d = vec![-1i32; 8];
        let out = FusedMxv::new(BoolOrAnd, &g, &f)
            .descriptor(bfs_desc().force(Direction::Push))
            .counters(Some(&c))
            .apply(|_: bool| 1i32)
            .assign_into(&mut d, |_, z| Some(z))
            .unwrap();
        assert!(out.touched.is_empty());
        assert!(d.iter().all(|&x| x == -1));
        assert_eq!(c.snapshot().matrix, 0);
    }
}
