//! Masks: the paper's formalism for output sparsity (§3.2).
//!
//! A masked matvec `f' = (Af) .∗ m` only materializes outputs where the
//! mask allows. The *structural complement* `¬m` (§3.2) flips the rule —
//! BFS pulls into the complement of the visited set. Masks here are
//! structural Booleans over a bit vector; a pre-computed **active list**
//! (the sorted indices the mask allows) gives the row kernel its
//! `O(d·nnz(m))` bound instead of `O(dM + work)`: the paper's SPA trick of
//! keeping "a sparse vector containing indices where the zeroes are
//! located", built once and amortized across BFS iterations.

use graphblas_matrix::VertexId;
use graphblas_primitives::BitVec;

/// A structural Boolean mask over vertex indices.
#[derive(Clone, Copy, Debug)]
pub struct Mask<'a> {
    bits: &'a BitVec,
    complement: bool,
    active_list: Option<&'a [VertexId]>,
}

impl<'a> Mask<'a> {
    /// Mask allowing indices whose bit is set.
    #[must_use]
    pub fn new(bits: &'a BitVec) -> Self {
        Self {
            bits,
            complement: false,
            active_list: None,
        }
    }

    /// Structural complement `¬m`: allow indices whose bit is clear.
    #[must_use]
    pub fn complement(bits: &'a BitVec) -> Self {
        Self {
            bits,
            complement: true,
            active_list: None,
        }
    }

    /// Attach a sorted list of exactly the allowed indices. The masked row
    /// kernel then iterates this list instead of scanning all `M` rows.
    ///
    /// Correctness contract (debug-asserted on use): the list must be
    /// **strictly ascending** — so in particular duplicate-free — and
    /// every listed index must satisfy [`Mask::allows`]. Uniqueness is
    /// load-bearing, not just tidiness: the row kernels (and the fused
    /// pipeline's `assign_into`, which writes caller state) partition the
    /// list across parallel workers and write each listed row's output
    /// slot without synchronization, which is only race-free when no row
    /// appears twice.
    #[must_use]
    pub fn with_active_list(mut self, list: &'a [VertexId]) -> Self {
        self.active_list = Some(list);
        self
    }

    /// Whether the mask passes index `i` through to the output.
    #[inline]
    #[must_use]
    pub fn allows(&self, i: usize) -> bool {
        self.bits.get(i) ^ self.complement
    }

    /// Whether this mask is complemented.
    #[must_use]
    pub fn is_complement(&self) -> bool {
        self.complement
    }

    /// The attached active list, when present.
    #[must_use]
    pub fn active_list(&self) -> Option<&'a [VertexId]> {
        self.active_list
    }

    /// Number of allowed indices: `nnz(m)` in the Table 1 cost model.
    /// O(1) words when no active list is attached (popcount); O(1) when
    /// attached.
    #[must_use]
    pub fn active_count(&self) -> usize {
        if let Some(list) = self.active_list {
            list.len()
        } else if self.complement {
            self.bits.len() - self.bits.count_ones()
        } else {
            self.bits.count_ones()
        }
    }

    /// Dimension the mask covers.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.bits.len()
    }

    /// The raw bit words and the complement flag — the word surface the
    /// bit-parallel kernels and the unvisited summary index build on. An
    /// *allowed* word is `words[g]` (plain) or `!words[g]` tail-masked to
    /// `dim()` (complemented); [`Mask::allows`] stays the per-bit oracle.
    #[must_use]
    pub(crate) fn word_view(&self) -> (&'a [u64], bool) {
        (self.bits.words(), self.complement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_with(set: &[usize], len: usize) -> BitVec {
        let mut b = BitVec::new(len);
        for &i in set {
            b.set(i);
        }
        b
    }

    #[test]
    fn plain_mask_allows_set_bits() {
        let b = bits_with(&[1, 3], 5);
        let m = Mask::new(&b);
        assert!(m.allows(1) && m.allows(3));
        assert!(!m.allows(0) && !m.allows(2) && !m.allows(4));
        assert_eq!(m.active_count(), 2);
        assert!(!m.is_complement());
    }

    #[test]
    fn complement_mask_inverts() {
        let b = bits_with(&[1, 3], 5);
        let m = Mask::complement(&b);
        assert!(!m.allows(1) && !m.allows(3));
        assert!(m.allows(0) && m.allows(2) && m.allows(4));
        assert_eq!(m.active_count(), 3);
        assert!(m.is_complement());
    }

    #[test]
    fn active_list_overrides_count() {
        let b = bits_with(&[0, 1, 2], 6);
        let list = [0u32, 1, 2];
        let m = Mask::new(&b).with_active_list(&list);
        assert_eq!(m.active_count(), 3);
        assert_eq!(m.active_list(), Some(&list[..]));
    }

    #[test]
    fn bfs_unvisited_mask_shape() {
        // visited = {0,1}; pull mask = ¬visited with active list {2,3,4}.
        let visited = bits_with(&[0, 1], 5);
        let unvisited: Vec<u32> = vec![2, 3, 4];
        let m = Mask::complement(&visited).with_active_list(&unvisited);
        assert!(m.allows(2) && !m.allows(0));
        assert_eq!(m.active_count(), 3);
        assert_eq!(m.dim(), 5);
    }
}
