//! Operation descriptor: the knob panel of §6.3 plus per-optimization
//! toggles for the Table 2 ablation.
//!
//! In the GraphBLAS C API a `GrB_Descriptor` carries transpose/replace/
//! complement switches and implementation hints. Ours additionally exposes
//! the paper's optimizations so each can be disabled in isolation:
//! direction choice (force push/pull or auto), the sparse↔dense switch
//! threshold (`α = β = 0.01`), early-exit, structure-only, and the multiway
//! merge strategy of §6.2 (radix sort vs. heap merge).

use graphblas_matrix::{ShardGrid, StorageFormat};

/// Traversal direction ≡ matvec kernel family (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Column-based matvec over a sparse input (frontier expands children).
    Push,
    /// Row-based matvec over a dense input (unvisited rows scan parents).
    Pull,
}

/// How `mxv` (and, row by row, `mxv_batch`) picks its kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DirectionChoice {
    /// Follow the input vector's storage: sparse → push, dense → pull.
    /// This is Optimization 1 — the storage itself is steered by
    /// [`crate::Vector::convert`]. The batched dispatcher applies the same
    /// rule per row (or per-row `DirectionPolicy` state when supplied).
    #[default]
    Auto,
    /// Always use the given kernel, converting the input if needed
    /// (used by the per-iteration studies of Figs. 5–6 and the baselines).
    /// In a batch this forces *every* row.
    Force(Direction),
}

/// How `mxv` (and the batched/fused dispatchers) pick the matrix storage
/// format the chosen kernel face runs over — the format half of an
/// execution plan ([`crate::plan::ExecPlan`]), mirroring
/// [`DirectionChoice`] for the direction half.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FormatChoice {
    /// Let [`crate::plan::resolve_plan`] pick from the operand's static
    /// shape: hypersparse operands (row occupancy below the planner's
    /// threshold) run DCSR, dense pull phases run bitmap when it fits,
    /// everything else CSR. Memoryless — iterative algorithms that want
    /// the hysteresis variant drive a [`crate::plan::FormatPolicy`] and
    /// force its choice here per iteration.
    #[default]
    Auto,
    /// Always run the given format (the per-format study arms and the
    /// `Fixed(Csr)` test oracle). An infeasible bitmap degrades to CSR —
    /// see [`graphblas_matrix::Graph::effective_format`].
    Force(StorageFormat),
}

/// How the column kernel resolves its multiway merge (§6.2 discussion).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Concatenate all lists, radix sort, segmented-reduce — the paper's
    /// GPU-friendly choice, `O(nnz(m_f⁺) log M)`.
    #[default]
    SortBased,
    /// Textbook k-way heap merge, `O(nnz(m_f⁺) log nnz(f))` — kept for the
    /// ablation bench.
    HeapMerge,
    /// Gunrock's local culling (§7.3): dedup through a bitmask claim
    /// instead of sorting, `O(nnz(m_f⁺))` with no log factor. Only valid
    /// when the semiring provides a constant product hint (BFS-style
    /// traversals where duplicate products are all equal); the kernel
    /// falls back to [`MergeStrategy::SortBased`] otherwise.
    BitmaskCull,
    /// Per-worker sparse accumulators (Gilbert–Moler–Schreiber SPA, §3.2):
    /// the frontier is cut into expansion-balanced chunks, each chunk
    /// scatters its products into a private SPA (`O(1)` per product, no
    /// sort), and the per-chunk sorted harvests are combined by a
    /// deterministic k-way merge in chunk order — the CPU shared-memory
    /// analogue of the paper's sort-based GPU merge. `O(nnz(m_f⁺) +
    /// nnz(w') log k)` for `k` chunks, at the cost of an `O(M)`-sized
    /// accumulator per worker chunk.
    SpaMerge,
}

/// How the dispatchers decide whether to run the cache-blocked sharded
/// kernels over a 2D stripe grid ([`graphblas_matrix::ShardPlan`]) — the
/// shard half of an execution plan, mirroring [`FormatChoice`] for the
/// format half. Sharded and unsharded runs are bit-identical in values and
/// access counters by contract; sharding changes the merge topology
/// (stripe-local instead of one global barrier) and memory locality only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Never shard — the proptested oracle path.
    #[default]
    Off,
    /// Always run the given grid (clamped per dimension), whatever the
    /// operand's size — the study arms and the equivalence-test driver.
    Fixed(ShardGrid),
    /// Shard with the operand's cached default-budget plan when its dense
    /// push working set exceeds the shard cache budget; run unsharded
    /// below the threshold, where stripe bookkeeping costs more than the
    /// locality buys.
    Auto,
}

/// Per-call options for `mxv` and friends.
#[derive(Clone, Copy, Debug)]
pub struct Descriptor {
    /// Operate on `Aᵀ` instead of `A` (GrB_INP0 transpose). BFS sets this:
    /// Algorithm 1 computes `Aᵀf`.
    pub transpose: bool,
    /// Kernel selection policy.
    pub direction: DirectionChoice,
    /// The `α = β` ratio of §6.3 at which [`crate::Vector::convert`]
    /// switches storage. Paper default 0.01.
    pub switch_threshold: f64,
    /// Optimization 3: allow the row kernel to break out of a row once the
    /// ⊕ accumulator reaches the monoid's annihilator.
    pub early_exit: bool,
    /// Optimization 5: let the column kernel sort keys only, using the
    /// semiring's constant product hint instead of carrying values.
    pub structure_only: bool,
    /// Column-kernel merge implementation.
    pub merge_strategy: MergeStrategy,
    /// Matrix storage-format selection policy.
    pub format: FormatChoice,
    /// Let the boolean-semiring kernels run bit-parallel (whole `u64`
    /// words of the bitmap operand at a time) whenever the planned store
    /// exposes a word surface and the semiring qualifies. Value- and
    /// projected-counter-equivalent to the scalar path by contract;
    /// `bit_kernels(false)` is the scalar-oracle switch the equivalence
    /// tests compare against.
    pub bit_kernels: bool,
    /// Cache-blocked shard-grid selection policy (see [`ShardPolicy`]).
    pub shards: ShardPolicy,
}

impl Default for Descriptor {
    fn default() -> Self {
        Self {
            transpose: false,
            direction: DirectionChoice::Auto,
            switch_threshold: 0.01,
            early_exit: true,
            structure_only: true,
            merge_strategy: MergeStrategy::SortBased,
            format: FormatChoice::Auto,
            bit_kernels: true,
            shards: ShardPolicy::Off,
        }
    }
}

impl Descriptor {
    /// Descriptor with every paper optimization enabled (the defaults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: set transpose.
    #[must_use]
    pub fn transpose(mut self, on: bool) -> Self {
        self.transpose = on;
        self
    }

    /// Builder: force a direction.
    #[must_use]
    pub fn force(mut self, d: Direction) -> Self {
        self.direction = DirectionChoice::Force(d);
        self
    }

    /// Builder: set early-exit.
    #[must_use]
    pub fn early_exit(mut self, on: bool) -> Self {
        self.early_exit = on;
        self
    }

    /// Builder: set structure-only.
    #[must_use]
    pub fn structure_only(mut self, on: bool) -> Self {
        self.structure_only = on;
        self
    }

    /// Builder: set the merge strategy.
    #[must_use]
    pub fn merge_strategy(mut self, s: MergeStrategy) -> Self {
        self.merge_strategy = s;
        self
    }

    /// Builder: set the sparse↔dense switch threshold.
    #[must_use]
    pub fn switch_threshold(mut self, t: f64) -> Self {
        self.switch_threshold = t;
        self
    }

    /// Builder: force a storage format.
    #[must_use]
    pub fn force_format(mut self, f: StorageFormat) -> Self {
        self.format = FormatChoice::Force(f);
        self
    }

    /// Builder: set the format-selection policy.
    #[must_use]
    pub fn format_choice(mut self, c: FormatChoice) -> Self {
        self.format = c;
        self
    }

    /// Builder: toggle the bit-parallel boolean kernels (see
    /// [`Descriptor::bit_kernels`]).
    #[must_use]
    pub fn bit_kernels(mut self, on: bool) -> Self {
        self.bit_kernels = on;
        self
    }

    /// Builder: set the shard-grid selection policy.
    #[must_use]
    pub fn shard_policy(mut self, p: ShardPolicy) -> Self {
        self.shards = p;
        self
    }

    /// Builder: always shard with the given grid.
    #[must_use]
    pub fn shard_grid(mut self, g: ShardGrid) -> Self {
        self.shards = ShardPolicy::Fixed(g);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let d = Descriptor::default();
        assert_eq!(d.switch_threshold, 0.01);
        assert!(d.early_exit);
        assert!(d.structure_only);
        assert_eq!(d.direction, DirectionChoice::Auto);
        assert_eq!(d.merge_strategy, MergeStrategy::SortBased);
        assert_eq!(d.format, FormatChoice::Auto);
        assert!(!d.transpose);
        assert!(d.bit_kernels, "bit kernels are on by default");
        assert_eq!(d.shards, ShardPolicy::Off, "the oracle path is default");
    }

    #[test]
    fn builder_chains() {
        let d = Descriptor::new()
            .transpose(true)
            .force(Direction::Pull)
            .early_exit(false)
            .structure_only(false)
            .merge_strategy(MergeStrategy::HeapMerge)
            .switch_threshold(0.05)
            .bit_kernels(false)
            .shard_grid(ShardGrid::new(2, 4))
            .force_format(StorageFormat::Dcsr);
        assert!(!d.bit_kernels);
        assert_eq!(d.shards, ShardPolicy::Fixed(ShardGrid::new(2, 4)));
        assert_eq!(d.shard_policy(ShardPolicy::Auto).shards, ShardPolicy::Auto);
        assert!(d.transpose);
        assert_eq!(d.direction, DirectionChoice::Force(Direction::Pull));
        assert!(!d.early_exit);
        assert!(!d.structure_only);
        assert_eq!(d.merge_strategy, MergeStrategy::HeapMerge);
        assert!((d.switch_threshold - 0.05).abs() < f64::EPSILON);
        assert_eq!(d.format, FormatChoice::Force(StorageFormat::Dcsr));
    }
}
