//! GraphBLAS-style core: generalized semirings, sparse/dense vectors with
//! the §6.3 conversion heuristic, masks with structural complement, and the
//! four matvec kernels of Table 1 behind a single `mxv` entry point that
//! performs the paper's push-pull direction optimization at runtime.
//!
//! The library follows the paper's central isomorphism (§4): *push* is
//! column-based matvec over a sparse input vector, *pull* is row-based
//! masked matvec over a dense input vector, and both are the same GraphBLAS
//! expression `f' = Aᵀf .∗ ¬v`. User code writes the expression once
//! (see `graphblas_algo`'s BFS, a direct transcription of Algorithm 1);
//! the backend here picks the kernel.
//!
//! Each of the paper's five optimizations is independently switchable
//! through [`Descriptor`] so the Table 2 ablation can be reproduced:
//!
//! 1. **Change of direction** — [`ops_mxv::mxv`] dispatches on the input
//!    vector's storage; [`vector::Vector::convert`] implements the
//!    `nnz/M >< 0.01` hysteresis switch.
//! 2. **Masking** — [`mask::Mask`] plus the masked row/column kernels.
//! 3. **Early-exit** — row-based masked kernel breaks out of a row when the
//!    ⊕ monoid hits its annihilator (`OR` saturating at `true`).
//! 4. **Operand reuse** — enabled by the algorithm layer, which may pass the
//!    visited vector in place of the frontier (Gunrock's trick, §5.4).
//! 5. **Structure-only** — column kernel sorts keys instead of (key, value)
//!    pairs when the semiring ignores matrix values (§5.5).
//!
//! [`ops_mxv_batch`] generalizes the direction machinery to `k × n`
//! frontier *batches* ([`vector::MultiVector`]): [`ops_mxv_batch::mxv_batch`]
//! resolves a direction per row and runs the batched row/column kernels
//! over a flat `(source, chunk)` grid — the multi-source BFS and batched
//! Brandes BC workload the paper's §1 motivates.
//!
//! [`fused`] adds the kernel-fusion layer on top of the same dispatch: the
//! lazy [`fused::FusedMxv`] builder compiles a masked `mxv` + elementwise
//! `apply` + `assign` chain into a single pass over either kernel face, so
//! iterative algorithms update their long-lived state (depths, parents,
//! labels, distances, ranks) without materializing an intermediate vector
//! per step — GraphBLAST's co-equal optimization next to masking.

#![warn(missing_docs)]

pub mod bitops;
pub mod descriptor;
pub mod error;
pub mod exec;
pub mod fused;
pub mod mask;
pub mod matrix_ops;
pub mod mxm;
pub mod ops;
pub mod ops_mxv;
pub mod ops_mxv_batch;
pub mod plan;
pub mod vector;
pub mod vector_ops;

pub use bitops::BitFrontier;
pub use descriptor::{
    Descriptor, Direction, DirectionChoice, FormatChoice, MergeStrategy, ShardPolicy,
};
pub use error::{BudgetResource, GrbError, GrbResult};
pub use exec::{check_stop, run_guarded, ExecLimits, StopReason};
pub use fused::{FusedMxv, FusedOutput, FusedPipeline};
pub use graphblas_matrix::{ShardGrid, ShardPlan, StorageFormat};
pub use mask::Mask;
pub use ops::{BoolOrAnd, MinPlus, Monoid, PlusTimes, Scalar, Semiring, SemiringNum};
pub use ops_mxv::{
    col_masked_mxv, col_mxv, mxv, resolve_direction, row_masked_mxv, row_mxv, CostModelInputs,
    DirectionPolicy,
};
pub use ops_mxv_batch::{
    col_masked_mxv_batch, mxv_batch, mxv_batch_attributed, row_masked_mxv_batch,
};
pub use plan::{resolve_plan, CostConstants, ExecPlan, FormatPolicy};
pub use vector::{ConvertState, DenseVector, MultiVector, SparseVector, Vector};
