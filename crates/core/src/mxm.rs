//! Masked sparse matrix-matrix multiply (GrB_mxm).
//!
//! §5.6 claims masking generalizes "to any algorithm where the output
//! sparsity is known before the operation", naming triangle counting first.
//! There the mask is a *matrix* pattern: triangles are counted by
//! `C⟨L⟩ = L·L` — only entries of `C` that coincide with an edge of the
//! lower triangle `L` are wanted, so the masked Gustavson row product can
//! skip accumulating everything else. This module provides exactly that
//! kernel and is what `graphblas_algo::tricount` builds on.

use crate::ops::{Monoid, Scalar, Semiring};
use graphblas_matrix::{Csr, RowAccess};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::Spa;
use rayon::prelude::*;

/// `C = A·B` (optionally `C⟨M⟩ = A·B`) over a semiring, Gustavson row-wise
/// with a SPA. When `mask` is given, row `i` of the output is restricted to
/// the column pattern of `mask.row(i)` (structural; mask values ignored).
///
/// With a mask whose rows are short, the per-row cost drops from
/// "all reachable columns" to "mask row length" probes — the matrix-level
/// analog of Table 1's `O(dM) → O(d·nnz(m))`.
///
/// `counters` charges the same categories as the matvec kernels, making
/// the SpGEMM face of batching measurable alongside `mxv`/`mxv_batch`:
/// `matrix` counts the expanded `(A-entry, B-entry)` products examined,
/// `mask` the per-product mask-row probes, and `vector` the SPA scatters
/// plus harvests. Counting is bulk per row, never per element in the hot
/// loop, so instrumented runs stay exact and cheap under concurrency.
#[must_use]
pub fn mxm<A, B, Y, S, M, MA, MB, MM>(
    mask: Option<&MM>,
    s: S,
    a: &MA,
    b: &MB,
    y_zero: Y,
    counters: Option<&AccessCounters>,
) -> Csr<Y>
where
    A: Scalar,
    B: Scalar,
    Y: Scalar,
    M: Scalar,
    S: Semiring<A, B, Y>,
    MA: RowAccess<A>,
    MB: RowAccess<B>,
    MM: RowAccess<M>,
{
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    if let Some(m) = mask {
        assert_eq!(m.n_rows(), a.n_rows(), "mask rows must match output");
        assert_eq!(m.n_cols(), b.n_cols(), "mask cols must match output");
    }
    let add = s.add_monoid();
    let identity = add.identity();

    // Each worker owns a SPA sized to the output width; rows are processed
    // in parallel and assembled in row order afterwards.
    let rows: Vec<(Vec<u32>, Vec<Y>)> = (0..a.n_rows())
        .into_par_iter()
        .map_init(
            || Spa::new(b.n_cols(), identity),
            |spa, i| match mask {
                Some(m) => masked_row(s, add, a, b, m, i, spa, counters),
                None => unmasked_row(s, add, a, b, i, spa, counters),
            },
        )
        .collect();

    let mut row_ptr = Vec::with_capacity(a.n_rows() + 1);
    row_ptr.push(0usize);
    let mut total = 0usize;
    for (ids, _) in &rows {
        total += ids.len();
        row_ptr.push(total);
    }
    let mut col_ind = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    for (ids, vals) in rows {
        col_ind.extend(ids);
        values.extend(vals);
    }
    let _ = y_zero;
    Csr::from_parts(a.n_rows(), b.n_cols(), row_ptr, col_ind, values)
}

#[allow(clippy::too_many_arguments)]
fn unmasked_row<A, B, Y, S, Add, MA, MB>(
    s: S,
    add: Add,
    a: &MA,
    b: &MB,
    i: usize,
    spa: &mut Spa<Y>,
    counters: Option<&AccessCounters>,
) -> (Vec<u32>, Vec<Y>)
where
    A: Scalar,
    B: Scalar,
    Y: Scalar,
    S: Semiring<A, B, Y>,
    Add: Monoid<Y>,
    MA: RowAccess<A>,
    MB: RowAccess<B>,
{
    let identity = add.identity();
    let mut examined = 0u64;
    for (idx, &k) in a.row(i).iter().enumerate() {
        let av = a.row_values(i)[idx];
        let k = k as usize;
        examined += b.row(k).len() as u64;
        for (jdx, &j) in b.row(k).iter().enumerate() {
            let prod = s.mult(av, b.row_values(k)[jdx]);
            spa.accumulate(j, prod, |x, y| add.op(x, y));
        }
    }
    if let Some(c) = counters {
        c.add_matrix(examined);
        // One SPA scatter per product plus the harvest.
        c.add_vector(2 * examined);
    }
    let (ids, vals) = spa.drain_sorted();
    // Drop identity-valued entries (implicit zeros).
    let mut out_ids = Vec::with_capacity(ids.len());
    let mut out_vals = Vec::with_capacity(vals.len());
    for (id, v) in ids.into_iter().zip(vals) {
        if v != identity {
            out_ids.push(id);
            out_vals.push(v);
        }
    }
    (out_ids, out_vals)
}

#[allow(clippy::too_many_arguments)]
fn masked_row<A, B, Y, S, Add, M, MA, MB, MM>(
    s: S,
    add: Add,
    a: &MA,
    b: &MB,
    mask: &MM,
    i: usize,
    spa: &mut Spa<Y>,
    counters: Option<&AccessCounters>,
) -> (Vec<u32>, Vec<Y>)
where
    A: Scalar,
    B: Scalar,
    Y: Scalar,
    M: Scalar,
    S: Semiring<A, B, Y>,
    Add: Monoid<Y>,
    MA: RowAccess<A>,
    MB: RowAccess<B>,
    MM: RowAccess<M>,
{
    let allowed = mask.row(i);
    if allowed.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let identity = add.identity();
    // Accumulate products, but only into columns the mask row allows.
    // `allowed` is sorted, so membership is a binary search; for the short
    // mask rows of triangle counting this beats accumulating everything.
    let mut examined = 0u64;
    let mut kept = 0u64;
    for (idx, &k) in a.row(i).iter().enumerate() {
        let av = a.row_values(i)[idx];
        let k = k as usize;
        examined += b.row(k).len() as u64;
        for (jdx, &j) in b.row(k).iter().enumerate() {
            if allowed.binary_search(&j).is_ok() {
                let prod = s.mult(av, b.row_values(k)[jdx]);
                spa.accumulate(j, prod, |x, y| add.op(x, y));
                kept += 1;
            }
        }
    }
    if let Some(c) = counters {
        c.add_matrix(examined);
        // Every examined product probes the mask row; only the survivors
        // touch the SPA (scatter + harvest).
        c.add_mask(examined);
        c.add_vector(2 * kept);
    }
    let (ids, vals) = spa.drain_sorted();
    let mut out_ids = Vec::with_capacity(ids.len());
    let mut out_vals = Vec::with_capacity(vals.len());
    for (id, v) in ids.into_iter().zip(vals) {
        if v != identity {
            out_ids.push(id);
            out_vals.push(v);
        }
    }
    (out_ids, out_vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::PlusTimes;
    use graphblas_matrix::Coo;

    fn dense_to_csr(rows: &[&[f64]]) -> Csr<f64> {
        let mut coo = Coo::new(rows.len(), rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    coo.push(i as u32, j as u32, v);
                }
            }
        }
        Csr::from_coo(&coo)
    }

    fn csr_to_dense(c: &Csr<f64>) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; c.n_cols()]; c.n_rows()];
        for (i, row_out) in out.iter_mut().enumerate() {
            for (idx, &j) in c.row(i).iter().enumerate() {
                row_out[j as usize] = c.row_values(i)[idx];
            }
        }
        out
    }

    #[test]
    fn small_dense_product() {
        let a = dense_to_csr(&[&[1.0, 2.0], &[0.0, 3.0]]);
        let b = dense_to_csr(&[&[4.0, 0.0], &[1.0, 5.0]]);
        let c = mxm(None::<&Csr<f64>>, PlusTimes, &a, &b, 0.0, None);
        assert_eq!(csr_to_dense(&c), vec![vec![6.0, 10.0], vec![3.0, 15.0]]);
    }

    #[test]
    fn product_with_empty_rows() {
        let a = dense_to_csr(&[&[0.0, 0.0], &[1.0, 0.0]]);
        let b = dense_to_csr(&[&[0.0, 2.0], &[0.0, 0.0]]);
        let c = mxm(None::<&Csr<f64>>, PlusTimes, &a, &b, 0.0, None);
        assert_eq!(csr_to_dense(&c), vec![vec![0.0, 0.0], vec![0.0, 2.0]]);
        assert_eq!(c.nnz(), 1);
    }

    #[test]
    fn masked_product_restricts_pattern() {
        let a = dense_to_csr(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let b = dense_to_csr(&[&[1.0, 1.0], &[1.0, 1.0]]);
        // Mask allows only the diagonal.
        let mask = dense_to_csr(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let c = mxm(Some(&mask), PlusTimes, &a, &b, 0.0, None);
        assert_eq!(csr_to_dense(&c), vec![vec![2.0, 0.0], vec![0.0, 2.0]]);
    }

    #[test]
    fn masked_matches_unmasked_then_filtered() {
        // Random-ish 6x6: masked product must equal unmasked ∘ mask filter.
        let a = dense_to_csr(&[
            &[0.0, 1.0, 0.0, 2.0, 0.0, 0.0],
            &[1.0, 0.0, 3.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0, 0.0],
            &[2.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0, 0.0, 1.0],
            &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0],
        ]);
        let mask = dense_to_csr(&[
            &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        let masked = mxm(Some(&mask), PlusTimes, &a, &a, 0.0, None);
        let full = mxm(None::<&Csr<f64>>, PlusTimes, &a, &a, 0.0, None);
        let fd = csr_to_dense(&full);
        let md = csr_to_dense(&masked);
        for i in 0..6 {
            for j in 0..6 {
                let allowed = mask.row(i).binary_search(&(j as u32)).is_ok();
                let expect = if allowed { fd[i][j] } else { 0.0 };
                assert_eq!(md[i][j], expect, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn counters_measure_expansion_and_mask_probes() {
        let a = dense_to_csr(&[
            &[0.0, 1.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0, 1.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 1.0, 0.0],
        ]);
        // Expected expansion: Σ_i Σ_{k ∈ A(i,:)} |B(k,:)|.
        let expected: u64 = (0..4)
            .flat_map(|i| a.row(i).iter().map(|&k| a.row(k as usize).len() as u64))
            .sum();
        let unmasked = AccessCounters::new();
        let _ = mxm(None::<&Csr<f64>>, PlusTimes, &a, &a, 0.0, Some(&unmasked));
        let u = unmasked.snapshot();
        assert_eq!(u.matrix, expected);
        assert_eq!(u.vector, 2 * expected, "scatter + harvest per product");
        assert_eq!(u.mask, 0);

        // Diagonal mask: same expansion, every product probes the mask,
        // and far fewer products reach the SPA.
        let mask = dense_to_csr(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let masked = AccessCounters::new();
        let _ = mxm(Some(&mask), PlusTimes, &a, &a, 0.0, Some(&masked));
        let m = masked.snapshot();
        assert_eq!(m.matrix, expected, "a mask cannot reduce expansion work");
        assert_eq!(m.mask, expected, "every product probes the mask");
        assert!(m.vector < u.vector, "mask culls SPA traffic");
    }

    #[test]
    fn triangle_count_shape() {
        // Triangle 0-1-2 plus a pendant edge 2-3 (undirected).
        let mut coo = Coo::new(4, 4);
        for &(u, v) in &[(0u32, 1u32), (1, 2), (0, 2), (2, 3)] {
            coo.push(u, v, 1.0);
        }
        coo.clean_undirected();
        let adj = Csr::from_coo(&coo);
        // Lower triangle.
        let mut lcoo = Coo::new(4, 4);
        for i in 0..4 {
            for (idx, &j) in adj.row(i).iter().enumerate() {
                if (j as usize) < i {
                    lcoo.push(i as u32, j, adj.row_values(i)[idx]);
                }
            }
        }
        let l = Csr::from_coo(&lcoo);
        let c = mxm(Some(&l), PlusTimes, &l, &l, 0.0, None);
        let total: f64 = c.values().iter().sum();
        assert_eq!(total, 1.0, "exactly one triangle");
    }
}
