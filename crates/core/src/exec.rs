//! The guarded-execution layer: deadlines, budgets, and panic isolation
//! around any GraphBLAS computation.
//!
//! [`run_guarded`] is the single robustness boundary. It installs an
//! [`ExecLimits`] on the run's [`AccessCounters`] (creating private
//! counters when the caller passed none), snapshots the counter state,
//! executes the computation under a panic catch, and classifies every
//! abnormal outcome into a typed [`GrbError`]:
//!
//! * a tripped limit → [`GrbError::Cancelled`] /
//!   [`GrbError::BudgetExceeded`] (see [`stop_error`]);
//! * a caught worker-chunk panic → [`GrbError::WorkerPanicked`] with the
//!   chunk index reported by the pool's side channel;
//! * any other panic is re-thrown untouched (it did not come from a pool
//!   chunk, so it is a caller bug, not an isolated worker fault).
//!
//! On *every* error path the guard restores the counters to their pre-run
//! snapshot and uninstalls the limits, so an aborted run leaves no trace:
//! an immediate retry observes exactly the state a fresh process would —
//! the poison-freedom contract the robustness suite pins at 1/2/8 lanes.
//!
//! Kernels participate by polling
//! [`AccessCounters::checkpoint`](graphblas_primitives::AccessCounters::checkpoint)
//! at their existing size-derived chunk boundaries and bailing with cheap
//! identity results once it returns `false`; the dispatchers then convert
//! the sticky stop reason into the typed error via [`check_stop`]. Because
//! those boundaries never depend on the lane count, a run that *completes*
//! under limits is still bit-identical across threads.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};

use graphblas_matrix::{Dcsr, Graph, StorageFormat, StoreRef};
use graphblas_primitives::{AccessCounters, ConversionKey};
pub use graphblas_primitives::{ExecLimits, StopReason};

use crate::error::{BudgetResource, GrbError, GrbResult};

/// Kernel-side checkpoint poll: `true` while the run may continue. Cheap
/// (two relaxed loads) and always `true` without counters, so kernels can
/// call it unconditionally at their chunk boundaries.
#[inline]
pub(crate) fn live(counters: Option<&AccessCounters>) -> bool {
    counters.is_none_or(AccessCounters::checkpoint)
}

/// Caller-thread allocation charge: `true` if the allocation may proceed.
/// Denial trips the bytes budget; the kernel should bail with an empty
/// result and let the dispatcher's [`check_stop`] surface the typed error.
/// Only ever called from the dispatching thread so fail-Nth-allocation
/// fault injection counts allocations in a deterministic order.
#[inline]
pub(crate) fn charge_alloc(counters: Option<&AccessCounters>, bytes: u64) -> bool {
    counters.is_none_or(|c| c.try_charge_alloc(bytes))
}

/// Serve one orientation of the graph in the planned format, metering the
/// bytes a Bitmap/DCSR materialization would cost against the run's bytes
/// budget.
///
/// This is the graceful-degradation point of the limits layer: when the
/// charge is denied the request falls back to the always-present CSR (no
/// allocation, no conversion) and the fallback is recorded in the
/// `limit_degrades` telemetry counter — mirroring how an infeasible bitmap
/// degrades via `bitmap_degrades`. The charge is assessed once per
/// (orientation, format) key per run whether or not the graph's
/// [`FormatCache`](graphblas_matrix::Graph) is already warm, so a retry
/// after an aborted run observes byte charges bit-identical to a fresh
/// process.
pub(crate) fn store_budgeted<'g, V: Copy + Send + Sync + PartialEq>(
    graph: &'g Graph<V>,
    transposed: bool,
    format: StorageFormat,
    counters: Option<&AccessCounters>,
) -> StoreRef<'g, V> {
    // An infeasible bitmap already degrades to CSR inside `store`; resolve
    // that first so we never charge for a conversion that cannot happen.
    let effective = graph.effective_format(transposed, format);
    let c = match counters {
        Some(c) if effective != StorageFormat::Csr => c,
        _ => return graph.store(transposed, effective),
    };
    let bytes = match effective {
        StorageFormat::Csr => unreachable!("handled above"),
        // The cached tiling plan prices exactly what a build allocates.
        StorageFormat::Bitmap => graph.bitmap_plan(transposed).bytes(),
        StorageFormat::Dcsr => Dcsr::<V>::estimate_bytes(graph.nonempty_rows(transposed)),
    };
    let key = ConversionKey {
        transposed,
        dcsr: effective == StorageFormat::Dcsr,
    };
    if c.try_charge_conversion(key, bytes) {
        graph.store(transposed, effective)
    } else {
        c.add_limit_degrade();
        graph.store(transposed, StorageFormat::Csr)
    }
}

/// Map a sticky [`StopReason`] to its typed error.
#[must_use]
pub fn stop_error(reason: StopReason) -> GrbError {
    match reason {
        StopReason::Deadline => GrbError::Cancelled,
        StopReason::WorkBudget => GrbError::BudgetExceeded {
            resource: BudgetResource::Work,
        },
        StopReason::BytesBudget => GrbError::BudgetExceeded {
            resource: BudgetResource::Bytes,
        },
    }
}

/// Dispatcher-side poll: turn a tripped limit into its typed error. Cheap
/// when no limits are installed (one relaxed load).
#[inline]
pub fn check_stop(counters: Option<&AccessCounters>) -> GrbResult<()> {
    match counters.and_then(AccessCounters::stop_reason) {
        Some(reason) => Err(stop_error(reason)),
        None => Ok(()),
    }
}

/// Best-effort rendering of a panic payload for [`GrbError::WorkerPanicked`].
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` under the given limits with full fault isolation.
///
/// `f` receives the counters the run is metered through: the caller's, or
/// — when limits are set and the caller passed `None` — a private set
/// created for the run (limits are enforced *through* counters, so a
/// limited run always has them). Completed runs return `f`'s value
/// unchanged; aborted runs (tripped limit, worker-chunk panic, or an
/// error from `f` itself) restore the counters to their entry snapshot
/// and uninstall the limits before returning the typed error.
///
/// ```
/// use graphblas_core::exec::{run_guarded, ExecLimits};
/// use graphblas_core::GrbError;
/// use std::time::Duration;
///
/// // A zero deadline trips at the first checkpoint the computation polls;
/// // here the closure simply observes the trip via its counters.
/// let out: Result<(), GrbError> =
///     run_guarded(None, &ExecLimits::none().with_deadline(Duration::ZERO), |c| {
///         let c = c.expect("limited runs always have counters");
///         assert!(!c.checkpoint(), "deadline already expired");
///         Ok(())
///     });
/// assert_eq!(out, Err(GrbError::Cancelled));
/// ```
pub fn run_guarded<T>(
    counters: Option<&AccessCounters>,
    limits: &ExecLimits,
    f: impl FnOnce(Option<&AccessCounters>) -> GrbResult<T>,
) -> GrbResult<T> {
    let private;
    let active: Option<&AccessCounters> = if counters.is_none() && limits.is_limited() {
        private = AccessCounters::new();
        Some(&private)
    } else {
        counters
    };
    let baseline = active.map(AccessCounters::snapshot);
    if let Some(c) = active {
        c.install_limits(limits);
    }
    // Uninstall on every exit path — including a re-thrown panic — so a
    // tripped or armed limit can never leak into a later run.
    struct Uninstall<'a>(Option<&'a AccessCounters>);
    impl Drop for Uninstall<'_> {
        fn drop(&mut self) {
            if let Some(c) = self.0 {
                c.uninstall_limits();
            }
        }
    }
    let _uninstall = Uninstall(active);

    let result = panic::catch_unwind(AssertUnwindSafe(|| f(active)));
    let outcome = match result {
        // A kernel may have bailed at a checkpoint without the dispatcher
        // noticing (identity results look like values): the sticky trip
        // outranks an apparent success.
        Ok(Ok(value)) => match active.and_then(AccessCounters::stop_reason) {
            Some(reason) => Err(stop_error(reason)),
            None => Ok(value),
        },
        Ok(Err(e)) => Err(e),
        Err(payload) => {
            // A tripped limit is the root cause even if the abort surfaced
            // as a panic somewhere above the dispatcher.
            if let Some(reason) = active.and_then(AccessCounters::stop_reason) {
                Err(stop_error(reason))
            } else if let Some(chunk) = rayon::take_last_panic_chunk() {
                Err(GrbError::WorkerPanicked {
                    chunk,
                    message: panic_message(payload.as_ref()),
                })
            } else {
                // Not a pool chunk: restore and re-throw (caller bug).
                if let (Some(c), Some(s)) = (active, baseline.as_ref()) {
                    c.restore(s);
                }
                panic::resume_unwind(payload);
            }
        }
    };
    if outcome.is_err() {
        if let (Some(c), Some(s)) = (active, baseline.as_ref()) {
            c.restore(s);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_guard_is_transparent() {
        let c = AccessCounters::new();
        let out = run_guarded(Some(&c), &ExecLimits::none(), |c| {
            c.expect("caller counters forwarded").add_matrix(7);
            Ok(41 + 1)
        });
        assert_eq!(out, Ok(42));
        assert_eq!(c.snapshot().matrix, 7, "completed runs keep their tallies");
    }

    #[test]
    fn tripped_limit_outranks_apparent_success_and_restores_counters() {
        let c = AccessCounters::new();
        c.add_matrix(100);
        let before = c.snapshot();
        let limits = ExecLimits::none().with_work_budget(5);
        let out = run_guarded(Some(&c), &limits, |c| {
            let c = c.expect("counters");
            c.add_matrix(50); // over budget
            assert!(!c.checkpoint());
            Ok(()) // kernel bailed silently; guard must still error
        });
        assert_eq!(
            out,
            Err(GrbError::BudgetExceeded {
                resource: BudgetResource::Work
            })
        );
        assert_eq!(c.snapshot(), before, "aborted run rolled back");
        assert_eq!(c.stop_reason(), None, "limits uninstalled");
        // Retry with the same counters and no limits: clean.
        let out = run_guarded(Some(&c), &ExecLimits::none(), |_| Ok(1));
        assert_eq!(out, Ok(1));
    }

    #[test]
    fn worker_chunk_panic_is_typed_and_pool_stays_usable() {
        use rayon::prelude::*;
        let c = AccessCounters::new();
        let out: GrbResult<Vec<u64>> = rayon::with_num_threads(4, || {
            run_guarded(Some(&c), &ExecLimits::none(), |_| {
                Ok((0..64u64)
                    .into_par_iter()
                    .with_min_len(2)
                    .map(|i| {
                        assert!(i != 33, "injected");
                        i
                    })
                    .collect())
            })
        });
        match out {
            Err(GrbError::WorkerPanicked { message, .. }) => {
                assert!(message.contains("injected"), "payload preserved: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // Pool and counters unpoisoned: a clean run works immediately.
        let ok: GrbResult<u64> = rayon::with_num_threads(4, || {
            run_guarded(Some(&c), &ExecLimits::none(), |_| {
                Ok((0..64u64).into_par_iter().with_min_len(2).sum())
            })
        });
        assert_eq!(ok, Ok(63 * 64 / 2));
    }

    #[test]
    fn non_pool_panics_are_rethrown() {
        let caught = panic::catch_unwind(|| {
            let _ = run_guarded(None, &ExecLimits::none(), |_| -> GrbResult<()> {
                panic!("caller bug")
            });
        });
        assert!(caught.is_err(), "guard must not swallow non-chunk panics");
    }

    #[test]
    fn private_counters_are_created_for_limited_runs() {
        let out = run_guarded(
            None,
            &ExecLimits::none().with_deadline(Duration::from_secs(3600)),
            |c| {
                assert!(c.is_some(), "limited run gets private counters");
                assert!(c.expect("counters").checkpoint());
                Ok(())
            },
        );
        assert_eq!(out, Ok(()));
    }
}
