//! Sparse and dense vectors with the §6.3 storage-conversion heuristic.
//!
//! The paper's backend keeps the frontier in a `SparseVector` (sorted index
//! and value lists) while it is small and converts it to a `DenseVector`
//! when it grows past 1% of the dimension, because row-based matvec wants
//! O(1) random access into the input and column-based matvec wants the
//! nonzero list. Storage *is* the direction signal: `mxv` runs the column
//! kernel (push) on sparse inputs and the row kernel (pull) on dense
//! inputs, so [`Vector::convert`] is Optimization 1's decision procedure.

use crate::ops::Scalar;
use graphblas_matrix::VertexId;

/// A sparse vector: sorted unique indices with explicit values.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVector<T> {
    ids: Vec<VertexId>,
    vals: Vec<T>,
}

impl<T: Scalar> SparseVector<T> {
    /// Build from parallel (indices, values) arrays; indices must be sorted
    /// ascending and unique (debug-asserted).
    #[must_use]
    pub fn from_sorted(ids: Vec<VertexId>, vals: Vec<T>) -> Self {
        assert_eq!(ids.len(), vals.len());
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be sorted unique"
        );
        Self { ids, vals }
    }

    /// Indices of explicit entries.
    #[must_use]
    pub fn ids(&self) -> &[VertexId] {
        &self.ids
    }

    /// Values of explicit entries.
    #[must_use]
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Number of explicit entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.ids.len()
    }

    /// Value at `i`, when explicit.
    #[must_use]
    pub fn get(&self, i: VertexId) -> Option<T> {
        self.ids.binary_search(&i).ok().map(|pos| self.vals[pos])
    }
}

/// A dense vector with an explicit `fill` element standing for the implicit
/// zeros (the semiring's ⊕ identity): entries equal to `fill` are treated
/// as absent by `nnz` and the kernels.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseVector<T> {
    vals: Vec<T>,
    fill: T,
}

impl<T: Scalar> DenseVector<T> {
    /// A vector of `dim` copies of `fill`.
    #[must_use]
    pub fn new(dim: usize, fill: T) -> Self {
        Self {
            vals: vec![fill; dim],
            fill,
        }
    }

    /// Wrap existing values.
    #[must_use]
    pub fn from_values(vals: Vec<T>, fill: T) -> Self {
        Self { vals, fill }
    }

    /// Dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.vals.len()
    }

    /// The implicit-zero element.
    #[must_use]
    pub fn fill(&self) -> T {
        self.fill
    }

    /// All slots, including fill entries.
    #[must_use]
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable access to all slots.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Read slot `i`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> T {
        self.vals[i]
    }

    /// Write slot `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        self.vals[i] = v;
    }

    /// `true` when slot `i` differs from the fill element.
    #[inline]
    #[must_use]
    pub fn is_explicit(&self, i: usize) -> bool {
        self.vals[i] != self.fill
    }

    /// Count of non-fill entries (O(dim) scan).
    #[must_use]
    pub fn nnz(&self) -> usize {
        let fill = self.fill;
        self.vals.iter().filter(|&&v| v != fill).count()
    }
}

/// Storage-adaptive vector: the GraphBLAS object user code holds.
///
/// Storage *is* the direction signal (§6.3): `mxv` runs the column (push)
/// kernel on sparse inputs and the row (pull) kernel on dense ones, and
/// [`Vector::convert`] is the hysteresis rule that moves between them.
///
/// ```
/// use graphblas_core::{ConvertState, Vector};
///
/// // A frontier of 3 explicit vertices in a 100-vertex graph.
/// let mut f = Vector::from_sparse(100, false, vec![2, 5, 9], vec![true; 3]);
/// assert!(f.is_sparse());
/// assert_eq!(f.nnz(), 3);
/// assert!(f.get(5) && !f.get(6));
///
/// // Storage conversions preserve the explicit set exactly.
/// f.make_dense();
/// assert!(!f.is_sparse());
/// assert_eq!(f.iter_explicit().collect::<Vec<_>>(),
///            vec![(2, true), (5, true), (9, true)]);
///
/// // The §6.3 switch: 3% > 1% and rising ⇒ densify.
/// let mut state = ConvertState::new();
/// let mut growing = Vector::from_sparse(100, false, (0..3).collect(), vec![true; 3]);
/// assert!(growing.convert(&mut state, 0.01));
/// assert!(!growing.is_sparse());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Vector<T> {
    /// Sorted-list storage; `mxv` runs the column (push) kernel on it.
    Sparse {
        /// Logical dimension.
        dim: usize,
        /// The implicit-zero element.
        fill: T,
        /// Explicit entries.
        data: SparseVector<T>,
    },
    /// Dense storage; `mxv` runs the row (pull) kernel on it.
    Dense(DenseVector<T>),
}

/// Memory of the previous `convert` call, giving the paper's hysteresis:
/// switch sparse→dense only while nnz is *rising* past the threshold and
/// dense→sparse only while it is *falling* below it (§6.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct ConvertState {
    last_nnz: Option<usize>,
}

impl ConvertState {
    /// Fresh state with no history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T: Scalar> Vector<T> {
    /// An empty sparse vector.
    #[must_use]
    pub fn new_sparse(dim: usize, fill: T) -> Self {
        Vector::Sparse {
            dim,
            fill,
            data: SparseVector::from_sorted(Vec::new(), Vec::new()),
        }
    }

    /// An all-fill dense vector.
    #[must_use]
    pub fn new_dense(dim: usize, fill: T) -> Self {
        Vector::Dense(DenseVector::new(dim, fill))
    }

    /// A sparse vector holding a single explicit entry — the BFS source
    /// frontier of Algorithm 1 line 3.
    #[must_use]
    pub fn singleton(dim: usize, fill: T, id: VertexId, value: T) -> Self {
        assert!((id as usize) < dim);
        Vector::Sparse {
            dim,
            fill,
            data: SparseVector::from_sorted(vec![id], vec![value]),
        }
    }

    /// Build sparse storage from sorted (ids, values).
    #[must_use]
    pub fn from_sparse(dim: usize, fill: T, ids: Vec<VertexId>, vals: Vec<T>) -> Self {
        if let Some(&max) = ids.last() {
            assert!((max as usize) < dim, "index beyond dimension");
        }
        Vector::Sparse {
            dim,
            fill,
            data: SparseVector::from_sorted(ids, vals),
        }
    }

    /// Logical dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            Vector::Sparse { dim, .. } => *dim,
            Vector::Dense(d) => d.dim(),
        }
    }

    /// The implicit-zero element.
    #[must_use]
    pub fn fill(&self) -> T {
        match self {
            Vector::Sparse { fill, .. } => *fill,
            Vector::Dense(d) => d.fill(),
        }
    }

    /// Number of explicit (non-fill) entries. O(1) for sparse, O(dim) for
    /// dense.
    #[must_use]
    pub fn nnz(&self) -> usize {
        match self {
            Vector::Sparse { data, .. } => data.nnz(),
            Vector::Dense(d) => d.nnz(),
        }
    }

    /// `true` when held in sparse storage.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        matches!(self, Vector::Sparse { .. })
    }

    /// Value at `i` (fill when implicit).
    #[must_use]
    pub fn get(&self, i: VertexId) -> T {
        match self {
            Vector::Sparse { data, fill, .. } => data.get(i).unwrap_or(*fill),
            Vector::Dense(d) => d.get(i as usize),
        }
    }

    /// Iterate explicit entries as `(id, value)` in index order.
    pub fn iter_explicit(&self) -> Box<dyn Iterator<Item = (VertexId, T)> + '_> {
        match self {
            Vector::Sparse { data, .. } => {
                Box::new(data.ids.iter().copied().zip(data.vals.iter().copied()))
            }
            Vector::Dense(d) => {
                let fill = d.fill();
                Box::new(
                    d.values()
                        .iter()
                        .enumerate()
                        .filter(move |&(_, &v)| v != fill)
                        .map(|(i, &v)| (i as VertexId, v)),
                )
            }
        }
    }

    /// Force sparse storage (`dense2sparse` of §6.3).
    pub fn make_sparse(&mut self) {
        if let Vector::Dense(d) = self {
            let fill = d.fill();
            let mut ids = Vec::new();
            let mut vals = Vec::new();
            for (i, &v) in d.values().iter().enumerate() {
                if v != fill {
                    ids.push(i as VertexId);
                    vals.push(v);
                }
            }
            *self = Vector::Sparse {
                dim: d.dim(),
                fill,
                data: SparseVector::from_sorted(ids, vals),
            };
        }
    }

    /// Force dense storage (`sparse2dense` of §6.3).
    pub fn make_dense(&mut self) {
        if let Vector::Sparse { dim, fill, data } = self {
            let mut d = DenseVector::new(*dim, *fill);
            for (&i, &v) in data.ids.iter().zip(data.vals.iter()) {
                d.set(i as usize, v);
            }
            *self = Vector::Dense(d);
        }
    }

    /// The `Convert` heuristic of §6.3: switch sparse→dense when the
    /// nonzero ratio exceeds `threshold` *and* nnz has increased since the
    /// last call; switch dense→sparse when the ratio is below `threshold`
    /// *and* nnz has decreased. The default threshold (0.01) encodes the
    /// paper's observation that after visiting 1% of a scale-free graph a
    /// supervertex has been hit.
    ///
    /// Returns `true` when a conversion happened.
    pub fn convert(&mut self, state: &mut ConvertState, threshold: f64) -> bool {
        let nnz = self.nnz();
        let dim = self.dim().max(1);
        let ratio = nnz as f64 / dim as f64;
        let last = state.last_nnz.replace(nnz);
        let increasing = last.is_none_or(|l| nnz > l);
        let decreasing = last.is_some_and(|l| nnz < l);
        match self {
            Vector::Sparse { .. } if ratio > threshold && increasing => {
                self.make_dense();
                true
            }
            Vector::Dense(_) if ratio < threshold && decreasing => {
                self.make_sparse();
                true
            }
            _ => false,
        }
    }

    /// Borrow the dense storage, when dense.
    #[must_use]
    pub fn as_dense(&self) -> Option<&DenseVector<T>> {
        match self {
            Vector::Dense(d) => Some(d),
            Vector::Sparse { .. } => None,
        }
    }

    /// Mutably borrow the dense storage, when dense. Lets long-lived dense
    /// state (e.g. the visited vector that operand reuse feeds to pull
    /// iterations) be updated in place instead of rebuilt.
    pub fn as_dense_mut(&mut self) -> Option<&mut DenseVector<T>> {
        match self {
            Vector::Dense(d) => Some(d),
            Vector::Sparse { .. } => None,
        }
    }

    /// Borrow the sparse storage, when sparse.
    #[must_use]
    pub fn as_sparse(&self) -> Option<&SparseVector<T>> {
        match self {
            Vector::Sparse { data, .. } => Some(data),
            Vector::Dense(_) => None,
        }
    }

    /// A dense copy of this vector (the original is untouched).
    #[must_use]
    pub fn to_dense(&self) -> DenseVector<T> {
        let mut c = self.clone();
        c.make_dense();
        match c {
            Vector::Dense(d) => d,
            Vector::Sparse { .. } => unreachable!(),
        }
    }

    /// A sparse copy of this vector (the original is untouched).
    #[must_use]
    pub fn to_sparse(&self) -> SparseVector<T> {
        let mut c = self.clone();
        c.make_sparse();
        match c {
            Vector::Sparse { data, .. } => data,
            Vector::Dense(_) => unreachable!(),
        }
    }
}

/// A batch of `k` vectors over the same dimension — the `k × n` frontier
/// object of a batched traversal (multi-source BFS, batched Brandes BC).
///
/// Each row is an independent [`Vector`], so each source's frontier is
/// sparse or dense on its own: one source can be mid-supervertex (dense,
/// pull) while another is still a thin wave (sparse, push). The batched
/// kernels in [`crate::ops_mxv_batch`] dispatch per row on exactly this
/// storage, generalizing the paper's Optimization 1 from one frontier to a
/// batch; [`MultiVector::convert_rows`] applies the §6.3 hysteresis switch
/// row by row with an independent [`ConvertState`] per source.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiVector<T> {
    dim: usize,
    fill: T,
    rows: Vec<Vector<T>>,
}

impl<T: Scalar> MultiVector<T> {
    /// A `k × dim` batch of empty sparse rows.
    #[must_use]
    pub fn new_sparse(k: usize, dim: usize, fill: T) -> Self {
        Self {
            dim,
            fill,
            rows: (0..k).map(|_| Vector::new_sparse(dim, fill)).collect(),
        }
    }

    /// Wrap existing rows; all must share `dim` and `fill`.
    #[must_use]
    pub fn from_rows(rows: Vec<Vector<T>>) -> Self {
        let first = rows.first().expect("batch needs at least one row");
        let (dim, fill) = (first.dim(), first.fill());
        for r in &rows {
            assert_eq!(r.dim(), dim, "all batch rows must share the dimension");
            assert_eq!(r.fill(), fill, "all batch rows must share the fill");
        }
        Self { dim, fill, rows }
    }

    /// One singleton row per `(id, value)` entry — the batch analogue of
    /// [`Vector::singleton`], seeding a multi-source traversal (duplicate
    /// ids allowed: each gets its own independent row).
    #[must_use]
    pub fn singletons(dim: usize, fill: T, entries: &[(VertexId, T)]) -> Self {
        let rows = entries
            .iter()
            .map(|&(id, v)| Vector::singleton(dim, fill, id, v))
            .collect();
        Self { dim, fill, rows }
    }

    /// Number of rows (`k`).
    #[must_use]
    pub fn k(&self) -> usize {
        self.rows.len()
    }

    /// Shared row dimension (`n`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shared implicit-zero element.
    #[must_use]
    pub fn fill(&self) -> T {
        self.fill
    }

    /// Borrow row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> &Vector<T> {
        &self.rows[r]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut Vector<T> {
        &mut self.rows[r]
    }

    /// All rows in order.
    #[must_use]
    pub fn rows(&self) -> &[Vector<T>] {
        &self.rows
    }

    /// Consume the batch into its rows.
    #[must_use]
    pub fn into_rows(self) -> Vec<Vector<T>> {
        self.rows
    }

    /// Total explicit entries across the batch (`nnz` of the k × n object).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vector::nnz).sum()
    }

    /// Apply the §6.3 `convert` heuristic to every row, each with its own
    /// history in `states` (one [`ConvertState`] per row). Returns how many
    /// rows switched storage this call.
    pub fn convert_rows(&mut self, states: &mut [ConvertState], threshold: f64) -> usize {
        assert_eq!(states.len(), self.rows.len(), "one state per row");
        self.rows
            .iter_mut()
            .zip(states.iter_mut())
            .map(|(row, state)| usize::from(row.convert(state, threshold)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_frontier() {
        let f = Vector::singleton(8, false, 3, true);
        assert_eq!(f.dim(), 8);
        assert_eq!(f.nnz(), 1);
        assert!(f.is_sparse());
        assert!(f.get(3));
        assert!(!f.get(0));
    }

    #[test]
    fn sparse_dense_roundtrip() {
        let mut v = Vector::from_sparse(6, 0i32, vec![1, 4], vec![10, 40]);
        v.make_dense();
        assert!(!v.is_sparse());
        assert_eq!(v.get(1), 10);
        assert_eq!(v.get(2), 0);
        assert_eq!(v.nnz(), 2);
        v.make_sparse();
        assert!(v.is_sparse());
        assert_eq!(v.as_sparse().unwrap().ids(), &[1, 4]);
        assert_eq!(v.as_sparse().unwrap().vals(), &[10, 40]);
    }

    #[test]
    fn dense_nnz_ignores_fill() {
        let d = DenseVector::from_values(vec![7, 0, 7, 3], 7);
        assert_eq!(d.nnz(), 2);
        assert!(d.is_explicit(1));
        assert!(!d.is_explicit(0));
    }

    #[test]
    fn iter_explicit_same_for_both_storages() {
        let v = Vector::from_sparse(5, 0u32, vec![0, 2, 4], vec![1, 2, 3]);
        let sparse_items: Vec<_> = v.iter_explicit().collect();
        let mut vd = v.clone();
        vd.make_dense();
        let dense_items: Vec<_> = vd.iter_explicit().collect();
        assert_eq!(sparse_items, dense_items);
        assert_eq!(sparse_items, vec![(0, 1), (2, 2), (4, 3)]);
    }

    #[test]
    fn convert_switches_to_dense_on_growth_past_threshold() {
        let mut state = ConvertState::new();
        let dim = 1000;
        // 5 nonzeros: ratio 0.005 < 0.01 → stays sparse.
        let mut v = Vector::from_sparse(dim, false, (0..5).collect(), vec![true; 5]);
        assert!(!v.convert(&mut state, 0.01));
        assert!(v.is_sparse());
        // Grows to 20: ratio 0.02 > 0.01 and increasing → densifies.
        let mut v = Vector::from_sparse(dim, false, (0..20).collect(), vec![true; 20]);
        assert!(v.convert(&mut state, 0.01));
        assert!(!v.is_sparse());
    }

    #[test]
    fn convert_switches_back_on_decline_below_threshold() {
        let mut state = ConvertState::new();
        let dim = 1000;
        let mut big = Vector::from_sparse(dim, false, (0..50).collect(), vec![true; 50]);
        big.convert(&mut state, 0.01); // now dense, last_nnz = 50
        assert!(!big.is_sparse());
        // Frontier shrinks to 3 (< 1%) and is decreasing → sparsifies.
        let mut small = Vector::new_dense(dim, false);
        if let Vector::Dense(d) = &mut small {
            d.set(1, true);
            d.set(2, true);
            d.set(3, true);
        }
        assert!(small.convert(&mut state, 0.01));
        assert!(small.is_sparse());
    }

    #[test]
    fn convert_hysteresis_blocks_flapping() {
        // Ratio above threshold but *decreasing* → no sparse→dense switch.
        let mut state = ConvertState::new();
        state.last_nnz = Some(100);
        let mut v = Vector::from_sparse(1000, false, (0..50).collect(), vec![true; 50]);
        assert!(!v.convert(&mut state, 0.01));
        assert!(v.is_sparse());
        // Ratio below threshold but *increasing* → no dense→sparse switch.
        let mut state = ConvertState::new();
        state.last_nnz = Some(1);
        let mut v = Vector::new_dense(1000, false);
        if let Vector::Dense(d) = &mut v {
            d.set(0, true);
            d.set(1, true);
        }
        assert!(!v.convert(&mut state, 0.01));
        assert!(!v.is_sparse());
    }

    #[test]
    fn get_out_of_band_returns_fill() {
        let v = Vector::from_sparse(10, -1i64, vec![5], vec![55]);
        assert_eq!(v.get(5), 55);
        assert_eq!(v.get(6), -1);
    }

    #[test]
    #[should_panic(expected = "index beyond dimension")]
    fn from_sparse_checks_bounds() {
        let _ = Vector::from_sparse(4, 0u8, vec![9], vec![1]);
    }

    #[test]
    fn multivector_singletons_and_accessors() {
        let mv = MultiVector::singletons(10, false, &[(3, true), (7, true), (3, true)]);
        assert_eq!(mv.k(), 3);
        assert_eq!(mv.dim(), 10);
        assert_eq!(mv.nnz(), 3);
        assert!(mv.row(0).get(3));
        assert!(mv.row(2).get(3), "duplicate sources get independent rows");
        assert!(mv.rows().iter().all(Vector::is_sparse));
    }

    #[test]
    fn multivector_rows_convert_independently() {
        let dim = 1000;
        let big = Vector::from_sparse(dim, false, (0..50).collect(), vec![true; 50]);
        let small = Vector::from_sparse(dim, false, vec![1], vec![true]);
        let mut mv = MultiVector::from_rows(vec![big, small]);
        let mut states = vec![ConvertState::new(); 2];
        let switched = mv.convert_rows(&mut states, 0.01);
        assert_eq!(switched, 1, "only the big row crosses the threshold");
        assert!(!mv.row(0).is_sparse());
        assert!(mv.row(1).is_sparse());
    }

    #[test]
    #[should_panic(expected = "share the dimension")]
    fn multivector_rejects_mixed_dims() {
        let _ = MultiVector::from_rows(vec![
            Vector::<bool>::new_sparse(4, false),
            Vector::<bool>::new_sparse(5, false),
        ]);
    }
}
