//! The execution planner: direction × storage format as one decision.
//!
//! The paper resolves *direction* from the input vector's storage (§6.3);
//! SuiteSparse:GraphBLAS and GraphBLAST additionally resolve the *matrix
//! format* per operation, and the nonblocking-GraphBLAS line of work
//! argues this selection belongs in a planner rather than in each
//! algorithm. [`resolve_plan`] generalizes
//! [`resolve_direction`] accordingly: given the
//! operands and a [`Descriptor`], it returns an [`ExecPlan`] naming both
//! the kernel face (push/pull) and the storage backend (CSR / bitmap /
//! hypersparse DCSR) that face should iterate.
//!
//! Two layers, mirroring the direction machinery exactly:
//!
//! * **Memoryless rule** — [`resolve_plan`] / [`auto_format`]: what `mxv`,
//!   `mxv_batch`, and the fused pipeline apply per call when the
//!   descriptor says [`FormatChoice::Auto`]. Pure function of the operand
//!   matrix's static shape and the resolved direction.
//! * **Stateful policy** — [`FormatPolicy`]: what iterative algorithms
//!   thread through their loops (the format analogue of
//!   [`DirectionPolicy`](crate::DirectionPolicy)), with a
//!   `ConvertState`-style debounce so a direction flap cannot thrash
//!   conversions, and with every adopted change charged to the
//!   `format_switches` counter so plan behaviour is observable next to
//!   `push_steps`/`pull_steps`.
//!
//! The selection rule (documented in `docs/ARCHITECTURE.md`):
//!
//! 1. operand row occupancy `< `[`HYPERSPARSE_OCCUPANCY`] ⇒ **DCSR** —
//!    full scans then touch only the non-empty rows;
//! 2. else, pull direction with average degree `≥ `[`BITMAP_MIN_DEGREE`]
//!    and a feasible bitmap ⇒ **bitmap** — dense phases get O(1)
//!    membership at tolerable memory;
//! 3. else **CSR**.
//!
//! Formats never change results or access counters — the kernels are
//! generic over [`graphblas_matrix::RowAccess`] and charge identically on
//! every backend (`tests/prop_core.rs` pins values *and* counters against
//! the `Fixed(Csr)` oracle) — so the planner is free to chase wall clock.

use crate::bitops::FrontierWords;
use crate::descriptor::{Descriptor, Direction, FormatChoice, ShardPolicy};
use crate::ops::Scalar;
use crate::ops_mxv::resolve_direction;
use crate::vector::Vector;
use graphblas_matrix::{Graph, ShardGrid, StorageFormat, DEFAULT_SHARD_BUDGET};
use graphblas_primitives::counters::AccessCounters;

/// Row-occupancy threshold below which an operand counts as hypersparse
/// and the planner selects DCSR (1/8 of rows non-empty).
pub const HYPERSPARSE_OCCUPANCY: f64 = 0.125;

/// Average-degree threshold at or above which a pull-direction operand
/// selects the bitmap store (when it fits).
pub const BITMAP_MIN_DEGREE: f64 = 8.0;

/// Calibration constants of the measured push/pull cost model — the
/// per-edge (and per-word) charge weights that turn the raw measurements
/// of [`crate::CostModelInputs`] into comparable work estimates:
///
/// * `pushwork = push_edge · nnz(A(:, f))` — each expanded edge pays its
///   matrix read plus the radix-sort passes of the sort-based merge;
/// * `pullwork = pull_edge · d · |unvisited|` — each unvisited row pays an
///   average row scan;
/// * `bit_word` prices one `u64` word scanned by the bit-parallel pull
///   kernel, for the format half of the model ([`FormatPolicy::cost_model`]):
///   a bitmap pull scans at most `⌈n/64⌉` words per row, so bitmap wins
///   when `pull_edge · d > bit_word · ⌈n/64⌉`.
///
/// Defaults come from the charged-access shape of the kernels themselves
/// (an expanded push edge costs its read + ~3 radix passes); the bench
/// harness re-derives them from measured runs per format.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostConstants {
    /// Work per expanded push edge (matrix read + sort traffic).
    pub push_edge: f64,
    /// Work per examined pull edge on a scalar (CSR/DCSR) row scan.
    pub pull_edge: f64,
    /// Work per `u64` word scanned by the bit-parallel bitmap pull.
    pub bit_word: f64,
}

impl Default for CostConstants {
    fn default() -> Self {
        Self {
            push_edge: 4.0,
            pull_edge: 1.0,
            bit_word: 1.0,
        }
    }
}

impl CostConstants {
    /// Constants calibrated for a given pull-side storage format: the
    /// bitmap's bit-parallel kernel touches 64 edges per word, so its
    /// effective per-edge pull charge is 1/8 of CSR's per cache line
    /// (8 edges of a `u64` word amortize one read).
    #[must_use]
    pub fn for_format(format: StorageFormat) -> Self {
        let base = Self::default();
        match format {
            StorageFormat::Bitmap => Self {
                pull_edge: base.pull_edge / 8.0,
                ..base
            },
            StorageFormat::Csr | StorageFormat::Dcsr => base,
        }
    }
}

/// Charge the `bitmap_degrades` telemetry event when a descriptor asked
/// for the bitmap store but the planner had to serve another format — the
/// silent `MAX_BITS` degrade of [`Graph::effective_format`] made visible.
pub fn note_bitmap_degrade(
    desc: &Descriptor,
    resolved: StorageFormat,
    counters: Option<&AccessCounters>,
) {
    if desc.format == FormatChoice::Force(StorageFormat::Bitmap)
        && resolved != StorageFormat::Bitmap
    {
        if let Some(c) = counters {
            c.add_bitmap_degrade();
        }
    }
}

/// A resolved execution plan: which kernel face runs, over which storage
/// backend, blocked by which shard grid (if any).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPlan {
    /// The kernel face (push = column-based, pull = row-based).
    pub direction: Direction,
    /// The storage format the face's operand will be served in.
    pub format: StorageFormat,
    /// The 2D shard grid the face blocks its work by, or `None` to run
    /// the unsharded oracle path. Resolved by [`resolve_shards`].
    pub shard: Option<ShardGrid>,
}

/// Which physical orientation the chosen kernel face iterates rows of:
/// pull walks rows of the operand, push walks rows of its transpose.
/// Returns the `transposed` flag for [`Graph::store`].
#[must_use]
pub fn operand_side(transpose: bool, direction: Direction) -> bool {
    match direction {
        Direction::Pull => transpose,
        Direction::Push => !transpose,
    }
}

/// The memoryless format rule for one orientation of a graph, given the
/// resolved direction — the [`FormatChoice::Auto`] arm of
/// [`resolve_plan`].
#[must_use]
pub fn auto_format<A: Scalar>(
    graph: &Graph<A>,
    transpose: bool,
    direction: Direction,
) -> StorageFormat {
    let side = operand_side(transpose, direction);
    // DCSR only pays off where a full scan happens — the pull face, whose
    // unmasked kernels skip the empty rows. The push face looks up only
    // frontier-selected rows, where CSR's O(1) `row_ptr` beats DCSR's
    // per-row binary search, so hypersparsity never steers push off CSR.
    if direction == Direction::Pull && graph.row_occupancy(side) < HYPERSPARSE_OCCUPANCY {
        return StorageFormat::Dcsr;
    }
    let csr = if side { graph.csr_t() } else { graph.csr() };
    if direction == Direction::Pull
        && csr.avg_degree() >= BITMAP_MIN_DEGREE
        && graph.effective_format(side, StorageFormat::Bitmap) == StorageFormat::Bitmap
    {
        return StorageFormat::Bitmap;
    }
    StorageFormat::Csr
}

/// The batched variant of [`auto_format`]: one format serves a whole
/// `mxv_batch` call whose rows may split across both kernel faces, so
/// only the direction-independent hypersparse rule applies (DCSR when
/// *both* orientations are hypersparse, since push and pull rows iterate
/// opposite orientations).
#[must_use]
pub fn auto_format_batch<A: Scalar>(graph: &Graph<A>, transpose: bool) -> StorageFormat {
    let both_hypersparse = graph.row_occupancy(transpose) < HYPERSPARSE_OCCUPANCY
        && graph.row_occupancy(!transpose) < HYPERSPARSE_OCCUPANCY;
    if both_hypersparse {
        StorageFormat::Dcsr
    } else {
        StorageFormat::Csr
    }
}

/// Resolve the full execution plan for a `mxv`-shaped call: the direction
/// by the storage rule [`resolve_direction`] implements (or the
/// descriptor's force), the format by the descriptor's [`FormatChoice`]
/// (with an infeasible bitmap degraded to CSR so the reported plan always
/// matches what executes).
#[must_use]
pub fn resolve_plan<A: Scalar, X: Scalar>(
    graph: &Graph<A>,
    v: &Vector<X>,
    desc: &Descriptor,
) -> ExecPlan {
    let direction = resolve_direction(v, desc);
    let format = match desc.format {
        FormatChoice::Force(f) => {
            graph.effective_format(operand_side(desc.transpose, direction), f)
        }
        FormatChoice::Auto => auto_format(graph, desc.transpose, direction),
    };
    let shard = resolve_shards(graph, desc.transpose, direction, desc);
    ExecPlan {
        direction,
        format,
        shard,
    }
}

/// The shard half of [`resolve_plan`]: the grid the chosen face should
/// block its work by, or `None` for the unsharded oracle path.
///
/// `Fixed` grids always engage (normalized per dimension — a requested
/// `1×1` still runs the sharded code path over a single stripe, which is
/// how the equivalence suite exercises the degenerate grid). `Auto`
/// engages the operand's cached default-budget plan only when the dense
/// push working set exceeds the shard cache budget; below that the stripe
/// bookkeeping costs more than the locality buys.
#[must_use]
pub fn resolve_shards<A: Scalar>(
    graph: &Graph<A>,
    transpose: bool,
    direction: Direction,
    desc: &Descriptor,
) -> Option<ShardGrid> {
    match desc.shards {
        ShardPolicy::Off => None,
        ShardPolicy::Fixed(g) => Some(ShardGrid::new(g.row_stripes, g.col_stripes)),
        ShardPolicy::Auto => {
            let side = operand_side(transpose, direction);
            let plan = graph.shard_plan(side);
            (plan.dense_working_set_bytes() > DEFAULT_SHARD_BUDGET && plan.engaged())
                .then(|| plan.grid())
        }
    }
}

/// Resolve the format for a batched call (`mxv_batch`), whose per-row
/// directions are decided separately.
#[must_use]
pub fn resolve_format_batch<A: Scalar>(graph: &Graph<A>, desc: &Descriptor) -> StorageFormat {
    match desc.format {
        // Both faces may run; use the operand side for feasibility (the
        // orientations of a graph share their shape, so the check agrees).
        FormatChoice::Force(f) => graph.effective_format(desc.transpose, f),
        FormatChoice::Auto => auto_format_batch(graph, desc.transpose),
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum FormatMode {
    Auto,
    Fixed(StorageFormat),
    /// Pick the pull-side format from the measured cost constants instead
    /// of the fixed [`BITMAP_MIN_DEGREE`] threshold: bitmap wins exactly
    /// when a row's average scalar scan (`pull_edge · d`) outweighs its
    /// full word scan (`bit_word · ⌈n/64⌉`).
    CostModel(CostConstants),
}

/// The stateful format-selection policy iterative algorithms thread
/// through their loops — the format analogue of
/// [`DirectionPolicy`](crate::DirectionPolicy).
///
/// `update` is called once per iteration with the graph and this
/// iteration's resolved direction; it returns the format to force into
/// the descriptor and charges one `format_switches` counter tick whenever
/// the returned format differs from the previous iteration's (every graph
/// is born CSR, so the baseline before the first call is
/// [`StorageFormat::Csr`]).
///
/// In `Auto` mode the policy wraps [`auto_format`] in a
/// `ConvertState`-style debounce: moving away from the current format
/// requires the memoryless rule to prefer the same new format on two
/// consecutive updates. Matrix shape is static, but the *direction* input
/// flaps at phase boundaries (push↔pull), and each format change an
/// algorithm acts on costs a one-time conversion — the debounce keeps a
/// single bounced iteration from paying it twice, exactly as §6.3's
/// hysteresis keeps the frontier from thrashing sparse↔dense.
#[derive(Clone, Copy, Debug)]
pub struct FormatPolicy {
    mode: FormatMode,
    current: Option<StorageFormat>,
    pending: Option<StorageFormat>,
    /// Per operand side (`[A, Aᵀ]`): whether this policy already recorded
    /// a bitmap→CSR degrade. The feasibility verdict is a per-graph
    /// constant, so `bitmap_degrades` counts *distinct decisions* — one
    /// per policy per side — not one tick per mxv of a long run.
    degraded: [bool; 2],
}

impl Default for FormatPolicy {
    fn default() -> Self {
        Self::auto()
    }
}

impl FormatPolicy {
    /// The planner decides per iteration (the production default).
    #[must_use]
    pub fn auto() -> Self {
        Self {
            mode: FormatMode::Auto,
            current: None,
            pending: None,
            degraded: [false; 2],
        }
    }

    /// Pin every iteration to one format. `Fixed(Csr)` is the tested
    /// oracle every other policy must match bit-for-bit in values and
    /// accesses.
    #[must_use]
    pub fn fixed(f: StorageFormat) -> Self {
        Self {
            mode: FormatMode::Fixed(f),
            current: None,
            pending: None,
            degraded: [false; 2],
        }
    }

    /// Measured cost-model selection (see `FormatMode` docs): the format
    /// half of the planner's `CostModel` variant, sharing the same
    /// debounce as [`FormatPolicy::auto`].
    #[must_use]
    pub fn cost_model(constants: CostConstants) -> Self {
        Self {
            mode: FormatMode::CostModel(constants),
            current: None,
            pending: None,
            degraded: [false; 2],
        }
    }

    /// The format the last `update` settled on (CSR before any update).
    #[must_use]
    pub fn current(&self) -> StorageFormat {
        self.current.unwrap_or(StorageFormat::Csr)
    }

    fn adopt(
        &mut self,
        preferred: StorageFormat,
        counters: Option<&AccessCounters>,
    ) -> StorageFormat {
        let next = match self.mode {
            FormatMode::Fixed(_) => preferred,
            FormatMode::Auto | FormatMode::CostModel(_) => match self.current {
                None => preferred,
                Some(cur) if preferred == cur => {
                    self.pending = None;
                    cur
                }
                Some(cur) => {
                    if self.pending == Some(preferred) {
                        // Second consecutive preference: switch.
                        self.pending = None;
                        preferred
                    } else {
                        self.pending = Some(preferred);
                        cur
                    }
                }
            },
        };
        if next != self.current() {
            if let Some(c) = counters {
                c.add_format_switch();
            }
        }
        self.current = Some(next);
        next
    }

    /// Record a bitmap→CSR degrade decision for one operand side, charging
    /// `bitmap_degrades` only the first time this policy sees it (the
    /// verdict is a per-graph constant — see the `degraded` field).
    fn note_degrade(&mut self, side: bool, counters: Option<&AccessCounters>) {
        let seen = &mut self.degraded[usize::from(side)];
        if !*seen {
            *seen = true;
            if let Some(c) = counters {
                c.add_bitmap_degrade();
            }
        }
    }

    /// Feed one iteration's direction; returns the format to run it with
    /// and charges `format_switches` on change.
    pub fn update<A: Scalar>(
        &mut self,
        graph: &Graph<A>,
        transpose: bool,
        direction: Direction,
        counters: Option<&AccessCounters>,
    ) -> StorageFormat {
        self.update_with_frontier(graph, transpose, direction, None, counters)
    }

    /// [`FormatPolicy::update`] with this iteration's frontier population
    /// supplied, letting the measured cost model price the *compressed*
    /// frontier-word scan: a bit pull intersects each row window with the
    /// frontier's nonzero words only (`FrontierWords` compresses when
    /// they are few), so a sparse frontier caps the scan far below the
    /// dense window stride the shape-only rule assumes. `Auto` and `Fixed`
    /// modes ignore the hint.
    pub fn update_with_frontier<A: Scalar>(
        &mut self,
        graph: &Graph<A>,
        transpose: bool,
        direction: Direction,
        frontier_nnz: Option<usize>,
        counters: Option<&AccessCounters>,
    ) -> StorageFormat {
        let preferred = match self.mode {
            FormatMode::Fixed(f) => {
                let side = operand_side(transpose, direction);
                let eff = graph.effective_format(side, f);
                if f == StorageFormat::Bitmap && eff != StorageFormat::Bitmap {
                    self.note_degrade(side, counters);
                }
                eff
            }
            FormatMode::Auto => auto_format(graph, transpose, direction),
            FormatMode::CostModel(k) => {
                let (fmt, wanted_infeasible) =
                    cost_model_format(graph, transpose, direction, k, frontier_nnz);
                if wanted_infeasible {
                    self.note_degrade(operand_side(transpose, direction), counters);
                }
                fmt
            }
        };
        self.adopt(preferred, counters)
    }

    /// Batched variant of [`FormatPolicy::update`] for `mxv_batch` loops,
    /// whose rows resolve directions independently (see
    /// [`auto_format_batch`]).
    pub fn update_batch<A: Scalar>(
        &mut self,
        graph: &Graph<A>,
        transpose: bool,
        counters: Option<&AccessCounters>,
    ) -> StorageFormat {
        let preferred = match self.mode {
            FormatMode::Fixed(f) => {
                let eff = graph.effective_format(transpose, f);
                if f == StorageFormat::Bitmap && eff != StorageFormat::Bitmap {
                    self.note_degrade(transpose, counters);
                }
                eff
            }
            // The batched kernels never run the bit pull (one store serves
            // both faces), so the measured rule has nothing to price there:
            // fall back to the shape rule, like Auto.
            FormatMode::Auto | FormatMode::CostModel(_) => auto_format_batch(graph, transpose),
        };
        self.adopt(preferred, counters)
    }
}

/// The measured format rule of [`FormatPolicy::cost_model`]: hypersparse
/// operands still take DCSR (the cost model prices scan work, not row
/// lookup structure), then bitmap vs CSR is decided by comparing an
/// average row's scalar scan against its word scan — the word price taken
/// from the tiled allocation plan (`words / n_rows`), so banded graphs
/// with narrow windows price far below the old dense `⌈n/64⌉` stride.
///
/// When the caller supplies the frontier population, the word price is
/// additionally capped at the frontier's *compressed* word count: the bit
/// pull kernel scans the intersection of a row's window with the frontier
/// words, and once the frontier clears [`FrontierWords`]' compression
/// threshold only its nonzero words are visited at all — a few-word
/// frontier makes the bit scan near-free regardless of window width (the
/// mispricing the dense-only rule suffered). Returns the chosen format
/// plus whether the model wanted an infeasible bitmap (the caller
/// memoizes the `bitmap_degrades` charge per side).
fn cost_model_format<A: Scalar>(
    graph: &Graph<A>,
    transpose: bool,
    direction: Direction,
    k: CostConstants,
    frontier_nnz: Option<usize>,
) -> (StorageFormat, bool) {
    if direction != Direction::Pull {
        return (StorageFormat::Csr, false);
    }
    let side = operand_side(transpose, direction);
    if graph.row_occupancy(side) < HYPERSPARSE_OCCUPANCY {
        return (StorageFormat::Dcsr, false);
    }
    let csr = if side { graph.csr_t() } else { graph.csr() };
    let dense_words = graph.bitmap_plan(side).avg_words_per_row(csr.n_rows());
    let words_per_row = effective_words_per_row(dense_words, csr.n_cols(), frontier_nnz);
    if k.pull_edge * csr.avg_degree() > k.bit_word * words_per_row {
        if graph.effective_format(side, StorageFormat::Bitmap) == StorageFormat::Bitmap {
            return (StorageFormat::Bitmap, false);
        }
        return (StorageFormat::Csr, true);
    }
    (StorageFormat::Csr, false)
}

/// Words a bit-parallel pull actually scans per row: the dense window
/// stride, capped at the frontier's nonzero word count when the frontier
/// is sparse enough that [`FrontierWords::from_dense`] would compress it
/// (`nzw · COMPRESS_FACTOR ≤ total words`) — compressed traversals visit
/// only the frontier's populated words that overlap the row window.
fn effective_words_per_row(dense_words: f64, n_cols: usize, frontier_nnz: Option<usize>) -> f64 {
    let Some(nnz) = frontier_nnz else {
        return dense_words;
    };
    let total_words = n_cols.div_ceil(64).max(1);
    // Each frontier nonzero populates at most one word.
    let nzw = nnz.min(total_words).max(1);
    if nzw * FrontierWords::COMPRESS_FACTOR <= total_words {
        dense_words.min(nzw as f64)
    } else {
        dense_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_matrix::Coo;

    /// Dense-ish 8-vertex clique fragment: occupancy 1.0, degree ≥ 8 via
    /// self-contained construction — pull prefers bitmap, push CSR.
    fn dense_graph() -> Graph<bool> {
        let n = 16;
        let mut coo = Coo::new(n, n);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    coo.push(u, v, true);
                }
            }
        }
        Graph::from_coo(&coo)
    }

    /// 3 non-empty rows embedded in 64 vertices: occupancy < 1/8.
    fn hypersparse_graph() -> Graph<bool> {
        let mut coo = Coo::new(64, 64);
        for &(u, v) in &[(0u32, 40u32), (1, 41), (2, 42)] {
            coo.push(u, v, true);
            coo.push(v, u, true);
        }
        Graph::from_coo(&coo)
    }

    #[test]
    fn auto_rule_picks_dcsr_for_hypersparse_pull_only() {
        let g = hypersparse_graph();
        assert_eq!(
            auto_format(&g, true, Direction::Pull),
            StorageFormat::Dcsr,
            "pull full scans win from the compressed row list"
        );
        assert_eq!(
            auto_format(&g, true, Direction::Push),
            StorageFormat::Csr,
            "push row lookups stay on O(1) CSR"
        );
        assert_eq!(auto_format_batch(&g, true), StorageFormat::Dcsr);
    }

    #[test]
    fn auto_rule_picks_bitmap_only_for_dense_pull() {
        let g = dense_graph();
        assert_eq!(
            auto_format(&g, true, Direction::Pull),
            StorageFormat::Bitmap
        );
        assert_eq!(auto_format(&g, true, Direction::Push), StorageFormat::Csr);
        assert_eq!(auto_format_batch(&g, true), StorageFormat::Csr);
    }

    #[test]
    fn resolve_plan_combines_direction_and_format() {
        let g = hypersparse_graph();
        let sparse = Vector::singleton(64, false, 0, true);
        let desc = Descriptor::new().transpose(true);
        let plan = resolve_plan(&g, &sparse, &desc);
        assert_eq!(plan.direction, Direction::Push);
        assert_eq!(plan.format, StorageFormat::Csr);

        let mut dense = sparse.clone();
        dense.make_dense();
        let plan = resolve_plan(&g, &dense, &desc);
        assert_eq!(plan.direction, Direction::Pull);
        assert_eq!(plan.format, StorageFormat::Dcsr);

        // A forced format wins over the auto rule.
        let forced = resolve_plan(&g, &dense, &desc.force_format(StorageFormat::Csr));
        assert_eq!(forced.format, StorageFormat::Csr);
    }

    #[test]
    fn operand_side_maps_face_to_orientation() {
        // BFS (transpose = true): pull walks Aᵀ rows, push walks A rows.
        assert!(operand_side(true, Direction::Pull));
        assert!(!operand_side(true, Direction::Push));
        assert!(!operand_side(false, Direction::Pull));
        assert!(operand_side(false, Direction::Push));
    }

    #[test]
    fn fixed_policy_charges_one_switch_and_holds() {
        let g = hypersparse_graph();
        let c = AccessCounters::new();
        let mut p = FormatPolicy::fixed(StorageFormat::Dcsr);
        assert_eq!(
            p.update(&g, true, Direction::Push, Some(&c)),
            StorageFormat::Dcsr
        );
        assert_eq!(c.snapshot().format_switches, 1, "Csr → Dcsr charged once");
        for _ in 0..3 {
            p.update(&g, true, Direction::Pull, Some(&c));
        }
        assert_eq!(c.snapshot().format_switches, 1, "no further switches");

        let c2 = AccessCounters::new();
        let mut oracle = FormatPolicy::fixed(StorageFormat::Csr);
        oracle.update(&g, true, Direction::Push, Some(&c2));
        assert_eq!(
            c2.snapshot().format_switches,
            0,
            "Csr oracle never switches"
        );
    }

    #[test]
    fn auto_policy_debounces_direction_flaps() {
        let g = dense_graph();
        let c = AccessCounters::new();
        let mut p = FormatPolicy::auto();
        // First call adopts immediately (push on a dense graph → CSR).
        assert_eq!(
            p.update(&g, true, Direction::Push, Some(&c)),
            StorageFormat::Csr
        );
        // One pull iteration prefers bitmap but the debounce holds CSR.
        assert_eq!(
            p.update(&g, true, Direction::Pull, Some(&c)),
            StorageFormat::Csr
        );
        // Second consecutive pull: switch.
        assert_eq!(
            p.update(&g, true, Direction::Pull, Some(&c)),
            StorageFormat::Bitmap
        );
        assert_eq!(c.snapshot().format_switches, 1);
        // A single push bounce does not thrash back…
        assert_eq!(
            p.update(&g, true, Direction::Push, Some(&c)),
            StorageFormat::Bitmap
        );
        // …but a sustained push phase does.
        assert_eq!(
            p.update(&g, true, Direction::Push, Some(&c)),
            StorageFormat::Csr
        );
        assert_eq!(c.snapshot().format_switches, 2);
        assert_eq!(p.current(), StorageFormat::Csr);
    }

    #[test]
    fn infeasible_bitmap_degrades_to_csr_everywhere() {
        // Allocation too large for a bitmap even under tiling: one row per
        // 64-row tile spans the full column range, so every tile plans a
        // full-width window — 2^13 tiles × 64 rows × 2^13 words = 2^38
        // bits > MAX_BITS, on both orientations (symmetric construction).
        // Force(Bitmap) must degrade identically in the plan and policy.
        let n = 1 << 19;
        let mut coo = Coo::new(n, n);
        for t in (0..n as u32).step_by(64) {
            coo.push(t, 0, true);
            coo.push(t, (n - 1) as u32, true);
            coo.push(0, t, true);
            coo.push((n - 1) as u32, t, true);
        }
        coo.dedup(|a, _| a);
        let g = Graph::from_coo(&coo);
        assert!(!g.bitmap_plan(true).feasible(), "construction over budget");
        let desc = Descriptor::new()
            .transpose(true)
            .force_format(StorageFormat::Bitmap);
        let mut dense = Vector::singleton(n, false, 0, true);
        dense.make_dense();
        assert_eq!(resolve_plan(&g, &dense, &desc).format, StorageFormat::Csr);
        let mut p = FormatPolicy::fixed(StorageFormat::Bitmap);
        assert_eq!(
            p.update(&g, true, Direction::Pull, None),
            StorageFormat::Csr
        );

        // The silent degrade is recorded once per distinct decision: the
        // verdict is a per-graph constant, so repeated updates of one
        // policy on one side charge a single tick — not one per call.
        let c = AccessCounters::new();
        let mut p2 = FormatPolicy::fixed(StorageFormat::Bitmap);
        p2.update(&g, true, Direction::Pull, Some(&c));
        p2.update(&g, true, Direction::Pull, Some(&c));
        assert_eq!(c.snapshot().bitmap_degrades, 1, "memoized per side");
        // The push face is the other operand side: a fresh decision.
        p2.update(&g, true, Direction::Push, Some(&c));
        p2.update(&g, true, Direction::Push, Some(&c));
        assert_eq!(c.snapshot().bitmap_degrades, 2, "one per side");
        // The mxv-level plan note (direct descriptor force) still records.
        note_bitmap_degrade(&desc, StorageFormat::Csr, Some(&c));
        assert_eq!(c.snapshot().bitmap_degrades, 3);
        // A served bitmap (or a non-bitmap request) records nothing.
        note_bitmap_degrade(&desc, StorageFormat::Bitmap, Some(&c));
        note_bitmap_degrade(&Descriptor::new(), StorageFormat::Csr, Some(&c));
        assert_eq!(c.snapshot().bitmap_degrades, 3);
    }

    #[test]
    fn cost_model_format_prices_bitmap_against_word_scans() {
        // Dense 16-vertex graph: avg degree 15, one word per row — the
        // scalar scan (15 edges) outweighs the word scan (1 word), so the
        // measured rule picks bitmap for pull and CSR for push.
        let g = dense_graph();
        let k = CostConstants::default();
        let mut p = FormatPolicy::cost_model(k);
        assert_eq!(
            p.update(&g, true, Direction::Push, None),
            StorageFormat::Csr
        );
        // Debounced like Auto: one pull prefers bitmap, two adopt it.
        assert_eq!(
            p.update(&g, true, Direction::Pull, None),
            StorageFormat::Csr
        );
        assert_eq!(
            p.update(&g, true, Direction::Pull, None),
            StorageFormat::Bitmap
        );

        // Pricing the word scan up makes CSR win at the same shape.
        let expensive_words = CostConstants {
            bit_word: 16.0,
            ..k
        };
        let mut p2 = FormatPolicy::cost_model(expensive_words);
        assert_eq!(
            p2.update(&g, true, Direction::Pull, None),
            StorageFormat::Csr
        );

        // Hypersparse operands still take DCSR under the cost model.
        let hs = hypersparse_graph();
        let mut p3 = FormatPolicy::cost_model(k);
        assert_eq!(
            p3.update(&hs, true, Direction::Pull, None),
            StorageFormat::Dcsr
        );
    }

    #[test]
    fn resolve_shards_follows_the_policy() {
        let g = dense_graph();
        let desc = Descriptor::new().transpose(true);
        // Off (the default): never shard.
        assert_eq!(resolve_shards(&g, true, Direction::Push, &desc), None);
        // Fixed: always the (normalized) requested grid.
        let fixed = desc.shard_grid(ShardGrid::new(2, 4));
        assert_eq!(
            resolve_shards(&g, true, Direction::Push, &fixed),
            Some(ShardGrid::new(2, 4))
        );
        assert_eq!(
            resolve_shards(
                &g,
                true,
                Direction::Push,
                &desc.shard_grid(ShardGrid::new(0, 99))
            ),
            Some(ShardGrid::new(1, 16)),
            "fixed grids are clamped per dimension"
        );
        // Auto on a tiny operand: working set under budget, run unsharded.
        let auto = desc.shard_policy(ShardPolicy::Auto);
        assert_eq!(resolve_shards(&g, true, Direction::Push, &auto), None);
        // Auto on a large operand: the cached plan's grid engages.
        let n = 40_000u32;
        let mut coo = Coo::new(n as usize, n as usize);
        for u in 0..n {
            coo.push(u, (u + 1) % n, true);
        }
        let big = Graph::from_coo(&coo);
        let grid =
            resolve_shards(&big, true, Direction::Push, &auto).unwrap_or(ShardGrid::UNSHARDED);
        assert!(
            !grid.is_unsharded(),
            "40k-vertex working set exceeds budget"
        );
        assert_eq!(grid, big.shard_plan(false).grid(), "the cached plan's grid");
        // And the resolved plan carries the shard dimension through.
        let sparse = Vector::singleton(n as usize, false, 0, true);
        let plan = resolve_plan(&big, &sparse, &auto);
        assert_eq!(plan.shard, Some(grid));
        assert_eq!(resolve_plan(&big, &sparse, &desc).shard, None);
    }

    #[test]
    fn cost_model_prices_compressed_frontier_scans() {
        // Every row reaches columns at both ends of a 1024-wide matrix, so
        // each 64-row tile plans a full 16-word window: dense pricing sees
        // 16 words/row against an average degree of 4 and keeps CSR.
        let n = 1024;
        let mut coo = Coo::new(n, n);
        for u in 0..n as u32 {
            for &c in &[0u32, 1, (n - 2) as u32, (n - 1) as u32] {
                coo.push(u, c, true);
            }
        }
        let g = Graph::from_coo(&coo);
        let k = CostConstants::default();
        let mut dense_rule = FormatPolicy::cost_model(k);
        assert_eq!(
            dense_rule.update(&g, false, Direction::Pull, None),
            StorageFormat::Csr,
            "dense-word pricing overprices the scan"
        );
        // A 2-nonzero frontier compresses to ≤2 populated words, so the
        // bit pull scans at most 2 words/row — now bitmap wins.
        let mut sparse_rule = FormatPolicy::cost_model(k);
        assert_eq!(
            sparse_rule.update_with_frontier(&g, false, Direction::Pull, Some(2), None),
            StorageFormat::Bitmap,
            "compressed-frontier pricing sees the real scan cost"
        );
        // A frontier too dense to compress prices exactly like before.
        let mut full_rule = FormatPolicy::cost_model(k);
        assert_eq!(
            full_rule.update_with_frontier(&g, false, Direction::Pull, Some(n), None),
            StorageFormat::Csr
        );
        // The cap never *raises* the price: effective words are monotone.
        assert!(effective_words_per_row(16.0, n, Some(2)) <= 16.0);
        assert_eq!(effective_words_per_row(16.0, n, None), 16.0);
        assert_eq!(effective_words_per_row(0.5, n, Some(1)), 0.5);
    }

    #[test]
    fn cost_constants_per_format_scale_pull_edge() {
        let csr = CostConstants::for_format(StorageFormat::Csr);
        let bm = CostConstants::for_format(StorageFormat::Bitmap);
        assert_eq!(csr, CostConstants::default());
        assert!((bm.pull_edge - csr.pull_edge / 8.0).abs() < f64::EPSILON);
        assert_eq!(bm.push_edge, csr.push_edge);
    }
}
