//! Vector-level GraphBLAS operations: the `GrB_assign`, `GrB_reduce`,
//! `GrB_eWiseMult`/`eWiseAdd`, and `GrB_apply` that Algorithm 1 composes
//! around its `GrB_mxv` core.

use crate::mask::Mask;
use crate::ops::{Monoid, Scalar};
use crate::vector::{DenseVector, Vector};

/// GrB_assign with a vector pattern: `target(i) = value` for every explicit
/// entry `i` of `pattern` (Algorithm 1 line 7, `v ← f × d + v`).
pub fn assign_scalar<T: Scalar, P: Scalar>(
    target: &mut DenseVector<T>,
    pattern: &Vector<P>,
    value: T,
) {
    assert_eq!(target.dim(), pattern.dim(), "assign dimensions must match");
    for (i, _) in pattern.iter_explicit() {
        target.set(i as usize, value);
    }
}

/// GrB_reduce to a scalar: fold all explicit entries with a monoid.
#[must_use]
pub fn reduce<T: Scalar, M: Monoid<T>>(v: &Vector<T>, m: M) -> T {
    let mut acc = m.identity();
    for (_, x) in v.iter_explicit() {
        acc = m.op(acc, x);
    }
    acc
}

/// GrB_reduce specialization used on line 9 of Algorithm 1: the number of
/// explicit entries (`c ← Σ f(i)` over the Boolean frontier).
#[must_use]
pub fn reduce_count<T: Scalar>(v: &Vector<T>) -> usize {
    v.nnz()
}

/// GrB_apply: map every explicit entry through `f`, preserving structure.
/// The fill element maps through as well so implicit entries stay implicit.
#[must_use]
pub fn apply<T: Scalar, U: Scalar, F: Fn(T) -> U>(v: &Vector<T>, fill_out: U, f: F) -> Vector<U> {
    match v {
        Vector::Sparse { dim, data, .. } => Vector::from_sparse(
            *dim,
            fill_out,
            data.ids().to_vec(),
            data.vals().iter().map(|&x| f(x)).collect(),
        ),
        Vector::Dense(d) => Vector::Dense(DenseVector::from_values(
            d.values().iter().map(|&x| f(x)).collect(),
            fill_out,
        )),
    }
}

/// GrB_eWiseMult (intersection semantics): `w(i) = op(u(i), v(i))` where
/// both are explicit.
#[must_use]
pub fn ewise_mult<T: Scalar, F: Fn(T, T) -> T>(u: &Vector<T>, v: &Vector<T>, op: F) -> Vector<T> {
    assert_eq!(u.dim(), v.dim(), "eWiseMult dimensions must match");
    let fill = u.fill();
    let mut ids = Vec::new();
    let mut vals = Vec::new();
    // Iterate the sparser side, probe the other.
    let (probe_from, probe_into) = if u.nnz() <= v.nnz() { (u, v) } else { (v, u) };
    let flipped = u.nnz() > v.nnz();
    for (i, x) in probe_from.iter_explicit() {
        let other = probe_into.get(i);
        if other != probe_into.fill() {
            let val = if flipped { op(other, x) } else { op(x, other) };
            ids.push(i);
            vals.push(val);
        }
    }
    Vector::from_sparse(u.dim(), fill, ids, vals)
}

/// GrB_eWiseAdd (union semantics): `w(i)` is `op(u(i), v(i))` where both are
/// explicit, else whichever side is explicit.
#[must_use]
pub fn ewise_add<T: Scalar, F: Fn(T, T) -> T>(u: &Vector<T>, v: &Vector<T>, op: F) -> Vector<T> {
    assert_eq!(u.dim(), v.dim(), "eWiseAdd dimensions must match");
    let fill = u.fill();
    let a: Vec<(u32, T)> = u.iter_explicit().collect();
    let b: Vec<(u32, T)> = v.iter_explicit().collect();
    let mut ids = Vec::with_capacity(a.len() + b.len());
    let mut vals = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                ids.push(a[i].0);
                vals.push(a[i].1);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                ids.push(b[j].0);
                vals.push(b[j].1);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                ids.push(a[i].0);
                vals.push(op(a[i].1, b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    for &(id, x) in &a[i..] {
        ids.push(id);
        vals.push(x);
    }
    for &(id, x) in &b[j..] {
        ids.push(id);
        vals.push(x);
    }
    Vector::from_sparse(u.dim(), fill, ids, vals)
}

/// Keep only entries the mask allows — the standalone `.∗ ¬v` filter used
/// when masking inside `mxv` is disabled (Table 2's pre-masking rungs).
#[must_use]
pub fn filter_by_mask<T: Scalar>(v: &Vector<T>, mask: &Mask<'_>) -> Vector<T> {
    assert_eq!(v.dim(), mask.dim(), "mask must cover vector");
    let fill = v.fill();
    let mut ids = Vec::new();
    let mut vals = Vec::new();
    for (i, x) in v.iter_explicit() {
        if mask.allows(i as usize) {
            ids.push(i);
            vals.push(x);
        }
    }
    Vector::from_sparse(v.dim(), fill, ids, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{OrMonoid, PlusMonoid};
    use graphblas_primitives::BitVec;

    #[test]
    fn assign_scalar_writes_frontier_depths() {
        let mut depths = DenseVector::new(6, -1i32);
        let f = Vector::from_sparse(6, false, vec![1, 4], vec![true, true]);
        assign_scalar(&mut depths, &f, 3);
        assert_eq!(depths.get(1), 3);
        assert_eq!(depths.get(4), 3);
        assert_eq!(depths.get(0), -1);
    }

    #[test]
    fn assign_from_dense_pattern() {
        let mut depths = DenseVector::new(4, 0u32);
        let mut f = Vector::from_sparse(4, false, vec![2], vec![true]);
        f.make_dense();
        assign_scalar(&mut depths, &f, 9);
        assert_eq!(depths.get(2), 9);
        assert_eq!(depths.get(1), 0);
    }

    #[test]
    fn reduce_or_and_count() {
        let f = Vector::from_sparse(5, false, vec![0, 3], vec![true, true]);
        assert!(reduce(&f, OrMonoid));
        assert_eq!(reduce_count(&f), 2);
        let empty: Vector<bool> = Vector::new_sparse(5, false);
        assert!(!reduce(&empty, OrMonoid));
        assert_eq!(reduce_count(&empty), 0);
    }

    #[test]
    fn reduce_sum() {
        let v = Vector::from_sparse(4, 0.0f64, vec![0, 2], vec![1.5, 2.5]);
        let s: f64 = reduce(&v, PlusMonoid);
        assert_eq!(s, 4.0);
    }

    #[test]
    fn apply_maps_values() {
        let v = Vector::from_sparse(4, 0i32, vec![1, 3], vec![10, 20]);
        let w = apply(&v, 0i32, |x| x * 2);
        let got: Vec<_> = w.iter_explicit().collect();
        assert_eq!(got, vec![(1, 20), (3, 40)]);
    }

    #[test]
    fn ewise_mult_intersects() {
        let u = Vector::from_sparse(6, 0i64, vec![1, 2, 4], vec![10, 20, 40]);
        let v = Vector::from_sparse(6, 0i64, vec![2, 4, 5], vec![2, 4, 5]);
        let w = ewise_mult(&u, &v, |a, b| a * b);
        let got: Vec<_> = w.iter_explicit().collect();
        assert_eq!(got, vec![(2, 40), (4, 160)]);
    }

    #[test]
    fn ewise_mult_argument_order_preserved() {
        // Non-commutative op; u sparser vs v sparser must both give op(u,v).
        let u = Vector::from_sparse(4, 0i64, vec![1], vec![10]);
        let v = Vector::from_sparse(4, 0i64, vec![1, 2, 3], vec![3, 9, 9]);
        let w = ewise_mult(&u, &v, |a, b| a - b);
        assert_eq!(w.get(1), 7);
        let w2 = ewise_mult(&v, &u, |a, b| a - b);
        assert_eq!(w2.get(1), -7);
    }

    #[test]
    fn ewise_add_unions() {
        let u = Vector::from_sparse(6, 0i64, vec![1, 2], vec![10, 20]);
        let v = Vector::from_sparse(6, 0i64, vec![2, 5], vec![2, 5]);
        let w = ewise_add(&u, &v, |a, b| a + b);
        let got: Vec<_> = w.iter_explicit().collect();
        assert_eq!(got, vec![(1, 10), (2, 22), (5, 5)]);
    }

    #[test]
    fn filter_by_mask_drops_disallowed() {
        let v = Vector::from_sparse(5, false, vec![0, 2, 4], vec![true; 3]);
        let mut visited = BitVec::new(5);
        visited.set(2);
        let m = Mask::complement(&visited);
        let w = filter_by_mask(&v, &m);
        let got: Vec<u32> = w.iter_explicit().map(|(i, _)| i).collect();
        assert_eq!(got, vec![0, 4]);
    }
}
