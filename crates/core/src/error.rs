//! Error type for GraphBLAS-style operations, mirroring the GrB_Info codes
//! of the C API specification that apply to a single-process library.

use std::fmt;

/// Which budgeted resource ran out in a [`GrbError::BudgetExceeded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// The charged-access work budget (`ExecLimits::work_budget`).
    Work,
    /// The conversion/allocation bytes budget (`ExecLimits::bytes_budget`),
    /// or an injected allocation failure at a site with no fallback.
    Bytes,
}

/// Errors returned by core operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrbError {
    /// Operand dimensions do not conform (GrB_DIMENSION_MISMATCH).
    DimensionMismatch {
        /// What was being multiplied/combined.
        context: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        actual: usize,
    },
    /// An index is out of the valid range (GrB_INDEX_OUT_OF_BOUNDS).
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension it must be below.
        dim: usize,
    },
    /// The requested option combination is not supported.
    InvalidValue(&'static str),
    /// The run's wall-clock deadline expired and the operation aborted at a
    /// chunk boundary. Caller state, caches, and counters are untouched
    /// (the guard restores the counters); retrying is always safe.
    Cancelled,
    /// A resource budget was exhausted at a site with no graceful fallback.
    /// Like [`GrbError::Cancelled`], the abort is clean and retryable.
    BudgetExceeded {
        /// Which budget ran out.
        resource: BudgetResource,
    },
    /// A worker chunk panicked; the panic was caught at the chunk boundary
    /// and the pool remains usable. The failed operation's outputs were
    /// discarded and the counters restored, so retrying is safe.
    WorkerPanicked {
        /// Index of the chunk whose body panicked.
        chunk: usize,
        /// Best-effort rendering of the panic payload.
        message: String,
    },
}

impl fmt::Display for GrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrbError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            GrbError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension {dim}")
            }
            GrbError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            GrbError::Cancelled => write!(f, "cancelled: execution deadline expired"),
            GrbError::BudgetExceeded { resource } => write!(
                f,
                "budget exceeded: {} budget exhausted",
                match resource {
                    BudgetResource::Work => "charged-access work",
                    BudgetResource::Bytes => "allocation bytes",
                }
            ),
            GrbError::WorkerPanicked { chunk, message } => {
                write!(f, "worker panicked in chunk {chunk}: {message}")
            }
        }
    }
}

impl std::error::Error for GrbError {}

/// Convenience result alias.
pub type GrbResult<T> = Result<T, GrbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GrbError::DimensionMismatch {
            context: "mxv",
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains("mxv"));
        assert!(e.to_string().contains('4'));
        let e = GrbError::IndexOutOfBounds { index: 9, dim: 3 };
        assert!(e.to_string().contains('9'));
        let e = GrbError::InvalidValue("nope");
        assert!(e.to_string().contains("nope"));
        assert!(GrbError::Cancelled.to_string().contains("deadline"));
        let e = GrbError::BudgetExceeded {
            resource: BudgetResource::Work,
        };
        assert!(e.to_string().contains("work"));
        let e = GrbError::BudgetExceeded {
            resource: BudgetResource::Bytes,
        };
        assert!(e.to_string().contains("bytes"));
        let e = GrbError::WorkerPanicked {
            chunk: 17,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("boom"));
    }
}
