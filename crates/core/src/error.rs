//! Error type for GraphBLAS-style operations, mirroring the GrB_Info codes
//! of the C API specification that apply to a single-process library.

use std::fmt;

/// Errors returned by core operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrbError {
    /// Operand dimensions do not conform (GrB_DIMENSION_MISMATCH).
    DimensionMismatch {
        /// What was being multiplied/combined.
        context: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        actual: usize,
    },
    /// An index is out of the valid range (GrB_INDEX_OUT_OF_BOUNDS).
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension it must be below.
        dim: usize,
    },
    /// The requested option combination is not supported.
    InvalidValue(&'static str),
}

impl fmt::Display for GrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrbError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            GrbError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension {dim}")
            }
            GrbError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl std::error::Error for GrbError {}

/// Convenience result alias.
pub type GrbResult<T> = Result<T, GrbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GrbError::DimensionMismatch {
            context: "mxv",
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains("mxv"));
        assert!(e.to_string().contains('4'));
        let e = GrbError::IndexOutOfBounds { index: 9, dim: 3 };
        assert!(e.to_string().contains('9'));
        let e = GrbError::InvalidValue("nope");
        assert!(e.to_string().contains("nope"));
    }
}
