//! The four matvec kernels of Table 1 and the push-pull dispatcher.
//!
//! | kernel            | paper name                | cost (Table 1)                  |
//! |-------------------|---------------------------|---------------------------------|
//! | [`row_mxv`]       | row-based, no mask        | `O(dM)`                         |
//! | [`row_masked_mxv`]| row-based, mask (Alg. 2)  | `O(d·nnz(m))`                   |
//! | [`col_mxv`]       | column-based, no mask     | `O(d·nnz(f)·log nnz(f))`        |
//! | [`col_masked_mxv`]| column-based, mask (Alg.3)| `O(d·nnz(f)·log nnz(f))`        |
//!
//! [`mxv`] is the public entry point (GrB_mxv): it resolves the operand
//! orientation from the descriptor's transpose flag, picks row vs. column
//! by the input vector's storage (or a forced direction), and applies the
//! mask inside the kernel (row) or as a post-filter (column) — exactly the
//! asymmetry Figure 4 illustrates: masking accelerates the row kernel but
//! merely filters the column kernel's output.

use crate::descriptor::{Descriptor, Direction, DirectionChoice, MergeStrategy};
use crate::error::{GrbError, GrbResult};
use crate::mask::Mask;
use crate::ops::{Monoid, Scalar, Semiring};
use crate::vector::{DenseVector, SparseVector, Vector};
use graphblas_matrix::{Graph, RowAccess, ShardGrid, ShardPlan, StoreRef};
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::{gather, merge, pool, scan, segreduce, sort, AtomicBitVec, Spa};
use rayon::prelude::*;
use std::sync::Arc;

/// Row grain for parallel row-kernel loops (shared with the batched row
/// kernel so single-source and batched chunking agree).
pub(crate) const ROW_GRAIN: usize = 512;

/// Expanded products each column-kernel SPA chunk should own (shared with
/// the batched column kernel, which must produce identical chunk bounds).
pub(crate) const SPA_GRAIN: usize = 8192;

/// Ceiling on private SPAs alive at once per source — each is `O(M)`
/// memory.
pub(crate) const MAX_SPAS: usize = 16;

// ---------------------------------------------------------------------------
// Row-based (pull) kernels
// ---------------------------------------------------------------------------

/// Row-based matvec without a mask: `w(i) = ⊕_j op(i,j) ⊗ v(j)` for every
/// row. Touches every stored entry regardless of input sparsity — the
/// `O(dM)` row of Table 1.
pub fn row_mxv<A, X, Y, S, M>(
    s: S,
    op: &M,
    v: &DenseVector<X>,
    counters: Option<&AccessCounters>,
) -> DenseVector<Y>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    assert_eq!(op.n_cols(), v.dim(), "operand columns must match input dim");
    let add = s.add_monoid();
    let identity = add.identity();
    if !crate::exec::charge_alloc(counters, output_bytes::<Y>(op.n_rows())) {
        return DenseVector::from_values(Vec::new(), identity);
    }
    let mut vals = vec![identity; op.n_rows()];
    if let Some(rows) = op.nonempty_rows() {
        // Hypersparse store: scan only the non-empty rows — the DCSR win.
        // Empty rows contribute the ⊕ identity (already the fill) and
        // their per-row bookkeeping (`reduce_row` charges `examined + 1`
        // vector touches, i.e. exactly 1 for an empty row) is charged in
        // bulk, so totals equal the full-scan CSR run bit-for-bit.
        if let Some(c) = counters {
            c.add_vector((op.n_rows() - rows.len()) as u64);
        }
        let out = SendPtr(vals.as_mut_ptr());
        rows.par_iter().with_min_len(ROW_GRAIN).for_each(|&i| {
            let y = reduce_row(s, op, v, i as usize, identity, false, counters);
            // SAFETY: non-empty row ids are unique, so writes are disjoint.
            unsafe { *out.get().add(i as usize) = y };
        });
    } else {
        // Row-range chunking with direct per-chunk output slices: each
        // worker writes its rows straight into the dense output, no
        // reassembly copy.
        pool::par_fill_with(&mut vals, ROW_GRAIN, |i| {
            reduce_row(s, op, v, i, identity, false, counters)
        });
    }
    DenseVector::from_values(vals, identity)
}

/// Row-based **masked** matvec — Algorithm 2. Only rows the mask allows are
/// computed; with `early_exit`, a row's reduction stops at the monoid's
/// annihilator (the short-circuit OR of line 8). `O(d·nnz(m))`.
pub fn row_masked_mxv<A, X, Y, S, M>(
    s: S,
    op: &M,
    v: &DenseVector<X>,
    mask: &Mask<'_>,
    early_exit: bool,
    counters: Option<&AccessCounters>,
) -> DenseVector<Y>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    assert_eq!(op.n_cols(), v.dim(), "operand columns must match input dim");
    assert_eq!(op.n_rows(), mask.dim(), "mask must cover output dim");
    let add = s.add_monoid();
    let identity = add.identity();
    if !crate::exec::charge_alloc(counters, output_bytes::<Y>(op.n_rows())) {
        return DenseVector::from_values(Vec::new(), identity);
    }

    if let Some(active) = mask.active_list() {
        // O(nnz(m)) row iteration: only the listed rows are touched. This
        // is the amortized-SPA path of §3.2.
        if let Some(c) = counters {
            c.add_mask(active.len() as u64);
        }
        let mut vals = vec![identity; op.n_rows()];
        let out = SendPtr(vals.as_mut_ptr());
        active.par_iter().with_min_len(ROW_GRAIN).for_each(|&i| {
            debug_assert!(mask.allows(i as usize), "active list disagrees with mask");
            let y = reduce_row(s, op, v, i as usize, identity, early_exit, counters);
            // SAFETY: active-list entries are unique, so writes are disjoint.
            unsafe { *out.get().add(i as usize) = y };
        });
        DenseVector::from_values(vals, identity)
    } else {
        // No active list: scan all rows but skip masked-out ones before
        // touching the matrix (mask reads cost O(M), matrix cost O(d·nnz(m))).
        if let Some(c) = counters {
            c.add_mask(op.n_rows() as u64);
        }
        let mut vals = vec![identity; op.n_rows()];
        pool::par_fill_with(&mut vals, ROW_GRAIN, |i| {
            if mask.allows(i) {
                reduce_row(s, op, v, i, identity, early_exit, counters)
            } else {
                identity
            }
        });
        DenseVector::from_values(vals, identity)
    }
}

/// Reduce one operand row against a dense input vector. Shared with the
/// batched row kernel, so per-row work and counter bookkeeping are
/// identical between single-source and batched pulls.
#[inline]
pub(crate) fn reduce_row<A, X, Y, S, M>(
    s: S,
    op: &M,
    v: &DenseVector<X>,
    i: usize,
    identity: Y,
    early_exit: bool,
    counters: Option<&AccessCounters>,
) -> Y
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    // Per-row checkpoint: rows are the row kernels' size-derived work
    // units, so a tripped limit stops the sweep within one row's work.
    // The bail value is the ⊕ identity — cheap, and never observed because
    // the dispatcher converts the sticky trip into an error.
    if !crate::exec::live(counters) {
        return identity;
    }
    let add = s.add_monoid();
    let annihilator = add.annihilator();
    let cols = op.row(i);
    let avals = op.row_values(i);
    let mut acc = identity;
    let mut examined = 0u64;
    for (idx, &j) in cols.iter().enumerate() {
        examined += 1;
        if v.is_explicit(j as usize) {
            acc = add.op(acc, s.mult(avals[idx], v.get(j as usize)));
            if early_exit && annihilator == Some(acc) {
                break;
            }
        }
    }
    if let Some(c) = counters {
        c.add_matrix(examined);
        c.add_vector(examined + 1);
    }
    acc
}

/// Tile-streaming row kernel: the 2D-sharded pull face.
///
/// Instead of reducing each row start to finish (touching a full-width
/// window of the input vector per row), each [`ROW_GRAIN`]-derived row
/// chunk walks the plan's **column stripes in ascending order**, advancing
/// every live row of the chunk through the stripe's slice of its adjacency
/// list before moving to the next stripe — so the chunk's input-vector
/// working set at any moment is one stripe wide (the cache block), while
/// each row still consumes its sorted neighbors in exactly the order the
/// untiled [`reduce_row`] would. Accumulators, examined counts, and the
/// early-exit stop point are therefore bit-identical per row; the traffic
/// is charged in bulk per chunk from the same per-row totals.
///
/// Returns `None` (caller falls back to the untiled kernels) for the work
/// extents tiling cannot stream: an active-listed mask and hypersparse
/// row lists both scatter the rows, defeating the stripe-at-a-time reuse
/// the partition exists for.
fn pull_tiled<A, X, Y, S, M>(
    s: S,
    op: &M,
    v: &DenseVector<X>,
    mask: Option<&Mask<'_>>,
    plan: &ShardPlan,
    early_exit: bool,
    counters: Option<&AccessCounters>,
) -> Option<DenseVector<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    if op.nonempty_rows().is_some() || mask.is_some_and(|m| m.active_list().is_some()) {
        return None;
    }
    assert_eq!(op.n_cols(), v.dim(), "operand columns must match input dim");
    let identity = s.add_monoid().identity();
    let n = op.n_rows();
    if !crate::exec::charge_alloc(counters, output_bytes::<Y>(n)) {
        return Some(DenseVector::from_values(Vec::new(), identity));
    }
    if let (Some(c), Some(m)) = (counters, mask) {
        // Same bulk mask charge as the untiled no-list arm.
        debug_assert_eq!(m.dim(), n, "mask must cover output dim");
        c.add_mask(n as u64);
    }
    // Early exit is a masked-pull optimization, as in the untiled dispatch.
    let early_exit = mask.is_some() && early_exit;
    let mut vals = vec![identity; n];
    let out = SendPtr(vals.as_mut_ptr());
    let n_stripes = plan.n_col_stripes();
    pool::index_chunks(n, ROW_GRAIN)
        .into_par_iter()
        .for_each(|rows| {
            // Per-chunk checkpoint, the tiled analogue of the per-row poll in
            // `reduce_row`: a tripped limit leaves identity-shaped rows the
            // dispatcher discards by converting the trip into an error.
            if !crate::exec::live(counters) {
                return;
            }
            let add = s.add_monoid();
            let annihilator = add.annihilator();
            let width = rows.len();
            let base = rows.start;
            let mut acc = vec![identity; width];
            let mut pos = vec![0usize; width];
            let mut examined = vec![0u64; width];
            let mut done = vec![false; width];
            if let Some(m) = mask {
                for (k, d) in done.iter_mut().enumerate() {
                    // Disallowed rows are never scanned and never charged,
                    // exactly as the untiled masked kernel skips them; `done`
                    // with zero examined keeps them out of the bulk charge's
                    // per-row `+1` below via the `allowed` recheck.
                    *d = !m.allows(base + k);
                }
            }
            for st in 0..n_stripes {
                let hi = plan.col_range(st).end as u32;
                for k in 0..width {
                    if done[k] {
                        continue;
                    }
                    let i = base + k;
                    let cols = op.row(i);
                    let avals = op.row_values(i);
                    let mut p = pos[k];
                    while p < cols.len() && cols[p] < hi {
                        let j = cols[p] as usize;
                        examined[k] += 1;
                        if v.is_explicit(j) {
                            acc[k] = add.op(acc[k], s.mult(avals[p], v.get(j)));
                            if early_exit && annihilator == Some(acc[k]) {
                                done[k] = true;
                                p += 1;
                                break;
                            }
                        }
                        p += 1;
                    }
                    pos[k] = p;
                }
            }
            let mut matrix = 0u64;
            let mut vector = 0u64;
            for k in 0..width {
                let i = base + k;
                if mask.is_some_and(|m| !m.allows(i)) {
                    continue;
                }
                // Same per-row bookkeeping as `reduce_row`, summed per chunk.
                matrix += examined[k];
                vector += examined[k] + 1;
                // SAFETY: chunks partition 0..n, so writes are disjoint.
                unsafe { *out.get().add(i) = acc[k] };
            }
            if let Some(c) = counters {
                c.add_matrix(matrix);
                c.add_vector(vector);
            }
        });
    Some(DenseVector::from_values(vals, identity))
}

// ---------------------------------------------------------------------------
// Column-based (push) kernels
// ---------------------------------------------------------------------------

/// Column-based matvec without a mask: gathers the operand columns selected
/// by the sparse input's nonzeros and resolves collisions by multiway merge
/// (radix sort + segmented reduce, Algorithm 3, or a heap merge when the
/// descriptor asks). `O(d·nnz(f)·log nnz(f))`.
///
/// `op_t` must be the *transpose* of the logical operand: its rows are the
/// operand's columns, which is how CSC access is realized (§3).
pub fn col_mxv<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    desc: &Descriptor,
    counters: Option<&AccessCounters>,
) -> SparseVector<Y>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    col_kernel(s, op_t, v, None, desc, None, counters)
}

/// Column-based **masked** matvec — Algorithm 3 with the final mask filter
/// (lines 17–24). The mask does *not* reduce work here (Fig. 4d): the full
/// expansion, sort, and reduction happen first; the mask only gates which
/// entries reach the output.
pub fn col_masked_mxv<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    mask: &Mask<'_>,
    desc: &Descriptor,
    counters: Option<&AccessCounters>,
) -> SparseVector<Y>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    assert_eq!(op_t.n_rows(), mask.dim(), "mask must cover output dim");
    col_kernel(s, op_t, v, Some(mask), desc, None, counters)
}

fn col_kernel<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    mask: Option<&Mask<'_>>,
    desc: &Descriptor,
    shard: Option<&ShardPlan>,
    counters: Option<&AccessCounters>,
) -> SparseVector<Y>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    let (ids, vals) = col_kernel_parts(s, op_t, v, mask, desc, shard, counters);
    SparseVector::from_sorted(ids, vals)
}

/// The column kernel up to (but not including) output materialization:
/// expansion, merge under the descriptor's [`MergeStrategy`], mask filter,
/// and identity drop, returning the raw sorted `(ids, vals)` pair lists.
///
/// [`col_kernel`] wraps this into a [`SparseVector`]; the fused pipeline
/// ([`crate::fused::FusedMxv`]) consumes the parts directly so the applied/
/// assigned chain never materializes an intermediate vector. Counter
/// bookkeeping is identical either way.
///
/// `shard` routes the [`MergeStrategy::SpaMerge`] arm through the
/// cache-blocked stripe kernel ([`spa_merge_kernel_sharded`]); the other
/// merge strategies ignore it (their collision resolution is global by
/// construction), so per-strategy equivalence is unaffected.
pub(crate) fn col_kernel_parts<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    mask: Option<&Mask<'_>>,
    desc: &Descriptor,
    shard: Option<&ShardPlan>,
    counters: Option<&AccessCounters>,
) -> (Vec<u32>, Vec<Y>)
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    let add = s.add_monoid();
    let identity = add.identity();
    // Entry checkpoint: the column kernel's pre-expansion boundary.
    if !crate::exec::live(counters) {
        return (Vec::new(), Vec::new());
    }
    if let Some(c) = counters {
        c.add_vector(v.nnz() as u64);
    }

    // Structure-only fast path: all products are a known constant, so the
    // expansion carries bare keys and the sort is key-only (§5.5).
    let structure_hint = if desc.structure_only {
        s.product_hint()
    } else {
        None
    };

    let sort_based = |counters: Option<&AccessCounters>| -> (Vec<u32>, Vec<Y>) {
        if let Some(hint) = structure_hint {
            let mut keys = expand_keys_only(op_t, v, counters);
            if let Some(c) = counters {
                c.add_sort(
                    keys.len() as u64 * sort::passes_for(op_t.n_rows().max(1) as u32 - 1) as u64,
                );
            }
            sort::sort_keys(&mut keys, op_t.n_rows().max(1) as u32 - 1);
            keys.dedup();
            let vals = vec![hint; keys.len()];
            (keys, vals)
        } else {
            let (mut keys, mut prods) = expand_pairs(s, op_t, v, counters);
            if let Some(c) = counters {
                // Key-value sort moves twice the data of a key-only sort —
                // the factor structure-only removes.
                c.add_sort(
                    2 * keys.len() as u64
                        * sort::passes_for(op_t.n_rows().max(1) as u32 - 1) as u64,
                );
            }
            sort::sort_pairs(&mut keys, &mut prods, op_t.n_rows().max(1) as u32 - 1);
            segreduce::segmented_reduce_by_key(&keys, &prods, |a, b| add.op(a, b))
        }
    };

    let (mut ids, mut vals) = match desc.merge_strategy {
        // The sort-based merge is where the bit-parallel push arm slots in:
        // same structure-only precondition as the key-only sort, plus a
        // word-surfaced store and the descriptor opt-in. The bit arm
        // replaces expand/sort/dedup with word-wise OR of source-row spans
        // but charges the identical matrix/sort amounts (see
        // `bitops::bit_push_parts`), so it is invisible to the counter
        // equivalence contract.
        MergeStrategy::SortBased => match crate::bitops::bit_push_parts(s, op_t, v, desc, counters)
        {
            Some(parts) => parts,
            None => sort_based(counters),
        },
        MergeStrategy::BitmaskCull => {
            // Gunrock-style local culling (§7.3): claim output slots in a
            // bitmask instead of sorting. Requires every surviving product
            // to be the same constant; fall back to sorting otherwise.
            match s.product_hint() {
                Some(hint) => {
                    let (offsets, total) = expansion_offsets(op_t, v);
                    if let Some(c) = counters {
                        c.add_vector(total as u64);
                        c.add_matrix(total as u64);
                    }
                    let claimed = AtomicBitVec::new(op_t.n_rows());
                    let ids_ref = v.ids();
                    gather::interval_gather(&offsets, pool::DEFAULT_GRAIN, |seg, within, _pos| {
                        let src = ids_ref[seg] as usize;
                        claimed.set(op_t.row(src)[within] as usize);
                    });
                    // Bit iteration yields sorted unique indices for free.
                    let keys: Vec<u32> =
                        claimed.to_bitvec().iter_ones().map(|i| i as u32).collect();
                    let vals = vec![hint; keys.len()];
                    (keys, vals)
                }
                None => sort_based(counters),
            }
        }
        MergeStrategy::SpaMerge => {
            if v.nnz() == 0 {
                (Vec::new(), Vec::new())
            } else if let Some(plan) = shard {
                spa_merge_kernel_sharded(s, op_t, v, plan, counters)
            } else {
                spa_merge_kernel(s, op_t, v, counters)
            }
        }
        MergeStrategy::HeapMerge => {
            // Materialize each selected column as a sorted (row, product)
            // list and heap-merge the k lists — the eager column-major
            // formulation SuiteSparse-era CPU backends used before
            // sort-based merges; kept as the ablation baseline. (The paper
            // itself never heap-merges: its §3.1 column kernel already
            // batches the expansion for the sort of Algorithm 3.)
            let lists: Vec<Vec<(u32, Y)>> = v
                .ids()
                .iter()
                .zip(v.vals().iter())
                .map(|(&k, &x)| {
                    let cols = op_t.row(k as usize);
                    let avals = op_t.row_values(k as usize);
                    if let Some(c) = counters {
                        c.add_matrix(cols.len() as u64);
                        c.add_sort((cols.len() as f64 * (v.nnz().max(2) as f64).log2()) as u64);
                    }
                    cols.iter()
                        .zip(avals.iter())
                        .map(|(&j, &a)| (j, s.mult(a, x)))
                        .collect()
                })
                .collect();
            let refs: Vec<&[(u32, Y)]> = lists.iter().map(Vec::as_slice).collect();
            let merged = merge::multiway_merge_reduce(&refs, |a, b| add.op(a, b));
            merged.into_iter().unzip()
        }
    };

    filter_col_output(&mut ids, &mut vals, mask, identity, counters);
    (ids, vals)
}

/// Mask filter (lines 17–24 of Algorithm 3) and identity drop, in place.
/// Entries whose reduced value equals the ⊕ identity are implicit zeros
/// and are not materialized. Shared with the batched column kernel so the
/// per-source mask bookkeeping is identical.
pub(crate) fn filter_col_output<Y: Scalar>(
    ids: &mut Vec<u32>,
    vals: &mut Vec<Y>,
    mask: Option<&Mask<'_>>,
    identity: Y,
    counters: Option<&AccessCounters>,
) {
    if let Some(c) = counters {
        if mask.is_some() {
            c.add_mask(ids.len() as u64);
        }
    }
    let mut write = 0usize;
    for read in 0..ids.len() {
        let keep = vals[read] != identity && mask.is_none_or(|m| m.allows(ids[read] as usize));
        if keep {
            ids[write] = ids[read];
            vals[write] = vals[read];
            write += 1;
        }
    }
    ids.truncate(write);
    vals.truncate(write);
}

/// The expansion preamble every column-kernel arm shares: scatter offsets
/// over the frontier's selected columns (CSR-style, trailing total) and
/// the expanded product count.
pub(crate) fn expansion_offsets<A, X, M>(op_t: &M, v: &SparseVector<X>) -> (Vec<usize>, usize)
where
    A: Scalar,
    X: Scalar,
    M: RowAccess<A>,
{
    let lengths: Vec<usize> = v.ids().iter().map(|&k| op_t.degree(k as usize)).collect();
    let offsets = scan::exclusive_scan_offsets(&lengths);
    let total = *offsets.last().expect("non-empty offsets");
    (offsets, total)
}

/// Per-worker SPA accumulation with a deterministic merge — the
/// [`MergeStrategy::SpaMerge`] arm of the column kernel.
///
/// The frontier is cut into expansion-balanced chunks (boundaries derived
/// from the scanned neighbor-list lengths, never from the thread count, so
/// results are identical at every lane count). Each chunk scatters its
/// products into a private [`Spa`] in frontier order; the per-chunk sorted
/// harvests are then combined by [`merge::multiway_merge_reduce`], whose
/// tie-breaking by list order makes the whole reduction group operands
/// exactly as a left-to-right walk of each chunk — deterministic for any
/// associative ⊕.
fn spa_merge_kernel<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    counters: Option<&AccessCounters>,
) -> (Vec<u32>, Vec<Y>)
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    let (offsets, total) = expansion_offsets(op_t, v);
    if let Some(c) = counters {
        c.add_matrix(total as u64);
        // One SPA scatter per product plus the harvest.
        c.add_vector(2 * total as u64);
    }

    let seg_ranges = spa_chunk_ranges(&offsets, total);
    let parts: Vec<Vec<(u32, Y)>> = seg_ranges
        .into_par_iter()
        .map(|(s0, s1)| spa_harvest_chunk(s, op_t, v, s0, s1, counters))
        .collect();
    spa_merge_parts(s.add_monoid(), &parts, counters)
}

/// Expansion-balanced chunk boundaries over frontier segments: each chunk
/// owns ≈ [`SPA_GRAIN`] expanded products, at most [`MAX_SPAS`] chunks.
/// Shared with the batched column kernel so a batch row's chunking is
/// bit-identical to its single-source run.
pub(crate) fn spa_chunk_ranges(offsets: &[usize], total: usize) -> Vec<(usize, usize)> {
    let pieces = (total / SPA_GRAIN).clamp(1, MAX_SPAS);
    let n_seg = offsets.len() - 1;
    let mut bounds = vec![0usize];
    for j in 1..pieces {
        let target = total * j / pieces;
        let idx = offsets[..=n_seg]
            .partition_point(|&o| o < target)
            .min(n_seg);
        if idx > *bounds.last().expect("non-empty bounds") {
            bounds.push(idx);
        }
    }
    // Guard against a duplicate trailing bound: an empty (n_seg, n_seg)
    // chunk would still allocate and drain a full O(M) SPA for zero work.
    if *bounds.last().expect("non-empty bounds") != n_seg {
        bounds.push(n_seg);
    }
    bounds.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Scatter one chunk of frontier segments `[s0, s1)` into a private SPA
/// and harvest the sorted (row, value) pairs.
pub(crate) fn spa_harvest_chunk<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    s0: usize,
    s1: usize,
    counters: Option<&AccessCounters>,
) -> Vec<(u32, Y)>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    // Per-chunk checkpoint before the O(M) private SPA is even built.
    if !crate::exec::live(counters) {
        return Vec::new();
    }
    let add = s.add_monoid();
    let identity = add.identity();
    let ids = v.ids();
    let xs = v.vals();
    let mut spa = Spa::new(op_t.n_rows(), identity);
    for seg in s0..s1 {
        let src = ids[seg] as usize;
        let x = xs[seg];
        let cols = op_t.row(src);
        let avals = op_t.row_values(src);
        for (idx, &j) in cols.iter().enumerate() {
            spa.accumulate(j, s.mult(avals[idx], x), |a, b| add.op(a, b));
        }
    }
    spa.drain_sorted_pairs()
}

/// Combine per-chunk sorted harvests by the deterministic k-way merge in
/// chunk order, charging the merge's sort traffic.
pub(crate) fn spa_merge_parts<Y, M>(
    add: M,
    parts: &[Vec<(u32, Y)>],
    counters: Option<&AccessCounters>,
) -> (Vec<u32>, Vec<Y>)
where
    Y: Scalar,
    M: Monoid<Y>,
{
    if let Some(c) = counters {
        let merged_in: usize = parts.iter().map(Vec::len).sum();
        c.add_sort((merged_in as f64 * (parts.len().max(2) as f64).log2()) as u64);
    }
    let refs: Vec<&[(u32, Y)]> = parts.iter().map(Vec::as_slice).collect();
    let merged = merge::multiway_merge_reduce(&refs, |a, b| add.op(a, b));
    merged.into_iter().unzip()
}

/// The [`ShardPlan`] a resolved grid executes with: the graph's cached
/// default-budget plan when the grids agree (the `Auto` path, one Arc
/// clone), an ad-hoc plan over the baseline CSR otherwise (`Fixed` grids).
/// Stripe boundaries depend only on the operand shape and the grid, so a
/// plan built from the CSR is valid for whatever store format the kernel
/// actually runs over.
pub(crate) fn shard_plan_for<A: Scalar>(
    graph: &Graph<A>,
    side: bool,
    grid: ShardGrid,
) -> Arc<ShardPlan> {
    let cached = graph.shard_plan(side);
    if cached.grid() == grid {
        return Arc::clone(cached);
    }
    let store = if side { graph.csr_t() } else { graph.csr() };
    Arc::new(ShardPlan::with_grid(store, grid))
}

/// Cache-blocked variant of [`spa_merge_kernel`]: the 2D-sharded push arm.
///
/// The frontier is cut into the **same** expansion-balanced chunks as the
/// unsharded kernel ([`spa_chunk_ranges`]), but collisions resolve inside
/// *column stripes*: each stripe owns one windowed [`Spa`] slab sized to
/// the stripe width (the cache block), every chunk scatters only the
/// products whose destination falls inside the stripe (a binary search
/// per frontier segment finds the sub-slice, since CSR rows are sorted),
/// and the per-chunk harvests merge *within the stripe* in chunk order.
/// The global cross-stripe merge barrier of the unsharded kernel does not
/// exist: the output is the concatenation of the independently merged
/// stripes, which is globally sorted because stripe ranges ascend.
///
/// Equivalence to the unsharded oracle is bit-exact in both values and
/// access counters:
///
/// * **values** — an output row lives in exactly one stripe, its chunk
///   partials carry the same products in the same frontier order, and the
///   stripe merge combines them in the same chunk order, so every ⊕
///   grouping is identical;
/// * **counters** — matrix/vector traffic is charged in bulk from the same
///   expansion total, and the merge's sort traffic is charged **once
///   globally** from the total merged-in length and the chunk count
///   (stripe harvests partition each chunk's harvest exactly, so the
///   totals agree; charging per stripe would break bit-identity through
///   `f64` truncation).
///
/// Scheduling is one indivisible task per stripe
/// ([`pool::par_map_shards`]): a worker that picks up a stripe owns every
/// write into it, so lanes never contend on a slab and results recombine
/// in stripe order at any lane count. The stripe-local merges and the
/// products that crossed stripes are tallied in the `shard_merges` /
/// `cross_shard_writes` telemetry counters (excluded from equivalence
/// projections, like all telemetry).
pub(crate) fn spa_merge_kernel_sharded<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    plan: &ShardPlan,
    counters: Option<&AccessCounters>,
) -> (Vec<u32>, Vec<Y>)
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    let (offsets, total) = expansion_offsets(op_t, v);
    if let Some(c) = counters {
        // Same bulk charges as the unsharded kernel: one matrix access per
        // expanded product, one SPA scatter per product plus the harvest.
        c.add_matrix(total as u64);
        c.add_vector(2 * total as u64);
    }

    let seg_ranges = spa_chunk_ranges(&offsets, total);
    let identity = s.add_monoid().identity();
    let ids = v.ids();
    let xs = v.vals();

    // One task per column stripe; the worker that takes stripe `st` owns
    // its SPA slab, its chunk harvests, and its merge end to end. Each
    // stripe yields its merged (id, value) run plus its (merged, crossing)
    // telemetry tallies.
    type StripeOut<Y> = (Vec<(u32, Y)>, u64, u64);
    let stripes: Vec<StripeOut<Y>> = pool::par_map_shards(plan.n_col_stripes(), |st| {
        // Per-stripe checkpoint, mirroring the per-chunk checkpoint of
        // the unsharded kernel: a tripped limit stops before the slab
        // is even built, and the dispatcher turns the trip into an
        // error so the partial output never escapes.
        if !crate::exec::live(counters) {
            return (Vec::new(), 0, 0);
        }
        let window = plan.col_range(st);
        if window.is_empty() {
            return (Vec::new(), 0, 0);
        }
        let add = s.add_monoid();
        let (lo, hi) = (window.start as u32, window.end as u32);
        let mut spa = Spa::windowed(window, identity);
        let mut cross = 0u64;
        let mut parts: Vec<Vec<(u32, Y)>> = Vec::with_capacity(seg_ranges.len());
        for &(s0, s1) in &seg_ranges {
            for seg in s0..s1 {
                let src = ids[seg] as usize;
                let x = xs[seg];
                let cols = op_t.row(src);
                // The stripe's sub-slice of this adjacency row: CSR
                // rows are sorted ascending, so two binary searches
                // bound the products that land in this slab.
                let p0 = cols.partition_point(|&j| j < lo);
                let p1 = p0 + cols[p0..].partition_point(|&j| j < hi);
                if p0 == p1 {
                    continue;
                }
                if plan.col_stripe_of(src) != st {
                    cross += (p1 - p0) as u64;
                }
                let avals = op_t.row_values(src);
                for idx in p0..p1 {
                    spa.accumulate(cols[idx], s.mult(avals[idx], x), |a, b| add.op(a, b));
                }
            }
            parts.push(spa.drain_sorted_pairs());
        }
        let merged_in: u64 = parts.iter().map(|p| p.len() as u64).sum();
        let refs: Vec<&[(u32, Y)]> = parts.iter().map(Vec::as_slice).collect();
        let merged = merge::multiway_merge_reduce(&refs, |a, b| add.op(a, b));
        (merged, merged_in, cross)
    });

    if let Some(c) = counters {
        // Sort traffic charged once globally — identical to the unsharded
        // `spa_merge_parts` charge because the stripe harvests partition
        // the chunk harvests exactly (same merged-in total, same chunk
        // count). Telemetry: one stripe-local merge per stripe that held
        // data, and every product whose destination stripe differs from
        // its source's.
        let merged_in_total: u64 = stripes.iter().map(|(_, m, _)| m).sum();
        c.add_sort((merged_in_total as f64 * (seg_ranges.len().max(2) as f64).log2()) as u64);
        c.add_shard_merges(stripes.iter().filter(|(_, m, _)| *m > 0).count() as u64);
        c.add_cross_shard_writes(stripes.iter().map(|(_, _, x)| x).sum());
    }

    let out_len: usize = stripes.iter().map(|(m, _, _)| m.len()).sum();
    let mut out_ids = Vec::with_capacity(out_len);
    let mut out_vals = Vec::with_capacity(out_len);
    for (merged, _, _) in stripes {
        for (i, y) in merged {
            out_ids.push(i);
            out_vals.push(y);
        }
    }
    (out_ids, out_vals)
}

/// Expand the selected columns into a flat (row-index, product) pair list.
fn expand_pairs<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    counters: Option<&AccessCounters>,
) -> (Vec<u32>, Vec<Y>)
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    let (offsets, total) = expansion_offsets(op_t, v);
    if let Some(c) = counters {
        c.add_matrix(total as u64);
    }
    // Caller-thread charge for both expansion buffers (keys + products).
    let bytes = output_bytes::<u32>(total) + output_bytes::<Y>(total);
    if !crate::exec::charge_alloc(counters, bytes) {
        return (Vec::new(), Vec::new());
    }
    let mut keys = vec![0u32; total];
    let mut prods: Vec<Y> = vec![s.add_monoid().identity(); total];
    let kp = SendPtr(keys.as_mut_ptr());
    let pp = SendPtr(prods.as_mut_ptr());
    let ids = v.ids();
    let xs = v.vals();
    gather::interval_gather(&offsets, pool::DEFAULT_GRAIN, |seg, within, pos| {
        let src = ids[seg] as usize;
        let j = op_t.row(src)[within];
        let a = op_t.row_values(src)[within];
        // SAFETY: positions partition 0..total; writes are disjoint.
        unsafe {
            *kp.get().add(pos) = j;
            *pp.get().add(pos) = s.mult(a, xs[seg]);
        }
    });
    (keys, prods)
}

/// Expand the selected columns into bare row indices (structure-only path:
/// no matrix values, no products).
fn expand_keys_only<A, X, M>(
    op_t: &M,
    v: &SparseVector<X>,
    counters: Option<&AccessCounters>,
) -> Vec<u32>
where
    A: Scalar,
    X: Scalar,
    M: RowAccess<A>,
{
    let (offsets, total) = expansion_offsets(op_t, v);
    if let Some(c) = counters {
        c.add_matrix(total as u64);
    }
    // Caller-thread charge for the bare-key expansion buffer.
    if !crate::exec::charge_alloc(counters, output_bytes::<u32>(total)) {
        return Vec::new();
    }
    let mut keys = vec![0u32; total];
    let kp = SendPtr(keys.as_mut_ptr());
    let ids = v.ids();
    gather::interval_gather(&offsets, pool::DEFAULT_GRAIN, |seg, within, pos| {
        let src = ids[seg] as usize;
        let j = op_t.row(src)[within];
        // SAFETY: positions partition 0..total; writes are disjoint.
        unsafe { *kp.get().add(pos) = j };
    });
    keys
}

// ---------------------------------------------------------------------------
// Dispatch (GrB_mxv)
// ---------------------------------------------------------------------------

/// The direction a given call would take under the descriptor's policy.
#[must_use]
pub fn resolve_direction<X: Scalar>(v: &Vector<X>, desc: &Descriptor) -> Direction {
    match desc.direction {
        DirectionChoice::Force(d) => d,
        DirectionChoice::Auto => {
            if v.is_sparse() {
                Direction::Push
            } else {
                Direction::Pull
            }
        }
    }
}

/// How a [`DirectionPolicy`] reacts to the per-iteration activity ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
enum PolicyMode {
    /// §6.3 hysteresis: switch push→pull while activity is rising above the
    /// threshold, pull→push while falling below it (`α = β`, as the paper).
    Hysteresis { threshold: f64 },
    /// §5.6 two-phase: switch push→pull once the threshold is crossed and
    /// stay there (SSSP's delta-set rule).
    TwoPhase { threshold: f64 },
    /// Memoryless: pull iff the ratio exceeds the threshold this iteration
    /// (Beamer's rule as used by Ligra, `|frontier ∪ its edges| > |E|/20`).
    Memoryless { threshold: f64 },
    /// Never switch.
    Fixed,
    /// Measured work comparison: `pushwork = c_push · nnz(frontier rows)`
    /// vs `pullwork = c_pull · d · |unvisited|`, the per-iteration rule of
    /// the paper's comparator engines, with the per-format constants of
    /// [`crate::plan::CostConstants`]. Fed through
    /// [`DirectionPolicy::update_measured`]; the ratio-only
    /// [`DirectionPolicy::update`] keeps the current direction (like
    /// [`PolicyMode::Fixed`]) because it lacks the measured inputs.
    CostModel {
        constants: crate::plan::CostConstants,
    },
}

/// The measured per-iteration inputs of the `PolicyMode::CostModel`
/// rule: what the traversal actually knows about the next step's work.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModelInputs {
    /// Σ out-degree over the frontier's explicit vertices — exactly the
    /// edges a push step would expand (`nnz(A(:, f))`).
    pub frontier_edges: usize,
    /// Vertices not yet finished — the rows a masked pull step would scan.
    pub unvisited: usize,
    /// Average degree `d` of the operand, so `pullwork ≈ d · unvisited`.
    pub avg_degree: f64,
}

/// The workspace's one stateful push/pull switching rule (§6.3 and its
/// variants).
///
/// [`resolve_direction`] is the *storage→direction* rule `mxv` dispatches
/// on; `DirectionPolicy` is the *activity→direction* heuristic that decides
/// which storage/kernel an iterative algorithm should steer toward next.
/// Every direction-optimized loop in the workspace — BFS and parent BFS,
/// SSSP's two-phase switch, connected components, and the Ligra-like /
/// Gunrock-like comparator engines — feeds its per-iteration activity count
/// through one of these instead of hand-rolling the comparison, so the
/// Table 2 "change of direction" ablation toggles exactly one rule.
///
/// `update` takes the iteration's *activity* (frontier nnz, delta-set size,
/// frontier-edge count — whatever the traversal's work measure is) and the
/// *capacity* it is measured against (|V| or |E|), and returns the
/// direction to use this iteration.
#[derive(Clone, Debug)]
pub struct DirectionPolicy {
    mode: PolicyMode,
    dir: Direction,
    last_activity: usize,
}

impl DirectionPolicy {
    /// §6.3 hysteresis starting from push (BFS-style traversals).
    #[must_use]
    pub fn hysteresis(threshold: f64) -> Self {
        Self::hysteresis_from(Direction::Push, threshold)
    }

    /// §6.3 hysteresis from an explicit starting direction (label
    /// propagation starts dense, hence pull).
    #[must_use]
    pub fn hysteresis_from(start: Direction, threshold: f64) -> Self {
        DirectionPolicy {
            mode: PolicyMode::Hysteresis { threshold },
            dir: start,
            last_activity: 0,
        }
    }

    /// §5.6 two-phase rule: push until the activity ratio first exceeds the
    /// threshold, pull forever after.
    #[must_use]
    pub fn two_phase(threshold: f64) -> Self {
        DirectionPolicy {
            mode: PolicyMode::TwoPhase { threshold },
            dir: Direction::Push,
            last_activity: 0,
        }
    }

    /// Memoryless threshold rule: pull exactly when `activity / capacity`
    /// exceeds the threshold (Beamer/Ligra's `> |E|/20` with
    /// `threshold = 1/20`).
    #[must_use]
    pub fn memoryless(threshold: f64) -> Self {
        DirectionPolicy {
            mode: PolicyMode::Memoryless { threshold },
            dir: Direction::Push,
            last_activity: 0,
        }
    }

    /// Pinned direction (the "change of direction off" ablation arm).
    #[must_use]
    pub fn fixed(dir: Direction) -> Self {
        DirectionPolicy {
            mode: PolicyMode::Fixed,
            dir,
            last_activity: 0,
        }
    }

    /// Measured cost-model rule, starting from push (frontiers start
    /// small). Drive it with [`DirectionPolicy::update_measured`].
    #[must_use]
    pub fn cost_model(constants: crate::plan::CostConstants) -> Self {
        DirectionPolicy {
            mode: PolicyMode::CostModel { constants },
            dir: Direction::Push,
            last_activity: 0,
        }
    }

    /// Feed this iteration's activity measure; returns the direction to use.
    pub fn update(&mut self, activity: usize, capacity: usize) -> Direction {
        let r = activity as f64 / capacity.max(1) as f64;
        match self.mode {
            PolicyMode::Hysteresis { threshold } => {
                let rising = activity >= self.last_activity;
                match self.dir {
                    Direction::Push if rising && r > threshold => self.dir = Direction::Pull,
                    Direction::Pull if !rising && r < threshold => self.dir = Direction::Push,
                    _ => {}
                }
            }
            PolicyMode::TwoPhase { threshold } => {
                if self.dir == Direction::Push && r > threshold {
                    self.dir = Direction::Pull;
                }
            }
            PolicyMode::Memoryless { threshold } => {
                self.dir = if r > threshold {
                    Direction::Pull
                } else {
                    Direction::Push
                };
            }
            PolicyMode::Fixed => {}
            // The ratio alone cannot price push against pull; hold the
            // direction until measured inputs arrive via update_measured.
            PolicyMode::CostModel { .. } => {}
        }
        self.last_activity = activity;
        self.dir
    }

    /// Feed measured work estimates. Under `PolicyMode::CostModel` this
    /// prices both faces directly — `pushwork = c_push · frontier_edges`
    /// against `pullwork = c_pull · d · unvisited` — and picks the cheaper
    /// one. Every other mode ignores the measurements and delegates to
    /// [`DirectionPolicy::update`], so loops can call this unconditionally.
    pub fn update_measured(
        &mut self,
        activity: usize,
        capacity: usize,
        inputs: CostModelInputs,
    ) -> Direction {
        if let PolicyMode::CostModel { constants } = self.mode {
            // Chaos hook: inflating the push-edge cost lets the fault
            // harness force direction flips without touching the graph.
            #[cfg(feature = "fault-injection")]
            let push_edge = constants.push_edge * graphblas_primitives::fault::cost_inflation();
            #[cfg(not(feature = "fault-injection"))]
            let push_edge = constants.push_edge;
            let pushwork = push_edge * inputs.frontier_edges as f64;
            let pullwork = constants.pull_edge * inputs.avg_degree * inputs.unvisited as f64;
            self.dir = if pushwork < pullwork {
                Direction::Push
            } else {
                Direction::Pull
            };
            self.last_activity = activity;
            self.dir
        } else {
            self.update(activity, capacity)
        }
    }

    /// The direction the last `update` settled on.
    #[must_use]
    pub fn current(&self) -> Direction {
        self.dir
    }
}

/// GrB_mxv: `w = op(A) · v` under a semiring, with optional mask.
///
/// Both push and pull compute the same expression; which kernel runs is an
/// implementation decision (§4.4, §6.3):
///
/// * **Push** (sparse `v`): column kernel over the operand's transpose.
/// * **Pull** (dense `v`): row kernel; masked when a mask is supplied.
///
/// The output's storage matches the kernel (push → sparse, pull → dense),
/// so a DOBFS loop alternating directions naturally hands each iteration
/// the representation the next one wants.
///
/// ```
/// use graphblas_core::{mxv, BoolOrAnd, Descriptor, Vector};
/// use graphblas_matrix::{Coo, Graph};
///
/// // 0 → 1 → 2: one BFS step from {0} over Aᵀ lands on {1}.
/// let mut coo = Coo::new(3, 3);
/// coo.push(0, 1, true);
/// coo.push(1, 2, true);
/// let g = Graph::from_coo(&coo);
/// let f = Vector::singleton(3, false, 0, true);
/// let desc = Descriptor::new().transpose(true);
///
/// let next: Vector<bool> = mxv(None, BoolOrAnd, &g, &f, &desc, None).unwrap();
/// assert_eq!(next.iter_explicit().collect::<Vec<_>>(), vec![(1, true)]);
/// ```
pub fn mxv<A, X, Y, S>(
    mask: Option<&Mask<'_>>,
    s: S,
    graph: &Graph<A>,
    v: &Vector<X>,
    desc: &Descriptor,
    counters: Option<&AccessCounters>,
) -> GrbResult<Vector<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
{
    // Operand orientation: `operand` is what row-based iterates rows of;
    // its transpose is what column-based iterates rows of. Dims are
    // validated on the baseline CSR; the kernel's store is served in the
    // planned format below.
    let operand = if desc.transpose {
        graph.csr_t()
    } else {
        graph.csr()
    };
    if operand.n_cols() != v.dim() {
        return Err(GrbError::DimensionMismatch {
            context: "mxv input vector",
            expected: operand.n_cols(),
            actual: v.dim(),
        });
    }
    if let Some(m) = mask {
        if m.dim() != operand.n_rows() {
            return Err(GrbError::DimensionMismatch {
                context: "mxv mask",
                expected: operand.n_rows(),
                actual: m.dim(),
            });
        }
    }

    // Pre-flight stop poll: a limit tripped by an earlier operation in the
    // same guarded run aborts before any planning or conversion work.
    crate::exec::check_stop(counters)?;

    let identity = s.add_monoid().identity();
    // The execution plan: direction by the §6.3 storage rule (or force),
    // storage format by the planner's shape rule (or force). The face's
    // operand is then served in that format from the graph's cache, and
    // the same generic kernel runs whichever backend comes out — formats
    // change wall clock, never results or counters.
    let plan = crate::plan::resolve_plan(graph, v, desc);
    crate::plan::note_bitmap_degrade(desc, plan.format, counters);
    if let Some(c) = counters {
        match plan.direction {
            Direction::Push => c.add_push_step(),
            Direction::Pull => c.add_pull_step(),
        }
    }
    // Resolve the shard dimension of the plan against the store side the
    // chosen face iterates rows of (push reads the transpose-of-operand).
    let shard_plan = plan.shard.map(|grid| {
        shard_plan_for(
            graph,
            crate::plan::operand_side(desc.transpose, plan.direction),
            grid,
        )
    });
    let shard = shard_plan.as_deref();
    match plan.direction {
        Direction::Push => {
            let sparse_input;
            let sv = match v.as_sparse() {
                Some(sv) => sv,
                None => {
                    sparse_input = v.to_sparse();
                    &sparse_input
                }
            };
            let out =
                match crate::exec::store_budgeted(graph, !desc.transpose, plan.format, counters) {
                    StoreRef::Csr(m) => push_face(s, m, sv, mask, desc, shard, counters),
                    StoreRef::Bitmap(m) => push_face(s, m, sv, mask, desc, shard, counters),
                    StoreRef::Dcsr(m) => push_face(s, m, sv, mask, desc, shard, counters),
                };
            // Post-kernel poll: a checkpoint bail inside the kernel left an
            // identity-shaped partial result that must not escape.
            crate::exec::check_stop(counters)?;
            let (ids, vals) = (out.ids().to_vec(), out.vals().to_vec());
            Ok(Vector::from_sparse(operand.n_rows(), identity, ids, vals))
        }
        Direction::Pull => {
            let dense_input;
            let dv = match v.as_dense() {
                Some(dv) => dv,
                None => {
                    dense_input = v.to_dense();
                    &dense_input
                }
            };
            let out =
                match crate::exec::store_budgeted(graph, desc.transpose, plan.format, counters) {
                    StoreRef::Csr(m) => pull_face(s, m, dv, mask, desc, shard, counters),
                    StoreRef::Bitmap(m) => pull_face(s, m, dv, mask, desc, shard, counters),
                    StoreRef::Dcsr(m) => pull_face(s, m, dv, mask, desc, shard, counters),
                };
            // Post-kernel poll: see the push arm.
            crate::exec::check_stop(counters)?;
            Ok(Vector::Dense(out))
        }
    }
}

/// The push face for one concrete store: masked or unmasked column kernel,
/// with the shard plan (when the resolved [`crate::plan::ExecPlan`] carries
/// one) threaded through to the stripe-local SPA merge.
fn push_face<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    sv: &SparseVector<X>,
    mask: Option<&Mask<'_>>,
    desc: &Descriptor,
    shard: Option<&ShardPlan>,
    counters: Option<&AccessCounters>,
) -> SparseVector<Y>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    col_kernel(s, op_t, sv, mask, desc, shard, counters)
}

/// The pull face for one concrete store: masked or unmasked row kernel,
/// with the bit-parallel arm slotted in front. When the planned store has
/// a word surface and the call qualifies (see `bitops::bit_pull_ctx`), the
/// row reduction runs 64 edges per AND; values and the projected counters
/// are the scalar kernel's bit for bit. A shard plan (when the resolved
/// [`crate::plan::ExecPlan`] carries one and the bit arm declined) selects
/// the tile-streaming traversal of [`pull_tiled`], which itself declines
/// work extents it cannot stream — declining always lands on the untiled
/// kernels, never changes results.
fn pull_face<A, X, Y, S, M>(
    s: S,
    op: &M,
    dv: &DenseVector<X>,
    mask: Option<&Mask<'_>>,
    desc: &Descriptor,
    shard: Option<&ShardPlan>,
    counters: Option<&AccessCounters>,
) -> DenseVector<Y>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    if let Some(ctx) = crate::bitops::bit_pull_ctx(s, op, dv, desc, counters) {
        let identity = s.add_monoid().identity();
        return match mask {
            Some(m) => row_masked_mxv_bit(op, &ctx, m, identity, desc.early_exit, counters),
            None => row_mxv_bit(op, &ctx, identity, counters),
        };
    }
    if let Some(plan) = shard {
        if let Some(out) = pull_tiled(s, op, dv, mask, plan, desc.early_exit, counters) {
            return out;
        }
    }
    match mask {
        Some(m) => row_masked_mxv(s, op, dv, m, desc.early_exit, counters),
        None => row_mxv(s, op, dv, counters),
    }
}

/// Bit twin of [`row_mxv`]: same structure (hypersparse row list when the
/// store tracks one, row-range chunking otherwise), with the per-row
/// reduction running word-wise.
fn row_mxv_bit<A, Y, M>(
    op: &M,
    ctx: &crate::bitops::BitPull<Y>,
    identity: Y,
    counters: Option<&AccessCounters>,
) -> DenseVector<Y>
where
    A: Scalar,
    Y: Scalar,
    M: RowAccess<A>,
{
    if !crate::exec::charge_alloc(counters, output_bytes::<Y>(op.n_rows())) {
        return DenseVector::from_values(Vec::new(), identity);
    }
    let mut vals = vec![identity; op.n_rows()];
    if let Some(rows) = op.nonempty_rows() {
        if let Some(c) = counters {
            c.add_vector((op.n_rows() - rows.len()) as u64);
        }
        let out = SendPtr(vals.as_mut_ptr());
        rows.par_iter().with_min_len(ROW_GRAIN).for_each(|&i| {
            let y = crate::bitops::bit_reduce_row(op, ctx, i as usize, identity, false, counters);
            // SAFETY: non-empty row ids are unique, so writes are disjoint.
            unsafe { *out.get().add(i as usize) = y };
        });
    } else {
        pool::par_fill_with(&mut vals, ROW_GRAIN, |i| {
            crate::bitops::bit_reduce_row(op, ctx, i, identity, false, counters)
        });
    }
    DenseVector::from_values(vals, identity)
}

/// Bit twin of [`row_masked_mxv`]. The active-list arm mirrors the scalar
/// kernel row for row; the no-list arm adds the *unvisited index*: one
/// level of summary words over the (complement-adjusted) mask words lets a
/// level-k BFS scan visit only 64-row groups that still contain allowed
/// rows. The scalar kernel charges `mask(M)` in bulk and does no matrix
/// work on disallowed rows, so skipping them wholesale is charged
/// identically — the skip shows up only in `bit_word_ops`.
fn row_masked_mxv_bit<A, Y, M>(
    op: &M,
    ctx: &crate::bitops::BitPull<Y>,
    mask: &Mask<'_>,
    identity: Y,
    early_exit: bool,
    counters: Option<&AccessCounters>,
) -> DenseVector<Y>
where
    A: Scalar,
    Y: Scalar,
    M: RowAccess<A>,
{
    assert_eq!(op.n_rows(), mask.dim(), "mask must cover output dim");
    if !crate::exec::charge_alloc(counters, output_bytes::<Y>(op.n_rows())) {
        return DenseVector::from_values(Vec::new(), identity);
    }
    if let Some(active) = mask.active_list() {
        if let Some(c) = counters {
            c.add_mask(active.len() as u64);
        }
        let mut vals = vec![identity; op.n_rows()];
        let out = SendPtr(vals.as_mut_ptr());
        active.par_iter().with_min_len(ROW_GRAIN).for_each(|&i| {
            debug_assert!(mask.allows(i as usize), "active list disagrees with mask");
            let y =
                crate::bitops::bit_reduce_row(op, ctx, i as usize, identity, early_exit, counters);
            // SAFETY: active-list entries are unique, so writes are disjoint.
            unsafe { *out.get().add(i as usize) = y };
        });
        DenseVector::from_values(vals, identity)
    } else {
        if let Some(c) = counters {
            c.add_mask(op.n_rows() as u64);
        }
        let idx = crate::bitops::UnvisitedIndex::build(mask, counters);
        let mut vals = vec![identity; op.n_rows()];
        let out = SendPtr(vals.as_mut_ptr());
        let groups = idx.live_groups();
        // One group = 64 output rows; keep the scalar kernel's grain in
        // row units so chunk shapes stay lane-count independent.
        groups
            .par_iter()
            .with_min_len((ROW_GRAIN / 64).max(1))
            .for_each(|&g| {
                let mut bits = idx.allowed_word(g);
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let i = g * 64 + b;
                    let y =
                        crate::bitops::bit_reduce_row(op, ctx, i, identity, early_exit, counters);
                    // SAFETY: each row belongs to exactly one group and each
                    // group to one worker, so writes are disjoint.
                    unsafe { *out.get().add(i) = y };
                }
            });
        DenseVector::from_values(vals, identity)
    }
}

/// GrB_mxv with an accumulator: `w = w accum (op(A) · v)` — the `+=` form
/// of the C API. New products merge into the existing output under
/// `accum`; entries untouched by the product keep their old values.
///
/// Used by accumulating algorithms (dependency sums in betweenness,
/// batched scores) where replacing the output vector would lose state.
// The arity mirrors the GraphBLAS C signature (output, mask, accum, op,
// A, u, desc) plus the instrumentation handle; collapsing it would only
// move the argument count into an options struct at every call site.
#[allow(clippy::too_many_arguments)]
pub fn mxv_accum<A, X, Y, S, F>(
    w: &mut Vector<Y>,
    mask: Option<&Mask<'_>>,
    accum: F,
    s: S,
    graph: &Graph<A>,
    v: &Vector<X>,
    desc: &Descriptor,
    counters: Option<&AccessCounters>,
) -> GrbResult<()>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    F: Fn(Y, Y) -> Y,
{
    let t: Vector<Y> = mxv(mask, s, graph, v, desc, counters)?;
    if w.dim() != t.dim() {
        return Err(GrbError::DimensionMismatch {
            context: "mxv_accum output",
            expected: t.dim(),
            actual: w.dim(),
        });
    }
    // Merge: entries explicit in t combine with w's current value.
    let fill = w.fill();
    let mut merged = w.to_dense();
    for (i, y) in t.iter_explicit() {
        let old = merged.get(i as usize);
        let new = if old == fill { y } else { accum(old, y) };
        merged.set(i as usize, new);
    }
    *w = Vector::Dense(merged);
    Ok(())
}

/// GrB_vxm: `w = v · op(A)`, the row-vector form. Equivalent to `mxv` with
/// the transpose flag flipped; provided for API fidelity with the C spec.
pub fn vxm<A, X, Y, S>(
    mask: Option<&Mask<'_>>,
    s: S,
    v: &Vector<X>,
    graph: &Graph<A>,
    desc: &Descriptor,
    counters: Option<&AccessCounters>,
) -> GrbResult<Vector<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
{
    let flipped = Descriptor {
        transpose: !desc.transpose,
        ..*desc
    };
    mxv(mask, s, graph, v, &flipped, counters)
}

/// Bytes of a buffer of `n` elements of `T` — the caller-thread
/// allocation charge the kernels assess before materializing outputs and
/// expansion buffers.
#[inline]
pub(crate) fn output_bytes<T>(n: usize) -> u64 {
    (n as u64) * (std::mem::size_of::<T>() as u64)
}

pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    #[inline]
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{BoolOrAnd, BoolStructure, MinPlus, PlusTimes};
    use graphblas_matrix::Coo;
    use graphblas_primitives::BitVec;

    /// The 8-vertex example of Figure 3: frontier {B, C, D}, visited
    /// {A, B, C, D}; push/pull must both discover exactly {E, F}.
    ///
    /// Vertices: A=0, B=1, C=2, D=3, E=4, F=5, G=6, H=7.
    /// Edges (directed, child lists): B->A, B->E, C->F, D->A, D->F,
    /// E->G(reverse discovered later)… we keep it minimal: the asserted
    /// behaviour is discovery of {E=4, F=5} and exclusion of A=0.
    fn fig3_graph() -> Graph<bool> {
        let mut coo = Coo::new(8, 8);
        for &(u, c) in &[(1u32, 0u32), (1, 4), (2, 5), (3, 0), (3, 5), (6, 7)] {
            coo.push(u, c, true);
        }
        Graph::from_coo(&coo)
    }

    fn frontier_bcd() -> Vector<bool> {
        Vector::from_sparse(8, false, vec![1, 2, 3], vec![true; 3])
    }

    fn visited_abcd() -> BitVec {
        let mut b = BitVec::new(8);
        for i in 0..4 {
            b.set(i);
        }
        b
    }

    fn desc_bfs() -> Descriptor {
        // BFS multiplies by Aᵀ: children of the frontier.
        Descriptor::new().transpose(true)
    }

    #[test]
    fn push_discovers_children_with_mask() {
        let g = fig3_graph();
        let f = frontier_bcd();
        let visited = visited_abcd();
        let mask = Mask::complement(&visited);
        let desc = desc_bfs().force(Direction::Push);
        let out: Vector<bool> = mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).expect("mxv");
        let found: Vec<u32> = out.iter_explicit().map(|(i, _)| i).collect();
        assert_eq!(found, vec![4, 5], "push finds E and F, filters A");
        assert!(out.is_sparse(), "push output stays sparse");
    }

    #[test]
    fn pull_matches_push() {
        let g = fig3_graph();
        let mut f = frontier_bcd();
        f.make_dense();
        let visited = visited_abcd();
        let mask = Mask::complement(&visited);
        let desc = desc_bfs().force(Direction::Pull);
        let out: Vector<bool> = mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, None).expect("mxv");
        let found: Vec<u32> = out.iter_explicit().map(|(i, _)| i).collect();
        assert_eq!(found, vec![4, 5], "pull finds the same frontier");
        assert!(!out.is_sparse(), "pull output is dense");
    }

    #[test]
    fn auto_direction_follows_storage() {
        let g = fig3_graph();
        let desc = desc_bfs();
        let sparse_f = frontier_bcd();
        assert_eq!(resolve_direction(&sparse_f, &desc), Direction::Push);
        let mut dense_f = frontier_bcd();
        dense_f.make_dense();
        assert_eq!(resolve_direction(&dense_f, &desc), Direction::Pull);
        // And both give identical explicit sets through the full dispatcher.
        let visited = visited_abcd();
        let mask = Mask::complement(&visited);
        let a: Vector<bool> = mxv(Some(&mask), BoolOrAnd, &g, &sparse_f, &desc, None).unwrap();
        let b: Vector<bool> = mxv(Some(&mask), BoolOrAnd, &g, &dense_f, &desc, None).unwrap();
        let ea: Vec<_> = a.iter_explicit().collect();
        let eb: Vec<_> = b.iter_explicit().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn unmasked_push_includes_already_visited() {
        let g = fig3_graph();
        let f = frontier_bcd();
        let desc = desc_bfs().force(Direction::Push);
        let out: Vector<bool> = mxv(None, BoolOrAnd, &g, &f, &desc, None).expect("mxv");
        let found: Vec<u32> = out.iter_explicit().map(|(i, _)| i).collect();
        assert_eq!(found, vec![0, 4, 5], "without the mask, A re-appears");
    }

    #[test]
    fn structure_only_path_matches_generic() {
        let g = fig3_graph();
        let f = frontier_bcd();
        let visited = visited_abcd();
        let mask = Mask::complement(&visited);
        let generic: Vector<bool> = mxv(
            Some(&mask),
            BoolOrAnd,
            &g,
            &f,
            &desc_bfs().force(Direction::Push).structure_only(false),
            None,
        )
        .unwrap();
        let structural: Vector<bool> = mxv(
            Some(&mask),
            BoolStructure,
            &g,
            &f,
            &desc_bfs().force(Direction::Push).structure_only(true),
            None,
        )
        .unwrap();
        let a: Vec<_> = generic.iter_explicit().collect();
        let b: Vec<_> = structural.iter_explicit().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn heap_merge_matches_sort_based() {
        let g = fig3_graph();
        let f = frontier_bcd();
        let sorted: Vector<bool> = mxv(
            None,
            BoolOrAnd,
            &g,
            &f,
            &desc_bfs()
                .force(Direction::Push)
                .merge_strategy(MergeStrategy::SortBased),
            None,
        )
        .unwrap();
        let heaped: Vector<bool> = mxv(
            None,
            BoolOrAnd,
            &g,
            &f,
            &desc_bfs()
                .force(Direction::Push)
                .merge_strategy(MergeStrategy::HeapMerge),
            None,
        )
        .unwrap();
        let a: Vec<_> = sorted.iter_explicit().collect();
        let b: Vec<_> = heaped.iter_explicit().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn spa_merge_matches_sort_based() {
        let g = fig3_graph();
        let f = frontier_bcd();
        let visited = visited_abcd();
        let mask = Mask::complement(&visited);
        let run = |strategy: MergeStrategy, masked: bool| -> Vec<(u32, bool)> {
            let out: Vector<bool> = mxv(
                masked.then_some(&mask),
                BoolOrAnd,
                &g,
                &f,
                &desc_bfs().force(Direction::Push).merge_strategy(strategy),
                None,
            )
            .unwrap();
            out.iter_explicit().collect()
        };
        for masked in [false, true] {
            assert_eq!(
                run(MergeStrategy::SpaMerge, masked),
                run(MergeStrategy::SortBased, masked),
                "masked = {masked}"
            );
        }
    }

    #[test]
    fn spa_merge_matches_sort_based_on_weighted_min_plus() {
        // Collisions under a non-trivial ⊕ (min): 0 and 1 both reach 2.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0f64);
        coo.push(0, 2, 5.0);
        coo.push(1, 2, 1.0);
        let g = Graph::from_coo(&coo);
        let d = Vector::from_sparse(3, f64::INFINITY, vec![0, 1], vec![0.0, 2.0]);
        let desc = Descriptor::new().transpose(true).force(Direction::Push);
        let run = |strategy: MergeStrategy| -> Vec<(u32, f64)> {
            let out: Vector<f64> =
                mxv(None, MinPlus, &g, &d, &desc.merge_strategy(strategy), None).unwrap();
            out.iter_explicit().collect()
        };
        assert_eq!(run(MergeStrategy::SpaMerge), run(MergeStrategy::SortBased));
    }

    #[test]
    fn spa_merge_single_heavy_segment() {
        // One hub whose expansion exceeds the per-chunk grain: the balanced
        // boundaries collapse to a single chunk (no empty trailing chunk)
        // and the result still matches the sort-based path.
        let n = 20_000;
        let mut coo = Coo::new(n, n);
        for c in 1..n as u32 {
            coo.push(0, c, true);
        }
        let g = Graph::from_coo(&coo);
        let f = Vector::singleton(n, false, 0, true);
        let run = |strategy: MergeStrategy| -> usize {
            let out: Vector<bool> = mxv(
                None,
                BoolOrAnd,
                &g,
                &f,
                &desc_bfs().force(Direction::Push).merge_strategy(strategy),
                None,
            )
            .unwrap();
            out.nnz()
        };
        assert_eq!(run(MergeStrategy::SpaMerge), run(MergeStrategy::SortBased));
    }

    #[test]
    fn spa_merge_empty_frontier() {
        let g = fig3_graph();
        let f = Vector::new_sparse(8, false);
        let out: Vector<bool> = mxv(
            None,
            BoolOrAnd,
            &g,
            &f,
            &desc_bfs()
                .force(Direction::Push)
                .merge_strategy(MergeStrategy::SpaMerge),
            None,
        )
        .unwrap();
        assert_eq!(out.nnz(), 0);
    }

    #[test]
    fn bitmask_cull_matches_sort_based() {
        let g = fig3_graph();
        let f = frontier_bcd();
        let visited = visited_abcd();
        let mask = Mask::complement(&visited);
        // With a product hint (BoolStructure), culling is exact.
        let sorted: Vector<bool> = mxv(
            Some(&mask),
            crate::ops::BoolStructure,
            &g,
            &f,
            &desc_bfs().force(Direction::Push),
            None,
        )
        .unwrap();
        let culled: Vector<bool> = mxv(
            Some(&mask),
            crate::ops::BoolStructure,
            &g,
            &f,
            &desc_bfs()
                .force(Direction::Push)
                .merge_strategy(MergeStrategy::BitmaskCull),
            None,
        )
        .unwrap();
        let a: Vec<_> = sorted.iter_explicit().collect();
        let b: Vec<_> = culled.iter_explicit().collect();
        assert_eq!(a, b);
        // Without a hint (BoolOrAnd under structure_only=false) the kernel
        // silently falls back to the sort path and stays correct.
        let fallback: Vector<bool> = mxv(
            Some(&mask),
            BoolOrAnd,
            &g,
            &f,
            &desc_bfs()
                .force(Direction::Push)
                .structure_only(false)
                .merge_strategy(MergeStrategy::BitmaskCull),
            None,
        )
        .unwrap();
        let c: Vec<_> = fallback.iter_explicit().collect();
        assert_eq!(a, c);
    }

    #[test]
    fn bitmask_cull_avoids_sort_traffic() {
        let g = fig3_graph();
        let f = frontier_bcd();
        let count_sort = |strategy: MergeStrategy| {
            let c = AccessCounters::new();
            let _: Vector<bool> = mxv(
                None,
                crate::ops::BoolStructure,
                &g,
                &f,
                &desc_bfs().force(Direction::Push).merge_strategy(strategy),
                Some(&c),
            )
            .unwrap();
            c.snapshot().sort
        };
        assert!(count_sort(MergeStrategy::SortBased) > 0);
        assert_eq!(count_sort(MergeStrategy::BitmaskCull), 0);
    }

    #[test]
    fn min_plus_single_step_relaxation() {
        // Weighted digraph: 0 -2.0-> 1, 0 -5.0-> 2, 1 -1.0-> 2.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0f64);
        coo.push(0, 2, 5.0);
        coo.push(1, 2, 1.0);
        let g = Graph::from_coo(&coo);
        // Distance vector after init: d(0)=0.
        let d = Vector::singleton(3, f64::INFINITY, 0, 0.0);
        // One relaxation step: d' = Aᵀ d (min-plus) gives 1: 2.0, 2: 5.0.
        let desc = Descriptor::new().transpose(true);
        let out: Vector<f64> = mxv(None, MinPlus, &g, &d, &desc, None).unwrap();
        assert_eq!(out.get(1), 2.0);
        assert_eq!(out.get(2), 5.0);
        assert_eq!(out.get(0), f64::INFINITY, "no in-edges to 0");
    }

    #[test]
    fn plus_times_row_kernel_is_standard_spmv() {
        // [[1,2],[0,3]] * [10, 100] = [210, 300]
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0f64);
        coo.push(0, 1, 2.0);
        coo.push(1, 1, 3.0);
        let g = Graph::from_coo(&coo);
        let x = Vector::Dense(DenseVector::from_values(vec![10.0, 100.0], 0.0));
        let out: Vector<f64> = mxv(None, PlusTimes, &g, &x, &Descriptor::new(), None).unwrap();
        assert_eq!(out.get(0), 210.0);
        assert_eq!(out.get(1), 300.0);
    }

    #[test]
    fn early_exit_does_not_change_results() {
        let g = fig3_graph();
        let mut f = frontier_bcd();
        f.make_dense();
        let visited = visited_abcd();
        let mask = Mask::complement(&visited);
        let with: Vector<bool> = mxv(
            Some(&mask),
            BoolOrAnd,
            &g,
            &f,
            &desc_bfs().force(Direction::Pull).early_exit(true),
            None,
        )
        .unwrap();
        let without: Vector<bool> = mxv(
            Some(&mask),
            BoolOrAnd,
            &g,
            &f,
            &desc_bfs().force(Direction::Pull).early_exit(false),
            None,
        )
        .unwrap();
        let a: Vec<_> = with.iter_explicit().collect();
        let b: Vec<_> = without.iter_explicit().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn early_exit_reduces_matrix_accesses() {
        // Row with many parents, all in the frontier: early exit stops at 1.
        let n = 100;
        let mut coo = Coo::new(n, n);
        for p in 0..n - 1 {
            coo.push(p as u32, (n - 1) as u32, true); // everyone -> last
        }
        let g = Graph::from_coo(&coo);
        let mut f = Vector::from_sparse(n, false, (0..(n - 1) as u32).collect(), vec![true; n - 1]);
        f.make_dense();
        let visited = {
            let mut b = BitVec::new(n);
            for i in 0..n - 1 {
                b.set(i);
            }
            b
        };
        let mask = Mask::complement(&visited);
        let count = |ee: bool| {
            let c = AccessCounters::new();
            let _: Vector<bool> = mxv(
                Some(&mask),
                BoolOrAnd,
                &g,
                &f,
                &desc_bfs().force(Direction::Pull).early_exit(ee),
                Some(&c),
            )
            .unwrap();
            c.snapshot().matrix
        };
        let with = count(true);
        let without = count(false);
        assert_eq!(with, 1, "first parent found immediately");
        assert_eq!(without, (n - 1) as u64, "no early exit scans all parents");
    }

    #[test]
    fn mask_active_list_reduces_mask_accesses() {
        let g = fig3_graph();
        let mut f = frontier_bcd();
        f.make_dense();
        let visited = visited_abcd();
        let unvisited: Vec<u32> = vec![4, 5, 6, 7];
        let with_list = {
            let c = AccessCounters::new();
            let mask = Mask::complement(&visited).with_active_list(&unvisited);
            let _: Vector<bool> = mxv(
                Some(&mask),
                BoolOrAnd,
                &g,
                &f,
                &desc_bfs().force(Direction::Pull),
                Some(&c),
            )
            .unwrap();
            c.snapshot().mask
        };
        let without_list = {
            let c = AccessCounters::new();
            let mask = Mask::complement(&visited);
            let _: Vector<bool> = mxv(
                Some(&mask),
                BoolOrAnd,
                &g,
                &f,
                &desc_bfs().force(Direction::Pull),
                Some(&c),
            )
            .unwrap();
            c.snapshot().mask
        };
        assert_eq!(with_list, 4);
        assert_eq!(without_list, 8);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let g = fig3_graph();
        let short = Vector::new_sparse(5, false);
        let r: GrbResult<Vector<bool>> = mxv(None, BoolOrAnd, &g, &short, &Descriptor::new(), None);
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));
        let bad_bits = BitVec::new(3);
        let bad_mask = Mask::new(&bad_bits);
        let f = frontier_bcd();
        let r: GrbResult<Vector<bool>> =
            mxv(Some(&bad_mask), BoolOrAnd, &g, &f, &Descriptor::new(), None);
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));
    }

    #[test]
    fn vxm_equals_mxv_on_transpose() {
        let g = fig3_graph();
        let f = frontier_bcd();
        // vxm(f, A) = mxv(Aᵀ, f).
        let a: Vector<bool> = vxm(None, BoolOrAnd, &f, &g, &Descriptor::new(), None).unwrap();
        let b: Vector<bool> = mxv(
            None,
            BoolOrAnd,
            &g,
            &f,
            &Descriptor::new().transpose(true),
            None,
        )
        .unwrap();
        let ea: Vec<_> = a.iter_explicit().collect();
        let eb: Vec<_> = b.iter_explicit().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn empty_frontier_yields_empty_output() {
        let g = fig3_graph();
        let f = Vector::new_sparse(8, false);
        let out: Vector<bool> = mxv(
            None,
            BoolOrAnd,
            &g,
            &f,
            &desc_bfs().force(Direction::Push),
            None,
        )
        .unwrap();
        assert_eq!(out.nnz(), 0);
    }

    #[test]
    fn accum_merges_instead_of_replacing() {
        // Weighted counts: accumulate in-neighbor contributions into an
        // existing tally (min-plus style on plus-times data).
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0f64);
        coo.push(0, 2, 1.0);
        let g = Graph::from_coo(&coo);
        // Existing state: w = [10, 20, 0-as-fill].
        let mut w = Vector::from_sparse(3, 0.0f64, vec![0, 1], vec![10.0, 20.0]);
        let x = Vector::singleton(3, 0.0f64, 0, 5.0);
        // Aᵀx over plus-times: t(1) = 5, t(2) = 5.
        mxv_accum(
            &mut w,
            None,
            |a, b| a + b,
            PlusTimes,
            &g,
            &x,
            &Descriptor::new().transpose(true),
            None,
        )
        .unwrap();
        assert_eq!(w.get(0), 10.0, "untouched entries keep state");
        assert_eq!(w.get(1), 25.0, "accumulated");
        assert_eq!(w.get(2), 5.0, "fill slots adopt the product");
    }

    #[test]
    fn accum_dimension_mismatch_reported() {
        let g = fig3_graph();
        let mut w: Vector<bool> = Vector::new_sparse(5, false);
        let f = frontier_bcd();
        let r = mxv_accum(
            &mut w,
            None,
            |a, b| a || b,
            BoolOrAnd,
            &g,
            &f,
            &desc_bfs(),
            None,
        );
        assert!(matches!(r, Err(GrbError::DimensionMismatch { .. })));
    }

    #[test]
    fn hysteresis_policy_switches_both_ways() {
        let mut p = DirectionPolicy::hysteresis(0.01);
        // Small rising frontier below threshold: stay push.
        assert_eq!(p.update(1, 1000), Direction::Push);
        assert_eq!(p.update(5, 1000), Direction::Push);
        // Rising above threshold: switch to pull.
        assert_eq!(p.update(100, 1000), Direction::Pull);
        // Still large: stay pull even while falling.
        assert_eq!(p.update(90, 1000), Direction::Pull);
        // Falling below threshold: back to push.
        assert_eq!(p.update(5, 1000), Direction::Push);
        // Small but *rising* below threshold: hysteresis keeps push.
        assert_eq!(p.update(8, 1000), Direction::Push);
        assert_eq!(p.current(), Direction::Push);
    }

    #[test]
    fn two_phase_policy_never_returns() {
        let mut p = DirectionPolicy::two_phase(0.01);
        assert_eq!(p.update(1, 1000), Direction::Push);
        assert_eq!(p.update(100, 1000), Direction::Pull);
        // Tiny delta set again — two-phase stays pull (§5.6).
        assert_eq!(p.update(1, 1000), Direction::Pull);
    }

    #[test]
    fn memoryless_policy_follows_ratio_exactly() {
        let mut p = DirectionPolicy::memoryless(1.0 / 20.0);
        assert_eq!(p.update(1, 1000), Direction::Push);
        assert_eq!(p.update(51, 1000), Direction::Pull);
        assert_eq!(p.update(50, 1000), Direction::Push, "boundary is strict >");
    }

    #[test]
    fn fixed_policy_ignores_activity() {
        let mut p = DirectionPolicy::fixed(Direction::Pull);
        assert_eq!(p.update(0, 10), Direction::Pull);
        assert_eq!(p.update(10, 10), Direction::Pull);
    }

    #[test]
    fn hysteresis_from_pull_handles_dense_start() {
        // CC starts with a dense (all-active) delta: first update must not
        // bounce to push even though the ratio is high.
        let mut p = DirectionPolicy::hysteresis_from(Direction::Pull, 0.01);
        assert_eq!(p.update(1000, 1000), Direction::Pull);
        // Delta collapses: falling below threshold switches to push.
        assert_eq!(p.update(3, 1000), Direction::Push);
    }

    /// Seeded LCG graph on `n` vertices, ~`deg` out-edges each, f64
    /// weights — irregular enough that stripe boundaries cut through rows.
    fn lcg_graph(n: u32, deg: u32, seed: u64) -> Graph<f64> {
        let mut state = seed | 1;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut coo = Coo::new(n as usize, n as usize);
        for u in 0..n {
            for _ in 0..deg {
                let v = (step() % u64::from(n)) as u32;
                let w = (step() % 7) as f64 + 0.5;
                coo.push(u, v, w);
            }
        }
        coo.dedup(|a, b| a + b);
        Graph::from_coo(&coo)
    }

    fn lcg_frontier(n: u32, nnz: usize, seed: u64) -> Vector<f64> {
        let mut state = seed | 1;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut ids: Vec<u32> = (0..n).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, (step() % (i as u64 + 1)) as usize);
        }
        ids.truncate(nnz);
        ids.sort_unstable();
        let vals = ids.iter().map(|_| (step() % 5) as f64 + 1.0).collect();
        Vector::from_sparse(n as usize, 0.0, ids, vals)
    }

    /// The scrub for counter-identity assertions: shard telemetry describes
    /// the merge topology (which sharding deliberately changes), everything
    /// else — accesses, steps, sort, alloc — must match bit for bit.
    fn scrub_telemetry(
        s: graphblas_primitives::counters::CounterSnapshot,
    ) -> graphblas_primitives::counters::CounterSnapshot {
        let mut s = s;
        s.shard_merges = 0;
        s.cross_shard_writes = 0;
        s
    }

    #[test]
    fn sharded_push_matches_unsharded_oracle() {
        // f64 ⊕ is order-sensitive: bit-identical sums prove the stripe
        // decomposition preserves the oracle's per-destination ⊕ order,
        // not merely the set of outputs. n = 65 keeps stripe widths
        // non-divisible; the 1×1 grid exercises the degenerate stripe.
        let g = lcg_graph(65, 6, 0xC0FFEE);
        let f = lcg_frontier(65, 17, 42);
        let base = Descriptor::new()
            .force(Direction::Push)
            .merge_strategy(MergeStrategy::SpaMerge);
        let oracle_c = AccessCounters::new();
        let oracle: Vector<f64> = mxv(None, PlusTimes, &g, &f, &base, Some(&oracle_c)).unwrap();
        for (rs, cs) in [(1u32, 1u32), (2, 4), (4, 4), (1, 16)] {
            let c = AccessCounters::new();
            let desc = base.shard_grid(ShardGrid::new(rs, cs));
            let out: Vector<f64> = mxv(None, PlusTimes, &g, &f, &desc, Some(&c)).unwrap();
            assert_eq!(
                out.iter_explicit().collect::<Vec<_>>(),
                oracle.iter_explicit().collect::<Vec<_>>(),
                "values must be bit-identical at grid {rs}x{cs}"
            );
            assert_eq!(
                scrub_telemetry(c.snapshot()),
                scrub_telemetry(oracle_c.snapshot()),
                "counters must be bit-identical at grid {rs}x{cs}"
            );
        }
    }

    #[test]
    fn sharded_push_populates_telemetry_outside_total() {
        let g = lcg_graph(64, 5, 7);
        let f = lcg_frontier(64, 20, 9);
        let c = AccessCounters::new();
        let desc = Descriptor::new()
            .force(Direction::Push)
            .merge_strategy(MergeStrategy::SpaMerge)
            .shard_grid(ShardGrid::new(1, 4));
        let _: Vector<f64> = mxv(None, PlusTimes, &g, &f, &desc, Some(&c)).unwrap();
        let s = c.snapshot();
        assert!(s.shard_merges > 0, "stripe merges must be recorded");
        assert!(
            s.cross_shard_writes > 0,
            "an LCG frontier writes outside its own stripe"
        );
        assert_eq!(
            s.total(),
            s.accesses_only().total(),
            "telemetry never counts as an access"
        );
        // The unsharded oracle records no shard telemetry at all.
        let c0 = AccessCounters::new();
        let desc0 = Descriptor::new()
            .force(Direction::Push)
            .merge_strategy(MergeStrategy::SpaMerge);
        let _: Vector<f64> = mxv(None, PlusTimes, &g, &f, &desc0, Some(&c0)).unwrap();
        assert_eq!(c0.snapshot().shard_merges, 0);
        assert_eq!(c0.snapshot().cross_shard_writes, 0);
    }

    #[test]
    fn sharded_push_handles_empty_stripes() {
        // Every push destination (the A-row of each edge) lands below 16 in
        // a 64-wide output: with a 1×4 grid, stripes 1..4 harvest nothing
        // and must contribute nothing.
        let mut coo = Coo::new(64, 64);
        let mut state = 0xBADCAB1Eu64;
        for u in 0..64u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            coo.push((state >> 33) as u32 % 16, u, 1.0f64);
        }
        let g = Graph::from_coo(&coo);
        let f = lcg_frontier(64, 13, 3);
        let base = Descriptor::new()
            .force(Direction::Push)
            .merge_strategy(MergeStrategy::SpaMerge);
        let oracle: Vector<f64> = mxv(None, PlusTimes, &g, &f, &base, None).unwrap();
        let c = AccessCounters::new();
        let out: Vector<f64> = mxv(
            None,
            PlusTimes,
            &g,
            &f,
            &base.shard_grid(ShardGrid::new(1, 4)),
            Some(&c),
        )
        .unwrap();
        assert_eq!(
            out.iter_explicit().collect::<Vec<_>>(),
            oracle.iter_explicit().collect::<Vec<_>>()
        );
        assert_eq!(
            c.snapshot().shard_merges,
            1,
            "only the populated stripe merges"
        );
    }

    #[test]
    fn tiled_pull_matches_untiled_oracle() {
        // f64 semiring keeps the bit arm out of the way, so the shard plan
        // selects the tile-streaming row kernel. Masked (no active list)
        // and unmasked, values and counters must match the untiled run.
        let g = lcg_graph(65, 6, 0xFEED);
        let mut f = lcg_frontier(65, 40, 11);
        f.make_dense();
        let visited = {
            let mut b = BitVec::new(65);
            for i in (0..65).step_by(3) {
                b.set(i);
            }
            b
        };
        let mask = Mask::complement(&visited);
        let base = Descriptor::new().force(Direction::Pull);
        for masked in [false, true] {
            let m = masked.then_some(&mask);
            let oracle_c = AccessCounters::new();
            let oracle: Vector<f64> = mxv(m, PlusTimes, &g, &f, &base, Some(&oracle_c)).unwrap();
            for (rs, cs) in [(1u32, 1u32), (2, 4), (4, 4)] {
                let c = AccessCounters::new();
                let desc = base.shard_grid(ShardGrid::new(rs, cs));
                let out: Vector<f64> = mxv(m, PlusTimes, &g, &f, &desc, Some(&c)).unwrap();
                assert_eq!(
                    out.iter_explicit().collect::<Vec<_>>(),
                    oracle.iter_explicit().collect::<Vec<_>>(),
                    "tiled pull values (masked={masked}, grid {rs}x{cs})"
                );
                assert_eq!(
                    scrub_telemetry(c.snapshot()),
                    scrub_telemetry(oracle_c.snapshot()),
                    "tiled pull counters (masked={masked}, grid {rs}x{cs})"
                );
            }
        }
    }
}
