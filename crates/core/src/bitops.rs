//! Bit-parallel boolean-semiring kernels: `u64` words end to end.
//!
//! The scalar row kernel examines one stored edge per loop iteration. For
//! BFS-style *any/pair* semirings (structure-only products, an idempotent
//! ⊕ that saturates at its annihilator) the per-edge work is pure set
//! algebra, so when the planned operand store is a
//! [`BitmapStore`](graphblas_matrix::BitmapStore) the same reduction can
//! run 64 edges at a time: AND a row's bitmap words against the packed
//! input words, `count_ones` for the Table 1 bookkeeping, and stop at the
//! first set word for the early-exit semirings. This module holds the
//! pieces the kernel faces dispatch to:
//!
//! * [`BitFrontier`] — a dense bitmap frontier with a popcount-backed nnz,
//!   convertible to/from [`Vector<bool>`] under the same §6.3
//!   [`ConvertState`] debounce the scalar frontier uses;
//! * `BitPull` / `bit_pull_ctx` — the per-call context of the bit pull
//!   path: the input vector packed into words plus the semiring facts
//!   (constant product hint, break-on-hit) the word loop relies on;
//! * `bit_reduce_row` / `bit_reduce_row_first_hit` — the word-wise row
//!   reductions, value- and counter-equivalent to the scalar `reduce_row`
//!   twins by construction (popcount rank recovers exactly the scalar
//!   `examined` count);
//! * `UnvisitedIndex` — one level of summary words over the
//!   (complement-adjusted) mask words, so late-level pull scans skip
//!   64-row regions that are already fully visited;
//! * `bit_push_parts` — the push-face arm: OR each source row's word
//!   span into per-chunk bitmaps (the SpaMerge chunk machinery) and merge
//!   word-wise, replacing the expand/sort/dedup of the structure-only
//!   column kernel.
//!
//! **The load-bearing invariant**: every function here charges the same
//! `matrix`/`vector`/`mask`/`sort` access amounts the scalar kernel
//! charges for the same call — the 64× win is *visible only* through the
//! separate `bit_word_ops` telemetry counter (zeroed by both counter
//! projections), because the equivalence tests compare bitmap-format runs
//! against the `Fixed(Csr)` scalar oracle snapshot-for-snapshot.
//! `Descriptor::bit_kernels(false)` switches all of this off and is the
//! oracle arm of `tests/prop_core.rs`.

use crate::descriptor::Descriptor;
use crate::mask::Mask;
use crate::ops::{Monoid, Scalar, Semiring};
use crate::vector::{ConvertState, DenseVector, SparseVector, Vector};
use graphblas_matrix::RowAccess;
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::{sort, BitVec};
use rayon::prelude::*;

/// A frontier held as a dense bitmap with a cached popcount `nnz` — the
/// boolean-semiring analogue of the sparse/dense [`Vector`] pair, sized
/// `dim/64` words regardless of occupancy.
///
/// The bit kernels themselves consume packed words directly (see
/// `bit_pull_ctx`); `BitFrontier` is the *algorithm-facing* frontier
/// object: BFS bookkeeping, tests, and the bench studies move between it
/// and [`Vector<bool>`] with [`BitFrontier::from_vector`] /
/// [`BitFrontier::into_vector`], the latter applying the same §6.3
/// [`ConvertState`] hysteresis the scalar frontier uses so the storage
/// (and hence direction) signal is unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitFrontier {
    bits: BitVec,
    nnz: usize,
}

impl BitFrontier {
    /// An empty frontier over `dim` vertices.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            bits: BitVec::new(dim),
            nnz: 0,
        }
    }

    /// Pack a boolean vector's explicit entries into a bitmap.
    #[must_use]
    pub fn from_vector(v: &Vector<bool>) -> Self {
        let mut bits = BitVec::new(v.dim());
        let mut nnz = 0usize;
        for (i, _) in v.iter_explicit() {
            if bits.set(i as usize) {
                nnz += 1;
            }
        }
        Self { bits, nnz }
    }

    /// Unpack into a [`Vector<bool>`] (fill `false`), then apply the §6.3
    /// storage hysteresis via the caller's [`ConvertState`] — exactly the
    /// debounce a scalar frontier would see, so push/pull dispatch on the
    /// result is unchanged.
    #[must_use]
    pub fn into_vector(self, state: &mut ConvertState, threshold: f64) -> Vector<bool> {
        let ids: Vec<u32> = self.bits.iter_ones().map(|i| i as u32).collect();
        let vals = vec![true; ids.len()];
        let mut v = Vector::from_sparse(self.bits.len(), false, ids, vals);
        v.convert(state, threshold);
        v
    }

    /// Number of vertices covered.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.bits.len()
    }

    /// Number of set bits (cached; no scan).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Whether vertex `i` is in the frontier.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Insert vertex `i`; returns `true` when newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let fresh = self.bits.set(i);
        if fresh {
            self.nnz += 1;
        }
        fresh
    }

    /// The backing bitmap.
    #[must_use]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// The backing `u64` words (tail bits beyond `dim` are zero).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        self.bits.words()
    }
}

/// Per-call context of the bit pull path: the dense input packed into
/// words, plus the two semiring facts the word loop exploits.
pub(crate) struct BitPull<Y> {
    /// `is_explicit` of the input vector, one bit per column.
    pub(crate) words: Vec<u64>,
    /// The constant every (stored entry ⊗ explicit input) product equals.
    pub(crate) hint: Y,
    /// Whether ⊕ saturates at `hint` (annihilator), i.e. the scalar loop
    /// would break on the first explicit hit under `early_exit`.
    pub(crate) break_on_hit: bool,
}

/// Build the bit pull context when the call qualifies, else `None` (the
/// caller falls back to the scalar kernel).
///
/// Qualifying means: the descriptor opts in (`bit_kernels` *and*
/// `structure_only`), the served store exposes a word surface
/// (`RowAccess::has_row_words` — only the bitmap store does), the
/// semiring declares a constant product hint `h`, and the ⊕ monoid
/// satisfies `identity ⊕ h = h` and `h ⊕ h = h` — exactly what makes "any
/// explicit hit ⇒ row reduces to `h`, no hit ⇒ identity" the full
/// reduction. Packing the operand charges one `bit_word_ops` per word.
pub(crate) fn bit_pull_ctx<A, X, Y, S, M>(
    s: S,
    op: &M,
    v: &DenseVector<X>,
    desc: &Descriptor,
    counters: Option<&AccessCounters>,
) -> Option<BitPull<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    if !desc.bit_kernels || !desc.structure_only || !op.has_row_words() {
        return None;
    }
    let hint = s.product_hint()?;
    let add = s.add_monoid();
    let identity = add.identity();
    if add.op(identity, hint) != hint || add.op(hint, hint) != hint {
        return None;
    }
    let break_on_hit = add.annihilator() == Some(hint);
    let words = pack_explicit_words(v, counters);
    Some(BitPull {
        words,
        hint,
        break_on_hit,
    })
}

/// Pack `is_explicit` of a dense vector into `u64` words (bit `j` set iff
/// slot `j` is explicit). Charges one `bit_word_ops` per output word.
pub(crate) fn pack_explicit_words<X: Scalar>(
    v: &DenseVector<X>,
    counters: Option<&AccessCounters>,
) -> Vec<u64> {
    let n = v.dim();
    let mut words = vec![0u64; n.div_ceil(64)];
    for (g, w) in words.iter_mut().enumerate() {
        let start = g * 64;
        let end = (start + 64).min(n);
        let mut bits = 0u64;
        for j in start..end {
            if v.is_explicit(j) {
                bits |= 1u64 << (j - start);
            }
        }
        *w = bits;
    }
    if let Some(c) = counters {
        c.add_bit_word_ops(words.len() as u64);
    }
    words
}

/// Word-wise reduction of one operand row — the bit twin of the scalar
/// `reduce_row` under a `BitPull` context.
///
/// Scans row words ANDed against the packed input; any nonzero AND means
/// the row reduces to the hint (the context's monoid laws), so the word
/// scan always stops at the first hit. The *charged* `examined` count
/// replays the scalar loop exactly:
///
/// * early-exit break (context says ⊕ saturates at the hint, caller says
///   `early_exit`): the scalar loop stops at the first explicit hit, whose
///   1-based position among the row's stored entries is recovered by
///   popcount — entries in fully scanned words plus entries of the hit
///   word up to and including the hit bit;
/// * otherwise (or no hit): the scalar loop walks the whole row, so the
///   full `degree(i)` is charged even though the value needed one word.
#[inline]
pub(crate) fn bit_reduce_row<A, Y, M>(
    op: &M,
    ctx: &BitPull<Y>,
    i: usize,
    identity: Y,
    early_exit: bool,
    counters: Option<&AccessCounters>,
) -> Y
where
    A: Scalar,
    Y: Scalar,
    M: RowAccess<A>,
{
    // Per-row checkpoint, mirroring the scalar `reduce_row`.
    if !crate::exec::live(counters) {
        return identity;
    }
    let row = op.row_words(i).expect("bit kernel requires a word surface");
    let mut scanned = 0u64;
    let mut seen = 0u64; // stored entries in fully scanned words
    let mut hit_rank = None;
    for (&rw, &vw) in row.iter().zip(ctx.words.iter()) {
        scanned += 1;
        let and = rw & vw;
        if and != 0 {
            let b = and.trailing_zeros();
            // Stored entries at columns <= the hit column: the scalar
            // loop's examined count when it breaks on this hit.
            let upto = rw & (u64::MAX >> (63 - b));
            hit_rank = Some(seen + u64::from(upto.count_ones()));
            break;
        }
        seen += u64::from(rw.count_ones());
    }
    let examined = match hit_rank {
        Some(rank) if early_exit && ctx.break_on_hit => rank,
        _ => op.degree(i) as u64,
    };
    if let Some(c) = counters {
        c.add_matrix(examined);
        c.add_vector(examined + 1);
        c.add_bit_word_ops(scanned);
    }
    if hit_rank.is_some() {
        ctx.hint
    } else {
        identity
    }
}

/// Word-wise first-hit reduction — the bit twin of the fused pipeline's
/// `reduce_row_first_hit`, and fully generic over the semiring (no hint
/// needed): the popcount rank of the first AND hit indexes straight into
/// the row's CSR value slice, so the single product `a ⊗ v(j)` is computed
/// exactly as the scalar loop would. `words` is the packed input from
/// `pack_explicit_words`. Charges `examined = rank` (the scalar loop
/// breaks unconditionally on the first explicit hit) or `degree(i)` when
/// the row has none.
#[inline]
pub(crate) fn bit_reduce_row_first_hit<A, X, Y, S, M>(
    s: S,
    op: &M,
    words: &[u64],
    v: &DenseVector<X>,
    i: usize,
    identity: Y,
    counters: Option<&AccessCounters>,
) -> Y
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    let add = s.add_monoid();
    let row = op.row_words(i).expect("bit kernel requires a word surface");
    let mut scanned = 0u64;
    let mut seen = 0u64;
    let mut acc = identity;
    let mut examined = None;
    for (t, (&rw, &vw)) in row.iter().zip(words.iter()).enumerate() {
        scanned += 1;
        let and = rw & vw;
        if and != 0 {
            let b = and.trailing_zeros();
            let j = t * 64 + b as usize;
            let upto = rw & (u64::MAX >> (63 - b));
            let rank = seen + u64::from(upto.count_ones());
            // rank is 1-based among the row's stored entries, ascending by
            // column — identical to the CSR order, so rank-1 indexes the
            // stored value of the hit entry.
            let a = op.row_values(i)[(rank - 1) as usize];
            acc = add.op(acc, s.mult(a, v.get(j)));
            examined = Some(rank);
            break;
        }
        seen += u64::from(rw.count_ones());
    }
    let examined = examined.unwrap_or(op.degree(i) as u64);
    if let Some(c) = counters {
        c.add_matrix(examined);
        c.add_vector(examined + 1);
        c.add_bit_word_ops(scanned);
    }
    acc
}

/// One level of summary words over a mask's (complement-adjusted) words:
/// bit `j` of `summary[q]` is set iff allowed-word `q*64 + j` has any
/// allowed row. The masked bit pull iterates only the live 64-row groups,
/// so a level-k BFS scan skips regions whose rows are all visited — the
/// *unvisited index* of the bit pull path.
///
/// Counter-neutral by construction: the scalar kernel charges `mask(M)` in
/// bulk for the same information and does no per-row work on disallowed
/// rows, so skipping them wholesale changes `bit_word_ops` telemetry only
/// (one per mask word + one per summary word, charged at build).
pub(crate) struct UnvisitedIndex<'a> {
    words: &'a [u64],
    complement: bool,
    tail_mask: u64,
    summary: Vec<u64>,
}

impl<'a> UnvisitedIndex<'a> {
    /// Build the summary from a mask's word surface.
    pub(crate) fn build(mask: &Mask<'a>, counters: Option<&AccessCounters>) -> Self {
        let (words, complement) = mask.word_view();
        let dim = mask.dim();
        let tail_mask = if dim.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (dim % 64)) - 1
        };
        let mut summary = vec![0u64; words.len().div_ceil(64)];
        for g in 0..words.len() {
            if allowed_word(words, complement, tail_mask, g) != 0 {
                summary[g / 64] |= 1u64 << (g % 64);
            }
        }
        if let Some(c) = counters {
            c.add_bit_word_ops((words.len() + summary.len()) as u64);
        }
        Self {
            words,
            complement,
            tail_mask,
            summary,
        }
    }

    /// The allowed-row word for 64-row group `g` (complement applied,
    /// tail-masked to the mask's dimension).
    pub(crate) fn allowed_word(&self, g: usize) -> u64 {
        allowed_word(self.words, self.complement, self.tail_mask, g)
    }

    /// Indices of groups with at least one allowed row, ascending.
    pub(crate) fn live_groups(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (q, &sw) in self.summary.iter().enumerate() {
            let mut bits = sw;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push(q * 64 + j);
            }
        }
        out
    }
}

fn allowed_word(words: &[u64], complement: bool, tail_mask: u64, g: usize) -> u64 {
    let w = words[g];
    if complement {
        let inv = !w;
        if g + 1 == words.len() {
            inv & tail_mask
        } else {
            inv
        }
    } else {
        // Plain mask words keep their tail zero by the BitVec invariant.
        w
    }
}

/// The push-face bit arm: when the structure-only sort-based column kernel
/// runs over a word-surfaced store, the expand → radix-sort → dedup chain
/// is equivalent to OR-ing each source row's word span into an output
/// bitmap and reading off the set bits. Returns the pre-filter `(ids,
/// vals)` parts (the caller applies the usual mask/identity filter), or
/// `None` when the call doesn't qualify.
///
/// Parallelism reuses the SpaMerge chunk machinery: the frontier is cut
/// into expansion-balanced chunks (`spa_chunk_ranges`, boundaries derived
/// from sizes only), each chunk ORs into a private word buffer, and the
/// buffers fold word-wise in chunk order — bit-identical at any lane
/// count because OR is commutative and the fold order is fixed.
///
/// Charges replicate the scalar structure-only sort path exactly: one
/// `matrix` access per expanded edge and the same radix `sort` traffic
/// (the work the bit path *actually* skips shows up as the gap between
/// those charges and `bit_word_ops`).
pub(crate) fn bit_push_parts<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    desc: &Descriptor,
    counters: Option<&AccessCounters>,
) -> Option<(Vec<u32>, Vec<Y>)>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A> + Sync,
{
    if !desc.bit_kernels || !desc.structure_only || !op_t.has_row_words() {
        return None;
    }
    let hint = s.product_hint()?;
    let (offsets, total) = crate::ops_mxv::expansion_offsets(op_t, v);
    if let Some(c) = counters {
        // Same bulk charges as expand_keys_only + the key-only radix sort.
        c.add_matrix(total as u64);
        c.add_sort(total as u64 * sort::passes_for(op_t.n_rows().max(1) as u32 - 1) as u64);
    }
    let wpr = op_t.n_cols().div_ceil(64);
    let ids_ref = v.ids();
    let chunks: Vec<Vec<u64>> = crate::ops_mxv::spa_chunk_ranges(&offsets, total)
        .into_par_iter()
        .map(|(s0, s1)| {
            let mut buf = vec![0u64; wpr];
            // Per-chunk checkpoint: bail with an empty word image.
            if !crate::exec::live(counters) {
                return buf;
            }
            let mut word_ops = 0u64;
            for &id in &ids_ref[s0..s1] {
                let src = id as usize;
                let cols = op_t.row(src);
                if cols.is_empty() {
                    continue;
                }
                let rw = op_t.row_words(src).expect("gated on has_row_words");
                let w0 = cols[0] as usize / 64;
                let w1 = cols[cols.len() - 1] as usize / 64;
                for (t, slot) in buf.iter_mut().enumerate().take(w1 + 1).skip(w0) {
                    *slot |= rw[t];
                }
                word_ops += (w1 - w0 + 1) as u64;
            }
            if let Some(c) = counters {
                c.add_bit_word_ops(word_ops);
            }
            buf
        })
        .collect();
    let mut union = vec![0u64; wpr];
    for part in &chunks {
        for (u, &p) in union.iter_mut().zip(part.iter()) {
            *u |= p;
        }
    }
    if let Some(c) = counters {
        // Word-wise chunk fold plus the output-extraction scan.
        c.add_bit_word_ops((chunks.len() as u64 + 1) * wpr as u64);
    }
    let mut ids = Vec::new();
    for (g, &w) in union.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            ids.push((g * 64 + b) as u32);
        }
    }
    let vals = vec![hint; ids.len()];
    Some((ids, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::BoolStructure;
    use graphblas_matrix::{BitmapStore, Coo, Csr};
    use std::sync::Arc;

    fn bitmap_3x70() -> BitmapStore<bool> {
        let mut coo = Coo::new(3, 70);
        for &(i, j) in &[(0u32, 0u32), (0, 63), (0, 64), (1, 69), (2, 1)] {
            coo.push(i, j, true);
        }
        let csr = Arc::new(Csr::from_coo(&coo));
        BitmapStore::try_from_shared(csr).expect("3x70 fits")
    }

    #[test]
    fn bitfrontier_roundtrips_through_vector() {
        let v = Vector::from_sparse(130, false, vec![0, 63, 64, 129], vec![true; 4]);
        let bf = BitFrontier::from_vector(&v);
        assert_eq!((bf.dim(), bf.nnz()), (130, 4));
        assert!(bf.contains(63) && bf.contains(129) && !bf.contains(1));
        let mut state = ConvertState::new();
        // 4/130 = 3% > 1% and rising from no history: densifies, same as a
        // scalar frontier under the same ConvertState.
        let back = bf.into_vector(&mut state, 0.01);
        assert!(!back.is_sparse(), "debounce densified the 3% frontier");
        let ids: Vec<u32> = back.iter_explicit().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 63, 64, 129]);
    }

    #[test]
    fn bitfrontier_insert_tracks_nnz() {
        let mut bf = BitFrontier::new(70);
        assert!(bf.insert(69));
        assert!(!bf.insert(69), "duplicate insert is a no-op");
        assert_eq!(bf.nnz(), 1);
        assert_eq!(bf.words().len(), 2);
    }

    #[test]
    fn packed_words_match_is_explicit() {
        let mut d = DenseVector::new(70, false);
        d.set(0, true);
        d.set(63, true);
        d.set(64, true);
        let c = AccessCounters::new();
        let words = pack_explicit_words(&d, Some(&c));
        assert_eq!(words, vec![(1u64 << 63) | 1, 1]);
        assert_eq!(c.snapshot().bit_word_ops, 2, "one charge per word");
    }

    #[test]
    fn bit_reduce_row_matches_scalar_examined_counts() {
        // Row 0 of the 3x70 store has entries at columns {0, 63, 64}.
        let store = bitmap_3x70();
        let mut d = DenseVector::new(70, false);
        d.set(64, true); // only the third stored entry is explicit
        let ctx = bit_pull_ctx(
            BoolStructure,
            &store,
            &d,
            &Descriptor::new().structure_only(true),
            None,
        )
        .expect("BoolStructure on a bitmap qualifies");
        assert!(ctx.break_on_hit, "OR saturates at true");

        // Early exit: scalar examines entries 1 (col 0), 2 (col 63),
        // 3 (col 64, hit) => examined = 3.
        let c = AccessCounters::new();
        let y = bit_reduce_row(&store, &ctx, 0, false, true, Some(&c));
        assert!(y);
        let s = c.snapshot();
        assert_eq!(s.matrix, 3, "popcount rank = scalar examined");
        assert_eq!(s.vector, 4);
        assert_eq!(s.bit_word_ops, 2, "hit found in the second word");

        // No early exit: the scalar loop walks the full degree.
        let c = AccessCounters::new();
        let y = bit_reduce_row(&store, &ctx, 0, false, false, Some(&c));
        assert!(y);
        assert_eq!(c.snapshot().matrix, 3, "degree(0) = 3");

        // Row with no explicit neighbor reduces to identity, full degree.
        let c = AccessCounters::new();
        let y = bit_reduce_row(&store, &ctx, 2, false, true, Some(&c));
        assert!(!y);
        assert_eq!(c.snapshot().matrix, 1, "degree(2) = 1");
    }

    #[test]
    fn bit_first_hit_recovers_csr_value_by_rank() {
        // Weighted 1x70 row: values 10, 20, 30 at columns 0, 63, 64.
        let mut coo = Coo::new(1, 70);
        coo.push(0, 0, 10i64);
        coo.push(0, 63, 20);
        coo.push(0, 64, 30);
        let store = BitmapStore::try_from_shared(Arc::new(Csr::from_coo(&coo))).unwrap();
        let mut d = DenseVector::new(70, 0i64);
        d.set(63, 7); // first explicit neighbor is the rank-2 entry
        let words = pack_explicit_words(&d, None);
        let c = AccessCounters::new();
        // PlusSecond: product = input value (7); first hit only.
        let y = bit_reduce_row_first_hit(
            crate::ops::PlusSecond,
            &store,
            &words,
            &d,
            0,
            0i64,
            Some(&c),
        );
        assert_eq!(y, 7, "product of the first explicit hit");
        assert_eq!(c.snapshot().matrix, 2, "rank of the hit entry");
    }

    #[test]
    fn unvisited_index_tracks_complement_and_tail() {
        // 70-bit mask, complemented: visited = {0..=63, 69} so the allowed
        // rows are 64..=68 — group 0 is dead, group 1 live.
        let mut visited = BitVec::new(70);
        for i in 0..64 {
            visited.set(i);
        }
        visited.set(69);
        let m = Mask::complement(&visited);
        let c = AccessCounters::new();
        let idx = UnvisitedIndex::build(&m, Some(&c));
        assert_eq!(idx.live_groups(), vec![1]);
        assert_eq!(idx.allowed_word(0), 0);
        assert_eq!(idx.allowed_word(1), 0b01_1111, "bits 64..=68, tail masked");
        assert_eq!(c.snapshot().bit_word_ops, 3, "2 mask words + 1 summary");

        // Plain (non-complement) masks pass their words through.
        let mut few = BitVec::new(70);
        few.set(65);
        let m2 = Mask::new(&few);
        let idx2 = UnvisitedIndex::build(&m2, None);
        assert_eq!(idx2.live_groups(), vec![1]);
        assert_eq!(idx2.allowed_word(1), 2);
    }

    #[test]
    fn bit_push_union_matches_scalar_expand_sort_dedup() {
        let store = bitmap_3x70();
        // Frontier {0, 2}: neighbors {0, 63, 64} ∪ {1} = {0, 1, 63, 64}.
        let v = SparseVector::from_sorted(vec![0, 2], vec![true, true]);
        let c = AccessCounters::new();
        let desc = Descriptor::new();
        let (ids, vals): (Vec<u32>, Vec<bool>) =
            bit_push_parts(BoolStructure, &store, &v, &desc, Some(&c)).expect("qualifies");
        assert_eq!(ids, vec![0, 1, 63, 64]);
        assert!(vals.iter().all(|&b| b));
        let s = c.snapshot();
        assert_eq!(s.matrix, 4, "one charge per expanded edge");
        assert!(s.sort > 0, "scalar-equivalent sort traffic charged");
        assert!(s.bit_word_ops > 0);

        // Without the descriptor opt-in the arm declines.
        let off = Descriptor::new().bit_kernels(false);
        assert!(
            bit_push_parts::<_, _, bool, _, _>(BoolStructure, &store, &v, &off, None).is_none()
        );
    }
}
